#!/usr/bin/env python3
"""Generate the checked-in trace fixtures under tests/traces/.

Deterministic (fixed seed): re-running reproduces the committed files
byte for byte. Each fixture carries a known number of deliberately
malformed rows so tests and the bench gate can assert the parsers'
diagnostic counts exactly:

  google_task_events.csv : 9 malformed rows
  azure_vmtable.csv      : 7 malformed rows

Keep those counts in sync with tests/test_trace.cc and
bench/trace_replay.cc if you edit this file.
"""

import random

random.seed(7)

GOOGLE = "tests/traces/google_task_events.csv"
AZURE = "tests/traces/azure_vmtable.csv"

# ---------------------------------------------------------------- google
# 13 columns: time_us, missing, job, task, machine, type, user,
# sched_class, priority, cpu, mem, disk, constraint.

HOUR_US = 3_600_000_000
SPAN_US = 6 * HOUR_US


def g_row(t, job, task, etype, sched, prio, cpu, mem):
    return (f"{t},,{job},{task},,{etype},u{job % 17},{sched},{prio},"
            f"{cpu:.4f},{mem:.4f},0.0001,0")


rows = []
for j in range(120):
    job = 6_000_000_000 + j * 97
    ntasks = random.randint(1, 8)
    sched = random.choices([0, 1, 2, 3], weights=[30, 40, 20, 10])[0]
    prio = random.choices([0, 1, 2, 4, 8, 9, 10, 11],
                          weights=[18, 12, 20, 22, 10, 8, 6, 4])[0]
    t0 = random.randint(0, SPAN_US // 2)
    for task in range(ntasks):
        cpu = random.uniform(0.01, 0.50)
        mem = random.uniform(0.005, 0.40)
        submit = t0 + random.randint(0, 60_000_000)
        rows.append(g_row(submit, job, task, 0, sched, prio, cpu, mem))
        # The source scheduler's own move: parsed, counted, ignored.
        sched_at = submit + random.randint(1_000_000, 30_000_000)
        rows.append(g_row(sched_at, job, task, 1, sched, prio, cpu, mem))
        fate = random.random()
        end = sched_at + random.randint(60_000_000, SPAN_US // 3)
        end = min(end, SPAN_US - 1)
        if fate < 0.15:
            resize = sched_at + random.randint(10_000_000, 50_000_000)
            rows.append(g_row(resize, job, task, 8, sched, prio,
                              min(cpu * 1.5, 0.6), mem))
        if fate < 0.70:
            etype = 4 if random.random() < 0.8 else 5
            rows.append(g_row(end, job, task, etype, sched, prio,
                              cpu, mem))
        # else: still running at the end of the window.

# 9 deliberately malformed rows (see module docstring).
BAD_GOOGLE = [
    "123,,1,2,,0,u,0,0,0.1,0.1,0.0",                        # 12 fields
    "123,,1,2,,0,u,0,0,0.1,0.1,0.0,0,extra",                # 14 fields
    "abc,,1,2,,0,u,0,0,0.1,0.1,0.0,0",                      # bad ts
    "-5,,1,2,,0,u,0,0,0.1,0.1,0.0,0",                       # negative ts
    "9223372036854775807,,1,2,,0,u,0,0,0.1,0.1,0.0,0",      # 2^63-1
    "123,,1,2,,12,u,0,0,0.1,0.1,0.0,0",                     # type 12
    "123,,1,2,,0,u,0,0,7.5,0.1,0.0,0",                      # cpu > cap
    "123,,1,2,,0,u,0,0,0.1,lots,0.0,0",                     # mem text
    "123,,1,2,,0,u,0,high,0.1,0.1,0.0,0",                   # priority
]
for bad in BAD_GOOGLE:
    rows.insert(random.randint(0, len(rows)), bad)

with open(GOOGLE, "w") as f:
    f.write("\n".join(rows) + "\n")
print(f"{GOOGLE}: {len(rows)} rows ({len(BAD_GOOGLE)} malformed)")

# ----------------------------------------------------------------- azure
# 6 columns: vmid, created, deleted, category, cores, mem_gb.

DAY_S = 86_400
vm_rows = []
for v in range(900):
    vmid = 500_000 + v * 13
    created = random.randint(0, DAY_S - 1)
    cat = random.choices(
        ["interactive", "delay-insensitive", "unknown", ""],
        weights=[30, 50, 12, 8])[0]
    cores = random.choice([1, 2, 4, 8, 16])
    mem = random.choice([2, 4, 8, 16, 32, 64])
    if random.random() < 0.75:
        deleted = min(created + random.randint(300, DAY_S), DAY_S)
        deleted_s = str(deleted)
    else:
        deleted_s = "" if random.random() < 0.5 else "-1"
    vm_rows.append(f"{vmid},{created},{deleted_s},{cat},{cores},{mem}")

# 7 deliberately malformed rows (see module docstring).
BAD_AZURE = [
    "901,100,200,interactive,4",          # 5 fields
    ",100,200,interactive,4,8",           # empty vm id
    "902,x,200,interactive,4,8",          # created not a number
    "903,500,400,interactive,4,8",        # deleted < created
    "904,100,200,interactive,0,8",        # cores out of range
    "905,100,200,interactive,4,99999",    # memory overflow
    "906,100,200,zebra,4,8",              # unknown category
]
for bad in BAD_AZURE:
    vm_rows.insert(random.randint(0, len(vm_rows)), bad)

with open(AZURE, "w") as f:
    f.write("vmid,created,deleted,category,cores,mem_gb\n")
    f.write("\n".join(vm_rows) + "\n")
print(f"{AZURE}: {len(vm_rows)} rows ({len(BAD_AZURE)} malformed)")
