/**
 * @file
 * Unit tests for the quasar-lint analyzer internals, run against
 * virtual in-memory file trees (Analyzer::virtual_files) so each test
 * controls exactly what the analyzer sees — plus the MutatorSync
 * suite, which runs the real src/ tree and asserts the statically
 * derived journaled-mutator list equals the X-macro list driving the
 * QUASAR_VERIFY death tests.
 */

#include "analyzer.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace quasarlint;

namespace
{

std::vector<std::string>
rulesAt(const std::vector<Finding> &fs, const std::string &file,
        size_t line)
{
    std::vector<std::string> out;
    for (const Finding &f : fs)
        if (f.file == file && f.line == line)
            out.push_back(f.rule);
    return out;
}

size_t
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    size_t n = 0;
    for (const Finding &f : fs)
        n += f.rule == rule;
    return n;
}

Analyzer
makeVirtual(std::map<std::string, std::string> files)
{
    Analyzer a;
    for (const auto &[path, text] : files) {
        (void)text;
        a.paths.push_back(path);
    }
    a.virtual_files = std::move(files);
    return a;
}

} // namespace

// -------------------------------------------------------------------
// Suppression binding (the scope-leak fix)
// -------------------------------------------------------------------

TEST(Suppression, TrailingCommentBindsToItsOwnLineOnly)
{
    FileText ft;
    loadFromString("src/core/x.cc",
                   "double a = 0;\n"
                   "bool b = a == 1.0; // quasar-lint: allow(float-eq)\n"
                   "bool c = a == 2.0;\n",
                   ft);
    ASSERT_EQ(ft.allowed.size(), 1u);
    EXPECT_TRUE(ft.allowed.count(2));
    EXPECT_TRUE(ft.allowed.at(2).count("float-eq"));
}

TEST(Suppression, StandaloneCommentBindsToNextLineOnly)
{
    FileText ft;
    loadFromString("src/core/x.cc",
                   "// quasar-lint: allow(float-eq)\n"
                   "bool b = 0.0 == 1.0;\n"
                   "bool c = 0.0 == 2.0;\n",
                   ft);
    ASSERT_EQ(ft.allowed.size(), 1u);
    EXPECT_TRUE(ft.allowed.count(2));
    EXPECT_FALSE(ft.allowed.count(3)); // the old leak
}

TEST(Suppression, BlockCommentNoLongerLeaksToSecondLine)
{
    FileText ft;
    loadFromString("src/core/x.cc",
                   "/* quasar-lint: allow(float-eq) */\n"
                   "bool b = 0.0 == 1.0;\n"
                   "bool c = 0.0 == 2.0;\n",
                   ft);
    ASSERT_EQ(ft.allowed.size(), 1u);
    EXPECT_TRUE(ft.allowed.count(2));
    EXPECT_FALSE(ft.allowed.count(3)); // the old leak
}

TEST(Suppression, TrailingBlockCommentBindsToItsOwnLine)
{
    FileText ft;
    loadFromString("src/core/x.cc",
                   "bool b = 0.0 == 1.0; /* quasar-lint: allow(float-eq) */\n"
                   "bool c = 0.0 == 2.0;\n",
                   ft);
    ASSERT_EQ(ft.allowed.size(), 1u);
    EXPECT_TRUE(ft.allowed.count(1));
}

// -------------------------------------------------------------------
// Include graph: resolution, cycles, layer-edge classification
// -------------------------------------------------------------------

TEST(IncludeGraph, ResolvesQuotedIncludesBySuffix)
{
    Analyzer a = makeVirtual({
        {"src/sim/a.hh", "#pragma once\n#include \"sim/b.hh\"\n"},
        {"src/sim/b.hh", "#pragma once\n"},
    });
    (void)a.run();
    const auto &edges = a.includeGraph().edges;
    ASSERT_TRUE(edges.count("src/sim/a.hh"));
    ASSERT_EQ(edges.at("src/sim/a.hh").size(), 1u);
    EXPECT_EQ(edges.at("src/sim/a.hh")[0].to, "src/sim/b.hh");
    EXPECT_EQ(edges.at("src/sim/a.hh")[0].line, 2u);
}

TEST(IncludeGraph, DetectsCycleOnceAtFirstMember)
{
    Analyzer a = makeVirtual({
        {"src/sim/a.hh", "#pragma once\n#include \"sim/b.hh\"\n"},
        {"src/sim/b.hh", "#pragma once\n#include \"sim/a.hh\"\n"},
        {"src/sim/c.hh", "#pragma once\n#include \"sim/a.hh\"\n"},
    });
    std::vector<Finding> fs = a.run();
    EXPECT_EQ(countRule(fs, "include-cycle"), 1u);
    EXPECT_EQ(rulesAt(fs, "src/sim/a.hh", 2),
              std::vector<std::string>{"include-cycle"});
}

TEST(IncludeGraph, LayerEdgeClassification)
{
    Analyzer a = makeVirtual({
        // Downward / same-layer edges are legal...
        {"src/core/engine.hh",
         "#pragma once\n#include \"stats/low.hh\"\n"
         "#include \"sim/model.hh\"\n"},
        {"src/sim/model.hh",
         "#pragma once\n#include \"topology/map.hh\"\n"},
        {"src/topology/map.hh", "#pragma once\n"},
        {"src/stats/low.hh", "#pragma once\n"},
        // ...an upward stats -> core edge is not.
        {"src/stats/up.hh",
         "#pragma once\n#include \"core/engine.hh\"\n"},
    });
    std::vector<Finding> fs = a.run();
    EXPECT_EQ(countRule(fs, "layering"), 1u);
    EXPECT_EQ(rulesAt(fs, "src/stats/up.hh", 2),
              std::vector<std::string>{"layering"});
}

// -------------------------------------------------------------------
// Call-graph cone: conservative over-approximation
// -------------------------------------------------------------------

TEST(DecisionCone, OverApproximatesAcrossOverloadsNeverUnder)
{
    Analyzer a = makeVirtual({
        {"src/core/sched.cc",
         "class GreedyScheduler {\n"
         "  public:\n"
         "    void allocate() { frob(); }\n"
         "};\n"},
        // Two unrelated classes define frob(); name-based resolution
        // must pull BOTH into the cone (virtual dispatch/overload
        // fallback is conservative).
        {"src/sim/helpers.hh",
         "#pragma once\n"
         "struct A {\n"
         "    void frob() { int x = 1; (void)x; }\n"
         "};\n"
         "struct B {\n"
         "    void frob() { double y = 0; bool z = y == 0.5; (void)z; }\n"
         "};\n"
         "struct C {\n"
         "    void lonely() { double y = 0; bool z = y == 0.5; (void)z; }\n"
         "};\n"},
    });
    std::vector<Finding> fs = a.run();
    EXPECT_TRUE(a.decisionCone().count("GreedyScheduler::allocate"));
    EXPECT_TRUE(a.decisionCone().count("A::frob"));
    EXPECT_TRUE(a.decisionCone().count("B::frob"));
    EXPECT_FALSE(a.decisionCone().count("C::lonely"));
    // Purity violations fire inside the cone (B::frob, line 6)...
    EXPECT_EQ(rulesAt(fs, "src/sim/helpers.hh", 6),
              std::vector<std::string>{"decision-purity"});
    // ...but not in unreachable code (C::lonely) — zero over-fires.
    EXPECT_EQ(countRule(fs, "decision-purity"), 1u);
}

TEST(DecisionCone, FollowsTransitiveCalls)
{
    Analyzer a = makeVirtual({
        {"src/core/sched.cc",
         "class GreedyScheduler {\n"
         "  public:\n"
         "    void refreshIndex() { hop(); }\n"
         "};\n"},
        {"src/workload/chain.cc",
         "void deep() { double y = 0; bool z = y != 2.5; (void)z; }\n"
         "void hop() { deep(); }\n"},
    });
    std::vector<Finding> fs = a.run();
    EXPECT_TRUE(a.decisionCone().count("deep"));
    EXPECT_EQ(rulesAt(fs, "src/workload/chain.cc", 1),
              std::vector<std::string>{"decision-purity"});
}

// -------------------------------------------------------------------
// Mutation-journaling
// -------------------------------------------------------------------

namespace
{

const char kServerHh[] =
    "#pragma once\n"                                              // 1
    "class Server {\n"                                            // 2
    "  public:\n"                                                 // 3
    "    void good() {\n"                                         // 4
    "        tasks_ = 1;\n"                                       // 5
    "        bumpVersion();\n"                                    // 6
    "    }\n"                                                     // 7
    "    void bad() { state_ = 2; }\n"                            // 8
    "    int peek() const { return state_; }\n"                   // 9
    "    void bumpVersion() { ++version_; }\n"                    // 10
    "  private:\n"                                                // 11
    "    int tasks_ = 0;\n"                                       // 12
    "    int state_ = 0;\n"                                       // 13
    "    int version_ = 0;\n"                                     // 14
    "};\n";                                                       // 15

} // namespace

TEST(MutationJournaling, UnbumpedWriteIsFlaggedBumpedIsNot)
{
    Analyzer a = makeVirtual({{"src/sim/server.hh", kServerHh}});
    std::vector<Finding> fs = a.run();
    EXPECT_EQ(countRule(fs, "mutation-journaling"), 1u);
    EXPECT_EQ(rulesAt(fs, "src/sim/server.hh", 8),
              std::vector<std::string>{"mutation-journaling"});
    EXPECT_EQ(a.derivedMutators(), std::vector<std::string>{"good"});
}

TEST(MutationJournaling, DefCrossCheckFlagsGhostAndMissing)
{
    Analyzer a = makeVirtual({
        {"src/sim/server.hh",
         "#pragma once\n"                                         // 1
         "class Server {\n"                                       // 2
         "  public:\n"                                            // 3
         "    void good() { tasks_ = 1; bumpVersion(); }\n"       // 4
         "    void extra() { tasks_ = 2; bumpVersion(); }\n"      // 5
         "    void bumpVersion() {}\n"                            // 6
         "  private:\n"                                           // 7
         "    int tasks_ = 0;\n"                                  // 8
         "};\n"},
        {"src/verify/journaled_mutators.def",
         "QUASAR_JOURNALED_MUTATOR(good)\n"
         "QUASAR_JOURNALED_MUTATOR(ghost)\n"},
    });
    a.paths.pop_back(); // the .def is an input, not a lintable source
    a.def_paths = {"src/verify/journaled_mutators.def"};
    std::vector<Finding> fs = a.run();
    // 'extra' bumps but is missing from the list -> flagged at its
    // definition; 'ghost' is listed but does not exist -> flagged at
    // the .def line.
    EXPECT_EQ(rulesAt(fs, "src/sim/server.hh", 5),
              std::vector<std::string>{"mutation-journaling"});
    EXPECT_EQ(rulesAt(fs, "src/verify/journaled_mutators.def", 2),
              std::vector<std::string>{"mutation-journaling"});
    EXPECT_EQ(countRule(fs, "mutation-journaling"), 2u);
}

TEST(MutationJournaling, CatchesNonAssignmentWrites)
{
    Analyzer a = makeVirtual({
        {"src/sim/server.hh",
         "#pragma once\n"                                         // 1
         "class Server {\n"                                       // 2
         "  public:\n"                                            // 3
         "    void viaMethod() { tasks_.push_back(1); }\n"        // 4
         "    void viaSwap(Server &o) { o.spare.swap(tasks_); }\n" // 5
         "    void viaRangeFor() {\n"                             // 6
         "        for (int &t : tasks_) { t += 1; }\n"            // 7
         "    }\n"                                                // 8
         "    void readOnly() {\n"                                // 9
         "        for (const int &t : tasks_) { (void)t; }\n"     // 10
         "        bool e = tasks_.empty(); (void)e;\n"            // 11
         "    }\n"                                                // 12
         "  private:\n"                                           // 13
         "    std::vector<int> tasks_;\n"                         // 14
         "    std::vector<int> spare;\n"                          // 15
         "};\n"},
    });
    std::vector<Finding> fs = a.run();
    EXPECT_EQ(countRule(fs, "mutation-journaling"), 3u);
    EXPECT_EQ(rulesAt(fs, "src/sim/server.hh", 4),
              std::vector<std::string>{"mutation-journaling"});
    EXPECT_EQ(rulesAt(fs, "src/sim/server.hh", 5),
              std::vector<std::string>{"mutation-journaling"});
    EXPECT_EQ(rulesAt(fs, "src/sim/server.hh", 7),
              std::vector<std::string>{"mutation-journaling"});
    // readOnly (const iteration, non-mutating calls) stays clean.
    EXPECT_TRUE(rulesAt(fs, "src/sim/server.hh", 10).empty());
    EXPECT_TRUE(rulesAt(fs, "src/sim/server.hh", 11).empty());
}

// -------------------------------------------------------------------
// Baseline semantics: shrink-only
// -------------------------------------------------------------------

TEST(Baseline, CoveredFindingsDropFreshAndStaleSurface)
{
    Analyzer a = makeVirtual({
        {"src/core/decide.cc",
         "bool f(double x) { return x == 0.25; }\n"
         "bool g(double x) { return x == 0.75; }\n"},
    });
    std::vector<Finding> fs = a.run();
    ASSERT_EQ(countRule(fs, "float-eq"), 2u);

    // Baseline covering only line 1's finding: line 2 stays fresh.
    std::vector<BaselineEntry> entries = {
        {"src/core/decide.cc", "float-eq",
         "bool f(double x) { return x == 0.25; }", 1},
    };
    std::vector<Finding> fresh;
    std::vector<BaselineEntry> stale;
    applyBaseline(fs, entries, a, fresh, stale);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0].line, 2u);
    EXPECT_TRUE(stale.empty());

    // Over-counted baseline entry: the surplus is stale (shrink-only).
    entries[0].count = 3;
    fresh.clear();
    stale.clear();
    applyBaseline(fs, entries, a, fresh, stale);
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0].count, 2);

    // An entry whose excerpt no longer exists is stale in full.
    entries = {{"src/core/decide.cc", "float-eq", "gone line", 1}};
    fresh.clear();
    stale.clear();
    applyBaseline(fs, entries, a, fresh, stale);
    EXPECT_EQ(fresh.size(), 2u);
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0].count, 1);
}

TEST(Baseline, RoundTripsThroughDisk)
{
    Analyzer a = makeVirtual({
        {"src/core/decide.cc",
         "bool f(double x) { return x == 0.25; }\n"},
    });
    std::vector<Finding> fs = a.run();
    ASSERT_EQ(countRule(fs, "float-eq"), 1u);

    std::string path = "lint_baseline_roundtrip_tmp.json";
    ASSERT_TRUE(writeBaseline(path, fs, a));
    std::vector<BaselineEntry> entries;
    std::string error;
    ASSERT_TRUE(loadBaseline(path, entries, error)) << error;
    std::remove(path.c_str());
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].file, "src/core/decide.cc");
    EXPECT_EQ(entries[0].rule, "float-eq");
    EXPECT_EQ(entries[0].count, 1);

    std::vector<Finding> fresh;
    std::vector<BaselineEntry> stale;
    applyBaseline(fs, entries, a, fresh, stale);
    EXPECT_TRUE(fresh.empty());
    EXPECT_TRUE(stale.empty());
}

// -------------------------------------------------------------------
// MutatorSync: static list == runtime death-test list, on the real
// tree (QUASAR_LINT_SOURCE_DIR is the repo root).
// -------------------------------------------------------------------

TEST(MutatorSync, StaticListMatchesDeathTestList)
{
    Analyzer a;
    collectInputs({std::string(QUASAR_LINT_SOURCE_DIR) + "/src"},
                  a.paths, a.def_paths);
    ASSERT_FALSE(a.paths.empty());
    ASSERT_FALSE(a.def_paths.empty());
    std::vector<Finding> fs = a.run();
    for (const Finding &f : fs)
        EXPECT_NE(f.rule, "mutation-journaling")
            << f.file << ":" << f.line << ": " << f.message;

    const std::vector<std::string> death_test_list = {
#define QUASAR_JOURNALED_MUTATOR(name) #name,
#include "verify/journaled_mutators.def"
#undef QUASAR_JOURNALED_MUTATOR
    };
    EXPECT_EQ(a.derivedMutators(), death_test_list);
}
