// Deliberate violations of the decision-path rules (this fixture file
// lives under fixture/decision/, which the linter treats like
// src/core, src/baselines, and src/churn). Never compiled.

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

double
badUnorderedIteration()
{
    std::unordered_map<std::string, double> scores;
    std::unordered_set<int> dirty;
    double total = 0.0;
    for (const auto &kv : scores)                    // expect(unordered-iter)
        total += kv.second;
    for (int id : dirty)                             // expect(unordered-iter)
        total += double(id);
    return total;
}

bool
badFloatEquality(double perf, double quality)
{
    if (perf == 0.0)                                 // expect(float-eq)
        return false;
    bool same = quality != 1.0;                      // expect(float-eq)
    return same;
}

// Lookup (no iteration) of unordered containers is fine: hash order
// never surfaces.
double
okUnorderedLookup(const std::unordered_map<std::string, double> &m)
{
    auto it = m.find("web");
    return it == m.end() ? 0.0 : it->second;
}

// Integer compares and compares between two variables are out of this
// rule's scope (bit-identical replay compares are legal and load-bearing
// in the scheduler's ranking comparator).
bool
okCompares(int cores, int want, double a, double b)
{
    return cores == want && a != b;
}

// Suppressions carry the burden of proof in a comment.
bool
okSuppressed(double progress)
{
    // Sentinel compare: progress is assigned exactly -1.0, never
    // computed, so exact equality is the correct test.
    return progress == -1.0; // quasar-lint: allow(float-eq)
}
