// Deliberate violations shaped like trace-ingestion mistakes
// (src/trace/ is a decision dir: the mapper's instance ordering and
// pairing decide which workloads replay, so hash-order iteration and
// float compares there change placements, not just style). Never
// compiled.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

struct OpenInstance
{
    double arrival_s = 0.0;
    double cpu = 0.0;
};

// Pairing arrivals to departures by walking a hash map: the mapped
// instance order — and so every placement downstream — would depend
// on the hash seed.
double
badInstancePairing(
    const std::unordered_map<uint64_t, OpenInstance> &open)
{
    double total = 0.0;
    for (const auto &kv : open)                    // expect(unordered-iter)
        total += kv.second.cpu;
    return total;
}

// Exact literal compares on parsed timestamps: a row at the "same"
// instant differs in the last ulp after the microsecond conversion.
bool
badTimestampCompare(double row_s)
{
    if (row_s == 86400.0)                          // expect(float-eq)
        return false;
    return row_s != 0.0;                           // expect(float-eq)
}

// Counting and lookups against unordered containers are fine: no
// iteration order surfaces in the output.
size_t
okDiagnosticLookup(
    const std::unordered_map<uint64_t, OpenInstance> &open, uint64_t id)
{
    return open.count(id);
}
