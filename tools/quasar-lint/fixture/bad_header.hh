/**
 * @file
 * Deliberate header-hygiene violations for the linter self-test: the
 * first non-comment line is an include guard instead of #pragma once,
 * and two includes break path hygiene. Never compiled.
 */

#ifndef QUASAR_LINT_FIXTURE_BAD_HEADER_HH // expect(pragma-once)
#define QUASAR_LINT_FIXTURE_BAD_HEADER_HH

#include "../sim/server.hh"   // expect(include-hygiene)
#include "/abs/path/types.hh" // expect(include-hygiene)

struct FixtureOnly
{
    int x = 0;
};

#endif // QUASAR_LINT_FIXTURE_BAD_HEADER_HH
