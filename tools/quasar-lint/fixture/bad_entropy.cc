// Deliberate violations of the entropy/clock rules. This file is the
// linter's self-test fixture: it is never compiled, and per-line
// expectation markers declare exactly which findings the linter must
// produce. quasar-lint's normal tree scan skips everything under
// fixture/.

#include <chrono>
#include <random>

uint64_t
badSeedSources()
{
    std::random_device rd;                          // expect(unseeded-rng)
    srand(42);                                      // expect(unseeded-rng)
    int r = rand();                                 // expect(unseeded-rng)
    std::mt19937_64 gen(uint64_t(r) + rd());        // expect(raw-mt19937)
    std::mt19937 gen32(7);                          // expect(raw-mt19937)
    auto wall = std::chrono::system_clock::now();   // expect(wallclock)
    uint64_t t = uint64_t(time(nullptr));           // expect(wallclock)
    long c = clock();                               // expect(wallclock)
    return uint64_t(gen() + gen32()) + t + uint64_t(c) +
           uint64_t(wall.time_since_epoch().count());
}

// Strings and comments never trip the token rules: "std::rand()",
// "random_device", "system_clock", time() and mt19937 in prose are fine.
const char *kDoc = "never call rand() or read system_clock directly";

// Member / non-std-qualified calls named `time` or `clock` are not the
// libc functions and must not fire. (The *declarations* below are
// indistinguishable from calls at token level — a known limitation —
// so they carry suppressions.)
struct Sim
{
    double time() const { return 0.0; }  // quasar-lint: allow(wallclock)
    double clock() const { return 1.0; } // quasar-lint: allow(wallclock)
};
double
okMemberCalls(const Sim &sim, Sim *p)
{
    return sim.time() + p->clock() + Sim{}.time();
}

// A genuinely-deterministic use can be suppressed, with justification.
uint64_t
okSuppressed()
{
    // Fixture only: proves same-line suppression silences the rule.
    std::mt19937_64 gen(1234); // quasar-lint: allow(raw-mt19937)
    // Fixture only: proves a standalone suppression comment covers the
    // following line.
    // quasar-lint: allow(wallclock)
    uint64_t t = uint64_t(time(nullptr));
    return gen() + t;
}
