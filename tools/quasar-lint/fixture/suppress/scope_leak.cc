// Proves the suppression scope leak is fixed: an allow(...) comment
// binds to exactly ONE line — the comment's own line when it trails
// code, otherwise the next line — so an identical violation on the
// line after the target still fires. (The old loader registered block
// comments on both following lines.)

#include <cstdlib>

int
suppressionBindsToExactlyOneLine()
{
    // quasar-lint: allow(unseeded-rng)
    int a = rand();
    int b = rand(); // expect(unseeded-rng)
    /* quasar-lint: allow(unseeded-rng) */
    int c = rand();
    int d = rand(); // expect(unseeded-rng)
    int e = rand(); // quasar-lint: allow(unseeded-rng)
    int f = rand(); // expect(unseeded-rng)
    return a + b + c + d + e + f;
}
