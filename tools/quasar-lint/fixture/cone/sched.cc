// Fixture decision cone: GreedyScheduler entry points pull helpers
// defined OUTSIDE the decision dirs into the decision-purity scope.
// The helpers (and the one deliberately unreachable function) live in
// cone/helpers.hh.

#include "cone/helpers.hh"

class GreedyScheduler
{
  public:
    void allocate() { eqHelper(); }
    void refreshIndex()
    {
        iterHelper();
        toleratedHelper();
    }
    void refreshEntryIndexed() { chainHelper(); }
};
