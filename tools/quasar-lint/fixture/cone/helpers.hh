/**
 * @file
 * Helpers reachable (and one deliberately not reachable) from the
 * fixture GreedyScheduler in cone/sched.cc. This directory is NOT a
 * decision dir, so the dir-scoped float-eq/unordered-iter rules stay
 * silent here — only the cone-scoped decision-purity rule fires, and
 * only inside the reachable functions.
 */

#pragma once

#include <unordered_map>

inline bool
eqHelper()
{
    double x = 0.5;
    return x == 0.25; // expect(decision-purity)
}

inline int
iterHelper()
{
    std::unordered_map<int, int> table;
    table[1] = 2;
    int sum = 0;
    for (const auto &kv : table) // expect(decision-purity)
        sum += kv.second;
    return sum;
}

inline bool
toleratedHelper()
{
    double t = 0.0;
    // quasar-lint: allow(decision-purity)
    return t == 0.5;
}

inline bool
deepHelper()
{
    double y = 1.0;
    return y != 2.0; // expect(decision-purity)
}

inline bool
chainHelper()
{
    return deepHelper(); // transitive edge into the cone
}

// Reachable only from the fixture ShardedScheduler::allocate in
// cone/shard_sched.cc — the sharded front door is its own cone entry.
inline bool
shardMergeHelper()
{
    double quality = 0.75;
    return quality == 0.5; // expect(decision-purity)
}

// Reachable from no entry point: the identical compare below must NOT
// fire — the cone is call-graph-scoped, not directory-scoped.
inline bool
unreachableHelper()
{
    double w = 3.0;
    return w == 3.0;
}
