// Fixture sharded decision path: ShardedScheduler::allocate is a cone
// entry point of its own, so per-shard worker helpers — here the
// merge tie-break — are decision-purity-scoped even though nothing in
// the classic GreedyScheduler fixture calls them.

#include "cone/helpers.hh"

class ShardedScheduler
{
  public:
    void allocate() { shardMergeHelper(); }
};
