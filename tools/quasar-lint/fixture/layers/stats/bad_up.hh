/** Deliberate layering violation: stats (layer 0) reaching up into
 *  core (layer 6). */

#pragma once

#include "layers/core/engine.hh" // expect(layering)

inline int
badUpValue()
{
    return engineValue();
}
