/** Fixture layer 0 header: depends on nothing. */

#pragma once

inline int
lowValue()
{
    return 1;
}
