/** Fixture layer 6 header: a downward include (core -> stats) is the
 *  legal direction and must not fire. */

#pragma once

#include "layers/stats/low.hh"

inline int
engineValue()
{
    return lowValue() + 1;
}
