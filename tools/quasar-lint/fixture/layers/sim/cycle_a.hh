/** Half of a deliberate include cycle (same layer, so only the
 *  include-cycle rule fires — once, at the lexicographically first
 *  member). */

#pragma once

#include "layers/sim/cycle_b.hh" // expect(include-cycle)

struct CycleA
{
    int a = 0;
};
