/** The other half of the include cycle anchored at cycle_a.hh. */

#pragma once

#include "layers/sim/cycle_a.hh"

struct CycleB
{
    int b = 0;
};
