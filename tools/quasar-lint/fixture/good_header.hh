/**
 * @file
 * A compliant header: #pragma once first, root-relative quoted
 * includes, system includes in angle brackets. The self-test requires
 * zero findings here — it guards against rules that over-fire.
 */

#pragma once

#include <chrono>
#include <string>

#include "sim/server.hh"

/** Steady-clock timing types are sanctioned (only system_clock and
 *  time()/clock() calls are wall-clock reads). */
using FixtureClock = std::chrono::steady_clock;

struct FixtureGood
{
    std::string name;
    FixtureClock::duration budget{};
};
