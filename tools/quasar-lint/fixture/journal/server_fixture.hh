/**
 * @file
 * Deliberate violations of the mutation-journaling rule. A miniature
 * journaled class named Server (the rule keys on the class name plus
 * a src/sim// fixture/ path): every non-const member function that
 * writes a placement-relevant field must call bumpVersion().
 */

#pragma once

#include <vector>

class Server
{
  public:
    void journaledAssign(int v)
    {
        state_ = v;
        bumpVersion();
    }

    void journaledContainer(int v)
    {
        tasks_.push_back(v);
        bumpVersion();
    }

    void unjournaledAssign(int v) { state_ = v; } // expect(mutation-journaling)

    void unjournaledPush(int v)
    {
        tasks_.push_back(v); // expect(mutation-journaling)
    }

    void sanctionedEscape()
    {
        // quasar-lint: allow(mutation-journaling)
        speed_factor_ = 0.5;
    }

    int reader() const { return state_; }

    // Journaled correctly, but deliberately missing from this
    // fixture's journaled_mutators.def — the list cross-check flags
    // the definition.
    void unlisted(int v) // expect(mutation-journaling)
    {
        state_ = v;
        bumpVersion();
    }

    // The cross-shard hazard: a shard worker reaching around the
    // journal to move another shard's resident. Every per-shard
    // cursor replays the journal to stay coherent, so an unjournaled
    // write desyncs K readers at once — same rule, named for the
    // failure it now guards against.
    void crossShardSteal(int v)
    {
        tasks_.push_back(v); // expect(mutation-journaling)
        state_ = v;
    }

    void bumpVersion() { ++version_; }

  private:
    std::vector<int> tasks_;
    int state_ = 0;
    double speed_factor_ = 1.0;
    int version_ = 0;
};
