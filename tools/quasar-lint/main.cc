/**
 * @file
 * quasar-lint CLI. All analysis lives in the quasar_lint_core library
 * (analyzer.hh); this file parses flags, expands inputs, runs the
 * analyzer and applies the baseline/JSON/exit-code policy:
 *
 *   quasar-lint [options] <file-or-dir>...
 *     --self-test [--fixture=DIR]  run the fixture self-test
 *     --list-rules                 print rule ids, one per line
 *     --json                       machine-readable findings
 *     --baseline=FILE              drop findings covered by FILE;
 *                                  fresh findings AND stale baseline
 *                                  entries fail (shrink-only)
 *     --write-baseline=FILE        write current findings as baseline
 *     --mutators                   print the derived journaled-mutator
 *                                  list (Server functions that bump)
 *
 * Exit status: 0 clean, 1 findings (or stale baseline), 2 usage/IO.
 */

#include "analyzer.hh"

#include <cstdio>
#include <string>
#include <vector>

namespace
{

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: quasar-lint [--json] [--baseline=FILE] "
        "[--write-baseline=FILE]\n"
        "                   [--mutators] <file-or-dir>...\n"
        "       quasar-lint --self-test [--fixture=DIR]\n"
        "       quasar-lint --list-rules\n");
}

bool
flagValue(const std::string &arg, const char *flag, std::string *out)
{
    std::string prefix = std::string(flag) + "=";
    if (arg.compare(0, prefix.size(), prefix) != 0)
        return false;
    *out = arg.substr(prefix.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quasarlint;

    bool self_test = false, list_rules = false, json = false;
    bool print_mutators = false;
    std::string fixture = "tools/quasar-lint/fixture";
    std::string baseline_path, write_baseline_path;
    std::vector<std::string> roots;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--self-test")
            self_test = true;
        else if (arg == "--list-rules")
            list_rules = true;
        else if (arg == "--json")
            json = true;
        else if (arg == "--mutators")
            print_mutators = true;
        else if (flagValue(arg, "--fixture", &fixture) ||
                 flagValue(arg, "--baseline", &baseline_path) ||
                 flagValue(arg, "--write-baseline",
                           &write_baseline_path))
            ;
        else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "quasar-lint: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            roots.push_back(arg);
        }
    }

    if (list_rules) {
        for (const std::string &r : kRuleIds)
            std::printf("%s\n", r.c_str());
        return 0;
    }
    if (self_test)
        return selfTest(fixture);
    if (roots.empty()) {
        usage(stderr);
        return 2;
    }

    Analyzer analyzer;
    collectInputs(roots, analyzer.paths, analyzer.def_paths);
    if (analyzer.paths.empty()) {
        std::fprintf(stderr, "quasar-lint: no lintable files under "
                             "the given paths\n");
        return 2;
    }
    std::vector<Finding> findings = analyzer.run();

    if (print_mutators) {
        for (const std::string &m : analyzer.derivedMutators())
            std::printf("%s\n", m.c_str());
        return 0;
    }
    if (!write_baseline_path.empty()) {
        if (!writeBaseline(write_baseline_path, findings, analyzer)) {
            std::fprintf(stderr,
                         "quasar-lint: cannot write baseline '%s'\n",
                         write_baseline_path.c_str());
            return 2;
        }
        std::fprintf(stderr,
                     "quasar-lint: wrote %zu finding(s) to '%s'\n",
                     findings.size(), write_baseline_path.c_str());
        return 0;
    }

    std::vector<BaselineEntry> stale;
    if (!baseline_path.empty()) {
        std::vector<BaselineEntry> entries;
        std::string error;
        if (!loadBaseline(baseline_path, entries, error)) {
            std::fprintf(stderr, "quasar-lint: baseline '%s': %s\n",
                         baseline_path.c_str(), error.c_str());
            return 2;
        }
        std::vector<Finding> fresh;
        applyBaseline(findings, entries, analyzer, fresh, stale);
        findings = std::move(fresh);
    }

    if (json) {
        std::string doc = findingsToJson(findings, analyzer);
        // Stale baseline entries ride along so CI can show both
        // failure modes from one artifact.
        if (!stale.empty()) {
            doc.erase(doc.rfind('}'));
            doc += ",\n  \"stale_baseline\": [\n";
            for (size_t i = 0; i < stale.size(); ++i)
                doc += "    {\"file\": \"" + stale[i].file +
                       "\", \"rule\": \"" + stale[i].rule +
                       "\", \"count\": " +
                       std::to_string(stale[i].count) +
                       (i + 1 < stale.size() ? "},\n" : "}\n");
            doc += "  ]\n}\n";
        }
        std::fputs(doc.c_str(), stdout);
    } else {
        for (const Finding &f : findings)
            std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                        f.rule.c_str(), f.message.c_str());
        for (const BaselineEntry &e : stale)
            std::printf("%s: [%s] stale baseline entry (x%d) no "
                        "longer fires; remove it from the baseline\n",
                        e.file.c_str(), e.rule.c_str(), e.count);
        if (findings.empty() && stale.empty())
            std::printf("quasar-lint: %zu file(s) clean\n",
                        analyzer.paths.size());
    }
    return (findings.empty() && stale.empty()) ? 0 : 1;
}
