/**
 * @file
 * quasar-lint: the repo's determinism and hygiene linter.
 *
 * Every result in this reproduction rests on a replay contract: churn
 * plans are pure functions of (config, seed) and all scheduler index
 * modes must stay bit-identical. That contract dies silently the first
 * time someone reads the wall clock, constructs an unseeded generator,
 * or lets unordered-container iteration order leak into a placement.
 * This tool enforces the contract at the token/line level — no libclang
 * dependency, so it builds everywhere the tree builds and runs in
 * milliseconds over the whole repo.
 *
 * Rules (each can be suppressed per line with
 * `// quasar-lint: allow(<rule>[,<rule>...])`, either on the flagged
 * line or alone on the line above it):
 *
 *   unseeded-rng    std::rand / srand / random_device anywhere outside
 *                   the RNG layer (src/stats/rng.*). These either read
 *                   global entropy or global hidden state.
 *   raw-mt19937     constructing std::mt19937 / mt19937_64 outside
 *                   src/stats/rng.* — all seeding flows through
 *                   stats::Rng so streams are forkable and auditable.
 *   wallclock       system_clock / time() / clock() / gettimeofday /
 *                   clock_gettime outside the sanctioned timing layer
 *                   (src/stats/timing.hh). Simulated time comes from
 *                   the event queue; host time may only feed TimerStat.
 *   unordered-iter  range-for iteration over a variable declared as
 *                   std::unordered_map/unordered_set in decision-path
 *                   dirs (src/core, src/baselines, src/churn) — hash
 *                   iteration order is implementation-defined and leaks
 *                   straight into placements.
 *   float-eq        == / != with a floating-point literal operand in
 *                   decision-path dirs; exact compares against computed
 *                   doubles make placement flip on the last ulp.
 *   pragma-once     every header's first non-comment line must be
 *                   `#pragma once`.
 *   include-hygiene no `..` or absolute paths in #include directives.
 *
 * Usage:
 *   quasar-lint [--self-test] [--list-rules] <files-or-dirs...>
 *
 * Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage.
 *
 * `--self-test` lints the fixture tree next to the binary's source
 * (tools/quasar-lint/fixture), where every deliberate violation is
 * marked with `// expect(<rule>)`; the run fails unless the findings
 * match the markers exactly — proving each rule both fires and stays
 * suppressible.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace
{

struct Finding
{
    std::string file;
    size_t line = 0;
    std::string rule;
    std::string message;

    bool operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        return rule < o.rule;
    }
};

const char *const kRuleIds[] = {
    "unseeded-rng",  "raw-mt19937", "wallclock",       "unordered-iter",
    "float-eq",      "pragma-once", "include-hygiene",
};

/** Paths (suffix match, '/'-normalized) exempt from the RNG/clock
 *  rules: the RNG layer itself and the sanctioned timing layer. */
const char *const kRngAllowlist[] = {
    "src/stats/rng.hh",
    "src/stats/rng.cc",
    "src/stats/timing.hh",
};

/** Directories whose code decides placements: iteration order and
 *  float compares there change results, not just style. The fixture
 *  subdir makes the decision-path rules self-testable. */
const char *const kDecisionDirs[] = {
    "src/core/",
    "src/baselines/",
    "src/churn/",
    "src/trace/",
    "src/topology/",
    "fixture/decision/",
};

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** One source file split into physical lines, with comments and
 *  string/char literals blanked out (line structure preserved) so the
 *  token rules never fire inside either. */
struct FileText
{
    std::string path;          ///< as given, '/'-separated.
    std::vector<std::string> raw;
    std::vector<std::string> code; ///< comments/strings blanked.
    /** rules allowed per line (1-based), from quasar-lint comments. */
    std::map<size_t, std::set<std::string>> allowed;
};

/** Parse `quasar-lint: allow(a,b)` out of a comment's text. */
std::set<std::string>
parseAllowances(const std::string &comment)
{
    std::set<std::string> rules;
    const std::string key = "quasar-lint:";
    size_t k = comment.find(key);
    if (k == std::string::npos)
        return rules;
    size_t open = comment.find("allow(", k);
    if (open == std::string::npos)
        return rules;
    size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return rules;
    std::string list = comment.substr(open + 6, close - open - 6);
    std::string cur;
    for (char c : list + ",") {
        if (c == ',') {
            if (!cur.empty())
                rules.insert(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    return rules;
}

/**
 * Load a file: split lines, blank comments and literals, and collect
 * allow() suppressions. A suppression on a line applies to that line;
 * a line that is *only* a suppression comment also applies to the next
 * line.
 */
bool
loadFile(const std::string &path, FileText &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    out.path = path;
    std::replace(out.path.begin(), out.path.end(), '\\', '/');

    // Split into lines (keep an implicit final line).
    std::string line;
    for (char c : text) {
        if (c == '\n') {
            out.raw.push_back(line);
            line.clear();
        } else if (c != '\r') {
            line += c;
        }
    }
    if (!line.empty())
        out.raw.push_back(line);

    // Blank comments and literals in one pass over the raw text,
    // tracking multi-line constructs across lines.
    enum class St
    {
        Code,
        LineComment,
        BlockComment,
        Str,
        Chr
    } st = St::Code;
    std::string comment_text; // accumulates the current comment.
    size_t comment_line = 0;
    out.code.reserve(out.raw.size());
    for (size_t li = 0; li < out.raw.size(); ++li) {
        const std::string &src = out.raw[li];
        std::string dst(src.size(), ' ');
        if (st == St::LineComment) // never spans lines
            st = St::Code;
        for (size_t i = 0; i < src.size(); ++i) {
            char c = src[i];
            char next = i + 1 < src.size() ? src[i + 1] : '\0';
            switch (st) {
            case St::Code:
                if (c == '/' && next == '/') {
                    st = St::LineComment;
                    comment_text = src.substr(i);
                    comment_line = li + 1;
                    i = src.size();
                } else if (c == '/' && next == '*') {
                    st = St::BlockComment;
                    comment_text.clear();
                    comment_line = li + 1;
                    ++i;
                } else if (c == '"') {
                    st = St::Str;
                    dst[i] = '"';
                } else if (c == '\'') {
                    st = St::Chr;
                    dst[i] = '\'';
                } else {
                    dst[i] = c;
                }
                break;
            case St::BlockComment:
                comment_text += c;
                if (c == '*' && next == '/') {
                    st = St::Code;
                    ++i;
                    for (const std::string &rule :
                         parseAllowances(comment_text)) {
                        out.allowed[comment_line].insert(rule);
                        out.allowed[li + 1].insert(rule);
                    }
                    comment_text.clear();
                }
                break;
            case St::Str:
                if (c == '\\')
                    ++i;
                else if (c == '"') {
                    st = St::Code;
                    dst[i] = '"';
                }
                break;
            case St::Chr:
                if (c == '\\')
                    ++i;
                else if (c == '\'') {
                    st = St::Code;
                    dst[i] = '\'';
                }
                break;
            case St::LineComment:
                break; // unreachable within the loop
            }
        }
        if (st == St::LineComment || st == St::BlockComment)
            comment_text += '\n';
        if (st == St::LineComment) {
            std::set<std::string> rules = parseAllowances(comment_text);
            if (!rules.empty()) {
                out.allowed[li + 1].insert(rules.begin(), rules.end());
                // A line that is nothing but the suppression comment
                // covers the following line too.
                std::string before = src.substr(0, src.find("//"));
                bool only_comment =
                    before.find_first_not_of(" \t") == std::string::npos;
                if (only_comment)
                    out.allowed[li + 2].insert(rules.begin(),
                                               rules.end());
            }
            comment_text.clear();
        }
        out.code.push_back(dst);
    }
    return true;
}

bool
onRngAllowlist(const std::string &path)
{
    for (const char *suffix : kRngAllowlist)
        if (endsWith(path, suffix))
            return true;
    return false;
}

bool
inDecisionDir(const std::string &path)
{
    for (const char *dir : kDecisionDirs)
        if (path.find(dir) != std::string::npos)
            return true;
    return false;
}

bool
isHeader(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".hpp") ||
           endsWith(path, ".h");
}

/** All identifier tokens of a line with their start columns. */
std::vector<std::pair<size_t, std::string>>
identifiers(const std::string &line)
{
    std::vector<std::pair<size_t, std::string>> out;
    size_t i = 0;
    while (i < line.size()) {
        if (isIdentChar(line[i]) &&
            !std::isdigit(static_cast<unsigned char>(line[i]))) {
            size_t start = i;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            out.emplace_back(start, line.substr(start, i - start));
        } else {
            ++i;
        }
    }
    return out;
}

/** True when the identifier at col is directly called: next
 *  non-space char after it is '('. */
bool
isCall(const std::string &line, size_t col, size_t len)
{
    size_t i = col + len;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
        ++i;
    return i < line.size() && line[i] == '(';
}

/** True when the identifier is a member/namespace access other than
 *  std:: (e.g. `foo.time(`, `q->time(`, `sim::time(`). */
bool
isQualifiedNonStd(const std::string &line, size_t col)
{
    size_t i = col;
    while (i > 0 && (line[i - 1] == ' ' || line[i - 1] == '\t'))
        --i;
    if (i == 0)
        return false;
    if (line[i - 1] == '.')
        return true;
    if (i >= 2 && line[i - 2] == '-' && line[i - 1] == '>')
        return true;
    if (i >= 2 && line[i - 2] == ':' && line[i - 1] == ':') {
        // Qualified: allowed only when the qualifier is std.
        size_t q = i - 2;
        while (q > 0 && isIdentChar(line[q - 1]))
            --q;
        return line.compare(q, (i - 2) - q, "std") != 0;
    }
    return false;
}

bool
isFloatLiteral(const std::string &tok)
{
    if (tok.empty())
        return false;
    bool digit = false, dot = false, expo = false;
    size_t i = 0;
    for (; i < tok.size(); ++i) {
        char c = tok[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit = true;
        } else if (c == '.' && !dot && !expo) {
            dot = true;
        } else if ((c == 'e' || c == 'E') && digit && !expo) {
            expo = true;
            if (i + 1 < tok.size() &&
                (tok[i + 1] == '+' || tok[i + 1] == '-'))
                ++i;
        } else if ((c == 'f' || c == 'F') && i + 1 == tok.size()) {
            // trailing float suffix
        } else {
            return false;
        }
    }
    return digit && (dot || expo);
}

/** Operand token adjacent to position i, scanning left or right. */
std::string
operandToken(const std::string &line, size_t i, int dir)
{
    if (dir < 0) {
        size_t p = i;
        while (p > 0 && (line[p - 1] == ' ' || line[p - 1] == '\t'))
            --p;
        size_t end = p;
        while (p > 0 && (isIdentChar(line[p - 1]) || line[p - 1] == '.'))
            --p;
        return line.substr(p, end - p);
    }
    size_t p = i;
    while (p < line.size() && (line[p] == ' ' || line[p] == '\t'))
        ++p;
    size_t start = p;
    if (p < line.size() && (line[p] == '-' || line[p] == '+')) {
        // Unary sign on a literal ("x == -1.0"); drop it so the
        // remainder still matches the float-literal pattern.
        ++p;
        ++start;
    }
    while (p < line.size() && (isIdentChar(line[p]) || line[p] == '.'))
        ++p;
    return line.substr(start, p - start);
}

// -------------------------------------------------------------------
// Rules
// -------------------------------------------------------------------

void
ruleRngAndClock(const FileText &f, std::vector<Finding> &out)
{
    if (onRngAllowlist(f.path))
        return;
    for (size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        for (const auto &[col, id] : identifiers(line)) {
            if (id == "random_device" || id == "srand") {
                out.push_back({f.path, li + 1, "unseeded-rng",
                               "'" + id +
                                   "' reads global entropy/state; "
                                   "seed a stats::Rng instead"});
            } else if (id == "rand" && isCall(line, col, id.size()) &&
                       !isQualifiedNonStd(line, col)) {
                out.push_back({f.path, li + 1, "unseeded-rng",
                               "'rand()' uses hidden global state; "
                               "seed a stats::Rng instead"});
            } else if (id == "mt19937" || id == "mt19937_64") {
                out.push_back({f.path, li + 1, "raw-mt19937",
                               "raw std::" + id +
                                   " outside src/stats/rng.*; route "
                                   "seeding through stats::Rng"});
            } else if (id == "system_clock" || id == "gettimeofday" ||
                       id == "clock_gettime") {
                out.push_back({f.path, li + 1, "wallclock",
                               "'" + id +
                                   "' reads host wall-clock time; "
                                   "simulated time comes from the "
                                   "event queue, host timing from "
                                   "stats/timing.hh"});
            } else if ((id == "time" || id == "clock") &&
                       isCall(line, col, id.size()) &&
                       !isQualifiedNonStd(line, col)) {
                out.push_back({f.path, li + 1, "wallclock",
                               "'" + id +
                                   "()' reads the host clock; use "
                                   "the event queue / "
                                   "stats/timing.hh"});
            }
        }
    }
}

/**
 * Collect names declared with an unordered container type in this
 * file (and, for a foo.cc, in a sibling foo.hh so member iteration in
 * the implementation file is still seen).
 */
std::set<std::string>
unorderedNames(const FileText &f)
{
    std::set<std::string> names;
    auto harvest = [&names](const std::vector<std::string> &lines) {
        for (const std::string &line : lines) {
            for (const char *type :
                 {"unordered_map", "unordered_set",
                  "unordered_multimap", "unordered_multiset"}) {
                size_t at = 0;
                while ((at = line.find(type, at)) != std::string::npos) {
                    size_t p = at + std::strlen(type);
                    if (p >= line.size() || line[p] != '<') {
                        at = p;
                        continue;
                    }
                    // Skip the template argument list.
                    int depth = 0;
                    while (p < line.size()) {
                        if (line[p] == '<')
                            ++depth;
                        else if (line[p] == '>' && --depth == 0) {
                            ++p;
                            break;
                        }
                        ++p;
                    }
                    // Optional &, *, whitespace, then the name.
                    while (p < line.size() &&
                           (line[p] == ' ' || line[p] == '&' ||
                            line[p] == '*'))
                        ++p;
                    size_t start = p;
                    while (p < line.size() && isIdentChar(line[p]))
                        ++p;
                    if (p > start)
                        names.insert(line.substr(start, p - start));
                    at = p;
                }
            }
        }
    };
    harvest(f.code);
    if (endsWith(f.path, ".cc")) {
        std::string hdr = f.path.substr(0, f.path.size() - 3) + ".hh";
        FileText sibling;
        if (loadFile(hdr, sibling))
            harvest(sibling.code);
    }
    return names;
}

void
ruleUnorderedIter(const FileText &f, std::vector<Finding> &out)
{
    if (!inDecisionDir(f.path))
        return;
    std::set<std::string> names = unorderedNames(f);
    if (names.empty())
        return;
    for (size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        size_t fo = line.find("for");
        if (fo == std::string::npos)
            continue;
        // Range-for: `for (<decl> : <range>)` — take the range side.
        size_t colon = line.find(" : ", fo);
        if (colon == std::string::npos)
            continue;
        std::string range = line.substr(colon + 3);
        for (const auto &[col, id] : identifiers(range)) {
            (void)col;
            if (names.count(id)) {
                out.push_back(
                    {f.path, li + 1, "unordered-iter",
                     "iterating unordered container '" + id +
                         "' on a decision path; hash order leaks "
                         "into placements — use an ordered "
                         "container or sort first"});
                break;
            }
        }
    }
}

void
ruleFloatEq(const FileText &f, std::vector<Finding> &out)
{
    if (!inDecisionDir(f.path))
        return;
    for (size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        for (size_t i = 0; i + 1 < line.size(); ++i) {
            bool eq = line[i] == '=' && line[i + 1] == '=';
            bool ne = line[i] == '!' && line[i + 1] == '=';
            if (!eq && !ne)
                continue;
            char before = i > 0 ? line[i - 1] : '\0';
            char after = i + 2 < line.size() ? line[i + 2] : '\0';
            if (before == '=' || before == '!' || before == '<' ||
                before == '>' || after == '=')
                continue; // ===, <=, >=, != already consumed, etc.
            std::string lhs = operandToken(line, i, -1);
            std::string rhs = operandToken(line, i + 2, +1);
            if (isFloatLiteral(lhs) || isFloatLiteral(rhs)) {
                out.push_back(
                    {f.path, li + 1, "float-eq",
                     std::string(eq ? "'=='" : "'!='") +
                         " against a floating-point literal on a "
                         "decision path; compare with an explicit "
                         "tolerance or restructure"});
                ++i;
            }
        }
    }
}

void
rulePragmaOnce(const FileText &f, std::vector<Finding> &out)
{
    if (!isHeader(f.path))
        return;
    for (size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        if (line.compare(first, 12, "#pragma once") == 0)
            return;
        out.push_back({f.path, li + 1, "pragma-once",
                       "header's first non-comment line must be "
                       "'#pragma once'"});
        return;
    }
    out.push_back({f.path, f.code.empty() ? 1 : f.code.size(),
                   "pragma-once", "header lacks '#pragma once'"});
}

void
ruleIncludeHygiene(const FileText &f, std::vector<Finding> &out)
{
    for (size_t li = 0; li < f.raw.size(); ++li) {
        // Includes live partly inside "quotes", which the code view
        // blanks — use the raw line, but only when it is a directive.
        const std::string &line = f.raw[li];
        size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos ||
            line.compare(first, 8, "#include") != 0)
            continue;
        size_t open = line.find_first_of("\"<", first + 8);
        if (open == std::string::npos)
            continue;
        char closer = line[open] == '"' ? '"' : '>';
        size_t close = line.find(closer, open + 1);
        if (close == std::string::npos)
            continue;
        std::string target = line.substr(open + 1, close - open - 1);
        if (target.find("..") != std::string::npos)
            out.push_back({f.path, li + 1, "include-hygiene",
                           "'..' in include path; include project "
                           "headers root-relative"});
        else if (!target.empty() && target[0] == '/')
            out.push_back({f.path, li + 1, "include-hygiene",
                           "absolute include path"});
    }
}

// -------------------------------------------------------------------
// Driver
// -------------------------------------------------------------------

/** Lint one file; suppressed findings are dropped here. */
std::vector<Finding>
lintFile(const std::string &path)
{
    std::vector<Finding> findings;
    FileText f;
    if (!loadFile(path, f)) {
        findings.push_back({path, 0, "io", "cannot read file"});
        return findings;
    }
    std::vector<Finding> all;
    ruleRngAndClock(f, all);
    ruleUnorderedIter(f, all);
    ruleFloatEq(f, all);
    rulePragmaOnce(f, all);
    ruleIncludeHygiene(f, all);
    for (const Finding &fi : all) {
        auto it = f.allowed.find(fi.line);
        if (it != f.allowed.end() && it->second.count(fi.rule))
            continue;
        findings.push_back(fi);
    }
    std::sort(findings.begin(), findings.end());
    return findings;
}

bool
lintableFile(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

/** Expand files/dirs into the lintable file list, skipping build
 *  output and the self-test fixture. */
std::vector<std::string>
collect(const std::vector<std::string> &paths)
{
    std::vector<std::string> files;
    for (const std::string &p : paths) {
        if (fs::is_directory(p)) {
            for (auto it = fs::recursive_directory_iterator(p);
                 it != fs::recursive_directory_iterator(); ++it) {
                std::string s = it->path().generic_string();
                if (s.find("/build") != std::string::npos ||
                    s.find("fixture/") != std::string::npos ||
                    s.find("/.git") != std::string::npos)
                    continue;
                if (it->is_regular_file() && lintableFile(it->path()))
                    files.push_back(s);
            }
        } else {
            files.push_back(p);
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

/** `// expect(<rule>)` markers in a fixture file (raw text: markers
 *  ride inside comments). */
std::vector<Finding>
expectedFindings(const std::string &path)
{
    std::vector<Finding> expected;
    FileText f;
    if (!loadFile(path, f))
        return expected;
    for (size_t li = 0; li < f.raw.size(); ++li) {
        const std::string &line = f.raw[li];
        size_t at = 0;
        while ((at = line.find("expect(", at)) != std::string::npos) {
            size_t close = line.find(')', at);
            if (close == std::string::npos)
                break;
            expected.push_back({f.path, li + 1,
                                line.substr(at + 7, close - at - 7),
                                ""});
            at = close;
        }
    }
    std::sort(expected.begin(), expected.end());
    return expected;
}

int
selfTest(const std::string &fixture_dir)
{
    std::vector<std::string> files;
    for (auto it = fs::recursive_directory_iterator(fixture_dir);
         it != fs::recursive_directory_iterator(); ++it)
        if (it->is_regular_file() && lintableFile(it->path()))
            files.push_back(it->path().generic_string());
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::fprintf(stderr, "self-test: no fixture files under %s\n",
                     fixture_dir.c_str());
        return 1;
    }

    std::set<std::string> covered;
    size_t mismatches = 0;
    for (const std::string &path : files) {
        std::vector<Finding> got = lintFile(path);
        std::vector<Finding> want = expectedFindings(path);
        for (const Finding &w : want)
            covered.insert(w.rule);
        auto key = [](const Finding &x) {
            return x.file + ":" + std::to_string(x.line) + ":" + x.rule;
        };
        std::set<std::string> got_keys, want_keys;
        for (const Finding &g : got)
            got_keys.insert(key(g));
        for (const Finding &w : want)
            want_keys.insert(key(w));
        for (const std::string &k : want_keys)
            if (!got_keys.count(k)) {
                std::fprintf(stderr,
                             "self-test: MISSING expected finding %s\n",
                             k.c_str());
                ++mismatches;
            }
        for (const std::string &k : got_keys)
            if (!want_keys.count(k)) {
                std::fprintf(stderr,
                             "self-test: UNEXPECTED finding %s\n",
                             k.c_str());
                ++mismatches;
            }
    }
    for (const char *rule : kRuleIds)
        if (!covered.count(rule)) {
            std::fprintf(stderr,
                         "self-test: rule '%s' has no fixture "
                         "violation exercising it\n",
                         rule);
            ++mismatches;
        }
    if (mismatches) {
        std::fprintf(stderr, "self-test FAILED: %zu mismatches\n",
                     mismatches);
        return 1;
    }
    std::printf("quasar-lint self-test: all %zu rules fire and "
                "suppress correctly across %zu fixture files\n",
                std::size(kRuleIds), files.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    bool self_test = false;
    std::string fixture_dir;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--self-test") {
            self_test = true;
        } else if (arg.rfind("--fixture=", 0) == 0) {
            fixture_dir = arg.substr(10);
        } else if (arg == "--list-rules") {
            for (const char *rule : kRuleIds)
                std::printf("%s\n", rule);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: quasar-lint [--self-test "
                        "[--fixture=DIR]] <files-or-dirs...>\n");
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    if (self_test) {
        if (fixture_dir.empty())
            fixture_dir = "tools/quasar-lint/fixture";
        return selfTest(fixture_dir);
    }

    if (paths.empty()) {
        std::fprintf(stderr, "usage: quasar-lint [--self-test] "
                             "<files-or-dirs...>\n");
        return 2;
    }

    std::vector<std::string> files = collect(paths);
    size_t total = 0;
    for (const std::string &file : files) {
        for (const Finding &fi : lintFile(file)) {
            std::printf("%s:%zu: error: [%s] %s\n", fi.file.c_str(),
                        fi.line, fi.rule.c_str(), fi.message.c_str());
            ++total;
        }
    }
    if (total) {
        std::fprintf(stderr,
                     "quasar-lint: %zu finding(s) in %zu files "
                     "(suppress with '// quasar-lint: "
                     "allow(<rule>)' only when the usage is "
                     "genuinely deterministic)\n",
                     total, files.size());
        return 1;
    }
    std::printf("quasar-lint: %zu files clean\n", files.size());
    return 0;
}
