/**
 * @file
 * quasar-lint core: the structure-aware static analyzer behind the
 * CLI in main.cc.
 *
 * Grown from a token-level linter into a lightweight whole-tree
 * analyzer — still no libclang (it must build everywhere the project
 * does, in milliseconds): a preprocessor-stripping tokenizer feeds
 *
 *  - per-file token rules (the original determinism/hygiene set),
 *  - a declaration/scope index of every function definition,
 *  - an #include graph with cycle detection and architecture-layer
 *    ordering, and
 *  - a call-graph-lite reachability pass (edges resolved by
 *    unqualified name, so virtual dispatch and overloads are
 *    over-approximated — the cone can only be too big, never too
 *    small).
 *
 * Three structural rule families ride on those indexes:
 *
 *  - mutation-journaling: every non-const member function of a
 *    journaled class (sim::Server) that writes a placement-relevant
 *    field must call bumpVersion(); the derived mutator list is
 *    cross-checked against src/verify/journaled_mutators.def so the
 *    static layer and the QUASAR_VERIFY runtime death tests can never
 *    silently diverge.
 *  - decision-purity: the float-eq / unordered-iter determinism rules
 *    applied to the call-graph cone reachable from
 *    GreedyScheduler::allocate / refreshIndex / refreshEntryIndexed,
 *    catching helpers pulled onto the decision path from directories
 *    the kDecisionDirs list never covered. (unseeded-rng / wallclock
 *    already apply tree-wide — a strict superset of the cone.)
 *  - layering / include-cycle: the src/ architecture order (common,
 *    interference, stats → linalg, topology, tracegen → sim →
 *    workload → profiling → driver → core, churn → baselines, trace,
 *    verify → bench, tests, examples, tools) enforced edge by edge,
 *    plus file-level include-cycle detection.
 *
 * Everything is exposed as a library so the analyzer's own internals
 * are unit-testable (tools/quasar-lint/test_analyzer.cc) against
 * virtual in-memory file trees.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace quasarlint
{

/** One reported violation. */
struct Finding
{
    std::string file;
    size_t line = 0;
    std::string rule;
    std::string message;

    bool operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        return rule < o.rule;
    }
    bool operator==(const Finding &o) const
    {
        return file == o.file && line == o.line && rule == o.rule;
    }
};

/** Stable rule identifiers, in --list-rules order. */
extern const std::vector<std::string> kRuleIds;

/** One source file split into physical lines, with comments and
 *  string/char literals blanked out (line structure preserved) so the
 *  token rules never fire inside either. */
struct FileText
{
    std::string path;              ///< as given, '/'-separated.
    std::vector<std::string> raw;
    std::vector<std::string> code; ///< comments/strings blanked.
    /** Rules allowed per line (1-based), from
     *  `// quasar-lint: allow(<rule>)` comments. A suppression binds
     *  to exactly one line: the line the comment starts on when code
     *  precedes it, otherwise the first code-bearing position after
     *  the comment ends. */
    std::map<size_t, std::set<std::string>> allowed;
};

/** Parse in-memory text into a FileText (unit tests, string trees). */
void loadFromString(const std::string &path, const std::string &text,
                    FileText &out);
/** Load from disk; false when unreadable. */
bool loadFile(const std::string &path, FileText &out);

/** One function definition found by the declaration/scope scanner. */
struct FunctionDef
{
    std::string cls;  ///< enclosing or explicit class ("" for free).
    std::string name; ///< unqualified name.
    std::string file;
    size_t line = 0; ///< 1-based line of the name token.
    /** Body extent: from just after '{' to just before its match. */
    size_t body_begin_line = 0, body_end_line = 0;
    size_t body_begin_col = 0, body_end_col = 0;
    bool is_const = false;

    std::string qualified() const
    {
        return cls.empty() ? name : cls + "::" + name;
    }
};

/** All function definitions of one analyzed tree. */
struct DeclIndex
{
    std::vector<FunctionDef> functions;
    /** unqualified name → indexes into functions. */
    std::map<std::string, std::vector<size_t>> by_name;
};

/** A resolved quoted-include edge. */
struct IncludeEdge
{
    std::string to;  ///< resolved path of the included file.
    size_t line = 0; ///< 1-based line of the directive.
};

/** Resolved #include graph over the analyzed file set. */
struct IncludeGraph
{
    std::map<std::string, std::vector<IncludeEdge>> edges;
};

/** Entry of a findings baseline: legacy findings are tracked by
 *  (file, rule, source-line excerpt) — not line number, so unrelated
 *  edits don't churn the file — with a count for duplicates. */
struct BaselineEntry
{
    std::string file;
    std::string rule;
    std::string excerpt;
    int count = 0;
};

/**
 * Whole-tree analyzer. Fill in the inputs, call run(); the index
 * accessors are valid afterwards.
 */
class Analyzer
{
  public:
    /** Lintable source files ('/'-separated paths). */
    std::vector<std::string> paths;
    /** Mutator-list .def files (journaled_mutators.def). When empty,
     *  the def cross-check is skipped. */
    std::vector<std::string> def_paths;
    /** When non-empty, files load from this map instead of disk
     *  (unit tests run the analyzer over virtual trees). */
    std::map<std::string, std::string> virtual_files;

    /** Run every rule; findings are suppression-filtered + sorted. */
    std::vector<Finding> run();

    /** Indexes built by run() (empty before). */
    const DeclIndex &decls() const { return decls_; }
    const IncludeGraph &includeGraph() const { return include_graph_; }
    /** Qualified names of the decision cone (see decision-purity). */
    const std::set<std::string> &decisionCone() const { return cone_; }
    /** Journaled-mutator names derived from the class scan, sorted. */
    const std::vector<std::string> &derivedMutators() const
    {
        return derived_mutators_;
    }

    /** Raw line excerpt backing a finding (baseline key; "" when the
     *  file or line is unknown). */
    std::string excerptOf(const Finding &f);

  private:
    const FileText *text(const std::string &path);
    bool readRaw(const std::string &path, std::string &out) const;
    void buildDeclIndex();
    void buildIncludeGraph();
    void buildCallGraph();
    void ruleLayering(std::vector<Finding> &out);
    void ruleIncludeCycles(std::vector<Finding> &out);
    void ruleMutationJournaling(std::vector<Finding> &out);
    void ruleDecisionPurity(std::vector<Finding> &out);

    std::map<std::string, FileText> cache_;
    DeclIndex decls_;
    IncludeGraph include_graph_;
    /** function index → callee names (call-graph-lite). */
    std::vector<std::set<std::string>> callees_;
    std::set<std::string> cone_;
    std::vector<std::string> derived_mutators_;
};

/** Lint one file with the per-file token rules only (no structural
 *  passes); suppressed findings are dropped. */
std::vector<Finding> lintFile(const std::string &path);

/** Expand files/dirs into (lintable sources, mutator .def files),
 *  skipping build output, .git, and the self-test fixture. */
void collectInputs(const std::vector<std::string> &roots,
                   std::vector<std::string> &sources,
                   std::vector<std::string> &defs);

/** Fixture self-test: every expect(<rule>) marker must be matched by
 *  exactly one finding, every rule must be exercised, zero over-fires
 *  tree-wide. Returns a process exit status. */
int selfTest(const std::string &fixture_dir);

/** @name Baseline + JSON I/O */
/// @{
std::string findingsToJson(std::vector<Finding> &findings,
                           Analyzer &analyzer);
bool writeBaseline(const std::string &path,
                   std::vector<Finding> &findings, Analyzer &analyzer);
/** False on malformed file; error receives a description. */
bool loadBaseline(const std::string &path,
                  std::vector<BaselineEntry> &entries,
                  std::string &error);
/**
 * Split findings against a baseline: `fresh` receives findings not
 * covered by the baseline (new violations), `stale` receives baseline
 * entries that no longer fire (the baseline is shrink-only, so stale
 * entries are an error too). Covered findings are dropped.
 */
void applyBaseline(const std::vector<Finding> &findings,
                   const std::vector<BaselineEntry> &entries,
                   Analyzer &analyzer, std::vector<Finding> &fresh,
                   std::vector<BaselineEntry> &stale);
/// @}

} // namespace quasarlint
