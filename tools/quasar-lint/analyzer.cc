/**
 * @file
 * quasar-lint core, part 1: file loading (comment/literal blanking and
 * suppression binding), the original per-file token rules, input
 * collection, the fixture self-test, and JSON/baseline I/O. The
 * structural passes (declaration index, include graph, call graph and
 * the rules built on them) live in structure.cc.
 */

#include "analyzer.hh"
#include "analyzer_internal.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace quasarlint
{

const std::vector<std::string> kRuleIds = {
    "unseeded-rng",   "raw-mt19937",
    "wallclock",      "unordered-iter",
    "float-eq",       "pragma-once",
    "include-hygiene", "mutation-journaling",
    "decision-purity", "layering",
    "include-cycle",
};

namespace detail
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isHeader(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".hpp") ||
           endsWith(path, ".h");
}

bool
lintableFile(const std::string &path)
{
    return endsWith(path, ".cc") || endsWith(path, ".hh") ||
           endsWith(path, ".cpp") || endsWith(path, ".hpp") ||
           endsWith(path, ".h");
}

/** Paths (suffix match, '/'-normalized) exempt from the RNG/clock
 *  rules: the RNG layer itself and the sanctioned timing layer. */
const char *const kRngAllowlist[] = {
    "src/stats/rng.hh",
    "src/stats/rng.cc",
    "src/stats/timing.hh",
};

/** Directories whose code decides placements: iteration order and
 *  float compares there change results, not just style. The fixture
 *  subdir makes the decision-path rules self-testable. */
const char *const kDecisionDirs[] = {
    "src/core/",
    "src/baselines/",
    "src/churn/",
    "src/shard/",
    "src/trace/",
    "src/topology/",
    "fixture/decision/",
};

bool
onRngAllowlist(const std::string &path)
{
    for (const char *suffix : kRngAllowlist)
        if (endsWith(path, suffix))
            return true;
    return false;
}

bool
inDecisionDir(const std::string &path)
{
    for (const char *dir : kDecisionDirs)
        if (path.find(dir) != std::string::npos)
            return true;
    return false;
}

std::vector<std::pair<size_t, std::string>>
identifiers(const std::string &line)
{
    std::vector<std::pair<size_t, std::string>> out;
    size_t i = 0;
    while (i < line.size()) {
        if (isIdentChar(line[i]) &&
            !std::isdigit(static_cast<unsigned char>(line[i]))) {
            size_t start = i;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            out.emplace_back(start, line.substr(start, i - start));
        } else {
            ++i;
        }
    }
    return out;
}

bool
isCall(const std::string &line, size_t col, size_t len)
{
    size_t i = col + len;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
        ++i;
    return i < line.size() && line[i] == '(';
}

bool
isQualifiedNonStd(const std::string &line, size_t col)
{
    size_t i = col;
    while (i > 0 && (line[i - 1] == ' ' || line[i - 1] == '\t'))
        --i;
    if (i == 0)
        return false;
    if (line[i - 1] == '.')
        return true;
    if (i >= 2 && line[i - 2] == '-' && line[i - 1] == '>')
        return true;
    if (i >= 2 && line[i - 2] == ':' && line[i - 1] == ':') {
        // Qualified: allowed only when the qualifier is std.
        size_t q = i - 2;
        while (q > 0 && isIdentChar(line[q - 1]))
            --q;
        return line.compare(q, (i - 2) - q, "std") != 0;
    }
    return false;
}

bool
isFloatLiteral(const std::string &tok)
{
    if (tok.empty())
        return false;
    bool digit = false, dot = false, expo = false;
    size_t i = 0;
    for (; i < tok.size(); ++i) {
        char c = tok[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit = true;
        } else if (c == '.' && !dot && !expo) {
            dot = true;
        } else if ((c == 'e' || c == 'E') && digit && !expo) {
            expo = true;
            if (i + 1 < tok.size() &&
                (tok[i + 1] == '+' || tok[i + 1] == '-'))
                ++i;
        } else if ((c == 'f' || c == 'F') && i + 1 == tok.size()) {
            // trailing float suffix
        } else {
            return false;
        }
    }
    return digit && (dot || expo);
}

std::string
operandToken(const std::string &line, size_t i, int dir)
{
    if (dir < 0) {
        size_t p = i;
        while (p > 0 && (line[p - 1] == ' ' || line[p - 1] == '\t'))
            --p;
        size_t end = p;
        while (p > 0 && (isIdentChar(line[p - 1]) || line[p - 1] == '.'))
            --p;
        return line.substr(p, end - p);
    }
    size_t p = i;
    while (p < line.size() && (line[p] == ' ' || line[p] == '\t'))
        ++p;
    size_t start = p;
    if (p < line.size() && (line[p] == '-' || line[p] == '+')) {
        // Unary sign on a literal ("x == -1.0"); drop it so the
        // remainder still matches the float-literal pattern.
        ++p;
        ++start;
    }
    while (p < line.size() && (isIdentChar(line[p]) || line[p] == '.'))
        ++p;
    return line.substr(start, p - start);
}

void
scanFloatEq(const std::string &line,
            const std::function<void(size_t, bool)> &emit)
{
    for (size_t i = 0; i + 1 < line.size(); ++i) {
        bool eq = line[i] == '=' && line[i + 1] == '=';
        bool ne = line[i] == '!' && line[i + 1] == '=';
        if (!eq && !ne)
            continue;
        char before = i > 0 ? line[i - 1] : '\0';
        char after = i + 2 < line.size() ? line[i + 2] : '\0';
        if (before == '=' || before == '!' || before == '<' ||
            before == '>' || after == '=')
            continue; // ===, <=, >=, != already consumed, etc.
        std::string lhs = operandToken(line, i, -1);
        std::string rhs = operandToken(line, i + 2, +1);
        if (isFloatLiteral(lhs) || isFloatLiteral(rhs)) {
            emit(i, eq);
            ++i;
        }
    }
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
preprocessorStripped(const FileText &f)
{
    std::vector<std::string> pp;
    pp.reserve(f.code.size());
    bool continued = false;
    for (size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        size_t first = line.find_first_not_of(" \t");
        bool directive =
            continued ||
            (first != std::string::npos && line[first] == '#');
        // Raw view: a directive's backslash continuation extends it.
        const std::string &raw = f.raw[li];
        continued = directive && !raw.empty() && raw.back() == '\\';
        pp.push_back(directive ? std::string(line.size(), ' ') : line);
    }
    return pp;
}

} // namespace detail

using namespace detail;

namespace
{

/** Parse `quasar-lint: allow(a,b)` out of a comment's text. */
std::set<std::string>
parseAllowances(const std::string &comment)
{
    std::set<std::string> rules;
    const std::string key = "quasar-lint:";
    size_t k = comment.find(key);
    if (k == std::string::npos)
        return rules;
    size_t open = comment.find("allow(", k);
    if (open == std::string::npos)
        return rules;
    size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return rules;
    std::string list = comment.substr(open + 6, close - open - 6);
    std::string cur;
    for (char c : list + ",") {
        if (c == ',') {
            if (!cur.empty())
                rules.insert(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    return rules;
}

} // namespace

void
loadFromString(const std::string &path, const std::string &text,
               FileText &out)
{
    out.path = path;
    std::replace(out.path.begin(), out.path.end(), '\\', '/');
    out.raw.clear();
    out.code.clear();
    out.allowed.clear();

    // Split into lines (keep an implicit final line).
    std::string line;
    for (char c : text) {
        if (c == '\n') {
            out.raw.push_back(line);
            line.clear();
        } else if (c != '\r') {
            line += c;
        }
    }
    if (!line.empty())
        out.raw.push_back(line);

    // Blank comments and literals in one pass over the raw text,
    // tracking multi-line constructs across lines. A suppression
    // comment binds to EXACTLY one line: the line it starts on when
    // code precedes it on that line (trailing form), otherwise the
    // line right after the comment ends (standalone form, with a
    // code-bearing tail after a `*/` counting as "after").
    enum class St
    {
        Code,
        BlockComment,
        Str,
        Chr
    } st = St::Code;
    std::string comment_text;   // accumulates the current block comment.
    size_t comment_line = 0;    // 1-based start line of that comment.
    bool comment_trailing = false; // code preceded it on its line.
    out.code.reserve(out.raw.size());
    for (size_t li = 0; li < out.raw.size(); ++li) {
        const std::string &src = out.raw[li];
        std::string dst(src.size(), ' ');
        for (size_t i = 0; i < src.size(); ++i) {
            char c = src[i];
            char next = i + 1 < src.size() ? src[i + 1] : '\0';
            switch (st) {
            case St::Code:
                if (c == '/' && next == '/') {
                    // Line comments never span lines: bind here.
                    bool trailing =
                        dst.find_first_not_of(' ') != std::string::npos;
                    for (const std::string &rule :
                         parseAllowances(src.substr(i)))
                        out.allowed[trailing ? li + 1 : li + 2].insert(
                            rule);
                    i = src.size();
                } else if (c == '/' && next == '*') {
                    st = St::BlockComment;
                    comment_text.clear();
                    comment_line = li + 1;
                    comment_trailing =
                        dst.find_first_not_of(' ') != std::string::npos;
                    ++i;
                } else if (c == '"') {
                    st = St::Str;
                    dst[i] = '"';
                } else if (c == '\'') {
                    st = St::Chr;
                    dst[i] = '\'';
                } else {
                    dst[i] = c;
                }
                break;
            case St::BlockComment:
                comment_text += c;
                if (c == '*' && next == '/') {
                    st = St::Code;
                    ++i;
                    std::set<std::string> rules =
                        parseAllowances(comment_text);
                    if (!rules.empty()) {
                        bool code_after =
                            src.find_first_not_of(" \t", i + 1) !=
                            std::string::npos;
                        size_t target = comment_trailing ? comment_line
                                        : code_after    ? li + 1
                                                        : li + 2;
                        out.allowed[target].insert(rules.begin(),
                                                   rules.end());
                    }
                    comment_text.clear();
                }
                break;
            case St::Str:
                if (c == '\\')
                    ++i;
                else if (c == '"') {
                    st = St::Code;
                    dst[i] = '"';
                }
                break;
            case St::Chr:
                if (c == '\\')
                    ++i;
                else if (c == '\'') {
                    st = St::Code;
                    dst[i] = '\'';
                }
                break;
            }
        }
        if (st == St::BlockComment)
            comment_text += '\n';
        out.code.push_back(dst);
    }
}

bool
loadFile(const std::string &path, FileText &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    loadFromString(path, ss.str(), out);
    return true;
}

// -------------------------------------------------------------------
// Per-file token rules
// -------------------------------------------------------------------

namespace detail
{

void
ruleRngAndClock(const FileText &f, std::vector<Finding> &out)
{
    if (onRngAllowlist(f.path))
        return;
    for (size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        for (const auto &[col, id] : identifiers(line)) {
            if (id == "random_device" || id == "srand") {
                out.push_back({f.path, li + 1, "unseeded-rng",
                               "'" + id +
                                   "' reads global entropy/state; "
                                   "seed a stats::Rng instead"});
            } else if (id == "rand" && isCall(line, col, id.size()) &&
                       !isQualifiedNonStd(line, col)) {
                out.push_back({f.path, li + 1, "unseeded-rng",
                               "'rand()' uses hidden global state; "
                               "seed a stats::Rng instead"});
            } else if (id == "mt19937" || id == "mt19937_64") {
                out.push_back({f.path, li + 1, "raw-mt19937",
                               "raw std::" + id +
                                   " outside src/stats/rng.*; route "
                                   "seeding through stats::Rng"});
            } else if (id == "system_clock" || id == "gettimeofday" ||
                       id == "clock_gettime") {
                out.push_back({f.path, li + 1, "wallclock",
                               "'" + id +
                                   "' reads host wall-clock time; "
                                   "simulated time comes from the "
                                   "event queue, host timing from "
                                   "stats/timing.hh"});
            } else if ((id == "time" || id == "clock") &&
                       isCall(line, col, id.size()) &&
                       !isQualifiedNonStd(line, col)) {
                out.push_back({f.path, li + 1, "wallclock",
                               "'" + id +
                                   "()' reads the host clock; use "
                                   "the event queue / "
                                   "stats/timing.hh"});
            }
        }
    }
}

std::set<std::string>
unorderedNames(const FileText &f, const FileText *sibling)
{
    std::set<std::string> names;
    auto harvest = [&names](const std::vector<std::string> &lines) {
        for (const std::string &line : lines) {
            for (const char *type :
                 {"unordered_map", "unordered_set",
                  "unordered_multimap", "unordered_multiset"}) {
                size_t at = 0;
                while ((at = line.find(type, at)) != std::string::npos) {
                    size_t p = at + std::strlen(type);
                    if (p >= line.size() || line[p] != '<') {
                        at = p;
                        continue;
                    }
                    // Skip the template argument list.
                    int depth = 0;
                    while (p < line.size()) {
                        if (line[p] == '<')
                            ++depth;
                        else if (line[p] == '>' && --depth == 0) {
                            ++p;
                            break;
                        }
                        ++p;
                    }
                    // Optional &, *, whitespace, then the name.
                    while (p < line.size() &&
                           (line[p] == ' ' || line[p] == '&' ||
                            line[p] == '*'))
                        ++p;
                    size_t start = p;
                    while (p < line.size() && isIdentChar(line[p]))
                        ++p;
                    if (p > start)
                        names.insert(line.substr(start, p - start));
                    at = p;
                }
            }
        }
    };
    harvest(f.code);
    if (sibling)
        harvest(sibling->code);
    return names;
}

bool
lineIteratesUnordered(const std::string &line,
                      const std::set<std::string> &names,
                      std::string *which)
{
    size_t fo = line.find("for");
    if (fo == std::string::npos)
        return false;
    // Range-for: `for (<decl> : <range>)` — take the range side.
    size_t colon = line.find(" : ", fo);
    if (colon == std::string::npos)
        return false;
    std::string range = line.substr(colon + 3);
    for (const auto &[col, id] : identifiers(range)) {
        (void)col;
        if (names.count(id)) {
            *which = id;
            return true;
        }
    }
    return false;
}

void
ruleUnorderedIter(const FileText &f, const FileText *sibling,
                  std::vector<Finding> &out)
{
    if (!inDecisionDir(f.path))
        return;
    std::set<std::string> names = unorderedNames(f, sibling);
    if (names.empty())
        return;
    for (size_t li = 0; li < f.code.size(); ++li) {
        std::string which;
        if (lineIteratesUnordered(f.code[li], names, &which))
            out.push_back(
                {f.path, li + 1, "unordered-iter",
                 "iterating unordered container '" + which +
                     "' on a decision path; hash order leaks "
                     "into placements — use an ordered "
                     "container or sort first"});
    }
}

void
ruleFloatEq(const FileText &f, std::vector<Finding> &out)
{
    if (!inDecisionDir(f.path))
        return;
    for (size_t li = 0; li < f.code.size(); ++li) {
        scanFloatEq(f.code[li], [&](size_t col, bool eq) {
            (void)col;
            out.push_back(
                {f.path, li + 1, "float-eq",
                 std::string(eq ? "'=='" : "'!='") +
                     " against a floating-point literal on a "
                     "decision path; compare with an explicit "
                     "tolerance or restructure"});
        });
    }
}

void
rulePragmaOnce(const FileText &f, std::vector<Finding> &out)
{
    if (!isHeader(f.path))
        return;
    for (size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        if (line.compare(first, 12, "#pragma once") == 0)
            return;
        out.push_back({f.path, li + 1, "pragma-once",
                       "header's first non-comment line must be "
                       "'#pragma once'"});
        return;
    }
    out.push_back({f.path, f.code.empty() ? 1 : f.code.size(),
                   "pragma-once", "header lacks '#pragma once'"});
}

void
ruleIncludeHygiene(const FileText &f, std::vector<Finding> &out)
{
    for (size_t li = 0; li < f.raw.size(); ++li) {
        // Includes live partly inside "quotes", which the code view
        // blanks — use the raw line, but only when it is a directive.
        const std::string &line = f.raw[li];
        size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos ||
            line.compare(first, 8, "#include") != 0)
            continue;
        size_t open = line.find_first_of("\"<", first + 8);
        if (open == std::string::npos)
            continue;
        char closer = line[open] == '"' ? '"' : '>';
        size_t close = line.find(closer, open + 1);
        if (close == std::string::npos)
            continue;
        std::string target = line.substr(open + 1, close - open - 1);
        if (target.find("..") != std::string::npos)
            out.push_back({f.path, li + 1, "include-hygiene",
                           "'..' in include path; include project "
                           "headers root-relative"});
        else if (!target.empty() && target[0] == '/')
            out.push_back({f.path, li + 1, "include-hygiene",
                           "absolute include path"});
    }
}

} // namespace detail

// -------------------------------------------------------------------
// Per-file entry point and input collection
// -------------------------------------------------------------------

std::vector<Finding>
lintFile(const std::string &path)
{
    std::vector<Finding> findings;
    FileText f;
    if (!loadFile(path, f)) {
        findings.push_back({path, 0, "io", "cannot read file"});
        return findings;
    }
    FileText sibling;
    const FileText *sib = nullptr;
    if (endsWith(f.path, ".cc") &&
        loadFile(f.path.substr(0, f.path.size() - 3) + ".hh", sibling))
        sib = &sibling;
    std::vector<Finding> all;
    ruleRngAndClock(f, all);
    ruleUnorderedIter(f, sib, all);
    ruleFloatEq(f, all);
    rulePragmaOnce(f, all);
    ruleIncludeHygiene(f, all);
    for (const Finding &fi : all) {
        auto it = f.allowed.find(fi.line);
        if (it != f.allowed.end() && it->second.count(fi.rule))
            continue;
        findings.push_back(fi);
    }
    std::sort(findings.begin(), findings.end());
    return findings;
}

void
collectInputs(const std::vector<std::string> &roots,
              std::vector<std::string> &sources,
              std::vector<std::string> &defs)
{
    for (const std::string &p : roots) {
        if (fs::is_directory(p)) {
            for (auto it = fs::recursive_directory_iterator(p);
                 it != fs::recursive_directory_iterator(); ++it) {
                std::string s = it->path().generic_string();
                if (s.find("/build") != std::string::npos ||
                    s.find("fixture/") != std::string::npos ||
                    s.find("/.git") != std::string::npos)
                    continue;
                if (!it->is_regular_file())
                    continue;
                if (lintableFile(s))
                    sources.push_back(s);
                else if (endsWith(s, ".def"))
                    defs.push_back(s);
            }
        } else if (endsWith(p, ".def")) {
            defs.push_back(p);
        } else {
            sources.push_back(p);
        }
    }
    std::sort(sources.begin(), sources.end());
    std::sort(defs.begin(), defs.end());
}

// -------------------------------------------------------------------
// Fixture self-test
// -------------------------------------------------------------------

namespace
{

/** `// expect(<rule>)` markers in a fixture file (raw text: markers
 *  ride inside comments). */
std::vector<Finding>
expectedFindings(const std::string &path)
{
    std::vector<Finding> expected;
    FileText f;
    if (!loadFile(path, f))
        return expected;
    for (size_t li = 0; li < f.raw.size(); ++li) {
        const std::string &line = f.raw[li];
        size_t at = 0;
        while ((at = line.find("expect(", at)) != std::string::npos) {
            size_t close = line.find(')', at);
            if (close == std::string::npos)
                break;
            expected.push_back({f.path, li + 1,
                                line.substr(at + 7, close - at - 7),
                                ""});
            at = close;
        }
    }
    std::sort(expected.begin(), expected.end());
    return expected;
}

} // namespace

int
selfTest(const std::string &fixture_dir)
{
    Analyzer analyzer;
    for (auto it = fs::recursive_directory_iterator(fixture_dir);
         it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file())
            continue;
        std::string s = it->path().generic_string();
        if (lintableFile(s))
            analyzer.paths.push_back(s);
        else if (endsWith(s, ".def"))
            analyzer.def_paths.push_back(s);
    }
    std::sort(analyzer.paths.begin(), analyzer.paths.end());
    std::sort(analyzer.def_paths.begin(), analyzer.def_paths.end());
    if (analyzer.paths.empty()) {
        std::fprintf(stderr, "self-test: no fixture files under %s\n",
                     fixture_dir.c_str());
        return 1;
    }

    std::vector<Finding> got = analyzer.run();
    std::vector<Finding> want;
    std::set<std::string> covered;
    std::vector<std::string> all_files = analyzer.paths;
    all_files.insert(all_files.end(), analyzer.def_paths.begin(),
                     analyzer.def_paths.end());
    for (const std::string &path : all_files) {
        for (const Finding &w : expectedFindings(path)) {
            covered.insert(w.rule);
            want.push_back(w);
        }
    }

    auto key = [](const Finding &x) {
        return x.file + ":" + std::to_string(x.line) + ":" + x.rule;
    };
    std::set<std::string> got_keys, want_keys;
    for (const Finding &g : got)
        got_keys.insert(key(g));
    for (const Finding &w : want)
        want_keys.insert(key(w));
    size_t mismatches = 0;
    for (const std::string &k : want_keys)
        if (!got_keys.count(k)) {
            std::fprintf(stderr,
                         "self-test: MISSING expected finding %s\n",
                         k.c_str());
            ++mismatches;
        }
    for (const std::string &k : got_keys)
        if (!want_keys.count(k)) {
            std::fprintf(stderr, "self-test: UNEXPECTED finding %s\n",
                         k.c_str());
            ++mismatches;
        }
    for (const std::string &rule : kRuleIds)
        if (!covered.count(rule)) {
            std::fprintf(stderr,
                         "self-test: rule '%s' has no fixture "
                         "violation exercising it\n",
                         rule.c_str());
            ++mismatches;
        }
    if (mismatches) {
        std::fprintf(stderr, "self-test FAILED: %zu mismatches\n",
                     mismatches);
        return 1;
    }
    std::printf("quasar-lint self-test: all %zu rules fire and "
                "suppress correctly across %zu fixture files\n",
                kRuleIds.size(), all_files.size());
    return 0;
}

// -------------------------------------------------------------------
// JSON + baseline I/O
// -------------------------------------------------------------------

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Minimal JSON reader for the baseline format only: an array of flat
 * objects with string/integer values. Not a general JSON parser.
 */
struct BaselineReader
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    explicit BaselineReader(const std::string &t) : text(t) {}

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }
    bool expect(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c) {
            error = "expected '" + std::string(1, c) + "' at offset " +
                    std::to_string(pos);
            return false;
        }
        ++pos;
        return true;
    }
    bool peek(char c)
    {
        skipWs();
        return pos < text.size() && text[pos] == c;
    }
    bool readString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\' && pos < text.size()) {
                char e = text[pos++];
                if (e == 'n')
                    out += '\n';
                else if (e == 't')
                    out += '\t';
                else
                    out += e; // \" \\ \/ — keep the char itself.
            } else {
                out += c;
            }
        }
        if (pos >= text.size()) {
            error = "unterminated string";
            return false;
        }
        ++pos; // closing quote
        return true;
    }
    bool readInt(int &out)
    {
        skipWs();
        size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-'))
            ++pos;
        if (pos == start) {
            error = "expected integer at offset " + std::to_string(pos);
            return false;
        }
        out = std::atoi(text.substr(start, pos - start).c_str());
        return true;
    }
};

} // namespace

std::string
Analyzer::excerptOf(const Finding &f)
{
    const FileText *ft = text(f.file);
    if (!ft || f.line == 0 || f.line > ft->raw.size())
        return "";
    return trim(ft->raw[f.line - 1]);
}

std::string
findingsToJson(std::vector<Finding> &findings, Analyzer &analyzer)
{
    std::string out = "{\n  \"findings\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"file\": \"" + jsonEscape(f.file) + "\", ";
        out += "\"line\": " + std::to_string(f.line) + ", ";
        out += "\"rule\": \"" + jsonEscape(f.rule) + "\", ";
        out += "\"message\": \"" + jsonEscape(f.message) + "\", ";
        out += "\"excerpt\": \"" +
               jsonEscape(analyzer.excerptOf(f)) + "\"}";
    }
    out += findings.empty() ? "],\n" : "\n  ],\n";
    out += "  \"count\": " + std::to_string(findings.size()) + "\n}\n";
    return out;
}

bool
writeBaseline(const std::string &path, std::vector<Finding> &findings,
              Analyzer &analyzer)
{
    // Aggregate by (file, rule, excerpt): line numbers drift with
    // unrelated edits, source excerpts rarely do.
    std::map<std::string, BaselineEntry> agg;
    for (const Finding &f : findings) {
        std::string excerpt = analyzer.excerptOf(f);
        std::string k = f.file + "\x01" + f.rule + "\x01" + excerpt;
        auto [it, inserted] =
            agg.emplace(k, BaselineEntry{f.file, f.rule, excerpt, 0});
        (void)inserted;
        ++it->second.count;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "[";
    bool first = true;
    for (const auto &[k, e] : agg) {
        (void)k;
        out << (first ? "\n" : ",\n");
        first = false;
        out << "  {\"file\": \"" << jsonEscape(e.file)
            << "\", \"rule\": \"" << jsonEscape(e.rule)
            << "\", \"excerpt\": \"" << jsonEscape(e.excerpt)
            << "\", \"count\": " << e.count << "}";
    }
    out << (agg.empty() ? "]\n" : "\n]\n");
    return out.good();
}

bool
loadBaseline(const std::string &path,
             std::vector<BaselineEntry> &entries, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read " + path;
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    BaselineReader r(text);
    if (!r.expect('[')) {
        error = r.error;
        return false;
    }
    if (r.peek(']'))
        return r.expect(']');
    while (true) {
        if (!r.expect('{')) {
            error = r.error;
            return false;
        }
        BaselineEntry e;
        while (true) {
            std::string field;
            if (!r.readString(field)) {
                error = r.error;
                return false;
            }
            if (!r.expect(':')) {
                error = r.error;
                return false;
            }
            bool ok = true;
            if (field == "file")
                ok = r.readString(e.file);
            else if (field == "rule")
                ok = r.readString(e.rule);
            else if (field == "excerpt")
                ok = r.readString(e.excerpt);
            else if (field == "count")
                ok = r.readInt(e.count);
            else {
                error = "unknown baseline field '" + field + "'";
                return false;
            }
            if (!ok) {
                error = r.error;
                return false;
            }
            if (r.peek(','))
                r.expect(',');
            else
                break;
        }
        if (!r.expect('}')) {
            error = r.error;
            return false;
        }
        if (e.file.empty() || e.rule.empty() || e.count <= 0) {
            error = "baseline entry missing file/rule or count <= 0";
            return false;
        }
        entries.push_back(e);
        if (r.peek(','))
            r.expect(',');
        else
            break;
    }
    if (!r.expect(']')) {
        error = r.error;
        return false;
    }
    return true;
}

void
applyBaseline(const std::vector<Finding> &findings,
              const std::vector<BaselineEntry> &entries,
              Analyzer &analyzer, std::vector<Finding> &fresh,
              std::vector<BaselineEntry> &stale)
{
    std::map<std::string, int> budget;
    for (const BaselineEntry &e : entries)
        budget[e.file + "\x01" + e.rule + "\x01" + e.excerpt] += e.count;
    for (const Finding &f : findings) {
        std::string k =
            f.file + "\x01" + f.rule + "\x01" + analyzer.excerptOf(f);
        auto it = budget.find(k);
        if (it != budget.end() && it->second > 0)
            --it->second;
        else
            fresh.push_back(f);
    }
    for (const BaselineEntry &e : entries) {
        auto it =
            budget.find(e.file + "\x01" + e.rule + "\x01" + e.excerpt);
        if (it != budget.end() && it->second > 0) {
            BaselineEntry s = e;
            s.count = it->second;
            stale.push_back(s);
            it->second = 0; // report each key once.
        }
    }
}

} // namespace quasarlint
