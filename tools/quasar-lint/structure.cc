/**
 * @file
 * quasar-lint core, part 2: the structure-aware passes. A
 * preprocessor-stripping tokenizer feeds a declaration/scope scanner
 * (every function definition with its class, body extent and
 * constness), a resolved #include graph, and a call-graph-lite pass
 * whose edges are resolved by unqualified name — virtual dispatch and
 * overloads fan out to every project definition of that name, so the
 * reachability cone over-approximates and never under-approximates.
 *
 * The three structural rule families (mutation-journaling,
 * decision-purity, layering/include-cycle) and Analyzer::run() live
 * here; the per-file token rules and I/O live in analyzer.cc.
 */

#include "analyzer.hh"
#include "analyzer_internal.hh"

#include <algorithm>
#include <cctype>
#include <iterator>

namespace quasarlint
{

using namespace detail;

namespace
{

// -------------------------------------------------------------------
// Tokenizer + scope scanner
// -------------------------------------------------------------------

struct Tok
{
    std::string s;
    size_t line = 0; ///< 1-based.
    size_t col = 0;
};

std::vector<Tok>
tokenize(const std::vector<std::string> &lines)
{
    std::vector<Tok> out;
    for (size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        size_t i = 0;
        while (i < line.size()) {
            char c = line[i];
            if (c == ' ' || c == '\t') {
                ++i;
            } else if (isIdentChar(c) &&
                       !std::isdigit(static_cast<unsigned char>(c))) {
                size_t start = i;
                while (i < line.size() && isIdentChar(line[i]))
                    ++i;
                out.push_back(
                    {line.substr(start, i - start), li + 1, start});
            } else if (std::isdigit(static_cast<unsigned char>(c))) {
                // Numbers (incl. 1e-9, 0x1f, 2.5f) as single tokens.
                size_t start = i;
                while (i < line.size() &&
                       (isIdentChar(line[i]) || line[i] == '.' ||
                        ((line[i] == '+' || line[i] == '-') && i > start &&
                         (line[i - 1] == 'e' || line[i - 1] == 'E'))))
                    ++i;
                out.push_back(
                    {line.substr(start, i - start), li + 1, start});
            } else if (c == ':' && i + 1 < line.size() &&
                       line[i + 1] == ':') {
                out.push_back({"::", li + 1, i});
                i += 2;
            } else {
                out.push_back({std::string(1, c), li + 1, i});
                ++i;
            }
        }
    }
    return out;
}

bool
isIdentTok(const std::string &s)
{
    return !s.empty() && isIdentChar(s[0]) &&
           !std::isdigit(static_cast<unsigned char>(s[0]));
}

/** Scope kinds the scanner tracks while walking brace structure. */
enum class ScopeKind
{
    Namespace,
    Class,
    Function,
    Block
};

struct Scope
{
    ScopeKind kind = ScopeKind::Block;
    std::string name;
    size_t func = size_t(-1); ///< DeclIndex slot when Function.
};

const char *const kControlKeywords[] = {"if",     "for",   "while",
                                        "switch", "catch", "return"};

bool
isControlKeyword(const std::string &s)
{
    for (const char *k : kControlKeywords)
        if (s == k)
            return true;
    return false;
}

bool
isClassKeyword(const std::string &s)
{
    return s == "class" || s == "struct" || s == "union" || s == "enum";
}

/**
 * Classify the scope a '{' opens from the statement tokens before it.
 * Returns the scope to push; function definitions are appended to
 * `out` (body extent is completed when the matching '}' pops).
 */
Scope
classifyBrace(const std::vector<Tok> &stmt,
              const std::vector<Scope> &scopes, const std::string &file,
              DeclIndex &out)
{
    Scope sc;
    for (const Tok &t : stmt)
        if (t.s == "namespace") {
            sc.kind = ScopeKind::Namespace;
            for (const Tok &n : stmt)
                if (isIdentTok(n.s) && n.s != "namespace" &&
                    n.s != "inline")
                    sc.name = n.s;
            return sc;
        }

    size_t paren_i = size_t(-1), eq_i = size_t(-1);
    for (size_t i = 0; i < stmt.size(); ++i) {
        if (stmt[i].s == "(" && paren_i == size_t(-1))
            paren_i = i;
        if (stmt[i].s == "=" && eq_i == size_t(-1))
            eq_i = i;
    }
    // `Foo x = ...{` / `auto f = [](...){` — an initializer, not a
    // definition.
    if (eq_i != size_t(-1) &&
        (paren_i == size_t(-1) || eq_i < paren_i))
        return sc;

    if (paren_i != size_t(-1)) {
        if (paren_i == 0)
            return sc;
        const Tok &name_tok = stmt[paren_i - 1];
        if (!isIdentTok(name_tok.s) || isControlKeyword(name_tok.s))
            return sc;
        FunctionDef fd;
        fd.name = name_tok.s;
        fd.file = file;
        fd.line = name_tok.line;
        if (paren_i >= 3 && stmt[paren_i - 2].s == "::" &&
            isIdentTok(stmt[paren_i - 3].s)) {
            fd.cls = stmt[paren_i - 3].s;
        } else {
            for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
                if (it->kind == ScopeKind::Class) {
                    fd.cls = it->name;
                    break;
                }
        }
        size_t last_close = size_t(-1);
        for (size_t i = 0; i < stmt.size(); ++i)
            if (stmt[i].s == ")")
                last_close = i;
        if (last_close != size_t(-1))
            for (size_t i = last_close + 1; i < stmt.size(); ++i)
                if (stmt[i].s == "const")
                    fd.is_const = true;
        sc.kind = ScopeKind::Function;
        sc.name = fd.name;
        sc.func = out.functions.size();
        out.functions.push_back(fd);
        return sc;
    }

    size_t kw = size_t(-1);
    for (size_t i = 0; i < stmt.size(); ++i)
        if (isClassKeyword(stmt[i].s))
            kw = i;
    if (kw != size_t(-1)) {
        sc.kind = ScopeKind::Class;
        for (size_t i = kw + 1; i < stmt.size(); ++i)
            if (isIdentTok(stmt[i].s) && !isClassKeyword(stmt[i].s) &&
                stmt[i].s != "final" && stmt[i].s != "public" &&
                stmt[i].s != "private" && stmt[i].s != "protected") {
                sc.name = stmt[i].s;
                break;
            }
        return sc;
    }
    return sc;
}

void
scanDecls(const std::string &file, const std::vector<std::string> &pp,
          DeclIndex &out)
{
    std::vector<Tok> tokens = tokenize(pp);
    std::vector<Scope> scopes;
    std::vector<Tok> stmt;
    int paren = 0;
    size_t last_line = pp.empty() ? 1 : pp.size();

    for (const Tok &t : tokens) {
        if (t.s == "(") {
            ++paren;
            stmt.push_back(t);
        } else if (t.s == ")") {
            if (paren > 0)
                --paren;
            stmt.push_back(t);
        } else if (t.s == ";") {
            if (paren == 0)
                stmt.clear();
        } else if (t.s == "{") {
            Scope sc;
            if (paren == 0)
                sc = classifyBrace(stmt, scopes, file, out);
            if (sc.kind == ScopeKind::Function) {
                out.functions[sc.func].body_begin_line = t.line;
                out.functions[sc.func].body_begin_col = t.col + 1;
            }
            scopes.push_back(sc);
            stmt.clear();
        } else if (t.s == "}") {
            if (!scopes.empty()) {
                Scope sc = scopes.back();
                scopes.pop_back();
                if (sc.kind == ScopeKind::Function &&
                    sc.func != size_t(-1)) {
                    out.functions[sc.func].body_end_line = t.line;
                    out.functions[sc.func].body_end_col = t.col;
                }
            }
            stmt.clear();
        } else {
            stmt.push_back(t);
        }
    }
    // Unbalanced braces (scanner confusion): close any dangling
    // function bodies at EOF so ranges stay usable.
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
        if (it->kind == ScopeKind::Function && it->func != size_t(-1) &&
            out.functions[it->func].body_end_line == 0) {
            out.functions[it->func].body_end_line = last_line;
            out.functions[it->func].body_end_col =
                pp.empty() ? 0 : pp.back().size();
        }
}

/**
 * Visit the body lines of `fd` in `view` with out-of-body columns
 * blanked (columns preserved so finding lines/suppressions align).
 */
void
forBodyLines(const FunctionDef &fd, const std::vector<std::string> &view,
             const std::function<void(size_t, const std::string &)> &fn)
{
    if (fd.body_begin_line == 0 || fd.body_end_line == 0)
        return;
    for (size_t ln = fd.body_begin_line;
         ln <= fd.body_end_line && ln - 1 < view.size(); ++ln) {
        std::string line = view[ln - 1];
        if (ln == fd.body_end_line && fd.body_end_col < line.size())
            line.resize(fd.body_end_col);
        if (ln == fd.body_begin_line)
            for (size_t c = 0; c < fd.body_begin_col && c < line.size();
                 ++c)
                line[c] = ' ';
        fn(ln, line);
    }
}

// -------------------------------------------------------------------
// Mutation-journaling helpers
// -------------------------------------------------------------------

/** Placement-relevant Server state (see Server::version() contract). */
const char *const kServerFields[] = {"tasks_", "state_", "speed_factor_",
                                     "injected_", "socket_ledger_"};
/** Placement-relevant Cluster state: the machine set itself. */
const char *const kClusterFields[] = {"servers_"};
/** TaskShare fields reached through a share pointer/reference. */
const char *const kShareFields[] = {
    "cores",     "memory_gb",   "storage_gb", "caused",
    "isolation", "socket",      "best_effort", "workload"};
// Exempt on purpose: cores_used — measured usage feeds reporting
// only, never placement (the one sanctioned unbumped write).

/** Member calls that mutate the receiver. */
const char *const kMutatingMethods[] = {
    "push_back", "emplace_back", "pop_back", "erase",
    "clear",     "insert",       "swap",     "resize",
    "assign",    "reset",        "add",      "sub",
    "adjustSource"};

bool
inList(const std::string &s, const char *const *list, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        if (s == list[i])
            return true;
    return false;
}

/** Skip whitespace and balanced [...] groups after a token. */
size_t
skipBrackets(const std::string &line, size_t j)
{
    while (true) {
        while (j < line.size() && (line[j] == ' ' || line[j] == '\t'))
            ++j;
        if (j < line.size() && line[j] == '[') {
            int depth = 0;
            while (j < line.size()) {
                if (line[j] == '[')
                    ++depth;
                else if (line[j] == ']' && --depth == 0) {
                    ++j;
                    break;
                }
                ++j;
            }
        } else {
            return j;
        }
    }
}

/** Is the token at [col, col+len) preceded by `.` or `->`? */
bool
memberAccessPrefix(const std::string &line, size_t col)
{
    size_t i = col;
    while (i > 0 && (line[i - 1] == ' ' || line[i - 1] == '\t'))
        --i;
    if (i > 0 && line[i - 1] == '.')
        return true;
    return i > 1 && line[i - 1] == '>' && line[i - 2] == '-';
}

/** The identifier just before a `.`/`->` prefix ("" when none). */
std::string
accessQualifier(const std::string &line, size_t col)
{
    size_t i = col;
    while (i > 0 && (line[i - 1] == ' ' || line[i - 1] == '\t'))
        --i;
    if (i > 0 && line[i - 1] == '.')
        i -= 1;
    else if (i > 1 && line[i - 1] == '>' && line[i - 2] == '-')
        i -= 2;
    else
        return "";
    size_t end = i;
    while (i > 0 && isIdentChar(line[i - 1]))
        --i;
    return line.substr(i, end - i);
}

/**
 * True when the token at [col, col+len) sits in a write context:
 * assignment / compound assignment / ++ / -- / a mutating member
 * call. `how` receives a short description.
 */
bool
isWriteAt(const std::string &line, size_t col, size_t len,
          std::string *how)
{
    if (col >= 2 && ((line[col - 1] == '+' && line[col - 2] == '+') ||
                     (line[col - 1] == '-' && line[col - 2] == '-'))) {
        *how = "increment/decrement";
        return true;
    }
    size_t j = skipBrackets(line, col + len);
    if (j >= line.size())
        return false;
    char a = line[j];
    char b = j + 1 < line.size() ? line[j + 1] : '\0';
    if (a == '=' && b != '=') {
        *how = "assignment";
        return true;
    }
    if ((a == '+' || a == '-' || a == '*' || a == '/' || a == '|' ||
         a == '&' || a == '^') &&
        b == '=' && !(a == '-' && b == '>')) {
        *how = "compound assignment";
        return true;
    }
    if ((a == '+' && b == '+') || (a == '-' && b == '-')) {
        *how = "increment/decrement";
        return true;
    }
    if (a == '.' || (a == '-' && b == '>')) {
        size_t m = j + (a == '.' ? 1 : 2);
        while (m < line.size() && (line[m] == ' ' || line[m] == '\t'))
            ++m;
        size_t ms = m;
        while (m < line.size() && isIdentChar(line[m]))
            ++m;
        std::string method = line.substr(ms, m - ms);
        if (inList(method, kMutatingMethods,
                   std::size(kMutatingMethods)) &&
            isCall(line, ms, method.size())) {
            *how = "mutating call '" + method + "()'";
            return true;
        }
    }
    return false;
}

/** Any tracked field passed to a swap(...) call on this line. */
bool
fieldSwappedOn(const std::string &line, const char *const *fields,
               size_t nfields, std::string *which)
{
    for (const auto &[col, id] : identifiers(line)) {
        if (id != "swap" || !isCall(line, col, id.size()))
            continue;
        size_t open = line.find('(', col);
        if (open == std::string::npos)
            continue;
        int depth = 0;
        size_t close = open;
        while (close < line.size()) {
            if (line[close] == '(')
                ++depth;
            else if (line[close] == ')' && --depth == 0)
                break;
            ++close;
        }
        std::string args = line.substr(open, close - open);
        for (const auto &[acol, aid] : identifiers(args)) {
            (void)acol;
            if (inList(aid, fields, nfields)) {
                *which = aid;
                return true;
            }
        }
    }
    return false;
}

/**
 * Mutable range-for over a tracked field (`for (T &x : field)` with
 * no const in the declaration) — the body holds a mutable alias into
 * placement-relevant state.
 */
bool
mutableRangeForOver(const std::string &line, const char *const *fields,
                    size_t nfields, std::string *which)
{
    size_t fo = std::string::npos;
    for (const auto &[col, id] : identifiers(line))
        if (id == "for" && isCall(line, col, id.size())) {
            fo = col;
            break;
        }
    if (fo == std::string::npos)
        return false;
    size_t open = line.find('(', fo);
    size_t colon = line.find(" : ", open);
    if (open == std::string::npos || colon == std::string::npos)
        return false;
    std::string decl = line.substr(open + 1, colon - open - 1);
    if (decl.find('&') == std::string::npos)
        return false;
    for (const auto &[dcol, did] : identifiers(decl)) {
        (void)dcol;
        if (did == "const")
            return false;
    }
    size_t close = line.find(')', colon);
    std::string range = line.substr(
        colon + 3, close == std::string::npos ? std::string::npos
                                              : close - colon - 3);
    for (const auto &[rcol, rid] : identifiers(range)) {
        (void)rcol;
        if (inList(rid, fields, nfields)) {
            *which = rid;
            return true;
        }
    }
    return false;
}

/** Files where the journaled classes (Server/Cluster) live. */
bool
journaledScope(const std::string &path)
{
    return path.find("src/sim/") != std::string::npos ||
           path.find("fixture/") != std::string::npos;
}

/** Entry points of the scheduler decision cone. The sharded path's
 *  front door is listed alongside the classic scheduler's so the
 *  per-shard worker phases (merge feeds, Omega proposals) sit inside
 *  the purity cone even in builds where nothing else reaches them. */
const char *const kConeEntries[] = {
    "GreedyScheduler::allocate",
    "GreedyScheduler::refreshIndex",
    "GreedyScheduler::refreshEntryIndexed",
    "ShardedScheduler::allocate",
};

} // namespace

// -------------------------------------------------------------------
// Analyzer: indexes
// -------------------------------------------------------------------

const FileText *
Analyzer::text(const std::string &path)
{
    auto it = cache_.find(path);
    if (it != cache_.end())
        return &it->second;
    FileText ft;
    if (!virtual_files.empty()) {
        auto v = virtual_files.find(path);
        if (v == virtual_files.end())
            return nullptr;
        loadFromString(path, v->second, ft);
    } else if (!loadFile(path, ft)) {
        return nullptr;
    }
    return &(cache_[path] = std::move(ft));
}

void
Analyzer::buildDeclIndex()
{
    decls_ = DeclIndex{};
    for (const std::string &p : paths) {
        const FileText *ft = text(p);
        if (!ft)
            continue;
        scanDecls(ft->path, preprocessorStripped(*ft), decls_);
    }
    for (size_t i = 0; i < decls_.functions.size(); ++i)
        decls_.by_name[decls_.functions[i].name].push_back(i);
}

void
Analyzer::buildIncludeGraph()
{
    include_graph_ = IncludeGraph{};
    for (const std::string &p : paths) {
        const FileText *ft = text(p);
        if (!ft)
            continue;
        for (size_t li = 0; li < ft->raw.size(); ++li) {
            const std::string &line = ft->raw[li];
            size_t first = line.find_first_not_of(" \t");
            if (first == std::string::npos ||
                line.compare(first, 8, "#include") != 0)
                continue;
            size_t open = line.find('"', first + 8);
            if (open == std::string::npos)
                continue; // <system> includes never resolve in-tree.
            size_t close = line.find('"', open + 1);
            if (close == std::string::npos)
                continue;
            std::string target = line.substr(open + 1, close - open - 1);
            // Resolve by suffix over the analyzed set; ties go to the
            // candidate sharing the longest path prefix with the
            // includer (nearest sibling wins).
            std::string best;
            size_t best_score = 0;
            for (const std::string &cand : paths) {
                if (cand != target && !endsWith(cand, "/" + target))
                    continue;
                size_t score = 1;
                while (score - 1 < cand.size() &&
                       score - 1 < ft->path.size() &&
                       cand[score - 1] == ft->path[score - 1])
                    ++score;
                if (score > best_score ||
                    (score == best_score && cand < best)) {
                    best_score = score;
                    best = cand;
                }
            }
            if (!best.empty())
                include_graph_.edges[ft->path].push_back(
                    {best, li + 1});
        }
    }
}

void
Analyzer::buildCallGraph()
{
    callees_.assign(decls_.functions.size(), {});
    cone_.clear();
    std::map<std::string, std::vector<std::string>> pp_cache;
    for (size_t fi = 0; fi < decls_.functions.size(); ++fi) {
        const FunctionDef &fd = decls_.functions[fi];
        auto it = pp_cache.find(fd.file);
        if (it == pp_cache.end()) {
            const FileText *ft = text(fd.file);
            if (!ft)
                continue;
            it = pp_cache.emplace(fd.file, preprocessorStripped(*ft))
                     .first;
        }
        std::set<std::string> &calls = callees_[fi];
        forBodyLines(fd, it->second,
                     [&](size_t ln, const std::string &line) {
                         (void)ln;
                         for (const auto &[col, id] : identifiers(line))
                             if (isCall(line, col, id.size()))
                                 calls.insert(id);
                     });
    }

    // BFS from the scheduler entry points; edges fan out to every
    // definition sharing the callee's unqualified name.
    std::vector<size_t> work;
    std::set<size_t> in_cone;
    for (size_t fi = 0; fi < decls_.functions.size(); ++fi)
        if (inList(decls_.functions[fi].qualified(), kConeEntries,
                   std::size(kConeEntries)))
            if (in_cone.insert(fi).second)
                work.push_back(fi);
    while (!work.empty()) {
        size_t fi = work.back();
        work.pop_back();
        for (const std::string &name : callees_[fi]) {
            auto it = decls_.by_name.find(name);
            if (it == decls_.by_name.end())
                continue;
            for (size_t target : it->second)
                if (in_cone.insert(target).second)
                    work.push_back(target);
        }
    }
    for (size_t fi : in_cone)
        cone_.insert(decls_.functions[fi].qualified());
}

// -------------------------------------------------------------------
// Structural rules
// -------------------------------------------------------------------

namespace
{

/**
 * Architecture layer of a path, by its directory under src/ (or under
 * a fixture's layers/ subtree, which emulates src for the self-test).
 * -1 when the path makes no layering claim.
 */
int
layerRank(const std::string &path, std::string *dir_out)
{
    struct Rank
    {
        const char *dir;
        int rank;
    };
    static const Rank kRanks[] = {
        {"common", 0},    {"interference", 0}, {"stats", 0},
        {"linalg", 1},    {"topology", 1},     {"tracegen", 1},
        {"sim", 2},       {"workload", 3},     {"profiling", 4},
        {"driver", 5},    {"core", 6},         {"churn", 6},
        {"shard", 6},     {"baselines", 7},    {"trace", 7},
        {"verify", 7},
    };
    auto componentAfter = [&path](size_t pos) {
        size_t end = path.find('/', pos);
        return end == std::string::npos
                   ? path.substr(pos)
                   : path.substr(pos, end - pos);
    };
    std::string dir;
    size_t at = path.find("/layers/");
    if (at != std::string::npos) {
        dir = componentAfter(at + 8);
    } else if ((at = path.find("src/")) != std::string::npos &&
               (at == 0 || path[at - 1] == '/')) {
        dir = componentAfter(at + 4);
    } else {
        for (const char *top : {"bench", "tests", "examples", "tools"}) {
            std::string needle = std::string(top) + "/";
            size_t p = path.find(needle);
            if (p != std::string::npos &&
                (p == 0 || path[p - 1] == '/')) {
                *dir_out = top;
                return 8;
            }
        }
        return -1;
    }
    for (const Rank &r : kRanks)
        if (dir == r.dir) {
            *dir_out = dir;
            return r.rank;
        }
    return -1;
}

const char *const kLayerOrder =
    "common/interference/stats < linalg/topology/tracegen < sim < "
    "workload < profiling < driver < core/churn/shard < "
    "baselines/trace/verify < bench/tests/examples/tools";

} // namespace

void
Analyzer::ruleLayering(std::vector<Finding> &out)
{
    for (const auto &[from, edges] : include_graph_.edges) {
        std::string from_dir;
        int from_rank = layerRank(from, &from_dir);
        if (from_rank < 0)
            continue;
        for (const IncludeEdge &e : edges) {
            std::string to_dir;
            int to_rank = layerRank(e.to, &to_dir);
            if (to_rank < 0 || to_rank <= from_rank)
                continue;
            out.push_back(
                {from, e.line, "layering",
                 "include of '" + e.to + "' (" + to_dir + ", layer " +
                     std::to_string(to_rank) + ") from " + from_dir +
                     " (layer " + std::to_string(from_rank) +
                     ") inverts the architecture order " + kLayerOrder});
        }
    }
}

void
Analyzer::ruleIncludeCycles(std::vector<Finding> &out)
{
    // Tarjan SCC over the resolved include graph; every SCC with more
    // than one file (or a self-include) is a cycle, reported once at
    // its lexicographically-first member.
    std::map<std::string, int> index, low;
    std::map<std::string, bool> onstack;
    std::vector<std::string> stack;
    int counter = 0;
    std::vector<std::vector<std::string>> cycles;

    std::function<void(const std::string &)> connect =
        [&](const std::string &v) {
            index[v] = low[v] = counter++;
            stack.push_back(v);
            onstack[v] = true;
            auto it = include_graph_.edges.find(v);
            if (it != include_graph_.edges.end()) {
                for (const IncludeEdge &e : it->second) {
                    if (!index.count(e.to)) {
                        connect(e.to);
                        low[v] = std::min(low[v], low[e.to]);
                    } else if (onstack[e.to]) {
                        low[v] = std::min(low[v], index[e.to]);
                    }
                }
            }
            if (low[v] == index[v]) {
                std::vector<std::string> scc;
                while (true) {
                    std::string w = stack.back();
                    stack.pop_back();
                    onstack[w] = false;
                    scc.push_back(w);
                    if (w == v)
                        break;
                }
                bool self_loop = false;
                if (scc.size() == 1 &&
                    it != include_graph_.edges.end())
                    for (const IncludeEdge &e : it->second)
                        if (e.to == v)
                            self_loop = true;
                if (scc.size() > 1 || self_loop)
                    cycles.push_back(scc);
            }
        };
    for (const std::string &p : paths)
        if (!index.count(p))
            connect(p);

    for (std::vector<std::string> &scc : cycles) {
        std::sort(scc.begin(), scc.end());
        const std::string &anchor = scc[0];
        size_t line = 1;
        auto it = include_graph_.edges.find(anchor);
        if (it != include_graph_.edges.end())
            for (const IncludeEdge &e : it->second)
                if (std::find(scc.begin(), scc.end(), e.to) !=
                    scc.end()) {
                    line = e.line;
                    break;
                }
        std::string members;
        for (const std::string &m : scc)
            members += (members.empty() ? "" : " <-> ") + m;
        out.push_back({anchor, line, "include-cycle",
                       "#include cycle among: " + members +
                           "; break the cycle with a forward "
                           "declaration or an interface header"});
    }
}

void
Analyzer::ruleMutationJournaling(std::vector<Finding> &out)
{
    derived_mutators_.clear();
    bool saw_journaled_class = false;
    std::map<std::string, std::vector<std::string>> pp_cache;

    for (const FunctionDef &fd : decls_.functions) {
        bool is_server = fd.cls == "Server";
        bool is_cluster = fd.cls == "Cluster";
        if ((!is_server && !is_cluster) || !journaledScope(fd.file))
            continue;
        saw_journaled_class = true;
        // Constructors/destructors run before the journal attaches
        // (version_ starts at 0); const members cannot write.
        if (fd.name == fd.cls || fd.is_const)
            continue;

        auto it = pp_cache.find(fd.file);
        if (it == pp_cache.end()) {
            const FileText *ft = text(fd.file);
            if (!ft)
                continue;
            it = pp_cache.emplace(fd.file, preprocessorStripped(*ft))
                     .first;
        }

        const char *const *direct =
            is_server ? kServerFields : kClusterFields;
        size_t ndirect = is_server ? std::size(kServerFields)
                                   : std::size(kClusterFields);

        size_t write_line = 0;
        std::string write_desc;
        bool bumps = false;
        forBodyLines(
            fd, it->second, [&](size_t ln, const std::string &line) {
                for (const auto &[col, id] : identifiers(line)) {
                    if (id == "bumpVersion" &&
                        isCall(line, col, id.size()))
                        bumps = true;
                    std::string how;
                    bool direct_field =
                        inList(id, direct, ndirect) &&
                        (!memberAccessPrefix(line, col) ||
                         accessQualifier(line, col) == "this");
                    bool share_field =
                        is_server &&
                        inList(id, kShareFields,
                               std::size(kShareFields)) &&
                        memberAccessPrefix(line, col);
                    if ((direct_field || share_field) &&
                        isWriteAt(line, col, id.size(), &how) &&
                        write_line == 0) {
                        write_line = ln;
                        write_desc = how + " of '" + id + "'";
                    }
                }
                std::string which;
                if (write_line == 0 &&
                    (fieldSwappedOn(line, direct, ndirect, &which) ||
                     mutableRangeForOver(line, direct, ndirect,
                                         &which))) {
                    write_line = ln;
                    write_desc = "mutable access to '" + which + "'";
                }
            });

        if (write_line != 0 && !bumps) {
            out.push_back(
                {fd.file, write_line, "mutation-journaling",
                 "'" + fd.qualified() +
                     "' writes placement-relevant state (" +
                     write_desc +
                     ") but calls bumpVersion() on no path; every "
                     "placement-relevant mutation must be journaled "
                     "(DESIGN.md \xC2\xA7" "10)"});
        }
        if (is_server && bumps)
            derived_mutators_.push_back(fd.name);
    }
    std::sort(derived_mutators_.begin(), derived_mutators_.end());
    derived_mutators_.erase(std::unique(derived_mutators_.begin(),
                                        derived_mutators_.end()),
                            derived_mutators_.end());

    // Cross-check against the shared runtime death-test list so the
    // static and QUASAR_VERIFY enforcement layers cannot silently
    // diverge. Skipped when no journaled class was analyzed (partial
    // invocations) or no .def was given.
    if (!saw_journaled_class || def_paths.empty())
        return;
    std::map<std::string, std::pair<std::string, size_t>> listed;
    for (const std::string &dp : def_paths) {
        const FileText *df = text(dp);
        if (!df)
            continue;
        for (size_t li = 0; li < df->code.size(); ++li) {
            const std::string &line = df->code[li];
            size_t at = line.find("QUASAR_JOURNALED_MUTATOR(");
            if (at == std::string::npos)
                continue;
            size_t open = at + 25;
            size_t close = line.find(')', open);
            if (close == std::string::npos)
                continue;
            std::string name =
                trim(line.substr(open, close - open));
            if (!name.empty())
                listed[name] = {df->path, li + 1};
        }
    }
    for (const std::string &m : derived_mutators_) {
        if (listed.count(m))
            continue;
        for (const FunctionDef &fd : decls_.functions)
            if (fd.cls == "Server" && fd.name == m &&
                journaledScope(fd.file)) {
                out.push_back(
                    {fd.file, fd.line, "mutation-journaling",
                     "journaled mutator 'Server::" + m +
                         "' is missing from the shared mutator list "
                         "(journaled_mutators.def); the QUASAR_VERIFY "
                         "death tests no longer cover it"});
                break;
            }
    }
    for (const auto &[name, where] : listed)
        if (std::find(derived_mutators_.begin(),
                      derived_mutators_.end(),
                      name) == derived_mutators_.end())
            out.push_back(
                {where.first, where.second, "mutation-journaling",
                 "stale mutator-list entry '" + name +
                     "': no Server member function of that name "
                     "calls bumpVersion()"});
}

void
Analyzer::ruleDecisionPurity(std::vector<Finding> &out)
{
    std::map<std::string, std::vector<std::string>> pp_cache;
    for (size_t fi = 0; fi < decls_.functions.size(); ++fi) {
        const FunctionDef &fd = decls_.functions[fi];
        if (!cone_.count(fd.qualified()))
            continue;
        const std::string &path = fd.file;
        // Decision dirs already carry the dir-scoped float-eq /
        // unordered-iter rules; the cone adds coverage OUTSIDE them.
        if (inDecisionDir(path))
            continue;
        if (path.find("src/") == std::string::npos &&
            path.find("fixture/") == std::string::npos)
            continue;
        const FileText *ft = text(path);
        if (!ft)
            continue;
        auto it = pp_cache.find(path);
        if (it == pp_cache.end())
            it = pp_cache.emplace(path, preprocessorStripped(*ft))
                     .first;

        const FileText *sib = nullptr;
        if (endsWith(path, ".cc"))
            sib = text(path.substr(0, path.size() - 3) + ".hh");
        std::set<std::string> unordered = unorderedNames(*ft, sib);

        forBodyLines(
            fd, it->second, [&](size_t ln, const std::string &line) {
                scanFloatEq(line, [&](size_t col, bool eq) {
                    (void)col;
                    out.push_back(
                        {path, ln, "decision-purity",
                         std::string(eq ? "'=='" : "'!='") +
                             " against a floating-point literal in '" +
                             fd.qualified() +
                             "', reachable from the scheduler "
                             "decision cone (GreedyScheduler::"
                             "allocate/refreshIndex/"
                             "refreshEntryIndexed); compare with a "
                             "tolerance or restructure"});
                });
                std::string which;
                if (!unordered.empty() &&
                    lineIteratesUnordered(line, unordered, &which))
                    out.push_back(
                        {path, ln, "decision-purity",
                         "iterating unordered container '" + which +
                             "' in '" + fd.qualified() +
                             "', reachable from the scheduler "
                             "decision cone; hash order leaks into "
                             "placements"});
            });
    }
}

// -------------------------------------------------------------------
// Orchestration
// -------------------------------------------------------------------

std::vector<Finding>
Analyzer::run()
{
    std::vector<Finding> all;
    for (const std::string &p : paths) {
        const FileText *ft = text(p);
        if (!ft) {
            all.push_back({p, 0, "io", "cannot read file"});
            continue;
        }
        const FileText *sib = nullptr;
        if (endsWith(ft->path, ".cc"))
            sib = text(ft->path.substr(0, ft->path.size() - 3) + ".hh");
        ruleRngAndClock(*ft, all);
        ruleUnorderedIter(*ft, sib, all);
        ruleFloatEq(*ft, all);
        rulePragmaOnce(*ft, all);
        ruleIncludeHygiene(*ft, all);
    }

    buildDeclIndex();
    buildIncludeGraph();
    buildCallGraph();
    ruleMutationJournaling(all);
    ruleDecisionPurity(all);
    ruleLayering(all);
    ruleIncludeCycles(all);

    std::vector<Finding> out;
    for (const Finding &fi : all) {
        const FileText *ft = text(fi.file);
        if (ft) {
            auto it = ft->allowed.find(fi.line);
            if (it != ft->allowed.end() && it->second.count(fi.rule))
                continue;
        }
        out.push_back(fi);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace quasarlint
