/**
 * @file
 * Internals shared between the analyzer's translation units
 * (analyzer.cc: file loading, token rules, I/O; structure.cc: the
 * declaration index, include graph, call graph, and the structural
 * rule families). Nothing here is part of the public analyzer API.
 */

#pragma once

#include "analyzer.hh"

namespace quasarlint::detail
{

bool endsWith(const std::string &s, const std::string &suffix);
bool isIdentChar(char c);
bool isHeader(const std::string &path);
bool lintableFile(const std::string &path);

/** Paths (suffix match) exempt from the RNG/clock rules. */
bool onRngAllowlist(const std::string &path);
/** Directories whose code decides placements (dir-scoped rules). */
bool inDecisionDir(const std::string &path);

/** All identifier tokens of a line with their start columns. */
std::vector<std::pair<size_t, std::string>>
identifiers(const std::string &line);
/** True when the identifier at col is directly called. */
bool isCall(const std::string &line, size_t col, size_t len);
/** True for member/namespace access other than std::. */
bool isQualifiedNonStd(const std::string &line, size_t col);
bool isFloatLiteral(const std::string &tok);
/** Operand token adjacent to position i, scanning left or right. */
std::string operandToken(const std::string &line, size_t i, int dir);

/**
 * Scan one code line for == / != with a floating-point literal
 * operand; emit(column, is_eq) per hit. Shared by the dir-scoped
 * float-eq rule and the cone-scoped decision-purity rule.
 */
void scanFloatEq(const std::string &line,
                 const std::function<void(size_t, bool)> &emit);

/**
 * Names declared with an unordered container type in `f` (and in the
 * optional sibling header, so member iteration in a .cc is seen).
 */
std::set<std::string> unorderedNames(const FileText &f,
                                     const FileText *sibling);

/**
 * When `line` range-for-iterates one of `names`, return true and set
 * *which to the iterated name.
 */
bool lineIteratesUnordered(const std::string &line,
                           const std::set<std::string> &names,
                           std::string *which);

/** @name Per-file token rules (the original linter set) */
/// @{
void ruleRngAndClock(const FileText &f, std::vector<Finding> &out);
void ruleUnorderedIter(const FileText &f, const FileText *sibling,
                       std::vector<Finding> &out);
void ruleFloatEq(const FileText &f, std::vector<Finding> &out);
void rulePragmaOnce(const FileText &f, std::vector<Finding> &out);
void ruleIncludeHygiene(const FileText &f, std::vector<Finding> &out);
/// @}

/** Leading/trailing-whitespace trim (baseline excerpt keys). */
std::string trim(const std::string &s);

/**
 * The preprocessor-stripped view of a file: the blanked `code` lines
 * with every directive line (and its backslash continuations) also
 * blanked, so the scope scanner and call-graph pass never read macro
 * bodies or conditional-compilation directives as code.
 */
std::vector<std::string> preprocessorStripped(const FileText &f);

} // namespace quasarlint::detail
