/**
 * @file
 * PQ-reconstruction with Stochastic Gradient Descent, the latent-factor
 * model of the paper's Sec. 3.2 (Netflix-challenge style):
 *
 *   eps_ui = r_ui - mu - b_u - q_i . p_u
 *   q_i <- q_i + eta * (eps_ui * p_u - lambda * q_i)
 *   p_u <- p_u + eta * (eps_ui * q_i - lambda * p_u)
 *
 * with global mean mu and per-row (user) bias b_u. Factors are seeded
 * from the SVD of the mean-centered observed matrix (P^T = Sigma V^T,
 * Q = U), then SGD iterates over observed entries until the L2 error
 * becomes marginal.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hh"

namespace quasar::linalg
{

/** Hyperparameters for PQ-reconstruction. */
struct PqConfig
{
    size_t rank = 8;            ///< number of latent factors.
    double learning_rate = 0.05;///< initial eta (decays on plateaus).
    double regularization = 0.03; ///< lambda.
    size_t max_epochs = 300;    ///< SGD epoch limit.
    double tolerance = 1e-6;    ///< stop when epoch RMSE delta is below.
    uint64_t seed = 42;         ///< entry-visit shuffle seed.
    /** Ridge strength (per observation) used when folding in rows. */
    double fold_in_regularization = 0.01;
};

/** Trained latent-factor model over a masked matrix. */
class PqModel
{
  public:
    explicit PqModel(PqConfig cfg = {}) : cfg_(cfg) {}

    /** Fit to the observed entries of a. */
    void fit(const MaskedMatrix &a);

    /** Predicted value at (r, c); valid after fit(). */
    double predict(size_t r, size_t c) const;

    /** Dense reconstruction of the full matrix. */
    Matrix reconstruct() const;

    /**
     * Fold in a new row that was not part of training: with item
     * factors fixed, alternately fit the row bias and ridge-solve the
     * row's latent vector from its observed entries, then predict the
     * full row. This is how the classifier estimates an incoming
     * workload from two profiling samples without refitting the whole
     * model.
     *
     * @param observed (column, value) pairs for the new row.
     * @return predicted value for every column.
     */
    std::vector<double>
    foldInRow(const std::vector<std::pair<size_t, double>> &observed)
        const;

    /** RMSE over observed entries at the end of training. */
    double trainRmse() const { return train_rmse_; }

    /** Number of SGD epochs actually run. */
    size_t epochsRun() const { return epochs_run_; }

    const PqConfig &config() const { return cfg_; }

  private:
    PqConfig cfg_;
    size_t rows_ = 0;
    size_t cols_ = 0;
    double mu_ = 0.0;
    std::vector<double> row_bias_;
    std::vector<double> col_bias_;
    Matrix p_; ///< item (column) factors: cols x rank.
    Matrix q_; ///< user (row) factors: rows x rank.
    double train_rmse_ = 0.0;
    size_t epochs_run_ = 0;
};

} // namespace quasar::linalg

