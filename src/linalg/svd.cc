#include "linalg/svd.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <random>

#include "stats/rng.hh"

namespace quasar::linalg
{

Matrix
SvdResult::reconstruct() const
{
    Matrix out(u.rows(), v.rows());
    for (size_t i = 0; i < u.rows(); ++i)
        for (size_t j = 0; j < v.rows(); ++j) {
            double acc = 0.0;
            for (size_t k = 0; k < singular.size(); ++k)
                acc += u.at(i, k) * singular[k] * v.at(j, k);
            out.at(i, j) = acc;
        }
    return out;
}

size_t
SvdResult::effectiveRank(double rel_tol) const
{
    if (singular.empty())
        return 0;
    double cutoff = singular.front() * rel_tol;
    size_t r = 0;
    for (double s : singular)
        if (s > cutoff)
            ++r;
    return r;
}

namespace
{

/**
 * One-sided Jacobi on a tall matrix (rows >= cols): orthogonalize the
 * columns of W = A*V by plane rotations, accumulating V.
 */
SvdResult
jacobiTall(const Matrix &a, size_t max_rank, double tol, size_t max_sweeps)
{
    const size_t m = a.rows();
    const size_t n = a.cols();
    assert(m >= n);

    Matrix w = a;                   // working copy, becomes U * diag(s)
    Matrix v(n, n);
    for (size_t i = 0; i < n; ++i)
        v.at(i, i) = 1.0;

    for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        bool rotated = false;
        for (size_t p = 0; p + 1 < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                double alpha = 0.0, beta = 0.0, gamma = 0.0;
                for (size_t i = 0; i < m; ++i) {
                    double wp = w.at(i, p), wq = w.at(i, q);
                    alpha += wp * wp;
                    beta += wq * wq;
                    gamma += wp * wq;
                }
                if (std::fabs(gamma) <= tol * std::sqrt(alpha * beta) ||
                    gamma == 0.0) {
                    continue;
                }
                rotated = true;
                double zeta = (beta - alpha) / (2.0 * gamma);
                double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                           (std::fabs(zeta) +
                            std::sqrt(1.0 + zeta * zeta));
                double c = 1.0 / std::sqrt(1.0 + t * t);
                double s = c * t;
                for (size_t i = 0; i < m; ++i) {
                    double wp = w.at(i, p), wq = w.at(i, q);
                    w.at(i, p) = c * wp - s * wq;
                    w.at(i, q) = s * wp + c * wq;
                }
                for (size_t i = 0; i < n; ++i) {
                    double vp = v.at(i, p), vq = v.at(i, q);
                    v.at(i, p) = c * vp - s * vq;
                    v.at(i, q) = s * vp + c * vq;
                }
            }
        }
        if (!rotated)
            break;
    }

    // Singular values are column norms of W; sort descending.
    std::vector<double> norms(n);
    for (size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (size_t i = 0; i < m; ++i)
            s += w.at(i, j) * w.at(i, j);
        norms[j] = std::sqrt(s);
    }
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t x, size_t y) { return norms[x] > norms[y]; });

    size_t rank = (max_rank == 0) ? n : std::min(max_rank, n);

    SvdResult out;
    out.u = Matrix(m, rank);
    out.v = Matrix(n, rank);
    out.singular.resize(rank);
    for (size_t k = 0; k < rank; ++k) {
        size_t j = order[k];
        double s = norms[j];
        out.singular[k] = s;
        double inv = (s > 0.0) ? 1.0 / s : 0.0;
        for (size_t i = 0; i < m; ++i)
            out.u.at(i, k) = w.at(i, j) * inv;
        for (size_t i = 0; i < n; ++i)
            out.v.at(i, k) = v.at(i, j);
    }
    return out;
}

} // namespace

namespace
{

/** Orthonormalize the columns of y in place (modified Gram-Schmidt). */
void
orthonormalize(Matrix &y)
{
    for (size_t j = 0; j < y.cols(); ++j) {
        for (size_t k = 0; k < j; ++k) {
            double dot = 0.0;
            for (size_t i = 0; i < y.rows(); ++i)
                dot += y.at(i, j) * y.at(i, k);
            for (size_t i = 0; i < y.rows(); ++i)
                y.at(i, j) -= dot * y.at(i, k);
        }
        double norm = 0.0;
        for (size_t i = 0; i < y.rows(); ++i)
            norm += y.at(i, j) * y.at(i, j);
        norm = std::sqrt(norm);
        if (norm > 1e-12) {
            for (size_t i = 0; i < y.rows(); ++i)
                y.at(i, j) /= norm;
        }
    }
}

} // namespace

SvdResult
randomizedSvd(const Matrix &a, size_t rank, size_t power_iters,
              uint64_t seed)
{
    const size_t m = a.rows();
    const size_t n = a.cols();
    const size_t k = std::min({rank, m, n});
    assert(k > 0);

    // Gaussian sketch omega (n x k), y = a * omega.
    stats::Rng rng(seed);
    std::normal_distribution<double> gauss(0.0, 1.0);
    Matrix omega(n, k);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < k; ++j)
            omega.at(i, j) = gauss(rng.engine());

    Matrix y = a.multiply(omega);
    orthonormalize(y);
    Matrix at = a.transpose();
    for (size_t it = 0; it < power_iters; ++it) {
        Matrix z = at.multiply(y);
        orthonormalize(z);
        y = a.multiply(z);
        orthonormalize(y);
    }

    // b = y^T a  (k x n); exact SVD of the small matrix.
    Matrix b = y.transpose().multiply(a);
    SvdResult small = svd(b, k);

    SvdResult out;
    out.u = y.multiply(small.u); // m x k
    out.singular = std::move(small.singular);
    out.v = std::move(small.v);
    return out;
}

SvdResult
svd(const Matrix &a, size_t max_rank, double tol, size_t max_sweeps)
{
    if (a.rows() >= a.cols())
        return jacobiTall(a, max_rank, tol, max_sweeps);

    // Wide matrix: decompose the transpose and swap U <-> V.
    SvdResult t = jacobiTall(a.transpose(), max_rank, tol, max_sweeps);
    SvdResult out;
    out.u = std::move(t.v);
    out.v = std::move(t.u);
    out.singular = std::move(t.singular);
    return out;
}

} // namespace quasar::linalg
