/**
 * @file
 * Singular value decomposition via one-sided Jacobi rotations.
 *
 * The classification engine (paper Sec. 3.2) applies SVD to the sparse
 * profiling matrix to extract similarity concepts, then seeds
 * PQ-reconstruction from U, Sigma, V. One-sided Jacobi is simple,
 * numerically robust, and fast enough at the matrix sizes Quasar uses
 * (hundreds of workloads x tens-to-hundreds of configurations).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hh"

namespace quasar::linalg
{

/** Result of a (possibly truncated) SVD: A ~= U * diag(s) * V^T. */
struct SvdResult
{
    Matrix u;                       ///< m x r left singular vectors.
    std::vector<double> singular;   ///< r singular values, descending.
    Matrix v;                       ///< n x r right singular vectors.

    size_t rank() const { return singular.size(); }

    /** Reconstruct U * diag(s) * V^T. */
    Matrix reconstruct() const;

    /**
     * Effective rank: number of singular values above
     * rel_tol * max singular value.
     */
    size_t effectiveRank(double rel_tol = 1e-9) const;
};

/**
 * Compute the SVD of a.
 *
 * @param a input matrix (any shape).
 * @param max_rank keep at most this many components (0 = all).
 * @param tol convergence threshold on column orthogonality.
 * @param max_sweeps Jacobi sweep limit.
 */
SvdResult svd(const Matrix &a, size_t max_rank = 0, double tol = 1e-10,
              size_t max_sweeps = 60);

/**
 * Randomized truncated SVD (Halko-Martinsson-Tropp): Gaussian sketch,
 * power iterations, then an exact SVD of the small projected matrix.
 * Costs O(m n k) instead of Jacobi's O(m n^2); used to seed
 * PQ-reconstruction when the classification matrix is large (notably
 * the exhaustive single-classification ablation, whose column count
 * grows combinatorially).
 */
SvdResult randomizedSvd(const Matrix &a, size_t rank,
                        size_t power_iters = 2, uint64_t seed = 7);

} // namespace quasar::linalg

