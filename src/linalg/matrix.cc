#include "linalg/matrix.hh"

#include <cassert>
#include <cmath>

namespace quasar::linalg
{

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    assert(cols_ == other.rows_);
    Matrix out(rows_, other.cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            double a = at(i, k);
            if (a == 0.0)
                continue;
            for (size_t j = 0; j < other.cols_; ++j)
                out.at(i, j) += a * other.at(k, j);
        }
    }
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out.at(j, i) = at(i, j);
    return out;
}

double
Matrix::frobeniusNorm() const
{
    double s = 0.0;
    for (double x : data_)
        s += x * x;
    return std::sqrt(s);
}

std::vector<double>
Matrix::column(size_t c) const
{
    std::vector<double> v(rows_);
    for (size_t i = 0; i < rows_; ++i)
        v[i] = at(i, c);
    return v;
}

std::vector<double>
Matrix::row(size_t r) const
{
    std::vector<double> v(cols_);
    for (size_t j = 0; j < cols_; ++j)
        v[j] = at(r, j);
    return v;
}

void
Matrix::setRow(size_t r, const std::vector<double> &v)
{
    assert(v.size() == cols_);
    for (size_t j = 0; j < cols_; ++j)
        at(r, j) = v[j];
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    double m = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::fabs(data_[i] - other.data_[i]));
    return m;
}

MaskedMatrix::MaskedMatrix(size_t rows, size_t cols)
    : values_(rows, cols), mask_(rows * cols, 0)
{
}

void
MaskedMatrix::set(size_t r, size_t c, double v)
{
    assert(r < rows() && c < cols());
    size_t idx = r * cols() + c;
    if (!mask_[idx]) {
        mask_[idx] = 1;
        ++num_observed_;
    }
    values_.at(r, c) = v;
}

void
MaskedMatrix::clear(size_t r, size_t c)
{
    size_t idx = r * cols() + c;
    if (mask_[idx]) {
        mask_[idx] = 0;
        --num_observed_;
    }
    values_.at(r, c) = 0.0;
}

bool
MaskedMatrix::observed(size_t r, size_t c) const
{
    return mask_[r * cols() + c] != 0;
}

double
MaskedMatrix::value(size_t r, size_t c) const
{
    return values_.at(r, c);
}

size_t
MaskedMatrix::observedInRow(size_t r) const
{
    size_t n = 0;
    for (size_t c = 0; c < cols(); ++c)
        if (observed(r, c))
            ++n;
    return n;
}

double
MaskedMatrix::observedMean() const
{
    if (num_observed_ == 0)
        return 0.0;
    double s = 0.0;
    for (size_t r = 0; r < rows(); ++r)
        for (size_t c = 0; c < cols(); ++c)
            if (observed(r, c))
                s += value(r, c);
    return s / double(num_observed_);
}

size_t
MaskedMatrix::appendRow()
{
    size_t r = rows();
    Matrix next(r + 1, cols());
    for (size_t i = 0; i < r; ++i)
        for (size_t j = 0; j < cols(); ++j)
            next.at(i, j) = values_.at(i, j);
    values_ = std::move(next);
    mask_.resize((r + 1) * cols(), 0);
    return r;
}

} // namespace quasar::linalg
