#include "linalg/completion.hh"

#include <cassert>

namespace quasar::linalg
{

Matrix
MatrixCompletion::complete(const MaskedMatrix &a) const
{
    PqModel model(cfg_);
    model.fit(a);
    Matrix out = model.reconstruct();
    // Observed entries are measurements; keep them exact.
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            if (a.observed(r, c))
                out.at(r, c) = a.value(r, c);
    return out;
}

std::vector<double>
MatrixCompletion::completeRow(const MaskedMatrix &reference,
                              const std::vector<size_t> &observed_cols,
                              const std::vector<double> &observed_vals) const
{
    assert(observed_cols.size() == observed_vals.size());
    // Fit the latent-factor model on the history matrix, then fold the
    // sparse new row in with the item factors fixed: far more stable
    // for a 2-entry row than joint refitting, and cheaper.
    PqModel model(cfg_);
    model.fit(reference);
    std::vector<std::pair<size_t, double>> observed;
    observed.reserve(observed_cols.size());
    for (size_t i = 0; i < observed_cols.size(); ++i)
        observed.emplace_back(observed_cols[i], observed_vals[i]);
    return model.foldInRow(observed);
}

} // namespace quasar::linalg
