#include "linalg/pq_model.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>

#include "stats/rng.hh"

#include "linalg/svd.hh"

namespace quasar::linalg
{

void
PqModel::fit(const MaskedMatrix &a)
{
    rows_ = a.rows();
    cols_ = a.cols();
    const size_t k = std::max<size_t>(
        1, std::min({cfg_.rank, rows_, cols_}));

    mu_ = a.observedMean();
    row_bias_.assign(rows_, 0.0);
    col_bias_.assign(cols_, 0.0);

    // A history can legally be empty at the first classify call (no
    // offline seeding, no online rows yet). Keep the flat mu+bias
    // model rather than asking the SVD for a rank-0 sketch of an
    // empty matrix; fold-in then predicts mu_ + col_bias_, exactly
    // what the full path degenerates to with nothing observed.
    if (rows_ == 0 || cols_ == 0 || a.numObserved() == 0) {
        q_ = Matrix(rows_, k);
        p_ = Matrix(cols_, k);
        return;
    }

    // Initialize biases from shrunk column and row means so the
    // population's average response shape lives in the biases and the
    // latent factors only carry per-row deviation. Without this, a
    // high-rank fit on few dense rows absorbs the column structure
    // into the factors, and folded-in rows (whose factors are shrunk
    // by ridge) degenerate toward a flat prediction.
    {
        std::vector<double> col_sum(cols_, 0.0);
        std::vector<size_t> col_n(cols_, 0);
        for (size_t r = 0; r < rows_; ++r)
            for (size_t c = 0; c < cols_; ++c)
                if (a.observed(r, c)) {
                    col_sum[c] += a.value(r, c) - mu_;
                    ++col_n[c];
                }
        for (size_t c = 0; c < cols_; ++c)
            col_bias_[c] = col_sum[c] / (double(col_n[c]) + 3.0);
        std::vector<double> row_sum(rows_, 0.0);
        std::vector<size_t> row_n(rows_, 0);
        for (size_t r = 0; r < rows_; ++r)
            for (size_t c = 0; c < cols_; ++c)
                if (a.observed(r, c)) {
                    row_sum[r] += a.value(r, c) - mu_ - col_bias_[c];
                    ++row_n[r];
                }
        for (size_t r = 0; r < rows_; ++r)
            row_bias_[r] = row_sum[r] / (double(row_n[r]) + 3.0);
    }

    // Seed factors from the SVD of the fully-debiased residual with
    // unobserved entries at zero (paper: P^T = Sigma V^T, Q = U).
    Matrix centered(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            if (a.observed(r, c))
                centered.at(r, c) = a.value(r, c) - mu_ -
                                    row_bias_[r] - col_bias_[c];
    // Jacobi is exact but O(m n^2); fall back to randomized truncated
    // SVD for the wide matrices of the exhaustive classification.
    SvdResult s = (cols_ > 64 || rows_ * cols_ > 20000)
                      ? randomizedSvd(centered, k, 2, cfg_.seed)
                      : svd(centered, k);

    // Split the singular values symmetrically (Q = U sqrt(S),
    // P = V sqrt(S)); the paper's asymmetric split (P^T = S V^T)
    // reconstructs identically but leaves P entries of magnitude
    // sigma_1, which makes the first SGD steps unstable.
    q_ = Matrix(rows_, k);
    p_ = Matrix(cols_, k);
    for (size_t f = 0; f < s.rank(); ++f) {
        double root = std::sqrt(std::max(s.singular[f], 0.0));
        for (size_t r = 0; r < rows_; ++r)
            q_.at(r, f) = s.u.at(r, f) * root;
        for (size_t c = 0; c < cols_; ++c)
            p_.at(c, f) = s.v.at(c, f) * root;
    }

    // Collect observed entries once.
    struct Entry { size_t r, c; double v; };
    std::vector<Entry> entries;
    entries.reserve(a.numObserved());
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            if (a.observed(r, c))
                entries.push_back({r, c, a.value(r, c)});

    if (entries.empty()) {
        train_rmse_ = 0.0;
        epochs_run_ = 0;
        return;
    }

    stats::Rng rng(cfg_.seed);
    double eta = cfg_.learning_rate;
    const double lambda = cfg_.regularization;
    double prev_rmse = std::numeric_limits<double>::infinity();

    for (epochs_run_ = 0; epochs_run_ < cfg_.max_epochs; ++epochs_run_) {
        std::shuffle(entries.begin(), entries.end(), rng.engine());
        double sq = 0.0;
        bool diverged = false;
        for (const Entry &e : entries) {
            double dot = 0.0;
            for (size_t f = 0; f < k; ++f)
                dot += q_.at(e.r, f) * p_.at(e.c, f);
            if (!std::isfinite(dot)) {
                diverged = true;
                break;
            }
            double eps = e.v - mu_ - row_bias_[e.r] -
                         col_bias_[e.c] - dot;
            // Clip pathological residuals so a bad step cannot blow
            // the factors up (SGD with a too-large eta diverges).
            eps = std::clamp(eps, -1e3, 1e3);
            sq += eps * eps;
            row_bias_[e.r] += eta * (eps - lambda * row_bias_[e.r]);
            col_bias_[e.c] += eta * (eps - lambda * col_bias_[e.c]);
            for (size_t f = 0; f < k; ++f) {
                double qv = q_.at(e.r, f);
                double pv = p_.at(e.c, f);
                q_.at(e.r, f) = qv + eta * (eps * pv - lambda * qv);
                p_.at(e.c, f) = pv + eta * (eps * qv - lambda * pv);
            }
        }
        double rmse = std::sqrt(sq / double(entries.size()));
        if (diverged || !std::isfinite(rmse)) {
            // Divergence: restart from small random factors with a
            // much gentler learning rate.
            std::normal_distribution<double> g(0.0, 0.01);
            for (size_t r = 0; r < rows_; ++r)
                for (size_t f = 0; f < k; ++f)
                    q_.at(r, f) = g(rng.engine());
            for (size_t c = 0; c < cols_; ++c)
                for (size_t f = 0; f < k; ++f)
                    p_.at(c, f) = g(rng.engine());
            std::fill(row_bias_.begin(), row_bias_.end(), 0.0);
            std::fill(col_bias_.begin(), col_bias_.end(), 0.0);
            eta *= 0.3;
            prev_rmse = std::numeric_limits<double>::infinity();
            continue;
        }
        train_rmse_ = rmse;
        if (rmse > prev_rmse * 1.02)
            eta = std::max(eta * 0.7,
                           cfg_.learning_rate / 20.0); // overshooting
        if (std::fabs(prev_rmse - rmse) < cfg_.tolerance)
            break;
        prev_rmse = rmse;
    }
}

double
PqModel::predict(size_t r, size_t c) const
{
    assert(r < rows_ && c < cols_);
    double dot = 0.0;
    for (size_t f = 0; f < q_.cols(); ++f)
        dot += q_.at(r, f) * p_.at(c, f);
    return mu_ + row_bias_[r] + col_bias_[c] + dot;
}

namespace
{

/** Solve the k x k SPD system a * x = b in place (Gaussian elim). */
std::vector<double>
solveSmall(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const size_t k = b.size();
    for (size_t i = 0; i < k; ++i) {
        // Partial pivot.
        size_t piv = i;
        for (size_t r = i + 1; r < k; ++r)
            if (std::fabs(a[r][i]) > std::fabs(a[piv][i]))
                piv = r;
        std::swap(a[i], a[piv]);
        std::swap(b[i], b[piv]);
        double d = a[i][i];
        if (std::fabs(d) < 1e-12)
            continue;
        for (size_t r = i + 1; r < k; ++r) {
            double f = a[r][i] / d;
            if (f == 0.0)
                continue;
            for (size_t c = i; c < k; ++c)
                a[r][c] -= f * a[i][c];
            b[r] -= f * b[i];
        }
    }
    std::vector<double> x(k, 0.0);
    for (size_t ii = k; ii-- > 0;) {
        double acc = b[ii];
        for (size_t c = ii + 1; c < k; ++c)
            acc -= a[ii][c] * x[c];
        x[ii] = std::fabs(a[ii][ii]) < 1e-12 ? 0.0 : acc / a[ii][ii];
    }
    return x;
}

} // namespace

std::vector<double>
PqModel::foldInRow(
    const std::vector<std::pair<size_t, double>> &observed) const
{
    const size_t k = q_.cols();
    std::vector<double> qu(k, 0.0);
    double bu = 0.0;
    const double lambda =
        std::max(cfg_.fold_in_regularization, 1e-4);
    const double lambda_b = 1.0;

    for (int iter = 0; iter < 20; ++iter) {
        // Bias given factors.
        double acc = 0.0;
        for (const auto &[c, v] : observed) {
            double dot = 0.0;
            for (size_t f = 0; f < k; ++f)
                dot += qu[f] * p_.at(c, f);
            acc += v - mu_ - col_bias_[c] - dot;
        }
        bu = acc / (double(observed.size()) + lambda_b);

        // Ridge solve for the latent vector given the bias.
        std::vector<std::vector<double>> ata(
            k, std::vector<double>(k, 0.0));
        std::vector<double> atb(k, 0.0);
        for (size_t f = 0; f < k; ++f)
            ata[f][f] = lambda * double(observed.size());
        for (const auto &[c, v] : observed) {
            double y = v - mu_ - bu - col_bias_[c];
            for (size_t f = 0; f < k; ++f) {
                double pf = p_.at(c, f);
                atb[f] += pf * y;
                for (size_t g = 0; g < k; ++g)
                    ata[f][g] += pf * p_.at(c, g);
            }
        }
        qu = solveSmall(std::move(ata), std::move(atb));
    }

    std::vector<double> row(cols_);
    for (size_t c = 0; c < cols_; ++c) {
        double dot = 0.0;
        for (size_t f = 0; f < k; ++f)
            dot += qu[f] * p_.at(c, f);
        row[c] = mu_ + bu + col_bias_[c] + dot;
    }
    // Observed entries are measurements: keep them exact.
    for (const auto &[c, v] : observed)
        row[c] = v;
    return row;
}

Matrix
PqModel::reconstruct() const
{
    Matrix out(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.at(r, c) = predict(r, c);
    return out;
}

} // namespace quasar::linalg
