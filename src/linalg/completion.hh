/**
 * @file
 * Matrix-completion driver: the bridge between raw profiling samples
 * and dense performance estimates. Wraps SVD-seeded PQ-reconstruction
 * and preserves observed entries verbatim in the output (profiled
 * values are ground truth to the scheduler; only missing entries are
 * estimated).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hh"
#include "linalg/pq_model.hh"

namespace quasar::linalg
{

/** Completes masked matrices with collaborative filtering. */
class MatrixCompletion
{
  public:
    explicit MatrixCompletion(PqConfig cfg = {}) : cfg_(cfg) {}

    /**
     * Fill every unobserved entry of a; observed entries pass through
     * unchanged.
     */
    Matrix complete(const MaskedMatrix &a) const;

    /**
     * Estimate the full row for a new workload given a reference
     * matrix of previously-scheduled workloads.
     *
     * @param reference history matrix (rows = workloads).
     * @param observed_cols column indices sampled by profiling.
     * @param observed_vals corresponding measurements.
     * @return dense estimated row of reference.cols() values.
     */
    std::vector<double>
    completeRow(const MaskedMatrix &reference,
                const std::vector<size_t> &observed_cols,
                const std::vector<double> &observed_vals) const;

    const PqConfig &config() const { return cfg_; }

  private:
    PqConfig cfg_;
};

} // namespace quasar::linalg

