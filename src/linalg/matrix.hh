/**
 * @file
 * Dense row-major matrix with the operations needed by the
 * collaborative-filtering engine (SVD, PQ-reconstruction). Also defines
 * MaskedMatrix, a dense matrix paired with an observation mask, which is
 * the natural container for the sparse profiling matrices of the paper
 * (rows = workloads, columns = configurations, few observed entries per
 * row).
 */

#pragma once

#include <cstddef>
#include <vector>

namespace quasar::linalg
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    double &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    double &operator()(size_t r, size_t c) { return at(r, c); }
    double operator()(size_t r, size_t c) const { return at(r, c); }

    /** C = this * other. */
    Matrix multiply(const Matrix &other) const;

    Matrix transpose() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Column c as a vector. */
    std::vector<double> column(size_t c) const;

    /** Row r as a vector. */
    std::vector<double> row(size_t r) const;

    void setRow(size_t r, const std::vector<double> &v);

    /** Max |a - b| over all entries; matrices must match in shape. */
    double maxAbsDiff(const Matrix &other) const;

    const std::vector<double> &data() const { return data_; }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * A dense value matrix plus a boolean observation mask. Unobserved
 * entries hold 0 and are ignored by the completion algorithms.
 */
class MaskedMatrix
{
  public:
    MaskedMatrix() = default;
    MaskedMatrix(size_t rows, size_t cols);

    size_t rows() const { return values_.rows(); }
    size_t cols() const { return values_.cols(); }

    void set(size_t r, size_t c, double v);
    void clear(size_t r, size_t c);

    bool observed(size_t r, size_t c) const;
    double value(size_t r, size_t c) const;

    size_t numObserved() const { return num_observed_; }
    size_t observedInRow(size_t r) const;

    /** Mean of all observed entries (0 when nothing observed). */
    double observedMean() const;

    const Matrix &values() const { return values_; }

    /** Append an all-unobserved row; returns its index. */
    size_t appendRow();

  private:
    Matrix values_;
    std::vector<char> mask_;
    size_t num_observed_ = 0;
};

} // namespace quasar::linalg

