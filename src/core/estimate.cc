#include "core/estimate.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::core
{

double
WorkloadEstimate::nodePerf(size_t platform_idx, size_t col) const
{
    assert(col < scale_up_perf.size());
    assert(platform_idx < platform_factor.size());
    if (!cross_perf.empty()) {
        size_t idx = platform_idx * scale_up_perf.size() + col;
        assert(idx < cross_perf.size());
        return std::max(0.0, cross_perf[idx]);
    }
    return std::max(0.0, scale_up_perf[col]) *
           std::max(0.0, platform_factor[platform_idx]);
}

double
WorkloadEstimate::scaleOutSpeedupAt(int nodes) const
{
    assert(nodes >= 1);
    if (scale_out_grid.empty())
        return nodes == 1 ? 1.0 : 0.0;
    if (nodes <= scale_out_grid.front())
        return std::max(0.0, scale_out_speedup.front());
    if (nodes >= scale_out_grid.back())
        return std::max(0.0, scale_out_speedup.back());
    for (size_t i = 1; i < scale_out_grid.size(); ++i) {
        if (nodes <= scale_out_grid[i]) {
            double n0 = scale_out_grid[i - 1], n1 = scale_out_grid[i];
            double s0 = std::max(1e-9, scale_out_speedup[i - 1]);
            double s1 = std::max(1e-9, scale_out_speedup[i]);
            // Log-linear interpolation in node count.
            double f = (std::log(double(nodes)) - std::log(n0)) /
                       (std::log(n1) - std::log(n0));
            return std::exp(std::log(s0) +
                            f * (std::log(s1) - std::log(s0)));
        }
    }
    return std::max(0.0, scale_out_speedup.back());
}

double
WorkloadEstimate::interferenceMultiplier(
    const interference::IVector &contention, double slope_guess) const
{
    double m = 1.0;
    for (size_t i = 0; i < interference::kNumSources; ++i) {
        double excess = contention[i] - tolerated[i];
        if (excess > 0.0)
            m *= std::max(0.05, 1.0 - slope_guess * excess);
    }
    return m;
}

double
WorkloadEstimate::jobPerf(const std::vector<double> &node_perfs) const
{
    if (node_perfs.empty())
        return 0.0;
    double sum = 0.0;
    for (double p : node_perfs)
        sum += p;
    int n = int(node_perfs.size());
    // scaleOutSpeedupAt(n) is the predicted speedup of n equal nodes
    // over one; the efficiency factor is speedup / n.
    double eff = scaleOutSpeedupAt(n) / double(n);
    return sum * eff;
}

} // namespace quasar::core
