/**
 * @file
 * Admission control (paper Secs. 3.3 and 5): when the scheduler cannot
 * find resources for a workload, it waits in a pending queue instead
 * of oversubscribing machines. Wait time counts toward scheduling
 * overheads.
 */

#ifndef QUASAR_CORE_ADMISSION_HH
#define QUASAR_CORE_ADMISSION_HH

#include <vector>

#include "common/types.hh"
#include "stats/summary.hh"

namespace quasar::core
{

/** FIFO pending queue with wait-time accounting. */
class AdmissionQueue
{
  public:
    /** Add a workload that could not be placed. */
    void enqueue(WorkloadId id, double t);

    bool empty() const { return pending_.empty(); }
    size_t size() const { return pending_.size(); }

    /**
     * Remove and return all pending workloads in FIFO order for a
     * retry pass; re-enqueue the ones that still do not fit.
     */
    std::vector<WorkloadId> drainForRetry();

    /** Record a successful admission at time t (closes wait timing). */
    void admitted(WorkloadId id, double t);

    /** Whether a workload is currently queued. */
    bool contains(WorkloadId id) const;

    /** Wait-time statistics over all admitted workloads. */
    const stats::Samples &waitTimes() const { return waits_; }
    double totalWait() const { return waits_.values().empty()
                                        ? 0.0
                                        : waits_.mean() *
                                              double(waits_.count()); }

  private:
    struct Entry
    {
        WorkloadId id;
        double enqueued_at;
    };
    std::vector<Entry> pending_;
    std::vector<Entry> in_retry_;
    stats::Samples waits_;
};

} // namespace quasar::core

#endif // QUASAR_CORE_ADMISSION_HH
