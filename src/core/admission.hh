/**
 * @file
 * Admission control (paper Secs. 3.3 and 5): when the scheduler cannot
 * find resources for a workload, it waits in a pending queue instead
 * of oversubscribing machines. Wait time counts toward scheduling
 * overheads.
 *
 * Entries may carry an exponential-backoff policy (used for workloads
 * displaced by machine failures while capacity is temporarily gone):
 * each failed retry doubles the delay before the entry is offered for
 * retry again, up to a cap. Plain entries retry on every pass.
 */

#pragma once

#include <limits>
#include <vector>

#include "common/types.hh"
#include "stats/summary.hh"

namespace quasar::core
{

/** FIFO pending queue with wait-time accounting and retry backoff. */
class AdmissionQueue
{
  public:
    /** Add a workload that could not be placed. */
    void enqueue(WorkloadId id, double t);

    /**
     * Add a workload with an exponential-backoff retry policy: the
     * first retry is offered after base_s, then 2*base_s, 4*base_s,
     * ..., capped at max_s. Re-enqueue after a failed retry (via
     * enqueue or this call) keeps both the original wait start and the
     * backoff policy, and doubles the delay.
     */
    void enqueueWithBackoff(WorkloadId id, double t, double base_s,
                            double max_s);

    bool empty() const { return pending_.empty() && in_retry_.empty(); }
    size_t size() const { return pending_.size() + in_retry_.size(); }

    /**
     * Aging / starvation guard: entries queued for at least limit_s
     * are always offered by drainForRetry regardless of their backoff
     * timer, so a low-priority workload repeatedly deferred under
     * pressure cannot be postponed past its age limit once the caller
     * is willing to admit it again. <= 0 (the default) disables the
     * guard.
     */
    void setAgingLimit(double limit_s) { aging_limit_s_ = limit_s; }

    /**
     * Remove and return pending workloads whose retry is due at `now`
     * in FIFO order for a retry pass; the caller re-enqueues the ones
     * that still do not fit (or reports them admitted). Entries not
     * yet due stay pending unless older than the aging limit. The
     * no-argument form ignores backoff and drains everything — used
     * when fresh capacity just appeared.
     */
    std::vector<WorkloadId>
    drainForRetry(double now = std::numeric_limits<double>::infinity());

    /** Record a successful admission at time t (closes wait timing). */
    void admitted(WorkloadId id, double t);

    /**
     * Drop a workload without wait accounting (completed or killed
     * while queued); no-op when not present.
     */
    void abandon(WorkloadId id);

    /** Whether a workload is currently queued (or mid-retry). */
    bool contains(WorkloadId id) const;

    /**
     * When the workload first entered the queue (its wait start),
     * or -1 when not queued. Overload control reads this for the
     * deadline-aware shed decision.
     */
    double enqueuedAt(WorkloadId id) const;

    /** Wait-time statistics over all admitted workloads. */
    const stats::Samples &waitTimes() const { return waits_; }
    double totalWait() const { return waits_.values().empty()
                                        ? 0.0
                                        : waits_.mean() *
                                              double(waits_.count()); }

  private:
    struct Entry
    {
        WorkloadId id;
        double enqueued_at;
        /** Failed retries so far (drives the backoff exponent). */
        int attempts = 0;
        /** Do not offer for retry before this time. */
        double not_before = 0.0;
        /** Backoff base; 0 means retry on every pass. */
        double backoff_s = 0.0;
        double backoff_max_s = 0.0;
    };

    /** Apply the entry's backoff policy after a failed attempt. */
    static void applyBackoff(Entry &e, double t);

    std::vector<Entry> pending_;
    std::vector<Entry> in_retry_;
    stats::Samples waits_;
    double aging_limit_s_ = 0.0;
};

} // namespace quasar::core

