#include "core/classifier.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

namespace quasar::core
{

using interference::kNumSources;
using profiling::ProfilingData;
using workload::ScaleUpConfig;
using workload::Workload;
using workload::WorkloadType;

namespace
{

/** Index of cfg in grid; grids are built deterministically. */
size_t
gridIndexOf(const std::vector<ScaleUpConfig> &grid,
            const ScaleUpConfig &cfg)
{
    for (size_t i = 0; i < grid.size(); ++i)
        if (grid[i] == cfg)
            return i;
    // Fall back to the nearest column by cores and memory.
    size_t best = 0;
    double best_score = 1e18;
    for (size_t i = 0; i < grid.size(); ++i) {
        double score =
            std::fabs(std::log(double(grid[i].cores) /
                               double(cfg.cores))) +
            std::fabs(std::log(grid[i].memory_gb / cfg.memory_gb));
        if (score < best_score) {
            best_score = score;
            best = i;
        }
    }
    return best;
}

double
clampNonNeg(double x)
{
    return std::max(0.0, x);
}

/**
 * Performance rows are completed in log space: workload behaviour is
 * multiplicative (speedups, platform factors), so logs make the
 * low-rank structure additive and keep SGD well conditioned across
 * rows whose values span orders of magnitude.
 */
double
toLog(double v)
{
    return std::log(std::max(v, 1e-4));
}

double
fromLog(double x)
{
    return std::exp(std::clamp(x, -12.0, 12.0));
}

} // namespace

void
Classifier::History::addOnline(SparseRow row, size_t max_rows)
{
    online.push_back(std::move(row));
    if (online.size() > max_rows)
        online.erase(online.begin(),
                     online.begin() + (online.size() - max_rows));
}

linalg::MaskedMatrix
Classifier::History::build() const
{
    linalg::MaskedMatrix m(seeds.size() + online.size(), cols);
    size_t r = 0;
    for (const SparseRow &row : seeds) {
        for (const auto &[c, v] : row.entries)
            m.set(r, c, v);
        ++r;
    }
    for (const SparseRow &row : online) {
        for (const auto &[c, v] : row.entries)
            m.set(r, c, v);
        ++r;
    }
    return m;
}

Classifier::Classifier(const profiling::Profiler &profiler,
                       ClassifierConfig cfg, uint64_t seed)
    : profiler_(profiler), cfg_(cfg), completion_(cfg.pq), rng_(seed)
{
    const auto &catalog = profiler_.catalog();
    const sim::Platform &top = catalog[profiler_.scaleUpPlatform()];
    grid_analytics_ = workload::scaleUpGrid(top, WorkloadType::Analytics);
    grid_generic_ = workload::scaleUpGrid(top, WorkloadType::SingleNode);
    node_grid_ = workload::scaleOutGrid();

    scale_up_analytics_.cols = grid_analytics_.size();
    scale_up_latency_.cols = grid_generic_.size();
    scale_up_stateful_.cols = grid_generic_.size();
    scale_up_generic_.cols = grid_generic_.size();
    for (History &h : scale_out_)
        h.cols = node_grid_.size();
    heterogeneity_.cols = catalog.size();
    for (History &h : interference_)
        h.cols = 2 * kNumSources;
    exhaustive_analytics_.cols =
        exhaustiveCols(WorkloadType::Analytics);
    exhaustive_generic_.cols = exhaustiveCols(WorkloadType::SingleNode);
}

Classifier::History &
Classifier::scaleUpHistory(WorkloadType t)
{
    switch (t) {
      case WorkloadType::Analytics:
        return scale_up_analytics_;
      case WorkloadType::LatencyService:
        return scale_up_latency_;
      case WorkloadType::StatefulService:
        return scale_up_stateful_;
      default:
        return scale_up_generic_;
    }
}

const Classifier::History &
Classifier::scaleUpHistory(WorkloadType t) const
{
    return const_cast<Classifier *>(this)->scaleUpHistory(t);
}

Classifier::History &
Classifier::exhaustiveHistory(WorkloadType t)
{
    return t == WorkloadType::Analytics ? exhaustive_analytics_
                                        : exhaustive_generic_;
}

size_t
Classifier::exhaustiveCols(WorkloadType t) const
{
    size_t grid = (t == WorkloadType::Analytics ? grid_analytics_.size()
                                                : grid_generic_.size());
    return profiler_.catalog().size() * grid + node_grid_.size() +
           2 * kNumSources;
}

std::vector<double>
Classifier::completeRow(History &h, const SparseRow &observed) const
{
    size_t rows_now = h.seeds.size() + h.online.size();
    bool stale = !h.has_model ||
                 rows_now > h.fitted_rows + h.fitted_rows / 5 + 8;
    if (stale) {
        h.model = linalg::PqModel(cfg_.pq);
        h.model.fit(h.build());
        h.fitted_rows = rows_now;
        h.has_model = true;
    }
    return h.model.foldInRow(observed.entries);
}

void
Classifier::seedOffline(const std::vector<Workload> &seeds, double t)
{
    const auto &catalog = profiler_.catalog();
    const sim::Platform &top = catalog[profiler_.scaleUpPlatform()];

    for (const Workload &w : seeds) {
        const auto &grid = (w.type == WorkloadType::Analytics)
                               ? grid_analytics_
                               : grid_generic_;
        ScaleUpConfig ref =
            profiling::Profiler::referenceConfig(top, w.type);
        size_t ref_col = gridIndexOf(grid, ref);

        // Scale-up dense row, normalized by the reference column.
        std::vector<double> su = profiler_.denseScaleUpRow(w, t, rng_);
        double norm = su[ref_col] > 0.0 ? su[ref_col] : 1.0;
        SparseRow su_row;
        for (size_t c = 0; c < su.size(); ++c)
            su_row.entries.emplace_back(c, toLog(su[c] / norm));
        scaleUpHistory(w.type).seeds.push_back(su_row);

        // Scale-out dense row, normalized by the n = 1 column.
        SparseRow so_row;
        std::vector<double> so;
        if (workload::isDistributed(w.type)) {
            so = profiler_.denseScaleOutRow(w, t, ref, rng_);
            double n1 = so[0] > 0.0 ? so[0] : 1.0;
            for (size_t c = 0; c < so.size(); ++c)
                so_row.entries.emplace_back(c, toLog(so[c] / n1));
            scale_out_[size_t(w.type)].seeds.push_back(so_row);
        }

        // Heterogeneity dense row, normalized by the profiling
        // platform column.
        std::vector<double> het =
            profiler_.denseHeterogeneityRow(w, t, rng_);
        double hnorm = het[profiler_.scaleUpPlatform()] > 0.0
                           ? het[profiler_.scaleUpPlatform()]
                           : 1.0;
        SparseRow het_row;
        for (size_t c = 0; c < het.size(); ++c)
            het_row.entries.emplace_back(c, toLog(het[c] / hnorm));
        heterogeneity_.seeds.push_back(het_row);

        // Interference: tolerated then caused, raw values.
        std::vector<double> tol = profiler_.denseInterferenceRow(w, t,
                                                                 ref);
        std::vector<double> caused = profiler_.denseCausedRow(w, t,
                                                              rng_);
        SparseRow if_row;
        for (size_t c = 0; c < tol.size(); ++c)
            if_row.entries.emplace_back(c, tol[c]);
        for (size_t c = 0; c < caused.size(); ++c)
            if_row.entries.emplace_back(kNumSources + c, caused[c]);
        interference_[size_t(w.type)].seeds.push_back(if_row);

        if (cfg_.exhaustive) {
            // Dense cross row: every platform x scale-up column.
            SparseRow ex;
            size_t g = grid.size();
            for (size_t p = 0; p < catalog.size(); ++p) {
                for (size_t c = 0; c < g; ++c) {
                    double v = profiler_.measureNode(w, t, catalog[p],
                                                     grid[c], rng_);
                    ex.entries.emplace_back(p * g + c,
                                            toLog(v / norm));
                }
            }
            size_t off = catalog.size() * g;
            if (!so.empty()) {
                double n1 = so[0] > 0.0 ? so[0] : 1.0;
                for (size_t c = 0; c < so.size(); ++c)
                    ex.entries.emplace_back(off + c,
                                            toLog(so[c] / n1));
            }
            off += node_grid_.size();
            for (size_t c = 0; c < tol.size(); ++c)
                ex.entries.emplace_back(off + c, tol[c]);
            for (size_t c = 0; c < caused.size(); ++c)
                ex.entries.emplace_back(off + kNumSources + c,
                                        caused[c]);
            exhaustiveHistory(w.type).seeds.push_back(std::move(ex));
        }
    }
}

WorkloadEstimate
Classifier::classify(const Workload &w, const ProfilingData &data)
{
    auto start = std::chrono::steady_clock::now();
    WorkloadEstimate est = cfg_.exhaustive
                               ? classifyExhaustive(w, data)
                               : classifyParallel(w, data);
    auto end = std::chrono::steady_clock::now();
    est.classification_seconds =
        std::chrono::duration<double>(end - start).count();
    classify_time_.add(est.classification_seconds);
    est.profiling_seconds = data.profiling_seconds;
    return est;
}

WorkloadEstimate
Classifier::classifyParallel(const Workload &w, const ProfilingData &d)
{
    WorkloadEstimate est;
    est.type = w.type;
    const auto &grid = (w.type == WorkloadType::Analytics)
                           ? grid_analytics_
                           : grid_generic_;
    est.scale_up_grid = grid;
    est.scale_out_grid = node_grid_;
    est.profiling_platform = d.scale_up_platform;
    est.reference = d.reference;
    est.reference_value = d.reference_value;

    const double ref = d.reference_value > 0.0 ? d.reference_value : 1.0;

    // --- Scale-up ---
    {
        SparseRow obs;
        for (const auto &s : d.scale_up)
            obs.entries.emplace_back(s.column, toLog(s.value / ref));
        History &h = scaleUpHistory(w.type);
        std::vector<double> row = completeRow(h, obs);
        est.scale_up_perf.resize(row.size());
        for (size_t c = 0; c < row.size(); ++c)
            est.scale_up_perf[c] = fromLog(row[c]) * ref;
        h.addOnline(std::move(obs), cfg_.max_history_rows);
    }

    // --- Scale-out ---
    if (workload::isDistributed(w.type) && !d.scale_out.empty()) {
        double n1 = d.scale_out.front().value;
        if (n1 <= 0.0)
            n1 = ref;
        SparseRow obs;
        for (const auto &s : d.scale_out)
            obs.entries.emplace_back(s.column, toLog(s.value / n1));
        History &h = scale_out_[size_t(w.type)];
        std::vector<double> row = completeRow(h, obs);
        est.scale_out_speedup.resize(row.size());
        for (size_t c = 0; c < row.size(); ++c)
            est.scale_out_speedup[c] = fromLog(row[c]);
        est.scale_out_speedup[0] = 1.0;
        h.addOnline(std::move(obs), cfg_.max_history_rows);
    } else {
        est.scale_out_speedup.assign(node_grid_.size(), 0.0);
        est.scale_out_speedup[0] = 1.0;
    }

    // --- Heterogeneity ---
    {
        double hnorm = d.heterogeneity.empty()
                           ? 1.0
                           : d.heterogeneity.front().value;
        if (hnorm <= 0.0)
            hnorm = 1.0;
        SparseRow obs;
        for (const auto &s : d.heterogeneity)
            obs.entries.emplace_back(s.column, toLog(s.value / hnorm));
        std::vector<double> row = completeRow(heterogeneity_, obs);
        est.platform_factor.resize(row.size());
        for (size_t c = 0; c < row.size(); ++c)
            est.platform_factor[c] = fromLog(row[c]);
        est.platform_factor[d.scale_up_platform] = 1.0;
        heterogeneity_.addOnline(std::move(obs), cfg_.max_history_rows);
    }

    // --- Interference (tolerated + caused) ---
    {
        SparseRow obs;
        for (const auto &s : d.interference)
            obs.entries.emplace_back(s.column, s.value);
        for (const auto &s : d.caused)
            obs.entries.emplace_back(kNumSources + s.column, s.value);
        History &h = interference_[size_t(w.type)];
        std::vector<double> row = completeRow(h, obs);
        for (size_t i = 0; i < kNumSources; ++i) {
            est.tolerated[i] = std::clamp(row[i], 0.0, 1.0);
            est.caused_per_core[i] =
                std::clamp(row[kNumSources + i], 0.0, 0.5);
        }
        h.addOnline(std::move(obs), cfg_.max_history_rows);
    }

    return est;
}

WorkloadEstimate
Classifier::classifyExhaustive(const Workload &w, const ProfilingData &d)
{
    WorkloadEstimate est;
    est.type = w.type;
    const auto &catalog = profiler_.catalog();
    const auto &grid = (w.type == WorkloadType::Analytics)
                           ? grid_analytics_
                           : grid_generic_;
    const size_t g = grid.size();
    const size_t p_count = catalog.size();
    est.scale_up_grid = grid;
    est.scale_out_grid = node_grid_;
    est.profiling_platform = d.scale_up_platform;
    est.reference = d.reference;
    est.reference_value = d.reference_value;

    const double ref = d.reference_value > 0.0 ? d.reference_value : 1.0;

    SparseRow obs;
    for (const auto &s : d.scale_up)
        obs.entries.emplace_back(d.scale_up_platform * g + s.column,
                                 toLog(s.value / ref));
    // Heterogeneity samples land on the nearest grid column to the
    // small canonical config on their platform (an approximation the
    // exhaustive design forces; cf. paper Sec. 3.2 discussion).
    double hnorm = d.heterogeneity.empty() ? ref
                                           : d.heterogeneity.front().value;
    if (hnorm <= 0.0)
        hnorm = ref;
    size_t het_col =
        gridIndexOf(grid, profiling::Profiler::hetConfig());
    double ref_at_het = d.heterogeneity.empty()
                            ? 1.0
                            : d.heterogeneity.front().value / ref;
    for (size_t i = 1; i < d.heterogeneity.size(); ++i) {
        const auto &s = d.heterogeneity[i];
        // Scale so the value is comparable to the (platform, column)
        // cell: ratio to profiling platform times its cell value.
        double cell = (s.value / hnorm) * ref_at_het;
        obs.entries.emplace_back(s.column * g + het_col, toLog(cell));
    }
    size_t off = p_count * g;
    if (!d.scale_out.empty()) {
        double n1 = d.scale_out.front().value;
        if (n1 <= 0.0)
            n1 = ref;
        for (const auto &s : d.scale_out)
            obs.entries.emplace_back(off + s.column,
                                     toLog(s.value / n1));
    }
    off += node_grid_.size();
    for (const auto &s : d.interference)
        obs.entries.emplace_back(off + s.column, s.value);
    for (const auto &s : d.caused)
        obs.entries.emplace_back(off + kNumSources + s.column, s.value);

    History &h = exhaustiveHistory(w.type);
    std::vector<double> row = completeRow(h, obs);

    est.scale_up_perf.resize(g);
    for (size_t c = 0; c < g; ++c)
        est.scale_up_perf[c] =
            fromLog(row[d.scale_up_platform * g + c]) * ref;
    est.cross_perf.resize(p_count * g);
    for (size_t p = 0; p < p_count; ++p)
        for (size_t c = 0; c < g; ++c)
            est.cross_perf[p * g + c] = fromLog(row[p * g + c]) * ref;
    // Derive platform factors as the median per-column ratio (used by
    // server ranking even in exhaustive mode).
    est.platform_factor.assign(p_count, 1.0);
    for (size_t p = 0; p < p_count; ++p) {
        std::vector<double> ratios;
        for (size_t c = 0; c < g; ++c) {
            double base = fromLog(row[d.scale_up_platform * g + c]);
            if (base > 1e-9)
                ratios.push_back(fromLog(row[p * g + c]) / base);
        }
        if (!ratios.empty()) {
            std::nth_element(ratios.begin(),
                             ratios.begin() + ratios.size() / 2,
                             ratios.end());
            est.platform_factor[p] = ratios[ratios.size() / 2];
        }
    }
    est.platform_factor[d.scale_up_platform] = 1.0;

    size_t so_off = p_count * g;
    est.scale_out_speedup.resize(node_grid_.size());
    for (size_t c = 0; c < node_grid_.size(); ++c)
        est.scale_out_speedup[c] = fromLog(row[so_off + c]);
    est.scale_out_speedup[0] = 1.0;

    size_t if_off = so_off + node_grid_.size();
    for (size_t i = 0; i < kNumSources; ++i) {
        est.tolerated[i] = std::clamp(row[if_off + i], 0.0, 1.0);
        est.caused_per_core[i] =
            std::clamp(row[if_off + kNumSources + i], 0.0, 0.5);
    }

    h.addOnline(std::move(obs), cfg_.max_history_rows);
    return est;
}

void
Classifier::feedbackScaleUp(WorkloadEstimate &est, size_t column,
                            double observed_perf)
{
    assert(column < est.scale_up_perf.size());
    est.scale_up_perf[column] = clampNonNeg(observed_perf);
    double ref = est.reference_value > 0.0 ? est.reference_value : 1.0;
    SparseRow row;
    row.entries.emplace_back(column, toLog(observed_perf / ref));
    // The corrected observation joins the history so future
    // classifications see it (the paper's feedback loop).
    scaleUpHistory(est.type).addOnline(std::move(row),
                                       cfg_.max_history_rows);
}

size_t
Classifier::onlineRows() const
{
    size_t n = scale_up_analytics_.online.size() +
               scale_up_latency_.online.size() +
               scale_up_stateful_.online.size() +
               scale_up_generic_.online.size() +
               heterogeneity_.online.size();
    for (const History &h : scale_out_)
        n += h.online.size();
    for (const History &h : interference_)
        n += h.online.size();
    return n;
}

size_t
Classifier::seedRows() const
{
    size_t n = scale_up_analytics_.seeds.size() +
               scale_up_latency_.seeds.size() +
               scale_up_stateful_.seeds.size() +
               scale_up_generic_.seeds.size() +
               heterogeneity_.seeds.size();
    for (const History &h : scale_out_)
        n += h.seeds.size();
    for (const History &h : interference_)
        n += h.seeds.size();
    return n;
}

} // namespace quasar::core
