/**
 * @file
 * Straggler detection for map-reduce-style frameworks (paper Sec. 4.3).
 *
 * Models a wave of concurrent map tasks whose progress is reported
 * periodically with noise. Three detectors are implemented:
 *
 *  - HadoopDetector: the framework's speculative execution — flag a
 *    task when its progress deficit versus the median exceeds a large
 *    threshold, sustained over several reports (conservative, to limit
 *    wasted speculative copies).
 *  - LateDetector: LATE-style — rank by estimated finish time, flag
 *    when the ETA exceeds the median ETA by a margin, also sustained.
 *  - QuasarDetector: flag candidates at a much lower deficit threshold
 *    (>= 50% slower than the median) and immediately confirm by
 *    injecting interference microbenchmarks and reclassifying in
 *    place; the probe takes a fixed time but eliminates the need for
 *    long sustained observation, so confirmed detections land earlier
 *    and false positives are filtered by the probe.
 */

#pragma once

#include <vector>

#include "stats/rng.hh"

namespace quasar::core
{

/** One map task in the wave. */
struct MapTask
{
    double duration = 0.0;     ///< true time to completion.
    bool straggler = false;    ///< slowed by interference/instability.

    /** Fraction complete at time t (clamped to 1). */
    double progressAt(double t) const;
};

/** A concurrent wave of map tasks with some stragglers. */
struct TaskWave
{
    std::vector<MapTask> tasks;
    double median_duration = 0.0;

    /**
     * Build a wave: normal tasks ~ lognormal around median, stragglers
     * run slow_factor times longer.
     */
    static TaskWave make(stats::Rng &rng, size_t num_tasks,
                         double median_duration, double straggler_frac,
                         double slow_factor);
};

/** Result of running one detector over a wave. */
struct DetectionResult
{
    /** Per-task detection time (-1 when never flagged). */
    std::vector<double> detect_time;
    /** Mean detection time over true stragglers that were caught. */
    double meanDetectTime() const;
    /** Fraction of true stragglers detected. */
    double recall(const TaskWave &wave) const;
    /** Number of non-stragglers incorrectly flagged. */
    size_t falsePositives(const TaskWave &wave) const;
};

/** Detector tuning. */
struct DetectorConfig
{
    double report_interval = 5.0;  ///< progress report period, seconds.
    double progress_noise = 0.04;  ///< lognormal sigma per report.

    /** Hadoop: deficit threshold and sustained reports required. */
    double hadoop_deficit = 0.50;
    size_t hadoop_sustain = 7;
    double hadoop_warmup = 60.0;

    /** LATE: ETA excess threshold and sustained reports. */
    double late_eta_excess = 0.60;
    size_t late_sustain = 11;
    double late_warmup = 30.0;

    /** Quasar: candidate deficit, probe duration, sustain. */
    double quasar_deficit = 0.50;
    size_t quasar_sustain = 7;
    double quasar_probe_time = 12.0;
    double quasar_warmup = 30.0;
};

/** Run the named detectors over a wave. */
DetectionResult detectHadoop(const TaskWave &wave,
                             const DetectorConfig &cfg, stats::Rng &rng);
DetectionResult detectLate(const TaskWave &wave, const DetectorConfig &cfg,
                           stats::Rng &rng);
DetectionResult detectQuasar(const TaskWave &wave,
                             const DetectorConfig &cfg, stats::Rng &rng);

} // namespace quasar::core

