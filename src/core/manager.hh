/**
 * @file
 * QuasarManager: the full cluster manager of the paper, tying together
 * sandboxed profiling, the four-way CF classification, greedy joint
 * allocation/assignment, admission control, runtime monitoring with
 * reactive and proactive phase detection, the misclassification
 * feedback loop, and conservative allocation adjustment (scale up or
 * down in place first, then out, with state-migration costs for
 * stateful services).
 */

#pragma once

#include <map>
#include <unordered_map>

#include "core/admission.hh"
#include "core/classifier.hh"
#include "core/monitor.hh"
#include "core/overload.hh"
#include "core/predictor.hh"
#include "core/scheduler.hh"
#include "driver/cluster_manager.hh"
#include "shard/sharded_scheduler.hh"
#include "workload/factory.hh"

namespace quasar::core
{

/** Top-level Quasar configuration. */
struct QuasarConfig
{
    profiling::ProfilerConfig profiler;
    ClassifierConfig classifier;
    SchedulerConfig scheduler;
    MonitorConfig monitor;
    /** Overload control + service autoscaler (core/overload.hh);
     *  disabled by default so existing decision paths and their
     *  placement hashes are unperturbed. */
    OverloadConfig overload;
    /** Sharded parallel decision path (src/shard/, DESIGN.md §14);
     *  shards == 0 (the default) keeps the classic single scheduler.
     *  DeterministicMerge reproduces the unsharded placements
     *  bit-identically at any K. */
    shard::ShardConfig shard;

    /** Enable proactive phase sampling (paper Sec. 4.1). */
    bool proactive_detection = true;
    double proactive_interval_s = 600.0;
    double proactive_fraction = 0.2;

    /** Enable the misclassification feedback loop (Sec. 3.2). */
    bool feedback_loop = true;
    /**
     * Size services against the forecast load this far ahead (Sec. 4.1
     * future work: PRESS/AGILE-style prediction as an extra signal);
     * 0 disables predictive sizing.
     */
    double predict_lead_s = 120.0;
    /** Feedback when |measured/predicted - 1| exceeds this. */
    double feedback_deviation = 0.15;

    /** Reclassify+reschedule after this many failed adjustments. */
    int underperf_strikes = 3;
    /** Minimum time between growth adjustments of one workload,
     *  seconds (conservative adaptation; prevents scale-out churn). */
    double adjust_cooldown_s = 30.0;
    /** Minimum time between shrinks (lazier than growth so the
     *  allocation does not oscillate around the target). */
    double shrink_cooldown_s = 180.0;
    /** A fresh placement must beat the current one by this factor
     *  before a reschedule abandons held resources. */
    double reschedule_hysteresis = 1.10;
    /** Minimum time between reclassify+reschedule attempts for one
     *  workload (each costs a fresh profiling pass). */
    double reschedule_cooldown_s = 300.0;
    /** Fraction of required perf below which a workload queues. */
    double admit_fraction = 0.5;
    /**
     * Use resource partitioning (Sec. 4.4: cache partitioning / NIC
     * rate limiting) to shield a workload from contention before
     * resorting to scaling or migration.
     */
    bool resource_partitioning = true;
    /** Migration bandwidth for stateful scale-out, GB/s. */
    double migration_gbps = 1.0;
    /** Capacity multiplier during a migration window. */
    double migration_factor = 0.9;

    /**
     * Retry backoff for workloads displaced by machine failures that
     * cannot be re-placed immediately (capacity temporarily gone):
     * first retry after failure_backoff_s, doubling up to the max.
     */
    double failure_backoff_s = 20.0;
    double failure_backoff_max_s = 160.0;
    /**
     * On re-placement after a failure, spread latency-critical
     * replicas across fault zones (Sec. 4.4) so a repeat outage of
     * the same rack/PDU cannot take the whole service down again.
     */
    bool spread_zones_on_recovery = true;

    uint64_t seed = 99;
};

/** Counters exposed for experiments and tests. */
struct QuasarStats
{
    /**
     * Wall-clock (host) time of the decision path, not simulated
     * time: what the manager itself costs. Rank/place breakdowns
     * live in GreedyScheduler::timing().
     */
    stats::TimerStat classify_time; ///< profiling + classification.
    /** Sandboxed profiling runs alone: the profiling subset of
     *  classify_time, plus proactive phase-change probes. */
    stats::TimerStat profile_time;
    stats::TimerStat schedule_time; ///< allocate() per schedule call.
    stats::TimerStat adapt_time;    ///< the adjust() decision body.

    size_t scheduled = 0;
    size_t queued = 0;
    size_t rescheduled = 0;
    size_t evictions = 0;
    size_t phase_reclassifications = 0;
    size_t scale_up_adjustments = 0;
    size_t scale_out_adjustments = 0;
    size_t shrinks = 0;
    size_t feedback_updates = 0;
    size_t partitions_granted = 0;
    /** @name Fault tolerance */
    /// @{
    size_t server_failures = 0;  ///< crash events seen.
    size_t tasks_displaced = 0;  ///< displaced workload shares.
    size_t recoveries = 0;       ///< displaced workloads re-placed.
    /// @}
    /** @name Overload control (split QoS-outcome accounting) */
    /// @{
    size_t overload_deferred = 0; ///< arrivals/retries pushed back.
    size_t shed = 0;              ///< terminal load sheds.
    size_t brownouts = 0;         ///< best-effort degradations.
    size_t brownout_restores = 0; ///< degradations undone.
    size_t overload_transitions = 0; ///< detector state changes.
    size_t autoscale_updates = 0; ///< policy control steps.
    /// @}
};

/** The Quasar cluster manager. */
class QuasarManager : public driver::ClusterManager
{
  public:
    QuasarManager(sim::Cluster &cluster,
                  workload::WorkloadRegistry &registry,
                  QuasarConfig cfg = {});

    /**
     * Exhaustively profile `count` representative workloads offline to
     * anchor the classification matrices (paper: 20-30 types).
     */
    void seedOffline(workload::WorkloadFactory &factory,
                     size_t count = 24, double t = 0.0);
    /** Seed with caller-provided workloads. */
    void seedOffline(const std::vector<workload::Workload> &seeds,
                     double t = 0.0);

    void onSubmit(WorkloadId id, double t) override;
    void onTick(double t) override;
    void onCompletion(WorkloadId id, double t) override;
    void onServerDown(ServerId sid,
                      const std::vector<WorkloadId> &displaced,
                      double t) override;
    void onServerUp(ServerId sid, double t) override;
    void onServerDegraded(ServerId sid, double speed_factor,
                          double t) override;
    std::string name() const override { return "quasar"; }

    /** @name Introspection */
    /// @{
    const WorkloadEstimate *estimateFor(WorkloadId id) const;
    const AdmissionQueue &admission() const { return admission_; }
    /** Profiling + classification + queue wait charged to id. */
    double overheadSeconds(WorkloadId id) const;
    const QuasarStats &stats() const { return stats_; }
    /** Displacement-to-re-placement times of recovered workloads. */
    const stats::Samples &recoveryTimes() const
    {
        return recovery_times_;
    }
    const profiling::Profiler &profiler() const { return profiler_; }
    Classifier &classifier() { return classifier_; }
    const GreedyScheduler &scheduler() const { return scheduler_; }
    /** The sharded decision front-end, or nullptr when shards == 0. */
    const shard::ShardedScheduler *sharded() const
    {
        return sharded_ ? &*sharded_ : nullptr;
    }
    /** Overload controller (state machine, shed/boost decisions,
     *  decision hash, time-in-state). */
    const OverloadController &overload() const { return overload_; }
    /// @}

  private:
    double requiredPerf(const workload::Workload &w, double t) const;
    bool trySchedule(WorkloadId id, double t, bool requeue_on_fail);
    /** Re-place a workload displaced by a crash (no re-profiling). */
    void replaceDisplaced(WorkloadId id, double t);
    /** Close the recovery-time window for a re-placed workload. */
    void noteRecovered(WorkloadId id, double t);
    void applyAllocation(workload::Workload &w, const Allocation &alloc,
                         double t);
    void releaseWorkload(WorkloadId id);
    /** Predicted absolute perf of the current placement. */
    double predictCurrent(const workload::Workload &w,
                          const WorkloadEstimate &est) const;
    bool tryScaleUp(workload::Workload &w, const WorkloadEstimate &est,
                    double required, double t);
    /**
     * Grant private partitions on sources where the workload's
     * contention exceeds its classified tolerance (when enabled).
     */
    bool tryPartition(workload::Workload &w,
                      const WorkloadEstimate &est);
    bool tryScaleOut(workload::Workload &w, const WorkloadEstimate &est,
                     double required, double t);
    void shrinkAllocation(workload::Workload &w,
                          const WorkloadEstimate &est, double required,
                          double t);
    void adjust(workload::Workload &w, double t);
    void reclassifyAndReschedule(workload::Workload &w, double t);
    EstimateLookup estimateLookup() const;
    /** Every scheduling decision funnels through here: the sharded
     *  path when configured, the classic scheduler otherwise. */
    std::optional<Allocation>
    schedAllocate(const workload::Workload &w,
                  const WorkloadEstimate &est, double required_perf,
                  const EstimateLookup &estimates, bool may_evict);

    /**
     * One admission retry pass (tick / completion / server-up), with
     * overload gating: due entries are shed, re-deferred, or retried.
     * ignore_backoff drains everything (fresh capacity appeared).
     */
    void drainAdmission(double t, bool ignore_backoff);

    /** @name Overload control (core/overload.hh) */
    /// @{
    /** Terminal shed of a queued workload (accounted, never lost). */
    void shedWorkload(workload::Workload &w, double t);
    /** Degrade placed best-effort work while Overloaded, restore it
     *  once the detector is back to Normal. */
    void applyBrownout(double t);
    void restoreBrownout(double t);
    /** One autoscale round over the active placed services. */
    void autoscaleServices(double t);
    /// @}

    sim::Cluster &cluster_;
    workload::WorkloadRegistry &registry_;
    QuasarConfig cfg_;
    profiling::Profiler profiler_;
    Classifier classifier_;
    GreedyScheduler scheduler_;
    /** Engaged when cfg.shard.enabled(); owns the per-shard workers
     *  and the commit protocol, replacing scheduler_ as the decision
     *  path (scheduler_ still serves quality/platform queries). */
    std::optional<shard::ShardedScheduler> sharded_;
    Monitor monitor_;
    AdmissionQueue admission_;
    OverloadController overload_;
    stats::Rng rng_;

    std::unordered_map<WorkloadId, WorkloadEstimate> estimates_;
    std::unordered_map<WorkloadId, int> strikes_;
    std::unordered_map<WorkloadId, double> last_adjust_;
    std::unordered_map<WorkloadId, double> last_reschedule_;
    std::unordered_map<WorkloadId, LoadPredictor> predictors_;
    std::unordered_map<WorkloadId, double> overhead_s_;
    /** Displacement time of workloads awaiting re-placement. */
    std::unordered_map<WorkloadId, double> displaced_at_;
    /** Pre-brownout share sizes, for the restore path. std::map so
     *  the apply/restore walk order is deterministic. */
    struct BrownoutShare
    {
        ServerId server;
        int cores;
        double memory_gb;
    };
    std::map<WorkloadId, std::vector<BrownoutShare>> brownout_saved_;
    stats::Samples recovery_times_;
    double last_proactive_ = 0.0;
    QuasarStats stats_;
};

} // namespace quasar::core

