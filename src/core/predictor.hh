/**
 * @file
 * Load prediction for user-facing services (paper Sec. 4.1 lists
 * PRESS/AGILE-style predictors as future work): Holt's linear
 * exponential smoothing over irregularly sampled load observations.
 * The manager uses the forecast as an additional sizing signal so
 * capacity is grown *before* a load ramp arrives rather than after
 * the monitor notices the miss.
 */

#pragma once

#include <cstddef>

namespace quasar::core
{

/** Holt's level+trend smoother with time-aware updates. */
class LoadPredictor
{
  public:
    /**
     * @param alpha level smoothing factor in (0, 1].
     * @param beta trend smoothing factor in (0, 1].
     */
    explicit LoadPredictor(double alpha = 0.4, double beta = 0.2)
        : alpha_(alpha), beta_(beta) {}

    /** Feed one observation; t must be non-decreasing. */
    void observe(double t, double value);

    /**
     * Forecast the load at an absolute future time (clamped at 0).
     * Before warm-up (fewer than 3 observations) returns the last
     * value seen.
     */
    double predict(double t_future) const;

    /** True once enough observations arrived to trust the trend. */
    bool warmedUp() const { return count_ >= 3; }

    double level() const { return level_; }
    /** Trend in load units per second. */
    double trendPerSecond() const { return trend_; }
    size_t observations() const { return count_; }

  private:
    double alpha_;
    double beta_;
    double level_ = 0.0;
    double trend_ = 0.0;
    double last_t_ = 0.0;
    size_t count_ = 0;
};

} // namespace quasar::core

