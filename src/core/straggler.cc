#include "core/straggler.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::core
{

double
MapTask::progressAt(double t) const
{
    if (duration <= 0.0)
        return 1.0;
    return std::min(1.0, t / duration);
}

TaskWave
TaskWave::make(stats::Rng &rng, size_t num_tasks, double median_duration,
               double straggler_frac, double slow_factor)
{
    assert(num_tasks > 0 && median_duration > 0.0 && slow_factor > 1.0);
    TaskWave wave;
    wave.median_duration = median_duration;
    wave.tasks.reserve(num_tasks);
    for (size_t i = 0; i < num_tasks; ++i) {
        MapTask task;
        task.duration = median_duration * rng.lognormalNoise(0.08);
        task.straggler = rng.chance(straggler_frac);
        if (task.straggler)
            task.duration *= slow_factor;
        wave.tasks.push_back(task);
    }
    // Guarantee at least one straggler so detection metrics exist.
    bool any = false;
    for (const MapTask &t : wave.tasks)
        any = any || t.straggler;
    if (!any) {
        wave.tasks.front().straggler = true;
        wave.tasks.front().duration *= slow_factor;
    }
    return wave;
}

double
DetectionResult::meanDetectTime() const
{
    double sum = 0.0;
    size_t n = 0;
    for (double t : detect_time) {
        if (t >= 0.0) {
            sum += t;
            ++n;
        }
    }
    return n ? sum / double(n) : -1.0;
}

double
DetectionResult::recall(const TaskWave &wave) const
{
    size_t caught = 0, total = 0;
    for (size_t i = 0; i < wave.tasks.size(); ++i) {
        if (wave.tasks[i].straggler) {
            ++total;
            if (detect_time[i] >= 0.0)
                ++caught;
        }
    }
    return total ? double(caught) / double(total) : 1.0;
}

size_t
DetectionResult::falsePositives(const TaskWave &wave) const
{
    size_t fp = 0;
    for (size_t i = 0; i < wave.tasks.size(); ++i)
        if (!wave.tasks[i].straggler && detect_time[i] >= 0.0)
            ++fp;
    return fp;
}

namespace
{

/** Noisy progress vector at time t. */
std::vector<double>
reportProgress(const TaskWave &wave, double t, double noise,
               stats::Rng &rng)
{
    std::vector<double> p;
    p.reserve(wave.tasks.size());
    for (const MapTask &task : wave.tasks) {
        double v = task.progressAt(t);
        if (v < 1.0)
            v = std::min(1.0, v * rng.lognormalNoise(noise));
        p.push_back(v);
    }
    return p;
}

double
median(std::vector<double> v)
{
    assert(!v.empty());
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
}

/**
 * Generic sustained-deficit scan: flag task i when deficient(i, t)
 * holds for `sustain` consecutive reports after `warmup`, and record
 * flag time + extra_delay.
 */
template <typename Deficient>
DetectionResult
scanSustained(const TaskWave &wave, const DetectorConfig &cfg,
              stats::Rng &rng, double warmup, size_t sustain,
              double extra_delay, bool require_straggler_confirm,
              Deficient deficient)
{
    const size_t n = wave.tasks.size();
    DetectionResult res;
    res.detect_time.assign(n, -1.0);
    std::vector<size_t> streak(n, 0);

    double horizon = 0.0;
    for (const MapTask &t : wave.tasks)
        horizon = std::max(horizon, t.duration);

    for (double t = cfg.report_interval; t <= horizon;
         t += cfg.report_interval) {
        std::vector<double> p =
            reportProgress(wave, t, cfg.progress_noise, rng);
        double med = median(p);
        for (size_t i = 0; i < n; ++i) {
            if (res.detect_time[i] >= 0.0 || p[i] >= 1.0)
                continue;
            if (t < warmup) {
                streak[i] = 0;
                continue;
            }
            if (deficient(i, t, p, med)) {
                if (++streak[i] >= sustain) {
                    // Quasar's confirmation probe rejects candidates
                    // whose slowdown is not interference-caused.
                    if (require_straggler_confirm &&
                        !wave.tasks[i].straggler) {
                        streak[i] = 0;
                        continue;
                    }
                    res.detect_time[i] = t + extra_delay;
                }
            } else {
                streak[i] = 0;
            }
        }
    }
    return res;
}

} // namespace

DetectionResult
detectHadoop(const TaskWave &wave, const DetectorConfig &cfg,
             stats::Rng &rng)
{
    return scanSustained(
        wave, cfg, rng, cfg.hadoop_warmup, cfg.hadoop_sustain, 0.0,
        false,
        [&cfg](size_t i, double, const std::vector<double> &p,
               double med) {
            return p[i] < (1.0 - cfg.hadoop_deficit) * med;
        });
}

DetectionResult
detectLate(const TaskWave &wave, const DetectorConfig &cfg,
           stats::Rng &rng)
{
    return scanSustained(
        wave, cfg, rng, cfg.late_warmup, cfg.late_sustain, 0.0, false,
        [&cfg](size_t i, double t, const std::vector<double> &p,
               double med) {
            // Estimated total duration from current progress.
            double eta_i = p[i] > 1e-9 ? t / p[i] : 1e18;
            double eta_med = med > 1e-9 ? t / med : 1e18;
            return eta_i > (1.0 + cfg.late_eta_excess) * eta_med;
        });
}

DetectionResult
detectQuasar(const TaskWave &wave, const DetectorConfig &cfg,
             stats::Rng &rng)
{
    return scanSustained(
        wave, cfg, rng, cfg.quasar_warmup, cfg.quasar_sustain,
        cfg.quasar_probe_time, true,
        [&cfg](size_t i, double, const std::vector<double> &p,
               double med) {
            return p[i] < (1.0 - cfg.quasar_deficit) * med;
        });
}

} // namespace quasar::core
