/**
 * @file
 * Overload control and SLO-guaranteed graceful degradation.
 *
 * Quasar's adapt loop (core/manager.cc) rightsizes individual
 * workloads but has no notion of sustained cluster-wide overload: an
 * open-loop arrival stream past capacity just grows the admission
 * queue while every latency service drowns together. This module adds
 * the missing control layer:
 *
 *  1. OverloadDetector — utilization-headroom and admission-depth
 *     probes drive an explicit Normal / Pressured / Overloaded state
 *     machine. Upgrades are immediate; downgrades require the metrics
 *     to clear a hysteresis band below the entry thresholds AND a
 *     minimum dwell in the current state, one level per update, so
 *     the state cannot flap at a band edge.
 *
 *  2. Priority-aware shedding and backpressure — under Pressured the
 *     manager defers best-effort arrivals and retries with
 *     exponential backoff; under Overloaded it also defers batch
 *     classes, and queued sheddable work older than the shed deadline
 *     is dropped into an explicit terminal `shed` state. Latency-
 *     critical services are never deferred or shed (the Alibaba
 *     co-location ordering: best-effort batch absorbs overload so
 *     services keep their SLOs). Every arrival therefore ends
 *     admitted, completed, or accounted-shed.
 *
 *  3. Brownout — instead of binary shed, admitted best-effort work is
 *     degraded to a reduced-core allocation while Overloaded and
 *     restored by the controller once the cluster returns to Normal.
 *
 *  4. A PerfEnforce-style autoscaler on the service model: per
 *     service, a pluggable scaling policy (reactive step, or PI with
 *     conditional-integration anti-windup) tracks an SLO setpoint on
 *     the monitored normalized performance and outputs a demand boost
 *     multiplier applied to the service's required performance, which
 *     the existing adapt loop (scale up / out / shrink) then enacts.
 *
 * Replay contract: every decision here is a pure function of (config,
 * placements, monitor readings), all of which are bit-identical
 * across scheduler modes and re-replays, so shedding and scaling
 * decisions are too. The controller folds each decision into an
 * FNV-1a hash (deciding ticks, state transitions, defers, sheds,
 * brownouts, restores, boost outputs) that benches compare across
 * modes exactly like the placement hash.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "common/types.hh"
#include "stats/summary.hh"
#include "workload/workload.hh"

namespace quasar::core
{

/** The overload state machine's three regimes. */
enum class OverloadState
{
    Normal = 0,
    Pressured = 1,
    Overloaded = 2,
};

const char *overloadStateName(OverloadState s);

/** Which scaling policy drives the service autoscaler. */
enum class ScalingPolicyKind
{
    None,     ///< autoscaler disabled (boost is always 1).
    Reactive, ///< fixed step toward the setpoint per update.
    Pi,       ///< PI control with anti-windup (PerfEnforce-style).
};

/** All overload-control knobs (QuasarConfig::overload). */
struct OverloadConfig
{
    /** Master switch; disabled leaves every existing decision path
     *  (and its placement hashes) untouched. */
    bool enabled = false;

    /** @name Detector thresholds */
    /// @{
    /** Reserved-CPU fraction entering Pressured / Overloaded. */
    double util_pressured = 0.85;
    double util_overloaded = 0.97;
    /** Admission-queue depth entering Pressured / Overloaded. */
    size_t depth_pressured = 24;
    size_t depth_overloaded = 96;
    /**
     * Hysteresis band: a downgrade requires the metrics below
     * enter_threshold * (1 - hysteresis), not merely below the entry
     * threshold, so hovering at the band edge cannot flap the state.
     */
    double hysteresis = 0.10;
    /** Minimum dwell in a state before any downgrade. */
    double min_dwell_s = 30.0;
    /// @}

    /** @name Shedding and backpressure */
    /// @{
    /** Exponential backoff for overload-deferred arrivals. */
    double defer_base_s = 20.0;
    double defer_max_s = 160.0;
    /**
     * Deadline-aware shed: while Overloaded, queued sheddable work
     * that has waited longer than this is dropped (terminal state).
     */
    double shed_deadline_s = 600.0;
    /**
     * Aging / starvation guard: queued entries older than this are
     * always due for retry (regardless of backoff) AND escape the
     * defer gate for a real scheduling attempt — without it, deferred
     * work keeps the queue deep, which keeps the detector pressured,
     * which re-defers forever. Shedding still takes precedence while
     * Overloaded. <= 0 disables.
     */
    double aging_limit_s = 300.0;
    /// @}

    /** @name Brownout */
    /// @{
    bool brownout = true;
    /** Cores a browned-out best-effort share is reduced to. */
    int brownout_cores = 1;
    /// @}

    /** @name Service autoscaler */
    /// @{
    ScalingPolicyKind policy = ScalingPolicyKind::Pi;
    /** Normalized-performance setpoint (1.0 = target exactly met). */
    double slo_setpoint = 1.0;
    /** No control action while |error| is inside the deadband. */
    double deadband = 0.05;
    double kp = 0.8;
    double ki = 0.05;
    /** Reactive policy: boost step per update, in boost units. */
    double reactive_step = 0.25;
    /** Output clamp: boost multiplier on required performance. */
    double boost_min = 1.0;
    double boost_max = 3.0;
    /** Controller period (updates are no denser than this). */
    double scale_interval_s = 30.0;
    /// @}
};

/**
 * Hysteresis + dwell state machine over the utilization and depth
 * probes. update() is called once per manager tick.
 */
class OverloadDetector
{
  public:
    explicit OverloadDetector(const OverloadConfig &cfg);

    /**
     * Feed one probe sample; returns the (possibly new) state.
     * @param t simulation time (monotone across calls).
     * @param util reserved-CPU fraction of the cluster, [0, 1].
     * @param depth admission-queue depth.
     */
    OverloadState update(double t, double util, size_t depth);

    OverloadState state() const { return state_; }
    size_t transitions() const { return dwell_.transitions(); }

    /** Time-in-state accounting (through the last update). */
    const stats::StateDwell &dwell() const { return dwell_; }

  private:
    /** State the raw metrics call for via the entry thresholds. */
    OverloadState severityOf(double util, size_t depth) const;
    /** True when the metrics clear the exit band below `level`. */
    bool clearsExitBand(OverloadState level, double util,
                        size_t depth) const;

    OverloadConfig cfg_;
    OverloadState state_ = OverloadState::Normal;
    double entered_at_ = 0.0;
    bool started_ = false;
    stats::StateDwell dwell_;
};

/**
 * One service's scaling policy: maps the SLO tracking error to a new
 * demand-boost multiplier. Stateful (each service owns an instance);
 * the interface is the hook for learned policies later.
 */
class ScalingPolicy
{
  public:
    virtual ~ScalingPolicy() = default;

    /**
     * One control step.
     * @param error setpoint - measured normalized performance
     *        (positive = underperforming).
     * @param dt seconds since the previous update.
     * @param current the boost currently in effect.
     * @return the new boost, already clamped to the config's range.
     */
    virtual double update(double error, double dt, double current) = 0;

    virtual void reset() = 0;
};

/** Fixed-step reactive policy: +/- reactive_step toward the target. */
class ReactiveStepPolicy : public ScalingPolicy
{
  public:
    explicit ReactiveStepPolicy(const OverloadConfig &cfg) : cfg_(cfg) {}
    double update(double error, double dt, double current) override;
    void reset() override {}

  private:
    OverloadConfig cfg_;
};

/**
 * PI controller with anti-windup: boost = clamp(1 + kp*e + I), where
 * the integral term I accumulates ki*e*dt only while the output is
 * unsaturated or the error drives it back off the rail (conditional
 * integration), and is itself clamped to the reachable output range —
 * a long saturation episode therefore cannot wind the integral up,
 * and recovery off the rail starts immediately.
 */
class PiPolicy : public ScalingPolicy
{
  public:
    explicit PiPolicy(const OverloadConfig &cfg) : cfg_(cfg) {}
    double update(double error, double dt, double current) override;
    void reset() override { integral_ = 0.0; }

    double integral() const { return integral_; }

  private:
    OverloadConfig cfg_;
    double integral_ = 0.0;
};

/** Factory (the pluggable-policy seam); null for Kind::None. */
std::unique_ptr<ScalingPolicy>
makeScalingPolicy(const OverloadConfig &cfg);

/** Counters the controller keeps (mirrored into QuasarStats). */
struct OverloadCounters
{
    size_t deferred = 0;   ///< arrivals/retries pushed back.
    size_t shed = 0;       ///< terminal sheds.
    size_t brownouts = 0;  ///< workloads degraded.
    size_t restores = 0;   ///< workloads restored from brownout.
    size_t autoscale_updates = 0;
};

/**
 * The per-manager overload controller: detector + shedding policy +
 * brownout bookkeeping + per-service autoscaler, with every decision
 * folded into a deterministic FNV-1a hash for replay verification.
 * The QuasarManager owns one and consults it from onSubmit/onTick;
 * this class itself never touches the cluster.
 */
class OverloadController
{
  public:
    explicit OverloadController(const OverloadConfig &cfg);

    bool enabled() const { return cfg_.enabled; }
    const OverloadConfig &config() const { return cfg_; }

    /**
     * One detector step (call once per tick, before any gating
     * decision of that tick). Folds the sample and any transition
     * into the decision hash; returns the new state.
     */
    OverloadState observe(double t, double util, size_t depth);

    OverloadState state() const { return detector_.state(); }
    const OverloadDetector &detector() const { return detector_; }

    /**
     * Whether this workload's class is gated (deferred rather than
     * scheduled) in the current state: best-effort from Pressured up,
     * non-latency-critical batch only while Overloaded, services
     * never.
     */
    bool shouldDefer(const workload::Workload &w) const;

    /**
     * Deadline-aware shed decision for a queued workload: only while
     * Overloaded, only sheddable classes (never latency-critical),
     * and only after the workload has waited past the shed deadline.
     * @param queued_age seconds since the workload joined the queue.
     */
    bool shouldShed(const workload::Workload &w,
                    double queued_age) const;

    /** Record a defer / shed / brownout / restore decision (hash +
     *  counters). */
    void noteDefer(WorkloadId id, double t);
    void noteShed(WorkloadId id, double t);
    void noteBrownout(WorkloadId id, double t);
    void noteRestore(WorkloadId id, double t);

    /** @name Service autoscaler */
    /// @{
    /**
     * Whether an autoscale round is due at time t (scale_interval
     * pacing); records the round when it is. The manager then calls
     * updateBoost for each active service of the round.
     */
    bool beginScaleRound(double t);

    /**
     * One control step for a service: runs its policy on the measured
     * normalized performance and returns the new boost. Folds the
     * output into the decision hash.
     */
    double updateBoost(WorkloadId id, double measured_norm, double t);

    /** Demand-boost multiplier in effect (1.0 when disabled). */
    double boostFor(WorkloadId id) const;

    /** Drop per-service controller state (completion / shed). */
    void forget(WorkloadId id);
    /// @}

    /**
     * FNV-1a fold of every decision so far; bit-identical across
     * scheduler modes and re-replays for a fixed (config, seed).
     */
    uint64_t decisionHash() const { return hash_; }

    const OverloadCounters &counters() const { return counters_; }

    /** Fraction of observed time spent in the given state. */
    double fractionIn(OverloadState s) const
    {
        return detector_.dwell().fractionIn(size_t(s));
    }

  private:
    void fold(uint64_t v);
    void foldDouble(double v);

    OverloadConfig cfg_;
    OverloadDetector detector_;
    /** Per-service policy instances + current boost. std::map keeps
     *  every iteration (and hash fold order) deterministic. */
    struct ServiceControl
    {
        std::unique_ptr<ScalingPolicy> policy;
        double boost = 1.0;
        double last_update = -1.0;
    };
    std::map<WorkloadId, ServiceControl> services_;
    double last_scale_ = -1.0;
    OverloadCounters counters_;
    uint64_t hash_ = 0xCBF29CE484222325ULL;
};

} // namespace quasar::core
