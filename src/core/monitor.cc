#include "core/monitor.hh"

#include <cmath>

namespace quasar::core
{

double
Monitor::measure(const workload::Workload &w, double t)
{
    double perf = oracle_.normalizedPerformance(w, t);
    return perf * rng_.lognormalNoise(cfg_.noise_sigma);
}

double
Monitor::measureAbsolute(const workload::Workload &w, double t)
{
    double value = workload::isLatencyCritical(w.type)
                       ? oracle_.serviceCapacityQps(w, t)
                       : oracle_.currentRate(w, t);
    return value * rng_.lognormalNoise(cfg_.noise_sigma);
}

Alert
Monitor::check(const workload::Workload &w, double t)
{
    double perf = measure(w, t);
    if (perf < 1.0 - cfg_.underperf_tolerance)
        return Alert::Underperforming;
    if (perf > cfg_.overprovision_threshold)
        return Alert::Overprovisioned;
    return Alert::None;
}

bool
Monitor::probePhaseChange(const workload::Workload &w,
                          const WorkloadEstimate &est,
                          const profiling::Profiler &profiler, double t)
{
    const auto &top =
        profiler.catalog()[profiler.scaleUpPlatform()];
    // A phase change shifts sensitivity coherently across resources,
    // while a single-source deviation is more likely classification
    // noise — require a majority of probed sources to deviate before
    // signaling (keeps the false-positive rate near the paper's 8%).
    // Probe only informative sources: one whose tolerance is already
    // saturated at 1.0 cannot show a deviation.
    auto perm = rng_.permutation(interference::kNumSources);
    size_t probes = 0;
    size_t deviated = 0;
    for (size_t i : perm) {
        if (probes >= cfg_.phase_probe_sources)
            break;
        if (est.tolerated[i] >= 0.97)
            continue;
        ++probes;
        double now = profiler.probeTolerance(
            w, t, top, est.reference, interference::sourceAt(i));
        if (std::fabs(now - est.tolerated[i]) > cfg_.phase_deviation)
            ++deviated;
    }
    return probes > 0 && 2 * deviated > probes;
}

} // namespace quasar::core
