#include "core/scheduler.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "stats/timing.hh"

#ifdef QUASAR_VERIFY
#include <cstdio>
#include <cstdlib>

#include "verify/verify.hh"
#endif

namespace quasar::core
{

using workload::FrameworkKnobs;
using workload::Workload;

int
Allocation::totalCores() const
{
    int n = 0;
    for (const AllocationNode &node : nodes)
        n += node.cores;
    return n;
}

double
Allocation::totalMemoryGb() const
{
    double m = 0.0;
    for (const AllocationNode &node : nodes)
        m += node.memory_gb;
    return m;
}

namespace
{

struct Evictable
{
    int cores = 0;
    double memory_gb = 0.0;
    double storage_gb = 0.0;
};

/**
 * Best-effort residents' totals in task order. The single source of
 * truth for this sum: the cache refresh and the full_rescan path both
 * call it, so the two decision paths see bitwise-identical values.
 */
Evictable
bestEffortTotals(const sim::Server &srv)
{
    Evictable e;
    for (const sim::TaskShare &t : srv.tasks()) {
        if (t.best_effort) {
            e.cores += t.cores;
            e.memory_gb += t.memory_gb;
            e.storage_gb += t.storage_gb;
        }
    }
    return e;
}

/** Strict-weak order for ranking: quality desc, id asc on ties. */
bool
rankedBefore(const std::pair<double, ServerId> &a,
             const std::pair<double, ServerId> &b)
{
    if (a.first != b.first)
        return a.first > b.first;
    return a.second < b.second;
}

} // namespace

void
GreedyScheduler::rebuildPlatformIndex() const
{
    platform_idx_.clear();
    const auto &catalog = cluster_.catalog();
    for (size_t i = 0; i < catalog.size(); ++i)
        platform_idx_[catalog[i].name] = i;
    indexed_catalog_size_ = catalog.size();
}

size_t
GreedyScheduler::platformIndexOf(const sim::Server &srv) const
{
    if (cluster_.catalog().size() != indexed_catalog_size_)
        rebuildPlatformIndex();
    auto it = platform_idx_.find(srv.platform().name);
    if (it == platform_idx_.end()) {
        // Catalog mutated without a size change; rebuild once.
        rebuildPlatformIndex();
        it = platform_idx_.find(srv.platform().name);
        assert(it != platform_idx_.end());
    }
    return it->second;
}

void
GreedyScheduler::refreshEntry(const sim::Server &srv,
                              ServerCacheEntry &e) const
{
    e.contention = srv.contentionForNewcomer();
    e.free_cores = srv.coresFree();
    e.free_mem = srv.memoryFree();
    e.free_storage = srv.storageFree();
    e.speed = srv.speedFactor();
    e.available = srv.available();
    Evictable be = bestEffortTotals(srv);
    e.be_cores = be.cores;
    e.be_mem = be.memory_gb;
    e.be_storage = be.storage_gb;
    e.platform_idx = platformIndexOf(srv);
    e.version = srv.version();
}

const GreedyScheduler::ServerCacheEntry &
GreedyScheduler::cachedState(const sim::Server &srv) const
{
    if (cache_.size() < cluster_.size())
        cache_.resize(cluster_.size());
    ServerCacheEntry &e = cache_[size_t(srv.id())];
    if (e.version != srv.version())
        refreshEntry(srv, e);
    return e;
}

void
GreedyScheduler::refreshIndex() const
{
    const sim::ChangeJournal &journal = cluster_.journal();
    if (cache_.size() < cluster_.size())
        cache_.resize(cluster_.size());
    bool force = cluster_.catalog().size() != indexed_catalog_size_;
    if (force)
        rebuildPlatformIndex(); // platform indices may have moved
    if (force || !index_primed_ || journal_cursor_ < journal.base()) {
        // First use, a cursor compacted out of the journal, or a
        // catalog change: fall back to the full epoch-check scan
        // (exactly the cached mode's per-decision cost, once).
        for (size_t i = 0; i < cluster_.size(); ++i) {
            const sim::Server &srv = cluster_.server(ServerId(i));
            ServerCacheEntry &e = cache_[i];
            if (force || e.version != srv.version())
                refreshEntry(srv, e);
        }
        index_primed_ = true;
    } else {
        // Incremental: replay only the servers touched since this
        // scheduler's last decision. Duplicate journal entries dedupe
        // through the epoch compare (first replay refreshes, the rest
        // no-op).
        for (uint64_t pos = journal_cursor_; pos < journal.end();
             ++pos) {
            const sim::Server &srv = cluster_.server(journal.at(pos));
            ServerCacheEntry &e = cache_[size_t(srv.id())];
            if (e.version != srv.version())
                refreshEntry(srv, e);
        }
    }
    journal_cursor_ = journal.end();
#ifdef QUASAR_VERIFY
    auditIndexCoherence();
#endif
}

#ifdef QUASAR_VERIFY
void
GreedyScheduler::auditIndexCoherence() const
{
    // Sampled (every 64th refresh): the full recompute is O(N x
    // ledger) and the refresh runs per decision, so auditing every
    // call would dominate verify-build suites without adding much —
    // a desynchronized entry stays desynchronized until its next
    // legitimate refresh and is caught by a later sample or by the
    // shadow oracle's divergence check.
    static uint64_t refreshes = 0;
    if (++refreshes % 64 != 0)
        return;
    for (size_t i = 0; i < cluster_.size(); ++i) {
        const sim::Server &srv = cluster_.server(ServerId(i));
        const ServerCacheEntry &cached = cache_[i];
        if (cached.version != srv.version()) {
            std::fprintf(stderr,
                         "QUASAR_VERIFY: index entry for server %zu "
                         "is stale after journal replay (entry epoch "
                         "%llu, server epoch %llu) — a mutation was "
                         "not journaled\n",
                         i, (unsigned long long)cached.version,
                         (unsigned long long)srv.version());
            std::abort();
        }
        ServerCacheEntry fresh;
        refreshEntry(srv, fresh);
        if (fresh.contention != cached.contention ||
            fresh.free_cores != cached.free_cores ||
            fresh.free_mem != cached.free_mem ||
            fresh.free_storage != cached.free_storage ||
            fresh.speed != cached.speed ||
            fresh.available != cached.available ||
            fresh.be_cores != cached.be_cores ||
            fresh.be_mem != cached.be_mem ||
            fresh.be_storage != cached.be_storage ||
            fresh.platform_idx != cached.platform_idx) {
            std::fprintf(stderr,
                         "QUASAR_VERIFY: index entry for server %zu "
                         "matches the server's change epoch but not "
                         "its state — a placement-relevant mutation "
                         "skipped bumpVersion()\n",
                         i);
            std::abort();
        }
    }
}
#endif

bool
GreedyScheduler::evictable(const sim::TaskShare &victim,
                           const workload::Workload &w) const
{
    if (victim.best_effort)
        return true;
    // Priority preemption (Sec. 4.4): only with registry access, and
    // only for strictly lower priority.
    if (!registry_ || !registry_->contains(victim.workload))
        return false;
    return registry_->get(victim.workload).priority < w.priority;
}

void
GreedyScheduler::priorityEvictable(const sim::Server &srv,
                                   const workload::Workload &w,
                                   int &cores, double &memory_gb,
                                   double &storage_gb) const
{
    if (!registry_)
        return;
    for (const sim::TaskShare &t : srv.tasks()) {
        if (t.best_effort)
            continue; // the cache already totals the best-effort pool
        if (!registry_->contains(t.workload))
            continue;
        if (registry_->get(t.workload).priority < w.priority) {
            cores += t.cores;
            memory_gb += t.memory_gb;
            storage_gb += t.storage_gb;
        }
    }
}

double
GreedyScheduler::serverQuality(const sim::Server &srv,
                               const WorkloadEstimate &est) const
{
    // Quality = platform speedup x predicted interference multiplier.
    // Degraded machines rank (and predict) proportionally lower; a
    // down machine is worth nothing.
    if (cfg_.full_rescan) {
        double pf = est.platform_factor[platformIndexOf(srv)];
        double im = est.interferenceMultiplier(
            srv.contentionForNewcomer(), cfg_.slope_guess);
        return pf * im * srv.speedFactor();
    }
    if (cfg_.dirty_set) {
        // Public entry point (the manager scores live placements with
        // it between decisions): replay the journal first so the entry
        // reflects any mutation since the last refresh.
        refreshIndex();
        const ServerCacheEntry &e = cache_[size_t(srv.id())];
        double pf = est.platform_factor[e.platform_idx];
        double im = est.interferenceMultiplier(e.contention,
                                               cfg_.slope_guess);
        return pf * im * e.speed;
    }
    double pf = est.platform_factor[platformIndexOf(srv)];
    const ServerCacheEntry &e = cachedState(srv);
    double im = est.interferenceMultiplier(e.contention,
                                           cfg_.slope_guess);
    return pf * im * e.speed;
}

GreedyScheduler::NodePick
GreedyScheduler::pickNodeConfig(const sim::Server &srv, const Workload &w,
                                const WorkloadEstimate &est,
                                bool count_evictable,
                                double perf_needed) const
{
    NodePick pick;
    size_t p_idx;
    int free_cores;
    double free_mem, free_storage, interf;
    if (cfg_.full_rescan) {
        p_idx = platformIndexOf(srv);
        free_cores = srv.coresFree();
        free_mem = srv.memoryFree();
        free_storage = srv.storageFree();
        interf = est.interferenceMultiplier(srv.contentionForNewcomer(),
                                            cfg_.slope_guess) *
                 srv.speedFactor();
        if (count_evictable) {
            Evictable be = bestEffortTotals(srv);
            free_cores += be.cores;
            free_mem += be.memory_gb;
            free_storage += be.storage_gb;
        }
    } else {
        const ServerCacheEntry &e = cachedState(srv);
        p_idx = cfg_.dirty_set ? e.platform_idx : platformIndexOf(srv);
        free_cores = e.free_cores;
        free_mem = e.free_mem;
        free_storage = e.free_storage;
        interf = est.interferenceMultiplier(e.contention,
                                            cfg_.slope_guess) *
                 e.speed;
        if (count_evictable) {
            free_cores += e.be_cores;
            free_mem += e.be_mem;
            free_storage += e.be_storage;
        }
    }
    if (count_evictable) {
        priorityEvictable(srv, w, free_cores, free_mem, free_storage);
    }
    if (free_cores < 1 || free_storage < w.storage_gb_per_node)
        return pick;

    // Scan feasible columns for the best achievable node perf.
    double best_perf = 0.0;
    for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
        const auto &cfg = est.scale_up_grid[c];
        if (cfg.cores > free_cores || cfg.memory_gb > free_mem + 1e-9)
            continue;
        best_perf = std::max(best_perf,
                             est.nodePerf(p_idx, c) * interf);
    }
    if (best_perf <= 0.0)
        return pick;

    // Right-size: the cheapest column whose predicted perf reaches the
    // goal (the residual target, capped by what the server can give).
    double goal = std::min(best_perf, perf_needed);
    if (!cfg_.scale_up_first) {
        // Scale-out-first ablation: spread small slices across nodes.
        goal = std::min(goal, 0.35 * best_perf);
    }
    double threshold = cfg_.node_perf_slack * goal;

    bool found = false;
    for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
        const auto &cfg = est.scale_up_grid[c];
        if (cfg.cores > free_cores || cfg.memory_gb > free_mem + 1e-9)
            continue;
        double perf = est.nodePerf(p_idx, c) * interf;
        if (perf + 1e-12 < threshold)
            continue;
        bool better;
        if (!found) {
            better = true;
        } else if (cfg.cores != pick.cores) {
            better = cfg.cores < pick.cores;
        } else if (cfg.memory_gb != pick.memory_gb) {
            better = cfg.memory_gb < pick.memory_gb;
        } else {
            better = perf > pick.perf;
        }
        if (better) {
            pick.col = c;
            pick.cores = cfg.cores;
            pick.memory_gb = cfg.memory_gb;
            pick.perf = perf;
            found = true;
        }
    }
    pick.valid = found;
    return pick;
}

bool
GreedyScheduler::residentsTolerate(const sim::Server &srv,
                                   const WorkloadEstimate &est,
                                   double cores,
                                   const EstimateLookup &estimates) const
{
    if (!estimates)
        return true;
    const auto &cap = srv.platform().contention_capacity;
    interference::IVector added;
    for (size_t i = 0; i < interference::kNumSources; ++i)
        added[i] = cap[i] > 0.0
                       ? est.caused_per_core[i] * cores / cap[i]
                       : 0.0;
    for (const sim::TaskShare &t : srv.tasks()) {
        if (t.best_effort)
            continue; // evictable anyway; protected residents only
        const WorkloadEstimate *res = estimates(t.workload);
        if (!res)
            continue;
        interference::IVector now = srv.contentionFor(t.workload);
        double loss = 1.0;
        for (size_t i = 0; i < interference::kNumSources; ++i) {
            double excess = now[i] + added[i] - res->tolerated[i];
            if (excess > 0.0)
                loss *= std::max(0.05,
                                 1.0 - cfg_.slope_guess * excess);
        }
        if (1.0 - loss > cfg_.max_resident_loss)
            return false;
    }
    return true;
}

std::optional<Allocation>
GreedyScheduler::allocate(const Workload &w, const WorkloadEstimate &est,
                          double required_perf,
                          const EstimateLookup &estimates,
                          bool may_evict) const
{
    std::optional<Allocation> decision =
        allocateImpl(w, est, required_perf, estimates, may_evict);
#ifdef QUASAR_VERIFY
    // Shadow scheduler oracle: every incremental-mode decision is
    // re-derived through the legacy full_rescan path; any divergence
    // aborts. full_rescan decisions are the oracle, so they are never
    // shadowed (also what makes this non-recursive).
    if (!cfg_.full_rescan)
        verify::shadowCheckAllocation(cluster_, cfg_, registry_, w,
                                      est, required_perf, estimates,
                                      may_evict, decision);
#endif
    return decision;
}

std::optional<Allocation>
GreedyScheduler::allocateImpl(const Workload &w,
                              const WorkloadEstimate &est,
                              double required_perf,
                              const EstimateLookup &estimates,
                              bool may_evict) const
{
    assert(est.scale_up_grid.size() == est.scale_up_perf.size());
    const double target = std::max(required_perf, 1e-9) * cfg_.headroom;
    const int max_nodes =
        workload::isDistributed(w.type)
            ? std::min<int>(cfg_.max_nodes, int(cluster_.size()))
            : 1;

    // Rank candidate servers by decreasing quality. The full_rescan
    // path sorts everything up front (legacy); the incremental path
    // heapifies and pops lazily, so a placement that settles after k
    // servers never orders the remaining N - k.
    std::vector<std::pair<double, ServerId>> ranked;
    const bool dirty = !cfg_.full_rescan && cfg_.dirty_set;
    {
        stats::ScopedTimer timer(timing_.rank);
        if (dirty)
            refreshIndex();
        ranked.reserve(cluster_.size());
        for (size_t i = 0; i < cluster_.size(); ++i) {
            bool avail;
            int free;
            if (dirty) {
                // Contiguous index walk: entries are already fresh, so
                // no Server dereference, epoch check, or name hash.
                const ServerCacheEntry &e = cache_[i];
                avail = e.available;
                free = e.free_cores;
                if (avail && may_evict) {
                    free += e.be_cores;
                }
            } else if (cfg_.full_rescan) {
                const sim::Server &srv = cluster_.server(ServerId(i));
                avail = srv.available();
                free = srv.coresFree();
                if (avail && may_evict) {
                    free += bestEffortTotals(srv).cores;
                }
            } else {
                const sim::Server &srv = cluster_.server(ServerId(i));
                const ServerCacheEntry &e = cachedState(srv);
                avail = e.available;
                free = e.free_cores;
                if (avail && may_evict) {
                    free += e.be_cores;
                }
            }
            if (avail && may_evict && registry_) {
                double pm = 0.0, ps = 0.0;
                priorityEvictable(cluster_.server(ServerId(i)), w, free,
                                  pm, ps);
            }
            if (!avail || free < 1)
                continue; // down machines accept no placements
            double quality;
            if (dirty) {
                // Same factors in the same order as serverQuality's
                // cached path, so the ranking is bitwise identical.
                const ServerCacheEntry &e = cache_[i];
                quality = est.platform_factor[e.platform_idx] *
                          est.interferenceMultiplier(e.contention,
                                                     cfg_.slope_guess) *
                          e.speed;
            } else {
                quality =
                    serverQuality(cluster_.server(ServerId(i)), est);
            }
            ranked.emplace_back(quality, ServerId(i));
        }
        if (cfg_.full_rescan) {
            std::sort(ranked.begin(), ranked.end(), rankedBefore);
        } else {
            std::make_heap(ranked.begin(), ranked.end(),
                           [](const auto &a, const auto &b) {
                               return rankedBefore(b, a);
                           });
        }
    }

    // nth(i): the i-th best candidate. Pops the heap on demand (popped
    // elements settle, sorted, at the tail), so both paths present the
    // identical order the comparator defines.
    size_t popped = 0;
    auto nth = [&](size_t i) {
        if (cfg_.full_rescan)
            return ranked[i];
        while (popped <= i) {
            std::pop_heap(ranked.begin(),
                          ranked.begin() +
                              ptrdiff_t(ranked.size() - popped),
                          [](const auto &a, const auto &b) {
                              return rankedBefore(b, a);
                          });
            ++popped;
        }
        return ranked[ranked.size() - 1 - i];
    };

    stats::ScopedTimer timer(timing_.place);
    Allocation alloc;
    std::vector<double> node_perfs;
    const FrameworkKnobs *knob_filter = nullptr;
    FrameworkKnobs chosen_knobs;
    double cost_so_far = 0.0;
    std::vector<char> zone_used(
        size_t(std::max(cluster_.numFaultZones(), 1)), 0);

    // With fault-zone spreading the candidates are walked twice: the
    // first pass only takes servers in fresh zones; the second pass
    // relaxes the constraint if the target is still unmet. A server
    // already chosen in pass one is never picked again (each candidate
    // contributes at most one node per allocation).
    const int passes = cfg_.spread_fault_zones ? 2 : 1;
    bool done = false;
    for (int pass = 0; pass < passes && !done; ++pass) {
        for (size_t i = 0; i < ranked.size(); ++i) {
            if (int(alloc.nodes.size()) >= max_nodes) {
                done = true;
                break;
            }
            double predicted = est.jobPerf(node_perfs);
            if (predicted >= target) {
                done = true;
                break;
            }

            const auto [quality, sid] = nth(i);
            (void)quality;
            const sim::Server &srv = cluster_.server(sid);
            if (srv.hosts(w.id))
                continue;
            bool already_chosen = false;
            for (const AllocationNode &n : alloc.nodes)
                already_chosen = already_chosen || n.server == sid;
            if (already_chosen)
                continue;
            if (cfg_.spread_fault_zones && pass == 0 &&
                zone_used[size_t(srv.faultZone())])
                continue; // first pass: fresh zones only
            // Per-node perf needed to close the gap if this node joins.
            int n_next = int(node_perfs.size()) + 1;
            double eff = est.scaleOutSpeedupAt(n_next) / double(n_next);
            double sum_now = 0.0;
            for (double v : node_perfs)
                sum_now += v;
            double needed =
                eff > 0.0 ? target / eff - sum_now
                          : std::numeric_limits<double>::infinity();
            needed = std::max(needed, 1e-9);

            NodePick pick =
                pickNodeConfig(srv, w, est, may_evict, needed);
            if (!pick.valid)
                continue;
            if (knob_filter &&
                !(est.scale_up_grid[pick.col].knobs == *knob_filter)) {
                // Keep one knob setting across the job: re-scan
                // restricted to matching columns by rejecting
                // mismatches.
                size_t p_idx = platformIndexOf(srv);
                double interf;
                if (cfg_.full_rescan) {
                    interf = est.interferenceMultiplier(
                                 srv.contentionForNewcomer(),
                                 cfg_.slope_guess) *
                             srv.speedFactor();
                } else {
                    const ServerCacheEntry &e = cachedState(srv);
                    interf = est.interferenceMultiplier(
                                 e.contention, cfg_.slope_guess) *
                             e.speed;
                }
                bool fixed = false;
                for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
                    const auto &cfg = est.scale_up_grid[c];
                    if (!(cfg.knobs == *knob_filter))
                        continue;
                    if (cfg.cores != pick.cores ||
                        cfg.memory_gb != pick.memory_gb)
                        continue;
                    pick.col = c;
                    pick.perf = est.nodePerf(p_idx, c) * interf;
                    fixed = true;
                    break;
                }
                if (!fixed)
                    continue;
            }
            if (!residentsTolerate(srv, est, pick.cores, estimates))
                continue;

            // Diminishing returns: when this node's marginal
            // contribution falls well below what it would deliver
            // standalone, the scale-out knee has passed and further
            // servers are wasted (checked before planning evictions so
            // no one is evicted for a node that is never placed).
            if (!node_perfs.empty() && pick.perf > 0.0) {
                std::vector<double> with_node = node_perfs;
                with_node.push_back(pick.perf);
                double gain =
                    est.jobPerf(with_node) - est.jobPerf(node_perfs);
                if (gain < cfg_.min_marginal_efficiency * pick.perf) {
                    done = true;
                    break;
                }
            }

            // Plan evictions when the raw free capacity is
            // insufficient — into a local list, committed only once
            // the node clears every remaining check. Nothing may land
            // in alloc.evictions for a node that is rejected later
            // (cost cap) or for a server revisited by the relaxed
            // spreading pass, or the same share would be consumed
            // twice in one schedule call.
            std::vector<std::pair<ServerId, WorkloadId>> planned;
            int base_free_cores;
            double base_free_mem;
            if (cfg_.full_rescan) {
                base_free_cores = srv.coresFree();
                base_free_mem = srv.memoryFree();
            } else {
                const ServerCacheEntry &e = cachedState(srv);
                base_free_cores = e.free_cores;
                base_free_mem = e.free_mem;
            }
            if (may_evict && (pick.cores > base_free_cores ||
                              pick.memory_gb > base_free_mem + 1e-9)) {
                int need_cores = pick.cores - base_free_cores;
                double need_mem = pick.memory_gb - base_free_mem;
                // Evict best-effort first, then ascending priority,
                // and larger shares before smaller ones.
                std::vector<const sim::TaskShare *> be;
                for (const sim::TaskShare &t : srv.tasks())
                    if (evictable(t, w))
                        be.push_back(&t);
                auto prio = [&](const sim::TaskShare *t) {
                    if (t->best_effort || !registry_ ||
                        !registry_->contains(t->workload))
                        return std::numeric_limits<int>::min();
                    return registry_->get(t->workload).priority;
                };
                std::sort(be.begin(), be.end(),
                          [&](const auto *a, const auto *b) {
                              if (prio(a) != prio(b))
                                  return prio(a) < prio(b);
                              return a->cores > b->cores;
                          });
                for (const sim::TaskShare *t : be) {
                    if (need_cores <= 0 && need_mem <= 1e-9)
                        break;
                    planned.emplace_back(sid, t->workload);
                    need_cores -= t->cores;
                    need_mem -= t->memory_gb;
                }
                if (need_cores > 0 || need_mem > 1e-9)
                    continue; // still does not fit
            }

            // Cost target (Sec. 4.4): never exceed the spending cap.
            // Checked before anything is committed so a rejection
            // leaves no trace.
            if (w.cost_cap_per_hour > 0.0) {
                double node_cost = srv.platform().cost_per_hour *
                                   double(pick.cores) /
                                   double(srv.platform().cores);
                if (cost_so_far + node_cost > w.cost_cap_per_hour)
                    continue;
                cost_so_far += node_cost;
            }

            if (alloc.nodes.empty()) {
                chosen_knobs = est.scale_up_grid[pick.col].knobs;
                if (w.type == workload::WorkloadType::Analytics)
                    knob_filter = &chosen_knobs;
            }
            alloc.evictions.insert(alloc.evictions.end(),
                                   planned.begin(), planned.end());
            alloc.nodes.push_back({sid, pick.col, pick.cores,
                                   pick.memory_gb, pick.perf});
            node_perfs.push_back(pick.perf);
            zone_used[size_t(srv.faultZone())] = 1;
        }
    }

    if (alloc.nodes.empty())
        return std::nullopt;

    alloc.knobs = chosen_knobs;
    alloc.predicted_perf = est.jobPerf(node_perfs);
    alloc.degraded = alloc.predicted_perf + 1e-9 <
                     required_perf * cfg_.headroom * cfg_.node_perf_slack;
    return alloc;
}

} // namespace quasar::core
