#include "core/scheduler.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace quasar::core
{

using workload::FrameworkKnobs;
using workload::Workload;

int
Allocation::totalCores() const
{
    int n = 0;
    for (const AllocationNode &node : nodes)
        n += node.cores;
    return n;
}

double
Allocation::totalMemoryGb() const
{
    double m = 0.0;
    for (const AllocationNode &node : nodes)
        m += node.memory_gb;
    return m;
}

namespace
{

/** Map platform names to catalog indices for a cluster. */
std::unordered_map<std::string, size_t>
platformIndex(const sim::Cluster &cluster)
{
    std::unordered_map<std::string, size_t> idx;
    const auto &catalog = cluster.catalog();
    for (size_t i = 0; i < catalog.size(); ++i)
        idx[catalog[i].name] = i;
    return idx;
}

/** Evictable capacity on a server under a given predicate. */
struct Evictable
{
    int cores = 0;
    double memory_gb = 0.0;
    double storage_gb = 0.0;
};

template <typename Pred>
Evictable
evictableCapacity(const sim::Server &srv, Pred pred)
{
    Evictable e;
    for (const sim::TaskShare &t : srv.tasks()) {
        if (pred(t)) {
            e.cores += t.cores;
            e.memory_gb += t.memory_gb;
            e.storage_gb += t.storage_gb;
        }
    }
    return e;
}

} // namespace

bool
GreedyScheduler::evictable(const sim::TaskShare &victim,
                           const workload::Workload &w) const
{
    if (victim.best_effort)
        return true;
    // Priority preemption (Sec. 4.4): only with registry access, and
    // only for strictly lower priority.
    if (!registry_ || !registry_->contains(victim.workload))
        return false;
    return registry_->get(victim.workload).priority < w.priority;
}

double
GreedyScheduler::serverQuality(const sim::Server &srv,
                               const WorkloadEstimate &est) const
{
    // Quality = platform speedup x predicted interference multiplier.
    auto map = platformIndex(cluster_);
    auto it = map.find(srv.platform().name);
    assert(it != map.end());
    double pf = est.platform_factor[it->second];
    double im = est.interferenceMultiplier(srv.contentionForNewcomer(),
                                           cfg_.slope_guess);
    // Degraded machines rank (and predict) proportionally lower; a
    // down machine is worth nothing.
    return pf * im * srv.speedFactor();
}

GreedyScheduler::NodePick
GreedyScheduler::pickNodeConfig(const sim::Server &srv, const Workload &w,
                                const WorkloadEstimate &est,
                                bool count_evictable,
                                double perf_needed) const
{
    NodePick pick;
    auto map = platformIndex(cluster_);
    size_t p_idx = map.at(srv.platform().name);

    int free_cores = srv.coresFree();
    double free_mem = srv.memoryFree();
    double free_storage = srv.storageFree();
    if (count_evictable) {
        Evictable e = evictableCapacity(
            srv, [&](const sim::TaskShare &t) {
                return evictable(t, w);
            });
        free_cores += e.cores;
        free_mem += e.memory_gb;
        free_storage += e.storage_gb;
    }
    if (free_cores < 1 || free_storage < w.storage_gb_per_node)
        return pick;

    double interf = est.interferenceMultiplier(
                        srv.contentionForNewcomer(), cfg_.slope_guess) *
                    srv.speedFactor();

    // Scan feasible columns for the best achievable node perf.
    double best_perf = 0.0;
    for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
        const auto &cfg = est.scale_up_grid[c];
        if (cfg.cores > free_cores || cfg.memory_gb > free_mem + 1e-9)
            continue;
        best_perf = std::max(best_perf,
                             est.nodePerf(p_idx, c) * interf);
    }
    if (best_perf <= 0.0)
        return pick;

    // Right-size: the cheapest column whose predicted perf reaches the
    // goal (the residual target, capped by what the server can give).
    double goal = std::min(best_perf, perf_needed);
    if (!cfg_.scale_up_first) {
        // Scale-out-first ablation: spread small slices across nodes.
        goal = std::min(goal, 0.35 * best_perf);
    }
    double threshold = cfg_.node_perf_slack * goal;

    bool found = false;
    for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
        const auto &cfg = est.scale_up_grid[c];
        if (cfg.cores > free_cores || cfg.memory_gb > free_mem + 1e-9)
            continue;
        double perf = est.nodePerf(p_idx, c) * interf;
        if (perf + 1e-12 < threshold)
            continue;
        bool better;
        if (!found) {
            better = true;
        } else if (cfg.cores != pick.cores) {
            better = cfg.cores < pick.cores;
        } else if (cfg.memory_gb != pick.memory_gb) {
            better = cfg.memory_gb < pick.memory_gb;
        } else {
            better = perf > pick.perf;
        }
        if (better) {
            pick.col = c;
            pick.cores = cfg.cores;
            pick.memory_gb = cfg.memory_gb;
            pick.perf = perf;
            found = true;
        }
    }
    pick.valid = found;
    return pick;
}

bool
GreedyScheduler::residentsTolerate(const sim::Server &srv,
                                   const WorkloadEstimate &est,
                                   double cores,
                                   const EstimateLookup &estimates) const
{
    if (!estimates)
        return true;
    const auto &cap = srv.platform().contention_capacity;
    interference::IVector added;
    for (size_t i = 0; i < interference::kNumSources; ++i)
        added[i] = cap[i] > 0.0
                       ? est.caused_per_core[i] * cores / cap[i]
                       : 0.0;
    for (const sim::TaskShare &t : srv.tasks()) {
        if (t.best_effort)
            continue; // evictable anyway; protected residents only
        const WorkloadEstimate *res = estimates(t.workload);
        if (!res)
            continue;
        interference::IVector now = srv.contentionFor(t.workload);
        double loss = 1.0;
        for (size_t i = 0; i < interference::kNumSources; ++i) {
            double excess = now[i] + added[i] - res->tolerated[i];
            if (excess > 0.0)
                loss *= std::max(0.05,
                                 1.0 - cfg_.slope_guess * excess);
        }
        if (1.0 - loss > cfg_.max_resident_loss)
            return false;
    }
    return true;
}

std::optional<Allocation>
GreedyScheduler::allocate(const Workload &w, const WorkloadEstimate &est,
                          double required_perf,
                          const EstimateLookup &estimates,
                          bool may_evict) const
{
    assert(est.scale_up_grid.size() == est.scale_up_perf.size());
    const double target = std::max(required_perf, 1e-9) * cfg_.headroom;
    const int max_nodes =
        workload::isDistributed(w.type)
            ? std::min<int>(cfg_.max_nodes, int(cluster_.size()))
            : 1;

    // Rank candidate servers by decreasing quality.
    std::vector<std::pair<double, ServerId>> ranked;
    ranked.reserve(cluster_.size());
    for (size_t i = 0; i < cluster_.size(); ++i) {
        const sim::Server &srv = cluster_.server(ServerId(i));
        if (!srv.available())
            continue; // down machines accept no placements
        int free = srv.coresFree();
        if (may_evict)
            free += evictableCapacity(srv, [&](const sim::TaskShare &t) {
                        return evictable(t, w);
                    }).cores;
        if (free < 1)
            continue;
        ranked.emplace_back(serverQuality(srv, est), ServerId(i));
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto &a,
                                               const auto &b) {
        if (a.first != b.first)
            return a.first > b.first;
        return a.second < b.second;
    });

    Allocation alloc;
    std::vector<double> node_perfs;
    const FrameworkKnobs *knob_filter = nullptr;
    FrameworkKnobs chosen_knobs;
    double cost_so_far = 0.0;
    std::vector<char> zone_used(
        size_t(std::max(cluster_.numFaultZones(), 1)), 0);

    // With fault-zone spreading the ranked list is walked twice: the
    // first pass only takes servers in fresh zones; the second pass
    // relaxes the constraint if the target is still unmet.
    std::vector<std::pair<double, ServerId>> walk = ranked;
    if (cfg_.spread_fault_zones) {
        walk.clear();
        for (const auto &e : ranked)
            walk.push_back(e);
        for (const auto &e : ranked)
            walk.push_back(e);
    }

    size_t walk_pos = 0;
    for (; walk_pos < walk.size(); ++walk_pos) {
        const auto &[quality, sid] = walk[walk_pos];
        if (int(alloc.nodes.size()) >= max_nodes)
            break;
        double predicted = est.jobPerf(node_perfs);
        if (predicted >= target)
            break;

        const sim::Server &srv = cluster_.server(sid);
        if (srv.hosts(w.id))
            continue;
        bool already_chosen = false;
        for (const AllocationNode &n : alloc.nodes)
            already_chosen = already_chosen || n.server == sid;
        if (already_chosen)
            continue;
        if (cfg_.spread_fault_zones && walk_pos < ranked.size() &&
            zone_used[size_t(srv.faultZone())])
            continue; // first pass: fresh zones only
        // Per-node perf needed to close the gap if this node joins.
        int n_next = int(node_perfs.size()) + 1;
        double eff = est.scaleOutSpeedupAt(n_next) / double(n_next);
        double sum_now = 0.0;
        for (double v : node_perfs)
            sum_now += v;
        double needed =
            eff > 0.0 ? target / eff - sum_now
                      : std::numeric_limits<double>::infinity();
        needed = std::max(needed, 1e-9);

        NodePick pick = pickNodeConfig(srv, w, est, may_evict, needed);
        if (!pick.valid)
            continue;
        if (knob_filter &&
            !(est.scale_up_grid[pick.col].knobs == *knob_filter)) {
            // Keep one knob setting across the job: re-scan restricted
            // to matching columns by rejecting mismatches.
            bool fixed = false;
            for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
                const auto &cfg = est.scale_up_grid[c];
                if (!(cfg.knobs == *knob_filter))
                    continue;
                if (cfg.cores != pick.cores ||
                    cfg.memory_gb != pick.memory_gb)
                    continue;
                pick.col = c;
                auto map = platformIndex(cluster_);
                double interf =
                    est.interferenceMultiplier(
                        srv.contentionForNewcomer(),
                        cfg_.slope_guess) *
                    srv.speedFactor();
                pick.perf =
                    est.nodePerf(map.at(srv.platform().name), c) *
                    interf;
                fixed = true;
                break;
            }
            if (!fixed)
                continue;
        }
        if (!residentsTolerate(srv, est, pick.cores, estimates))
            continue;

        // Diminishing returns: when this node's marginal contribution
        // falls well below what it would deliver standalone, the
        // scale-out knee has passed and further servers are wasted
        // (checked before planning evictions so no one is evicted for
        // a node that is never placed).
        if (!node_perfs.empty() && pick.perf > 0.0) {
            std::vector<double> with_node = node_perfs;
            with_node.push_back(pick.perf);
            double gain =
                est.jobPerf(with_node) - est.jobPerf(node_perfs);
            if (gain < cfg_.min_marginal_efficiency * pick.perf)
                break;
        }

        // Plan evictions when the raw free capacity is insufficient.
        if (may_evict && (pick.cores > srv.coresFree() ||
                          pick.memory_gb > srv.memoryFree() + 1e-9)) {
            int need_cores = pick.cores - srv.coresFree();
            double need_mem = pick.memory_gb - srv.memoryFree();
            // Evict best-effort first, then ascending priority, and
            // larger shares before smaller ones.
            std::vector<const sim::TaskShare *> be;
            for (const sim::TaskShare &t : srv.tasks())
                if (evictable(t, w))
                    be.push_back(&t);
            auto prio = [&](const sim::TaskShare *t) {
                if (t->best_effort || !registry_ ||
                    !registry_->contains(t->workload))
                    return std::numeric_limits<int>::min();
                return registry_->get(t->workload).priority;
            };
            std::sort(be.begin(), be.end(),
                      [&](const auto *a, const auto *b) {
                          if (prio(a) != prio(b))
                              return prio(a) < prio(b);
                          return a->cores > b->cores;
                      });
            for (const sim::TaskShare *t : be) {
                if (need_cores <= 0 && need_mem <= 1e-9)
                    break;
                alloc.evictions.emplace_back(sid, t->workload);
                need_cores -= t->cores;
                need_mem -= t->memory_gb;
            }
            if (need_cores > 0 || need_mem > 1e-9)
                continue; // still does not fit
        }

        // Cost target (Sec. 4.4): never exceed the spending cap.
        if (w.cost_cap_per_hour > 0.0) {
            double node_cost = srv.platform().cost_per_hour *
                               double(pick.cores) /
                               double(srv.platform().cores);
            if (cost_so_far + node_cost > w.cost_cap_per_hour)
                continue;
            cost_so_far += node_cost;
        }

        if (alloc.nodes.empty()) {
            chosen_knobs = est.scale_up_grid[pick.col].knobs;
            if (w.type == workload::WorkloadType::Analytics)
                knob_filter = &chosen_knobs;
        }
        alloc.nodes.push_back({sid, pick.col, pick.cores,
                               pick.memory_gb, pick.perf});
        node_perfs.push_back(pick.perf);
        zone_used[size_t(srv.faultZone())] = 1;
    }

    if (alloc.nodes.empty())
        return std::nullopt;

    alloc.knobs = chosen_knobs;
    alloc.predicted_perf = est.jobPerf(node_perfs);
    alloc.degraded = alloc.predicted_perf + 1e-9 <
                     required_perf * cfg_.headroom * cfg_.node_perf_slack;
    return alloc;
}

} // namespace quasar::core
