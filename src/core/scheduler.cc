#include "core/scheduler.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "stats/timing.hh"

#ifdef QUASAR_VERIFY
#include <cstdio>
#include <cstdlib>

// Sanctioned upward edge: the shadow oracle hooks in under
// QUASAR_VERIFY only. quasar-lint: allow(layering)
#include "verify/verify.hh"
#endif

namespace quasar::core
{

using workload::FrameworkKnobs;
using workload::Workload;

int
Allocation::totalCores() const
{
    int n = 0;
    for (const AllocationNode &node : nodes)
        n += node.cores;
    return n;
}

double
Allocation::totalMemoryGb() const
{
    double m = 0.0;
    for (const AllocationNode &node : nodes)
        m += node.memory_gb;
    return m;
}

namespace
{

struct Evictable
{
    int cores = 0;
    double memory_gb = 0.0;
    double storage_gb = 0.0;
};

/**
 * Best-effort residents' totals in task order. The single source of
 * truth for this sum: the cache refresh and the full_rescan path both
 * call it, so the two decision paths see bitwise-identical values.
 */
Evictable
bestEffortTotals(const sim::Server &srv)
{
    Evictable e;
    for (const sim::TaskShare &t : srv.tasks()) {
        if (t.best_effort) {
            e.cores += t.cores;
            e.memory_gb += t.memory_gb;
            e.storage_gb += t.storage_gb;
        }
    }
    return e;
}

/** Strict-weak order for ranking: quality desc, id asc on ties. */
bool
rankedBefore(const std::pair<double, ServerId> &a,
             const std::pair<double, ServerId> &b)
{
    if (a.first != b.first)
        return a.first > b.first;
    return a.second < b.second;
}

/**
 * Admissible read-time bound on any bucket of a (platform, speed)
 * level: quality = pf × im × speed with im ∈ (0, 1], so pf ≥ 0 gives
 * quality ≤ pf × speed (exact in floating point: multiplying a
 * non-negative representable value by a factor ≤ 1 never rounds above
 * it), and pf < 0 gives quality ≤ 0.
 */
double
levelBound(double platform_factor, double speed)
{
    return platform_factor >= 0.0 ? platform_factor * speed : 0.0;
}

/**
 * Best predicted interference multiplier over a server's sockets —
 * the lazily-applied per-workload factor of the quality expression.
 * On a flat server this is exactly the single-view multiplier, so the
 * flat quality expression is unchanged bit for bit.
 */
double
bestSocketMultiplier(
    const WorkloadEstimate &est,
    const std::array<interference::IVector, topology::kMaxSockets>
        &views,
    int sockets, double slope)
{
    double best = est.interferenceMultiplier(views[0], slope);
    for (int s = 1; s < sockets; ++s) {
        double m = est.interferenceMultiplier(views[size_t(s)], slope);
        if (m > best)
            best = m;
    }
    return best;
}

/**
 * Socket-selection rule (DESIGN.md §13). Aware: highest predicted
 * multiplier, ties broken toward fewer homed cores, then the lower
 * socket id; blind: least homed cores, then lower id. Deterministic
 * on bitwise-equal inputs, so it replays identically in all modes.
 */
int
chooseSocket(
    const WorkloadEstimate &est,
    const std::array<interference::IVector, topology::kMaxSockets>
        &views,
    const std::array<int, topology::kMaxSockets> &homed, int sockets,
    bool socket_aware, double slope)
{
    if (sockets <= 1)
        return 0;
    int best = 0;
    if (socket_aware) {
        double best_m = est.interferenceMultiplier(views[0], slope);
        for (int s = 1; s < sockets; ++s) {
            double m =
                est.interferenceMultiplier(views[size_t(s)], slope);
            if (m > best_m ||
                (m == best_m &&
                 homed[size_t(s)] < homed[size_t(best)])) {
                best = s;
                best_m = m;
            }
        }
        return best;
    }
    for (int s = 1; s < sockets; ++s)
        if (homed[size_t(s)] < homed[size_t(best)])
            best = s;
    return best;
}

} // namespace

void
GreedyScheduler::rebuildPlatformIndex() const
{
    platform_idx_.clear();
    const auto &catalog = cluster_.catalog();
    for (size_t i = 0; i < catalog.size(); ++i)
        platform_idx_[catalog[i].name] = i;
    indexed_catalog_size_ = catalog.size();
}

size_t
GreedyScheduler::platformIndexOf(const sim::Server &srv) const
{
    if (cluster_.catalog().size() != indexed_catalog_size_)
        rebuildPlatformIndex();
    auto it = platform_idx_.find(srv.platform().name);
    if (it == platform_idx_.end()) {
        // Catalog mutated without a size change; rebuild once.
        rebuildPlatformIndex();
        it = platform_idx_.find(srv.platform().name);
        assert(it != platform_idx_.end());
    }
    return it->second;
}

void
GreedyScheduler::refreshEntry(const sim::Server &srv,
                              ServerCacheEntry &e) const
{
    sim::Server::SocketSnapshot snap = srv.socketSnapshot();
    e.sockets = uint8_t(snap.sockets);
    e.socket_contention = snap.contention;
    e.socket_cores = snap.cores_homed;
    e.free_cores = srv.coresFree();
    e.free_mem = srv.memoryFree();
    e.free_storage = srv.storageFree();
    e.speed = srv.speedFactor();
    e.available = srv.available();
    Evictable be = bestEffortTotals(srv);
    e.be_cores = be.cores;
    e.be_mem = be.memory_gb;
    e.be_storage = be.storage_gb;
    e.platform_idx = platformIndexOf(srv);
    // Prio-class key: the lowest registry priority among non-best-
    // effort residents holding at least one core. priorityEvictable()
    // frees ≥ 1 core for workload w exactly when this key is strictly
    // below w.priority (core shares are non-negative integers), so
    // the drain can skip whole priority classes without walking the
    // resident ledger.
    e.prio_key = kNoPrio;
    if (registry_) {
        for (const sim::TaskShare &t : srv.tasks()) {
            if (t.best_effort || t.cores < 1)
                continue;
            if (!registry_->contains(t.workload))
                continue;
            e.prio_key = std::min(e.prio_key,
                                  registry_->get(t.workload).priority);
        }
    }
    e.version = srv.version();
}

std::pair<GreedyScheduler::FeasClass, int>
GreedyScheduler::feasibilityClass(const ServerCacheEntry &e)
{
    if (!e.available)
        return {FeasClass::Closed, kNoPrio};
    if (e.free_cores >= 1)
        return {FeasClass::Open, kNoPrio};
    if (e.free_cores + e.be_cores >= 1)
        return {FeasClass::Evict, kNoPrio};
    if (e.prio_key != kNoPrio)
        return {FeasClass::Prio, e.prio_key};
    return {FeasClass::Closed, kNoPrio};
}

std::vector<uint32_t> &
GreedyScheduler::levelList(OrderLevel &lvl, FeasClass cls, int prio_key)
{
    switch (cls) {
    case FeasClass::Open:
        return lvl.open;
    case FeasClass::Evict:
        return lvl.evict;
    case FeasClass::Prio:
        return lvl.prio[prio_key];
    case FeasClass::Closed:
        break;
    }
    return lvl.closed;
}

bool
GreedyScheduler::filterAdmits(const OrderFilter &f, FeasClass cls,
                              int prio_key)
{
    if (f.all)
        return true;
    switch (cls) {
    case FeasClass::Open:
        return true;
    case FeasClass::Evict:
        return f.evict;
    case FeasClass::Prio:
        return prio_key < f.prio_below;
    case FeasClass::Closed:
        break;
    }
    return false;
}

void
GreedyScheduler::refreshEntryIndexed(const sim::Server &srv,
                                     ServerCacheEntry &e) const
{
    refreshEntry(srv, e);
    // Non-members never enter the maintained order: a shard worker
    // only ranks its own servers, even if a stray state read (e.g.
    // the committer walking a merged stream) refreshes their entries.
    if (orderMaintained() && memberServer(srv.id()))
        orderPlace(srv.id(), e);
}

void
GreedyScheduler::restrictToShard(const std::vector<uint32_t> *shard_of,
                                 uint32_t shard)
{
    shard_of_ = shard_of;
    shard_id_ = shard;
    // Drop the index and order wholesale: membership changed, so the
    // next refresh re-primes from scratch over the new member set.
    cache_.clear();
    server_bucket_.clear();
    order_buckets_.clear();
    free_buckets_.clear();
    bucket_of_sig_.clear();
    platform_order_.clear();
    index_primed_ = false;
    journal_cursor_ = 0;
}

void
GreedyScheduler::orderPlace(ServerId id, const ServerCacheEntry &e) const
{
    // Socket count rides in the platform word: a flat server with
    // contention v and a 2-socket server with [v, 0] must never share
    // a bucket (the idle remote socket lifts the best-socket
    // multiplier). Absent sockets stay zero-padded, so the flat
    // partition is exactly the pre-topology one.
    OrderSig sig{};
    sig[0] = uint64_t(e.platform_idx) | uint64_t(e.sockets) << 56;
    sig[1] = std::bit_cast<uint64_t>(e.speed);
    for (size_t s = 0; s < size_t(topology::kMaxSockets); ++s)
        for (size_t i = 0; i < interference::kNumSources; ++i)
            sig[2 + s * interference::kNumSources + i] =
                std::bit_cast<uint64_t>(e.socket_contention[s][i]);
    // The feasibility class rides in the signature, so a mutation
    // that leaves the contention vector untouched but opens or closes
    // the server (a zero-pressure placement consuming the last free
    // core, an eviction freeing one) still migrates it between class
    // lists — the early-out below stays correct.
    auto [cls, prio_key] = feasibilityClass(e);
    sig[sig.size() - 1] =
        uint64_t(uint32_t(prio_key)) | uint64_t(cls) << 62;

    if (server_bucket_.size() < cache_.size())
        server_bucket_.resize(cache_.size(), kNoBucket);
    uint32_t cur = server_bucket_[size_t(id)];
    if (cur != kNoBucket && order_buckets_[cur].sig == sig)
        return; // the mutation kept the signature; order unchanged
    if (cur != kNoBucket)
        orderRemove(id);

    uint32_t slot;
    auto it = bucket_of_sig_.find(sig);
    if (it != bucket_of_sig_.end()) {
        slot = it->second;
    } else {
        if (free_buckets_.empty()) {
            slot = uint32_t(order_buckets_.size());
            order_buckets_.emplace_back();
        } else {
            slot = free_buckets_.back();
            free_buckets_.pop_back();
        }
        OrderBucket &b = order_buckets_[slot];
        b.sig = sig;
        b.platform_idx = e.platform_idx;
        b.speed = e.speed;
        b.socket_contention = e.socket_contention;
        b.sockets = e.sockets;
        b.cls = cls;
        b.prio_key = prio_key;
        b.ids.clear();
        if (platform_order_.size() <= e.platform_idx)
            platform_order_.resize(e.platform_idx + 1);
        OrderLevel &lvl = platform_order_[e.platform_idx][e.speed];
        std::vector<uint32_t> &list = levelList(lvl, cls, prio_key);
        b.level_pos = uint32_t(list.size());
        list.push_back(slot);
        bucket_of_sig_.emplace(sig, slot);
    }
    order_buckets_[slot].ids.insert(id);
    server_bucket_[size_t(id)] = slot;
}

void
GreedyScheduler::orderRemove(ServerId id) const
{
    uint32_t slot = server_bucket_[size_t(id)];
    OrderBucket &b = order_buckets_[slot];
    b.ids.erase(id);
    server_bucket_[size_t(id)] = kNoBucket;
    if (!b.ids.empty())
        return;
    // Free the emptied bucket: swap-remove it from its level's class
    // list, drop the level when it fully empties, release the slot to
    // the free list.
    LevelMap &levels = platform_order_[b.platform_idx];
    auto lit = levels.find(b.speed);
    assert(lit != levels.end());
    OrderLevel &lvl = lit->second;
    std::vector<uint32_t> &list = levelList(lvl, b.cls, b.prio_key);
    uint32_t moved = list.back();
    list[b.level_pos] = moved;
    order_buckets_[moved].level_pos = b.level_pos;
    list.pop_back();
    if (b.cls == FeasClass::Prio && list.empty())
        lvl.prio.erase(b.prio_key);
    if (lvl.empty())
        levels.erase(lit);
    bucket_of_sig_.erase(b.sig);
    free_buckets_.push_back(slot);
}

bool
GreedyScheduler::cursorLess(const OrderCursor &a, const OrderCursor &b)
{
    return rankedBefore({b.quality, b.id}, {a.quality, a.id});
}

bool
GreedyScheduler::levelLess(const LevelCursor &a, const LevelCursor &b)
{
    if (a.bound != b.bound)
        return a.bound < b.bound;
    return a.platform > b.platform;
}

void
GreedyScheduler::beginOrderedCandidates(OrderStream &s,
                                        const WorkloadEstimate &est,
                                        const OrderFilter &filter) const
{
    s.exact.clear();
    s.pending.clear();
    s.filter = filter;
    for (size_t p = 0; p < platform_order_.size(); ++p) {
        const LevelMap &levels = platform_order_[p];
        if (levels.empty())
            continue;
        assert(p < est.platform_factor.size());
        LevelCursor lc;
        lc.bound = levelBound(est.platform_factor[p], levels.begin()->first);
        lc.platform = p;
        lc.it = levels.begin();
        s.pending.push_back(lc);
    }
    std::make_heap(s.pending.begin(), s.pending.end(), levelLess);
}

std::optional<std::pair<double, ServerId>>
GreedyScheduler::nextOrderedCandidate(OrderStream &s,
                                      const WorkloadEstimate &est) const
{
    while (true) {
        // Emit the best expanded candidate once no unexpanded level
        // can beat it. A level whose bound merely TIES the candidate
        // must still be expanded first: it may hold an equal-quality
        // server with a smaller id (rankedBefore's tie-break).
        if (!s.exact.empty() &&
            (s.pending.empty() ||
             s.exact.front().quality > s.pending.front().bound)) {
            std::pop_heap(s.exact.begin(), s.exact.end(), cursorLess);
            OrderCursor c = s.exact.back();
            s.exact.pop_back();
            std::pair<double, ServerId> out{c.quality, c.id};
            ++c.it;
            if (c.it != c.bucket->ids.end()) {
                c.id = *c.it;
                s.exact.push_back(c);
                std::push_heap(s.exact.begin(), s.exact.end(),
                               cursorLess);
            }
            return out;
        }
        if (s.pending.empty())
            return std::nullopt; // order fully drained
        // Expand the best unexpanded level: apply the per-workload
        // factors once per bucket (not once per server), then queue
        // the platform's next-fastest level under its own bound. Only
        // the class lists the filter admits are touched — a saturated
        // level (all members Closed, or Prio at or above the
        // workload's priority) costs one map probe, not a walk over
        // its members.
        std::pop_heap(s.pending.begin(), s.pending.end(), levelLess);
        LevelCursor lc = s.pending.back();
        s.pending.pop_back();
        const OrderLevel &level = lc.it->second;
        auto expand = [&](const std::vector<uint32_t> &list) {
            for (uint32_t slot : list) {
                const OrderBucket &b = order_buckets_[slot];
                OrderCursor c;
                // Exactly serverQuality's factor order, on bitwise-
                // equal inputs, so the drained order matches a
                // from-scratch ranking bit for bit.
                c.quality =
                    est.platform_factor[b.platform_idx] *
                    bestSocketMultiplier(est, b.socket_contention,
                                         b.sockets, cfg_.slope_guess) *
                    b.speed;
                c.bucket = &b;
                c.it = b.ids.begin();
                c.id = *c.it;
                s.exact.push_back(c);
                std::push_heap(s.exact.begin(), s.exact.end(),
                               cursorLess);
            }
        };
        expand(level.open);
        if (s.filter.all || s.filter.evict)
            expand(level.evict);
        if (s.filter.all) {
            for (const auto &[key, list] : level.prio)
                expand(list);
            expand(level.closed);
        } else {
            for (auto it = level.prio.begin();
                 it != level.prio.end() &&
                 it->first < s.filter.prio_below;
                 ++it)
                expand(it->second);
        }
        auto nit = std::next(lc.it);
        if (nit != platform_order_[lc.platform].end()) {
            LevelCursor nc;
            nc.bound =
                levelBound(est.platform_factor[lc.platform], nit->first);
            nc.platform = lc.platform;
            nc.it = nit;
            s.pending.push_back(nc);
            std::push_heap(s.pending.begin(), s.pending.end(),
                           levelLess);
        }
    }
}

const GreedyScheduler::ServerCacheEntry &
GreedyScheduler::cachedState(const sim::Server &srv) const
{
    if (cache_.size() < cluster_.size())
        cache_.resize(cluster_.size());
    ServerCacheEntry &e = cache_[size_t(srv.id())];
    if (e.version != srv.version())
        refreshEntryIndexed(srv, e);
    return e;
}

void
GreedyScheduler::refreshIndex() const
{
    const sim::ChangeJournal &journal = cluster_.journal();
    if (cache_.size() < cluster_.size())
        cache_.resize(cluster_.size());
    bool force = cluster_.catalog().size() != indexed_catalog_size_;
    if (force)
        rebuildPlatformIndex(); // platform indices may have moved
    if (force || !index_primed_ || journal_cursor_ < journal.base()) {
        // First use, a cursor compacted out of the journal, or a
        // catalog change: fall back to the full epoch-check scan
        // (exactly the cached mode's per-decision cost, once).
        for (size_t i = 0; i < cluster_.size(); ++i) {
            if (!memberServer(ServerId(i)))
                continue; // another shard's server
            const sim::Server &srv = cluster_.server(ServerId(i));
            ServerCacheEntry &e = cache_[i];
            if (force || e.version != srv.version())
                refreshEntryIndexed(srv, e);
        }
        index_primed_ = true;
    } else {
        // Incremental: replay only the servers touched since this
        // scheduler's last decision. Duplicate journal entries dedupe
        // through the epoch compare (first replay refreshes, the rest
        // no-op). A shard worker skips other shards' entries — each of
        // the K cursors walks the same shared window independently
        // (the journal's multi-reader contract) but refreshes only
        // its own members.
        const uint64_t snapshot = journal.end();
        for (uint64_t pos = journal_cursor_; pos < snapshot; ++pos) {
            ServerId sid = journal.at(pos);
            if (!memberServer(sid))
                continue;
            const sim::Server &srv = cluster_.server(sid);
            ServerCacheEntry &e = cache_[size_t(srv.id())];
            if (e.version != srv.version())
                refreshEntryIndexed(srv, e);
        }
    }
    journal_cursor_ = journal.end();
#ifdef QUASAR_VERIFY
    // Sampled (every 64th refresh): the full recompute is O(N x
    // ledger) and the refresh runs per decision, so auditing every
    // call would dominate verify-build suites without adding much —
    // a desynchronized entry stays desynchronized until its next
    // legitimate refresh and is caught by a later sample or by the
    // shadow oracle's divergence check. Tests can force an unsampled
    // audit through auditIndexCoherenceNow().
    if (++audit_refreshes_ % 64 == 0)
        auditIndexCoherence();
#endif
}

#ifdef QUASAR_VERIFY
void
GreedyScheduler::auditIndexCoherence() const
{
    ++verify::counters().index_audits;
    size_t ordered_members = 0;
    size_t expected_members = 0;
    for (size_t i = 0; i < cluster_.size(); ++i) {
        if (!memberServer(ServerId(i)))
            continue; // another shard's server: never indexed here
        ++expected_members;
        const sim::Server &srv = cluster_.server(ServerId(i));
        const ServerCacheEntry &cached = cache_[i];
        if (cached.version != srv.version()) {
            std::fprintf(stderr,
                         "QUASAR_VERIFY: index entry for server %zu "
                         "is stale after journal replay (entry epoch "
                         "%llu, server epoch %llu) — a mutation was "
                         "not journaled\n",
                         i, (unsigned long long)cached.version,
                         (unsigned long long)srv.version());
            std::abort();
        }
        ServerCacheEntry fresh;
        refreshEntry(srv, fresh);
        if (fresh.sockets != cached.sockets ||
            fresh.socket_contention != cached.socket_contention ||
            fresh.socket_cores != cached.socket_cores ||
            fresh.free_cores != cached.free_cores ||
            fresh.free_mem != cached.free_mem ||
            fresh.free_storage != cached.free_storage ||
            fresh.speed != cached.speed ||
            fresh.available != cached.available ||
            fresh.be_cores != cached.be_cores ||
            fresh.be_mem != cached.be_mem ||
            fresh.be_storage != cached.be_storage ||
            fresh.platform_idx != cached.platform_idx ||
            fresh.prio_key != cached.prio_key) {
            std::fprintf(stderr,
                         "QUASAR_VERIFY: index entry for server %zu "
                         "matches the server's change epoch but not "
                         "its state — a placement-relevant mutation "
                         "skipped bumpVersion()\n",
                         i);
            std::abort();
        }
        if (orderMaintained() && index_primed_) {
            // The maintained order must mirror the cache entry field
            // for field: the server sits in exactly one bucket whose
            // signature bitwise-matches its refreshed state.
            uint32_t slot = i < server_bucket_.size()
                                ? server_bucket_[i]
                                : kNoBucket;
            if (slot == kNoBucket) {
                std::fprintf(stderr,
                             "QUASAR_VERIFY: server %zu missing from "
                             "the maintained candidate order — a "
                             "mutation was not journaled or the order "
                             "update was skipped\n",
                             i);
                std::abort();
            }
            const OrderBucket &b = order_buckets_[slot];
            auto [fresh_cls, fresh_key] = feasibilityClass(fresh);
            if (b.platform_idx != fresh.platform_idx ||
                std::bit_cast<uint64_t>(b.speed) !=
                    std::bit_cast<uint64_t>(fresh.speed) ||
                b.sockets != fresh.sockets ||
                b.socket_contention != fresh.socket_contention ||
                b.cls != fresh_cls || b.prio_key != fresh_key ||
                b.ids.count(ServerId(i)) == 0) {
                std::fprintf(stderr,
                             "QUASAR_VERIFY: order bucket for server "
                             "%zu disagrees with its refreshed state "
                             "(bucket platform %zu speed %.17g vs "
                             "fresh platform %zu speed %.17g) — the "
                             "incremental order is stale\n",
                             i, b.platform_idx, b.speed,
                             fresh.platform_idx, fresh.speed);
                std::abort();
            }
        }
    }
    if (orderMaintained() && index_primed_) {
        // Structural sweep: every level holds the buckets that claim
        // it, level_pos back-references are exact, no bucket is empty,
        // and the member total equals the cluster size (no ghost or
        // duplicated entries).
        for (size_t p = 0; p < platform_order_.size(); ++p) {
            for (const auto &[speed, lvl] : platform_order_[p]) {
                if (lvl.empty()) {
                    std::fprintf(stderr,
                                 "QUASAR_VERIFY: empty speed level "
                                 "%.17g on platform %zu in the "
                                 "maintained order\n",
                                 speed, p);
                    std::abort();
                }
                auto check_list =
                    [&](const std::vector<uint32_t> &list,
                        FeasClass cls, int prio_key) {
                        for (size_t j = 0; j < list.size(); ++j) {
                            const OrderBucket &b =
                                order_buckets_[list[j]];
                            if (b.platform_idx != p ||
                                std::bit_cast<uint64_t>(b.speed) !=
                                    std::bit_cast<uint64_t>(speed) ||
                                b.cls != cls ||
                                b.prio_key != prio_key ||
                                b.level_pos != j || b.ids.empty()) {
                                std::fprintf(
                                    stderr,
                                    "QUASAR_VERIFY: order bucket %u "
                                    "misfiled under platform %zu "
                                    "speed %.17g class %d\n",
                                    list[j], p, speed, int(cls));
                                std::abort();
                            }
                            ordered_members += b.ids.size();
                        }
                    };
                check_list(lvl.open, FeasClass::Open, kNoPrio);
                check_list(lvl.evict, FeasClass::Evict, kNoPrio);
                for (const auto &[key, list] : lvl.prio) {
                    if (list.empty()) {
                        std::fprintf(stderr,
                                     "QUASAR_VERIFY: empty prio-class "
                                     "list (key %d) on platform %zu "
                                     "speed %.17g\n",
                                     key, p, speed);
                        std::abort();
                    }
                    check_list(list, FeasClass::Prio, key);
                }
                check_list(lvl.closed, FeasClass::Closed, kNoPrio);
            }
        }
        if (ordered_members != expected_members) {
            std::fprintf(stderr,
                         "QUASAR_VERIFY: maintained order holds %zu "
                         "members for %zu servers in this shard\n",
                         ordered_members, expected_members);
            std::abort();
        }
    }
}
#endif

bool
GreedyScheduler::evictable(const sim::TaskShare &victim,
                           const workload::Workload &w) const
{
    if (victim.best_effort)
        return true;
    // Priority preemption (Sec. 4.4): only with registry access, and
    // only for strictly lower priority.
    if (!registry_ || !registry_->contains(victim.workload))
        return false;
    return registry_->get(victim.workload).priority < w.priority;
}

void
GreedyScheduler::priorityEvictable(const sim::Server &srv,
                                   const workload::Workload &w,
                                   int &cores, double &memory_gb,
                                   double &storage_gb) const
{
    if (!registry_)
        return;
    for (const sim::TaskShare &t : srv.tasks()) {
        if (t.best_effort)
            continue; // the cache already totals the best-effort pool
        if (!registry_->contains(t.workload))
            continue;
        if (registry_->get(t.workload).priority < w.priority) {
            cores += t.cores;
            memory_gb += t.memory_gb;
            storage_gb += t.storage_gb;
        }
    }
}

double
GreedyScheduler::serverQuality(const sim::Server &srv,
                               const WorkloadEstimate &est) const
{
    // Quality = platform speedup x predicted interference multiplier.
    // Degraded machines rank (and predict) proportionally lower; a
    // down machine is worth nothing.
    if (cfg_.full_rescan) {
        double pf = est.platform_factor[platformIndexOf(srv)];
        sim::Server::SocketSnapshot snap = srv.socketSnapshot();
        double im = bestSocketMultiplier(est, snap.contention,
                                         snap.sockets,
                                         cfg_.slope_guess);
        return pf * im * srv.speedFactor();
    }
    if (cfg_.dirty_set) {
        // Public entry point (the manager scores live placements with
        // it between decisions): replay the journal first so the entry
        // reflects any mutation since the last refresh.
        refreshIndex();
        const ServerCacheEntry &e = cache_[size_t(srv.id())];
        double pf = est.platform_factor[e.platform_idx];
        double im = bestSocketMultiplier(est, e.socket_contention,
                                         e.sockets, cfg_.slope_guess);
        return pf * im * e.speed;
    }
    double pf = est.platform_factor[platformIndexOf(srv)];
    const ServerCacheEntry &e = cachedState(srv);
    double im = bestSocketMultiplier(est, e.socket_contention,
                                     e.sockets, cfg_.slope_guess);
    return pf * im * e.speed;
}

std::vector<std::pair<double, ServerId>>
GreedyScheduler::rankedCandidates(const WorkloadEstimate &est) const
{
    std::vector<std::pair<double, ServerId>> out;
    out.reserve(cluster_.size());
    if (orderMaintained()) {
        // Drain the maintained order best-first: the emitted sequence
        // is the incremental structure's full view, which tests
        // compare against a from-scratch sort by rankedBefore.
        refreshIndex();
        OrderStream stream;
        beginOrderedCandidates(stream, est, OrderFilter::everything());
        while (auto cand = nextOrderedCandidate(stream, est))
            out.push_back(*cand);
        return out;
    }
    for (size_t i = 0; i < cluster_.size(); ++i) {
        if (!memberServer(ServerId(i)))
            continue;
        const sim::Server &srv = cluster_.server(ServerId(i));
        out.emplace_back(serverQuality(srv, est), ServerId(i));
    }
    std::sort(out.begin(), out.end(), rankedBefore);
    return out;
}

GreedyScheduler::NodePick
GreedyScheduler::pickNodeConfig(const sim::Server &srv, const Workload &w,
                                const WorkloadEstimate &est,
                                bool count_evictable,
                                double perf_needed) const
{
    NodePick pick;
    size_t p_idx;
    int free_cores;
    double free_mem, free_storage, interf;
    // The socket-selection step: the greedy walk picks (server,
    // socket), predicting node perf from the chosen socket's view.
    // Flat servers always choose socket 0, reproducing the
    // pre-topology multiplier bit for bit.
    if (cfg_.full_rescan) {
        p_idx = platformIndexOf(srv);
        free_cores = srv.coresFree();
        free_mem = srv.memoryFree();
        free_storage = srv.storageFree();
        sim::Server::SocketSnapshot snap = srv.socketSnapshot();
        pick.socket =
            chooseSocket(est, snap.contention, snap.cores_homed,
                         snap.sockets, cfg_.socket_aware,
                         cfg_.slope_guess);
        interf = est.interferenceMultiplier(
                     snap.contention[size_t(pick.socket)],
                     cfg_.slope_guess) *
                 srv.speedFactor();
        if (count_evictable) {
            Evictable be = bestEffortTotals(srv);
            free_cores += be.cores;
            free_mem += be.memory_gb;
            free_storage += be.storage_gb;
        }
    } else {
        const ServerCacheEntry &e = cachedState(srv);
        p_idx = cfg_.dirty_set ? e.platform_idx : platformIndexOf(srv);
        free_cores = e.free_cores;
        free_mem = e.free_mem;
        free_storage = e.free_storage;
        pick.socket =
            chooseSocket(est, e.socket_contention, e.socket_cores,
                         e.sockets, cfg_.socket_aware,
                         cfg_.slope_guess);
        interf = est.interferenceMultiplier(
                     e.socket_contention[size_t(pick.socket)],
                     cfg_.slope_guess) *
                 e.speed;
        if (count_evictable) {
            free_cores += e.be_cores;
            free_mem += e.be_mem;
            free_storage += e.be_storage;
        }
    }
    if (count_evictable) {
        priorityEvictable(srv, w, free_cores, free_mem, free_storage);
    }
    if (free_cores < 1 || free_storage < w.storage_gb_per_node)
        return pick;

    // Scan feasible columns for the best achievable node perf.
    double best_perf = 0.0;
    for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
        const auto &cfg = est.scale_up_grid[c];
        if (cfg.cores > free_cores || cfg.memory_gb > free_mem + 1e-9)
            continue;
        best_perf = std::max(best_perf,
                             est.nodePerf(p_idx, c) * interf);
    }
    if (best_perf <= 0.0)
        return pick;

    // Right-size: the cheapest column whose predicted perf reaches the
    // goal (the residual target, capped by what the server can give).
    double goal = std::min(best_perf, perf_needed);
    if (!cfg_.scale_up_first) {
        // Scale-out-first ablation: spread small slices across nodes.
        goal = std::min(goal, 0.35 * best_perf);
    }
    double threshold = cfg_.node_perf_slack * goal;

    bool found = false;
    for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
        const auto &cfg = est.scale_up_grid[c];
        if (cfg.cores > free_cores || cfg.memory_gb > free_mem + 1e-9)
            continue;
        double perf = est.nodePerf(p_idx, c) * interf;
        if (perf + 1e-12 < threshold)
            continue;
        bool better;
        if (!found) {
            better = true;
        } else if (cfg.cores != pick.cores) {
            better = cfg.cores < pick.cores;
        } else if (cfg.memory_gb != pick.memory_gb) {
            better = cfg.memory_gb < pick.memory_gb;
        } else {
            better = perf > pick.perf;
        }
        if (better) {
            pick.col = c;
            pick.cores = cfg.cores;
            pick.memory_gb = cfg.memory_gb;
            pick.perf = perf;
            found = true;
        }
    }
    pick.valid = found;
    return pick;
}

bool
GreedyScheduler::residentsTolerate(const sim::Server &srv,
                                   const WorkloadEstimate &est,
                                   double cores, int socket,
                                   const EstimateLookup &estimates) const
{
    if (!estimates)
        return true;
    // Per-socket view of the newcomer's caused pressure: full
    // strength on its home socket, attenuated by the cross-socket
    // factor elsewhere, each over that socket's capacity. The flat
    // case multiplies by exactly 1.0 (no rounding), keeping the
    // pre-topology arithmetic.
    const interference::IVector &cross = srv.crossSocketFactor();
    std::array<interference::IVector, topology::kMaxSockets> added{};
    for (int s = 0; s < srv.numSockets(); ++s) {
        const auto &cap = srv.socketCapacity(s);
        for (size_t i = 0; i < interference::kNumSources; ++i) {
            double atten = s == socket ? 1.0 : cross[i];
            added[size_t(s)][i] =
                cap[i] > 0.0
                    ? est.caused_per_core[i] * cores * atten / cap[i]
                    : 0.0;
        }
    }
    for (const sim::TaskShare &t : srv.tasks()) {
        if (t.best_effort)
            continue; // evictable anyway; protected residents only
        const WorkloadEstimate *res = estimates(t.workload);
        if (!res)
            continue;
        interference::IVector now = srv.contentionFor(t.workload);
        const interference::IVector &add = added[size_t(t.socket)];
        double loss = 1.0;
        for (size_t i = 0; i < interference::kNumSources; ++i) {
            double excess = now[i] + add[i] - res->tolerated[i];
            if (excess > 0.0)
                loss *= std::max(0.05,
                                 1.0 - cfg_.slope_guess * excess);
        }
        if (1.0 - loss > cfg_.max_resident_loss)
            return false;
    }
    return true;
}

std::optional<Allocation>
GreedyScheduler::allocate(const Workload &w, const WorkloadEstimate &est,
                          double required_perf,
                          const EstimateLookup &estimates,
                          bool may_evict) const
{
    std::optional<Allocation> decision =
        allocateImpl(w, est, required_perf, estimates, may_evict);
#ifdef QUASAR_VERIFY
    // Shadow scheduler oracle: every incremental-mode decision is
    // re-derived through the legacy full_rescan path; any divergence
    // aborts. full_rescan decisions are the oracle, so they are never
    // shadowed (also what makes this non-recursive). A shard worker's
    // decision is shadowed by a full_rescan oracle restricted to the
    // same shard (the per-shard oracle of DESIGN.md §14).
    if (!cfg_.full_rescan)
        verify::shadowCheckAllocation(cluster_, cfg_, registry_, w,
                                      est, required_perf, estimates,
                                      may_evict, decision, shard_of_,
                                      shard_id_);
#endif
    return decision;
}

std::optional<Allocation>
GreedyScheduler::allocateWithSource(const Workload &w,
                                    const WorkloadEstimate &est,
                                    double required_perf,
                                    const EstimateLookup &estimates,
                                    bool may_evict,
                                    const CandidateFn &source) const
{
    return allocateImpl(w, est, required_perf, estimates, may_evict,
                        &source);
}

std::optional<Allocation>
GreedyScheduler::allocateImpl(const Workload &w,
                              const WorkloadEstimate &est,
                              double required_perf,
                              const EstimateLookup &estimates,
                              bool may_evict,
                              const CandidateFn *external) const
{
    assert(est.scale_up_grid.size() == est.scale_up_perf.size());
    const double target = std::max(required_perf, 1e-9) * cfg_.headroom;
    const int max_nodes =
        workload::isDistributed(w.type)
            ? std::min<int>(cfg_.max_nodes, int(cluster_.size()))
            : 1;

    // Rank candidate servers by decreasing quality. The full_rescan
    // path sorts everything up front (legacy); the cached path
    // heapifies and pops lazily; the dirty path never even touches
    // servers that did not change — it streams best-first from the
    // maintained per-platform order, so a placement that settles after
    // k servers costs O(dirty + expanded levels + k log buckets).
    std::vector<std::pair<double, ServerId>> ranked;
    OrderStream stream;
    const bool dirty = orderMaintained() && !external;
    if (!external) {
        stats::ScopedTimer timer(timing_.rank);
        if (dirty) {
            refreshIndex();
            // The maintained order partitions members by feasibility
            // class, so the drain below emits exactly the servers the
            // cached path's rank-time filter admits — the proven
            // placement-preserving predicate — and skips saturated
            // levels wholesale instead of emitting servers only for
            // pickNodeConfig to reject them one by one.
            OrderFilter filter;
            filter.evict = may_evict;
            if (may_evict && registry_)
                filter.prio_below = w.priority;
            beginOrderedCandidates(stream, est, filter);
        } else {
            ranked.reserve(cluster_.size());
            for (size_t i = 0; i < cluster_.size(); ++i) {
                if (!memberServer(ServerId(i)))
                    continue; // another shard's server
                bool avail;
                int free;
                if (cfg_.full_rescan) {
                    const sim::Server &srv =
                        cluster_.server(ServerId(i));
                    avail = srv.available();
                    free = srv.coresFree();
                    if (avail && may_evict) {
                        free += bestEffortTotals(srv).cores;
                    }
                } else {
                    const sim::Server &srv =
                        cluster_.server(ServerId(i));
                    const ServerCacheEntry &e = cachedState(srv);
                    avail = e.available;
                    free = e.free_cores;
                    if (avail && may_evict) {
                        free += e.be_cores;
                    }
                }
                // The resident-ledger walk only ADDS evictable
                // capacity and the filter below is `free < 1`, so a
                // server already over the bar never needs it — the
                // unguarded call was an O(N x residents) tax on every
                // decision.
                if (avail && free < 1 && may_evict && registry_) {
                    double pm = 0.0, ps = 0.0;
                    priorityEvictable(cluster_.server(ServerId(i)), w,
                                      free, pm, ps);
                }
                if (!avail || free < 1)
                    continue; // down machines accept no placements
                double quality =
                    serverQuality(cluster_.server(ServerId(i)), est);
                ranked.emplace_back(quality, ServerId(i));
            }
            if (cfg_.full_rescan) {
                std::sort(ranked.begin(), ranked.end(), rankedBefore);
            } else {
                std::make_heap(ranked.begin(), ranked.end(),
                               [](const auto &a, const auto &b) {
                                   return rankedBefore(b, a);
                               });
            }
        }
    }

    // nth(i): the i-th best candidate, or nullopt past the end. The
    // full_rescan path indexes its sorted vector; the cached path pops
    // the heap on demand (popped elements settle, sorted, at the
    // tail); the dirty path pulls from the order stream, memoizing
    // into `ranked` so the fault-zone relaxation pass can rewind.
    // All three present the identical order rankedBefore defines over
    // the identical candidate set: the dirty stream's class filter is
    // the same predicate the cached/full paths apply at rank time
    // (down machines and servers without a free or evictable core are
    // never emitted), so the chosen nodes are bit-identical across
    // modes.
    size_t popped = 0;
    auto nth =
        [&](size_t i) -> std::optional<std::pair<double, ServerId>> {
        if (external)
            return (*external)(i);
        if (dirty) {
            while (ranked.size() <= i) {
                auto cand = nextOrderedCandidate(stream, est);
                if (!cand)
                    return std::nullopt;
                ranked.push_back(*cand);
            }
            return ranked[i];
        }
        if (cfg_.full_rescan) {
            if (i >= ranked.size())
                return std::nullopt;
            return ranked[i];
        }
        if (i >= ranked.size())
            return std::nullopt;
        while (popped <= i) {
            std::pop_heap(ranked.begin(),
                          ranked.begin() +
                              ptrdiff_t(ranked.size() - popped),
                          [](const auto &a, const auto &b) {
                              return rankedBefore(b, a);
                          });
            ++popped;
        }
        return ranked[ranked.size() - 1 - i];
    };

    stats::ScopedTimer timer(timing_.place);
    Allocation alloc;
    std::vector<double> node_perfs;
    const FrameworkKnobs *knob_filter = nullptr;
    FrameworkKnobs chosen_knobs;
    double cost_so_far = 0.0;
    std::vector<char> zone_used(
        size_t(std::max(cluster_.numFaultZones(), 1)), 0);

    // With fault-zone spreading the candidates are walked twice: the
    // first pass only takes servers in fresh zones; the second pass
    // relaxes the constraint if the target is still unmet. A server
    // already chosen in pass one is never picked again (each candidate
    // contributes at most one node per allocation).
    const int passes = cfg_.spread_fault_zones ? 2 : 1;
    bool done = false;
    for (int pass = 0; pass < passes && !done; ++pass) {
        for (size_t i = 0;; ++i) {
            if (int(alloc.nodes.size()) >= max_nodes) {
                done = true;
                break;
            }
            double predicted = est.jobPerf(node_perfs);
            if (predicted >= target) {
                done = true;
                break;
            }

            auto cand = nth(i);
            if (!cand)
                break; // candidates exhausted; maybe relax zones
            const auto [quality, sid] = *cand;
            (void)quality;
            const sim::Server &srv = cluster_.server(sid);
            if (srv.hosts(w.id))
                continue;
            bool already_chosen = false;
            for (const AllocationNode &n : alloc.nodes)
                already_chosen = already_chosen || n.server == sid;
            if (already_chosen)
                continue;
            if (cfg_.spread_fault_zones && pass == 0 &&
                zone_used[size_t(srv.faultZone())])
                continue; // first pass: fresh zones only
            // Per-node perf needed to close the gap if this node joins.
            int n_next = int(node_perfs.size()) + 1;
            double eff = est.scaleOutSpeedupAt(n_next) / double(n_next);
            double sum_now = 0.0;
            for (double v : node_perfs)
                sum_now += v;
            double needed =
                eff > 0.0 ? target / eff - sum_now
                          : std::numeric_limits<double>::infinity();
            needed = std::max(needed, 1e-9);

            NodePick pick =
                pickNodeConfig(srv, w, est, may_evict, needed);
            if (!pick.valid)
                continue;
            if (knob_filter &&
                !(est.scale_up_grid[pick.col].knobs == *knob_filter)) {
                // Keep one knob setting across the job: re-scan
                // restricted to matching columns by rejecting
                // mismatches.
                size_t p_idx = platformIndexOf(srv);
                double interf;
                if (cfg_.full_rescan) {
                    sim::Server::SocketSnapshot snap =
                        srv.socketSnapshot();
                    interf = est.interferenceMultiplier(
                                 snap.contention[size_t(pick.socket)],
                                 cfg_.slope_guess) *
                             srv.speedFactor();
                } else {
                    const ServerCacheEntry &e = cachedState(srv);
                    interf =
                        est.interferenceMultiplier(
                            e.socket_contention[size_t(pick.socket)],
                            cfg_.slope_guess) *
                        e.speed;
                }
                bool fixed = false;
                for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
                    const auto &cfg = est.scale_up_grid[c];
                    if (!(cfg.knobs == *knob_filter))
                        continue;
                    if (cfg.cores != pick.cores ||
                        cfg.memory_gb != pick.memory_gb)
                        continue;
                    pick.col = c;
                    pick.perf = est.nodePerf(p_idx, c) * interf;
                    fixed = true;
                    break;
                }
                if (!fixed)
                    continue;
            }
            if (!residentsTolerate(srv, est, pick.cores, pick.socket,
                                   estimates))
                continue;

            // Diminishing returns: when this node's marginal
            // contribution falls well below what it would deliver
            // standalone, the scale-out knee has passed and further
            // servers are wasted (checked before planning evictions so
            // no one is evicted for a node that is never placed).
            if (!node_perfs.empty() && pick.perf > 0.0) {
                std::vector<double> with_node = node_perfs;
                with_node.push_back(pick.perf);
                double gain =
                    est.jobPerf(with_node) - est.jobPerf(node_perfs);
                if (gain < cfg_.min_marginal_efficiency * pick.perf) {
                    done = true;
                    break;
                }
            }

            // Plan evictions when the raw free capacity is
            // insufficient — into a local list, committed only once
            // the node clears every remaining check. Nothing may land
            // in alloc.evictions for a node that is rejected later
            // (cost cap) or for a server revisited by the relaxed
            // spreading pass, or the same share would be consumed
            // twice in one schedule call.
            std::vector<std::pair<ServerId, WorkloadId>> planned;
            int base_free_cores;
            double base_free_mem;
            if (cfg_.full_rescan) {
                base_free_cores = srv.coresFree();
                base_free_mem = srv.memoryFree();
            } else {
                const ServerCacheEntry &e = cachedState(srv);
                base_free_cores = e.free_cores;
                base_free_mem = e.free_mem;
            }
            if (may_evict && (pick.cores > base_free_cores ||
                              pick.memory_gb > base_free_mem + 1e-9)) {
                int need_cores = pick.cores - base_free_cores;
                double need_mem = pick.memory_gb - base_free_mem;
                // Evict best-effort first, then ascending priority,
                // and larger shares before smaller ones.
                std::vector<const sim::TaskShare *> be;
                for (const sim::TaskShare &t : srv.tasks())
                    if (evictable(t, w))
                        be.push_back(&t);
                auto prio = [&](const sim::TaskShare *t) {
                    if (t->best_effort || !registry_ ||
                        !registry_->contains(t->workload))
                        return std::numeric_limits<int>::min();
                    return registry_->get(t->workload).priority;
                };
                std::sort(be.begin(), be.end(),
                          [&](const auto *a, const auto *b) {
                              if (prio(a) != prio(b))
                                  return prio(a) < prio(b);
                              return a->cores > b->cores;
                          });
                for (const sim::TaskShare *t : be) {
                    if (need_cores <= 0 && need_mem <= 1e-9)
                        break;
                    planned.emplace_back(sid, t->workload);
                    need_cores -= t->cores;
                    need_mem -= t->memory_gb;
                }
                if (need_cores > 0 || need_mem > 1e-9)
                    continue; // still does not fit
            }

            // Cost target (Sec. 4.4): never exceed the spending cap.
            // Checked before anything is committed so a rejection
            // leaves no trace.
            if (w.cost_cap_per_hour > 0.0) {
                double node_cost = srv.platform().cost_per_hour *
                                   double(pick.cores) /
                                   double(srv.platform().cores);
                if (cost_so_far + node_cost > w.cost_cap_per_hour)
                    continue;
                cost_so_far += node_cost;
            }

            if (alloc.nodes.empty()) {
                chosen_knobs = est.scale_up_grid[pick.col].knobs;
                if (w.type == workload::WorkloadType::Analytics)
                    knob_filter = &chosen_knobs;
            }
            alloc.evictions.insert(alloc.evictions.end(),
                                   planned.begin(), planned.end());
            alloc.nodes.push_back({sid, pick.col, pick.cores,
                                   pick.memory_gb, pick.perf,
                                   pick.socket});
            node_perfs.push_back(pick.perf);
            zone_used[size_t(srv.faultZone())] = 1;
        }
    }

    if (alloc.nodes.empty())
        return std::nullopt;

    alloc.knobs = chosen_knobs;
    alloc.predicted_perf = est.jobPerf(node_perfs);
    alloc.degraded = alloc.predicted_perf + 1e-9 <
                     required_perf * cfg_.headroom * cfg_.node_perf_slack;
    return alloc;
}

} // namespace quasar::core
