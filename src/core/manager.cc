#include "core/manager.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "workload/queueing.hh"

namespace quasar::core
{

using workload::TargetKind;
using workload::Workload;
using workload::WorkloadType;

QuasarManager::QuasarManager(sim::Cluster &cluster,
                             workload::WorkloadRegistry &registry,
                             QuasarConfig cfg)
    : cluster_(cluster), registry_(registry), cfg_(cfg),
      profiler_(cluster.catalog(), cfg.profiler),
      classifier_(profiler_, cfg.classifier, cfg.seed ^ 0xC1A55),
      scheduler_(cluster, cfg.scheduler, &registry),
      monitor_(cluster, registry, cfg.monitor,
               stats::Rng(cfg.seed ^ 0x3017)),
      overload_(cfg.overload), rng_(cfg.seed)
{
    // The aging guard only rides along with overload control: with it
    // off, queue behavior (and every committed placement hash) stays
    // exactly as before.
    if (cfg_.overload.enabled)
        admission_.setAgingLimit(cfg_.overload.aging_limit_s);
    if (cfg_.shard.enabled())
        sharded_.emplace(cluster, cfg_.scheduler, cfg_.shard,
                         &registry);
}

std::optional<Allocation>
QuasarManager::schedAllocate(const Workload &w,
                             const WorkloadEstimate &est,
                             double required_perf,
                             const EstimateLookup &estimates,
                             bool may_evict)
{
    if (sharded_)
        return sharded_->allocate(w, est, required_perf, estimates,
                                  may_evict);
    return scheduler_.allocate(w, est, required_perf, estimates,
                               may_evict);
}

void
QuasarManager::seedOffline(workload::WorkloadFactory &factory,
                           size_t count, double t)
{
    // A representative spread of the workload families (paper: 20-30
    // applications characterized exhaustively offline).
    std::vector<Workload> seeds;
    static const char *families[] = {"spec-int", "spec-fp", "parsec",
                                     "splash2", "minebench", "specjbb"};
    for (size_t i = 0; i < count; ++i) {
        switch (i % 5) {
          case 0:
            seeds.push_back(factory.hadoopJob(
                "seed-hadoop", factory.rng().uniform(5.0, 200.0)));
            break;
          case 1:
            seeds.push_back(factory.sparkJob(
                "seed-spark", factory.rng().uniform(5.0, 60.0)));
            break;
          case 2: {
            double qps = factory.rng().uniform(50e3, 300e3);
            seeds.push_back(factory.memcachedService(
                "seed-memcached", qps, 200e-6, 50.0,
                std::make_shared<tracegen::FlatLoad>(qps)));
            break;
          }
          case 3: {
            double qps = factory.rng().uniform(100.0, 400.0);
            seeds.push_back(factory.webService(
                "seed-web", qps, 0.1,
                std::make_shared<tracegen::FlatLoad>(qps)));
            break;
          }
          default:
            seeds.push_back(factory.singleNodeJob(
                "seed-single", families[i % 6]));
            break;
        }
    }
    seedOffline(seeds, t);
}

void
QuasarManager::seedOffline(const std::vector<Workload> &seeds, double t)
{
    classifier_.seedOffline(seeds, t);
}

double
QuasarManager::requiredPerf(const Workload &w, double t) const
{
    switch (w.target.kind) {
      case TargetKind::CompletionTime: {
        double deadline = w.arrival_time + w.target.completion_time_s;
        double remaining_work = std::max(w.total_work - w.work_done,
                                         0.0);
        double remaining_time =
            std::max(deadline - t, 0.05 * w.target.completion_time_s);
        return remaining_work / remaining_time;
      }
      case TargetKind::QpsLatency: {
        // Capacity needed so the offered load meets the tail QoS:
        // queueing headroom plus a 15% buffer so the service rides
        // above the latency knee rather than on it. With predictive
        // sizing, capacity is provisioned for the forecast load a
        // little ahead, so ramps are absorbed instead of chased.
        double offered = w.offeredQps(t);
        if (cfg_.predict_lead_s > 0.0) {
            auto it = predictors_.find(w.id);
            if (it != predictors_.end() && it->second.warmedUp())
                offered = std::max(
                    offered,
                    it->second.predict(t + cfg_.predict_lead_s));
        }
        offered = std::max(offered, 0.05 * w.target.qps);
        double headroom = -std::log(0.01) / w.target.latency_qos_s;
        // The autoscaler's demand boost multiplies the requirement,
        // so the adapt loop (scale up / out, shrink suppression)
        // enacts the PI controller's output through the existing
        // machinery (boost is 1.0 with the controller off).
        return (1.15 * offered + headroom) * overload_.boostFor(w.id);
      }
      case TargetKind::Ips:
        return w.target.rate;
    }
    return w.target.rate;
}

EstimateLookup
QuasarManager::estimateLookup() const
{
    return [this](WorkloadId id) -> const WorkloadEstimate * {
        auto it = estimates_.find(id);
        return it == estimates_.end() ? nullptr : &it->second;
    };
}

void
QuasarManager::onSubmit(WorkloadId id, double t)
{
    Workload &w = registry_.get(id);
    // Profile in sandboxed copies and classify.
    profiling::ProfilingData data;
    WorkloadEstimate est;
    {
        stats::ScopedTimer timer(stats_.classify_time);
        {
            stats::ScopedTimer profile_timer(stats_.profile_time);
            data = profiler_.profile(w, t, rng_);
        }
        est = classifier_.classify(w, data);
    }
    overhead_s_[id] +=
        data.profiling_seconds + est.classification_seconds;
    estimates_[id] = std::move(est);

    // Backpressure at the door: while the cluster is pressured,
    // sheddable classes queue with exponential backoff instead of
    // being scheduled into an already-drowning cluster. Services are
    // never gated here.
    if (overload_.shouldDefer(w)) {
        overload_.noteDefer(id, t);
        ++stats_.overload_deferred;
        admission_.enqueueWithBackoff(id, t,
                                      cfg_.overload.defer_base_s,
                                      cfg_.overload.defer_max_s);
        ++stats_.queued;
        return;
    }

    if (!trySchedule(id, t, true))
        ++stats_.queued;
}

bool
QuasarManager::trySchedule(WorkloadId id, double t, bool requeue_on_fail)
{
    Workload &w = registry_.get(id);
    auto est_it = estimates_.find(id);
    assert(est_it != estimates_.end());
    const WorkloadEstimate &est = est_it->second;

    double required = requiredPerf(w, t);
    // Re-placement after a failure spreads latency-critical replicas
    // across fault zones so one rack/PDU cannot hold the whole
    // service again (Sec. 4.4).
    std::optional<Allocation> alloc;
    {
        stats::ScopedTimer timer(stats_.schedule_time);
        if (cfg_.spread_zones_on_recovery && displaced_at_.contains(id) &&
            workload::isLatencyCritical(w.type)) {
            SchedulerConfig spread_cfg = scheduler_.config();
            spread_cfg.spread_fault_zones = true;
            // Deliberately unsharded in BOTH modes: the zone-spread
            // recovery walk is a one-off full_rescan-class decision,
            // and keeping it identical here is part of why a fixed
            // (K, seed) reproduces the unsharded placement hashes.
            GreedyScheduler spread(cluster_, spread_cfg, &registry_);
            alloc = spread.allocate(w, est, required, estimateLookup(),
                                    !w.best_effort);
        } else {
            alloc = schedAllocate(w, est, required, estimateLookup(),
                                  !w.best_effort);
        }
    }
    // Place the best allocation available and let monitoring adjust
    // it ("get as close as possible to the constraint", Sec. 3.3);
    // admission control only holds workloads for which no resources
    // exist at all, or best-effort tasks that would run far below
    // a useful rate.
    bool ok = alloc.has_value() &&
              (!w.best_effort ||
               alloc->predicted_perf >=
                   cfg_.admit_fraction * required);
    if (!ok) {
        if (requeue_on_fail)
            admission_.enqueue(id, t);
        return false;
    }
    applyAllocation(w, *alloc, t);
    admission_.admitted(id, t);
    ++stats_.scheduled;
    noteRecovered(id, t);
    return true;
}

void
QuasarManager::noteRecovered(WorkloadId id, double t)
{
    auto it = displaced_at_.find(id);
    if (it == displaced_at_.end())
        return;
    recovery_times_.add(t - it->second);
    displaced_at_.erase(it);
    ++stats_.recoveries;
}

void
QuasarManager::applyAllocation(Workload &w, const Allocation &alloc,
                               double t)
{
    // Evict best-effort residents first; they go back to the queue.
    for (const auto &[sid, victim] : alloc.evictions) {
        cluster_.server(sid).remove(victim);
        ++stats_.evictions;
        if (!registry_.get(victim).completed &&
            !admission_.contains(victim))
            admission_.enqueue(victim, t);
    }
    w.active_knobs = alloc.knobs;
    for (const AllocationNode &node : alloc.nodes) {
        sim::TaskShare share;
        share.workload = w.id;
        share.cores = node.cores;
        share.memory_gb = node.memory_gb;
        share.storage_gb = w.storage_gb_per_node;
        share.caused = w.causedPressure(t, node.cores);
        share.best_effort = w.best_effort;
        share.socket = node.socket;
        cluster_.server(node.server).place(share);
    }
    w.last_progress_update = t;
}

void
QuasarManager::releaseWorkload(WorkloadId id)
{
    cluster_.removeEverywhere(id);
}

double
QuasarManager::predictCurrent(const Workload &w,
                              const WorkloadEstimate &est) const
{
    std::vector<double> node_perfs;
    for (ServerId sid : cluster_.serversHosting(w.id)) {
        const sim::Server &srv = cluster_.server(sid);
        const sim::TaskShare *share = srv.share(w.id);
        size_t p_idx = scheduler_.platformIndexOf(srv);
        // Nearest grid column for the current share.
        size_t best_col = 0;
        double best_score = 1e18;
        for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
            const auto &cfg = est.scale_up_grid[c];
            double score =
                std::fabs(double(cfg.cores - share->cores)) +
                0.1 * std::fabs(cfg.memory_gb - share->memory_gb);
            if (score < best_score) {
                best_score = score;
                best_col = c;
            }
        }
        double interf = est.interferenceMultiplier(
            srv.contentionFor(w.id), scheduler_.config().slope_guess);
        node_perfs.push_back(est.nodePerf(p_idx, best_col) * interf *
                             srv.speedFactor());
    }
    return est.jobPerf(node_perfs);
}

bool
QuasarManager::tryPartition(Workload &w, const WorkloadEstimate &est)
{
    bool granted = false;
    for (ServerId sid : cluster_.serversHosting(w.id)) {
        sim::Server &srv = cluster_.server(sid);
        auto contention = srv.contentionFor(w.id);
        for (size_t i = 0; i < interference::kNumSources; ++i) {
            double excess = contention[i] - est.tolerated[i];
            // Only worth the ~5% partition overhead when the
            // estimated interference loss is clearly larger.
            if (excess * scheduler_.config().slope_guess > 0.10) {
                if (srv.setIsolation(w.id, interference::sourceAt(i),
                                     true)) {
                    granted = true;
                    ++stats_.partitions_granted;
                }
            }
        }
    }
    return granted;
}

bool
QuasarManager::tryScaleUp(Workload &w, const WorkloadEstimate &est,
                          double required, double t)
{
    bool changed = false;
    for (ServerId sid : cluster_.serversHosting(w.id)) {
        if (predictCurrent(w, est) >= required)
            break;
        sim::Server &srv = cluster_.server(sid);
        const sim::TaskShare *share = srv.share(w.id);
        size_t p_idx = scheduler_.platformIndexOf(srv);

        int budget_cores = share->cores + srv.coresFree();
        double budget_mem = share->memory_gb + srv.memoryFree();
        // Best-effort residents are evictable headroom for a primary
        // workload's in-place growth.
        std::vector<WorkloadId> evictable;
        if (!w.best_effort) {
            for (const sim::TaskShare &task : srv.tasks()) {
                if (task.best_effort) {
                    budget_cores += task.cores;
                    budget_mem += task.memory_gb;
                    evictable.push_back(task.workload);
                }
            }
        }
        double interf = est.interferenceMultiplier(
            srv.contentionFor(w.id), scheduler_.config().slope_guess);

        // Find the best feasible strictly-larger configuration.
        double cur_perf = 0.0, best_perf = 0.0;
        int best_cores = share->cores;
        double best_mem = share->memory_gb;
        for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
            const auto &cfg = est.scale_up_grid[c];
            if (cfg.cores > budget_cores ||
                cfg.memory_gb > budget_mem + 1e-9)
                continue;
            double perf = est.nodePerf(p_idx, c) * interf;
            if (cfg.cores == share->cores &&
                cfg.memory_gb == share->memory_gb)
                cur_perf = std::max(cur_perf, perf);
            if (cfg.cores >= share->cores &&
                cfg.memory_gb >= share->memory_gb - 1e-9 &&
                perf > best_perf) {
                best_perf = perf;
                best_cores = cfg.cores;
                best_mem = cfg.memory_gb;
            }
        }
        if (best_perf > cur_perf * 1.05 &&
            (best_cores != share->cores ||
             best_mem != share->memory_gb)) {
            // Evict best-effort tasks until the resize fits.
            for (WorkloadId victim : evictable) {
                if (best_cores - share->cores <= srv.coresFree() &&
                    best_mem - share->memory_gb <=
                        srv.memoryFree() + 1e-9)
                    break;
                srv.remove(victim);
                ++stats_.evictions;
                if (!registry_.get(victim).completed &&
                    !admission_.contains(victim))
                    admission_.enqueue(victim, t);
            }
            if (srv.resize(w.id, best_cores, best_mem)) {
                changed = true;
                ++stats_.scale_up_adjustments;
            }
        }
    }
    return changed;
}

bool
QuasarManager::tryScaleOut(Workload &w, const WorkloadEstimate &est,
                           double required, double t)
{
    if (!workload::isDistributed(w.type))
        return false;
    double current = predictCurrent(w, est);
    if (current >= required)
        return false;

    // Ask the scheduler for additional nodes covering the residual.
    // Servers already hosting w are naturally skipped (they cannot
    // host a second share).
    auto hosting = cluster_.serversHosting(w.id);
    double residual = required - current;
    auto alloc = schedAllocate(w, est, residual, estimateLookup(),
                               !w.best_effort);
    if (!alloc)
        return false;
    // Filter nodes on servers that already host w.
    Allocation filtered;
    filtered.knobs = w.active_knobs;
    filtered.evictions = alloc->evictions;
    for (const AllocationNode &n : alloc->nodes) {
        bool dup = false;
        for (ServerId h : hosting)
            dup = dup || h == n.server;
        if (!dup)
            filtered.nodes.push_back(n);
    }
    if (filtered.nodes.empty())
        return false;

    applyAllocation(w, filtered, t);
    ++stats_.scale_out_adjustments;

    // Stateful services pay a migration cost proportional to the
    // state that must move to the new nodes.
    if (w.type == WorkloadType::StatefulService && w.state_gb > 0.0) {
        size_t old_nodes = hosting.size();
        size_t new_nodes = old_nodes + filtered.nodes.size();
        double moved_fraction = double(filtered.nodes.size()) /
                                double(std::max<size_t>(new_nodes, 1));
        double moved_gb = w.state_gb * moved_fraction;
        double duration = moved_gb / cfg_.migration_gbps;
        w.degraded_until = t + duration;
        // Only the moving shards are unavailable: the penalty scales
        // with the fraction of state in flight.
        w.degraded_factor =
            1.0 - (1.0 - cfg_.migration_factor) * moved_fraction;
    }
    return true;
}

void
QuasarManager::shrinkAllocation(Workload &w, const WorkloadEstimate &est,
                                double required, double t)
{
    auto hosting = cluster_.serversHosting(w.id);
    if (hosting.empty())
        return;

    // Prefer releasing a whole node (lowest predicted contribution)
    // when the remainder still meets the target with margin.
    if (hosting.size() > 1) {
        ServerId worst = hosting.front();
        double worst_q = 1e18;
        for (ServerId sid : hosting) {
            double q = scheduler_.serverQuality(
                cluster_.server(sid), est);
            if (q < worst_q) {
                worst_q = q;
                worst = sid;
            }
        }
        const sim::TaskShare saved = *cluster_.server(worst).share(w.id);
        cluster_.server(worst).remove(w.id);
        // Keep a modest margin after shrinking: above the growth
        // trigger so the allocation cannot oscillate, but low enough
        // that over-provisioned capacity is actually reclaimed. The
        // margin is verified against a *measurement*, not just the
        // estimate — in a loaded cluster an over-shrink may be
        // impossible to undo later.
        if (predictCurrent(w, est) >= 1.15 * required &&
            monitor_.measureAbsolute(w, t) >= 1.1 * required) {
            ++stats_.shrinks;
            return;
        }
        cluster_.server(worst).place(saved); // undo
    }

    // Otherwise downsize the largest share by one grid step.
    ServerId biggest = hosting.front();
    int max_cores = -1;
    for (ServerId sid : hosting) {
        const sim::TaskShare *s = cluster_.server(sid).share(w.id);
        if (s->cores > max_cores) {
            max_cores = s->cores;
            biggest = sid;
        }
    }
    sim::Server &srv = cluster_.server(biggest);
    const sim::TaskShare *share = srv.share(w.id);
    // resize() mutates the share in place, so remember the current
    // size by value for the undo below.
    const int old_cores = share->cores;
    const double old_mem = share->memory_gb;
    size_t p_idx = scheduler_.platformIndexOf(srv);
    double interf = est.interferenceMultiplier(
        srv.contentionFor(w.id), scheduler_.config().slope_guess);
    // Smallest config that still meets the per-node requirement.
    double others = predictCurrent(w, est);
    // Approximate per-node need: required / node count.
    double per_node_need =
        required / double(std::max<size_t>(hosting.size(), 1));
    (void)others;
    int best_cores = share->cores;
    double best_mem = share->memory_gb;
    bool found = false;
    for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
        const auto &cfg = est.scale_up_grid[c];
        if (cfg.cores > share->cores ||
            cfg.memory_gb > share->memory_gb + 1e-9)
            continue;
        if (cfg.cores == share->cores &&
            cfg.memory_gb == share->memory_gb)
            continue;
        double perf = est.nodePerf(p_idx, c) * interf;
        if (perf < 1.15 * per_node_need)
            continue;
        if (!found || cfg.cores < best_cores ||
            (cfg.cores == best_cores && cfg.memory_gb < best_mem)) {
            best_cores = cfg.cores;
            best_mem = cfg.memory_gb;
            found = true;
        }
    }
    if (found && srv.resize(w.id, best_cores, best_mem)) {
        if (monitor_.measureAbsolute(w, t) >= 1.1 * required) {
            ++stats_.shrinks;
        } else {
            srv.resize(w.id, old_cores, old_mem); // undo
        }
    }
}

void
QuasarManager::adjust(Workload &w, double t)
{
    stats::ScopedTimer timer(stats_.adapt_time);
    auto est_it = estimates_.find(w.id);
    if (est_it == estimates_.end())
        return;
    WorkloadEstimate &est = est_it->second;
    double required = requiredPerf(w, t);

    // Feedback loop: reconcile the estimate with the measured
    // performance before deciding how to adjust.
    if (cfg_.feedback_loop) {
        double predicted = predictCurrent(w, est);
        double measured = monitor_.measureAbsolute(w, t);
        if (predicted > 0.0 &&
            std::fabs(measured / predicted - 1.0) >
                cfg_.feedback_deviation) {
            // Damped correction: transient interference shows up in
            // the measurement, so only half the (log) deviation is
            // attributed to misclassification.
            double scale = std::sqrt(measured / predicted);
            for (double &v : est.scale_up_perf)
                v *= scale;
            for (double &v : est.cross_perf)
                v *= scale;
            auto hosting = cluster_.serversHosting(w.id);
            if (!hosting.empty()) {
                const sim::TaskShare *share =
                    cluster_.server(hosting.front()).share(w.id);
                // Push the corrected column into history.
                size_t col = 0;
                double score = 1e18;
                for (size_t c = 0; c < est.scale_up_grid.size(); ++c) {
                    double s =
                        std::fabs(double(est.scale_up_grid[c].cores -
                                         share->cores)) +
                        0.1 * std::fabs(
                                  est.scale_up_grid[c].memory_gb -
                                  share->memory_gb);
                    if (s < score) {
                        score = s;
                        col = c;
                    }
                }
                classifier_.feedbackScaleUp(est, col,
                                            est.scale_up_perf[col]);
            }
            ++stats_.feedback_updates;
        }
    }

    int &strikes = strikes_[w.id];
    ++strikes;
    // A single below-threshold reading can be measurement noise; act
    // only when the miss persists (conservative adaptation).
    if (strikes < 2)
        return;

    // Conservative adjustment: partition away interference first (no
    // extra resources needed) when the shortfall is small enough that
    // interference can plausibly explain it, then scale up in place,
    // then out.
    double measured_norm = monitor_.measure(w, t);
    if (cfg_.resource_partitioning && measured_norm > 0.75 &&
        tryPartition(w, est))
        return;
    if (tryScaleUp(w, est, required * scheduler_.config().headroom, t))
        return;
    if (tryScaleOut(w, est, required, t))
        return;

    if (strikes >= cfg_.underperf_strikes) {
        strikes = 0;
        auto last = last_reschedule_.find(w.id);
        if (last == last_reschedule_.end() ||
            t - last->second >= cfg_.reschedule_cooldown_s) {
            last_reschedule_[w.id] = t;
            reclassifyAndReschedule(w, t);
        }
    }
}

void
QuasarManager::reclassifyAndReschedule(Workload &w, double t)
{
    // Snapshot the current placement: in a loaded cluster a fresh
    // placement can come out worse than what the workload already
    // holds, in which case we keep the old one (but still adopt the
    // fresh classification).
    struct Saved
    {
        ServerId server;
        sim::TaskShare share;
    };
    std::vector<Saved> old_shares;
    for (ServerId sid : cluster_.serversHosting(w.id))
        old_shares.push_back({sid, *cluster_.server(sid).share(w.id)});

    releaseWorkload(w.id);
    profiling::ProfilingData data;
    WorkloadEstimate est;
    {
        stats::ScopedTimer timer(stats_.classify_time);
        {
            stats::ScopedTimer profile_timer(stats_.profile_time);
            data = profiler_.profile(w, t, rng_);
        }
        est = classifier_.classify(w, data);
    }
    overhead_s_[w.id] +=
        data.profiling_seconds + est.classification_seconds;
    double old_predicted = 0.0;
    {
        // Predict the old placement under the fresh estimate.
        for (const Saved &sv : old_shares)
            cluster_.server(sv.server).place(sv.share);
        old_predicted = predictCurrent(w, est);
        releaseWorkload(w.id);
    }
    estimates_[w.id] = std::move(est);
    ++stats_.rescheduled;

    double required = requiredPerf(w, t);
    auto alloc = schedAllocate(w, estimates_[w.id], required,
                               estimateLookup(), !w.best_effort);
    bool better = alloc.has_value() &&
                  (alloc->predicted_perf >=
                       cfg_.reschedule_hysteresis * old_predicted ||
                   old_shares.empty());
    if (better) {
        applyAllocation(w, *alloc, t);
        admission_.admitted(w.id, t);
        ++stats_.scheduled;
        return;
    }
    // Revert to the previous placement.
    for (const Saved &sv : old_shares)
        cluster_.server(sv.server).place(sv.share);
    w.last_progress_update = t;
    if (old_shares.empty()) {
        admission_.enqueue(w.id, t);
        ++stats_.queued;
    }
}

void
QuasarManager::drainAdmission(double t, bool ignore_backoff)
{
    // Retry queued workloads (admission control; plain entries are
    // always due, backed-off ones when their timer or the aging
    // guard says so). Under overload, due sheddable entries are
    // re-deferred — or, past the shed deadline, dropped into the
    // terminal shed state — before any scheduling is attempted.
    std::vector<WorkloadId> due = ignore_backoff
                                      ? admission_.drainForRetry()
                                      : admission_.drainForRetry(t);
    for (WorkloadId id : due) {
        Workload &w = registry_.get(id);
        if (w.completed || w.killed) {
            admission_.abandon(id);
            continue;
        }
        double since = admission_.enqueuedAt(id);
        double age = since >= 0.0 ? t - since : -1.0;
        if (overload_.shouldShed(w, age)) {
            shedWorkload(w, t);
            continue;
        }
        // The aging guard breaks the backpressure feedback loop: a
        // deferred entry keeps the queue deep, which keeps the
        // detector pressured, which would re-defer it forever. Past
        // the age limit the entry escapes the defer gate and gets a
        // real scheduling attempt (under true overload that attempt
        // fails and it simply re-queues).
        bool aged = cfg_.overload.aging_limit_s > 0.0 && age >= 0.0 &&
                    age >= cfg_.overload.aging_limit_s;
        if (!aged && overload_.shouldDefer(w)) {
            overload_.noteDefer(id, t);
            ++stats_.overload_deferred;
            admission_.enqueueWithBackoff(
                id, t, cfg_.overload.defer_base_s,
                cfg_.overload.defer_max_s);
            continue;
        }
        trySchedule(id, t, true);
    }
}

void
QuasarManager::shedWorkload(Workload &w, double t)
{
    // Terminal and accounted: the arrival leaves the system
    // explicitly (shed implies killed, holds no resources, and is
    // counted apart from completions and churn departures).
    w.shed = true;
    w.killed = true;
    w.brownout_active = false;
    w.completion_time = t;
    overload_.noteShed(w.id, t);
    ++stats_.shed;
    admission_.abandon(w.id);
    cluster_.removeEverywhere(w.id);
    strikes_.erase(w.id);
    predictors_.erase(w.id);
    last_adjust_.erase(w.id);
    last_reschedule_.erase(w.id);
    displaced_at_.erase(w.id);
    brownout_saved_.erase(w.id);
    overload_.forget(w.id);
}

void
QuasarManager::applyBrownout(double t)
{
    // Graceful degradation instead of binary shed: every placed
    // best-effort share is reduced to the brownout core count (memory
    // kept — it is not the contended resource here), remembering the
    // original sizes for the restore pass. Walk order (ascending ids,
    // ascending servers) is deterministic and placement-derived, so
    // the decisions replay bit-identically.
    for (WorkloadId id : registry_.active()) {
        Workload &w = registry_.get(id);
        if (!w.best_effort || w.brownout_active)
            continue;
        std::vector<BrownoutShare> saved;
        for (ServerId sid : cluster_.serversHosting(id)) {
            sim::Server &srv = cluster_.server(sid);
            const sim::TaskShare *share = srv.share(id);
            if (!share || share->cores <= cfg_.overload.brownout_cores)
                continue;
            BrownoutShare bs{sid, share->cores, share->memory_gb};
            if (srv.resize(id, cfg_.overload.brownout_cores,
                           share->memory_gb))
                saved.push_back(bs);
        }
        if (!saved.empty()) {
            brownout_saved_[id] = std::move(saved);
            w.brownout_active = true;
            w.brownout_ever = true;
            overload_.noteBrownout(id, t);
            ++stats_.brownouts;
        }
    }
}

void
QuasarManager::restoreBrownout(double t)
{
    for (auto it = brownout_saved_.begin();
         it != brownout_saved_.end();) {
        WorkloadId id = it->first;
        Workload &w = registry_.get(id);
        if (w.completed || w.killed) {
            w.brownout_active = false;
            it = brownout_saved_.erase(it);
            continue;
        }
        bool fully = true;
        for (const BrownoutShare &bs : it->second) {
            sim::Server &srv = cluster_.server(bs.server);
            const sim::TaskShare *share = srv.share(id);
            if (!share)
                continue; // displaced or evicted since; nothing held
            if (share->cores >= bs.cores)
                continue; // already grown back by the adapt loop
            if (bs.cores - share->cores > srv.coresFree() ||
                !srv.resize(id, bs.cores, bs.memory_gb))
                fully = false;
        }
        if (fully) {
            w.brownout_active = false;
            overload_.noteRestore(id, t);
            ++stats_.brownout_restores;
            it = brownout_saved_.erase(it);
        } else {
            ++it; // partial restore: keep trying on later ticks
        }
    }
}

void
QuasarManager::autoscaleServices(double t)
{
    // PerfEnforce-style control round: each active placed service's
    // monitored normalized performance feeds its scaling policy; the
    // output boost multiplies requiredPerf, which the adapt loop
    // (scale up / out, shrink suppression) then enacts.
    for (WorkloadId id : registry_.active()) {
        Workload &w = registry_.get(id);
        if (!workload::isLatencyCritical(w.type) || w.best_effort)
            continue;
        if (cluster_.serversHosting(id).empty())
            continue;
        double before = overload_.boostFor(id);
        double boost = overload_.updateBoost(
            id, monitor_.measure(w, t), t);
        ++stats_.autoscale_updates;
        // A raised requirement should act this tick, not after the
        // adjustment cooldown from some earlier decision expires.
        if (boost > before)
            last_adjust_.erase(id);
    }
}

void
QuasarManager::onTick(double t)
{
    // Overload detector first: every gating decision of this tick
    // (defer, shed, brownout) reads the state observed here. The
    // probes — reserved CPU and queue depth — are pure functions of
    // the placements, which are bit-identical across scheduler modes.
    if (overload_.enabled()) {
        OverloadState before = overload_.state();
        sim::ClusterSnapshot snap = cluster_.snapshot();
        OverloadState now =
            overload_.observe(t, snap.cpu_reserved, admission_.size());
        if (now != before)
            ++stats_.overload_transitions;
        if (now == OverloadState::Overloaded && cfg_.overload.brownout)
            applyBrownout(t);
        else if (now == OverloadState::Normal)
            restoreBrownout(t);
    }

    drainAdmission(t, false);

    // Service autoscaler round (paced by scale_interval_s), before
    // the monitor loop so this tick's adjustments see fresh boosts.
    if (overload_.beginScaleRound(t))
        autoscaleServices(t);

    // Monitor active primary workloads.
    for (WorkloadId id : registry_.active()) {
        Workload &w = registry_.get(id);
        if (workload::isLatencyCritical(w.type) &&
            cfg_.predict_lead_s > 0.0)
            predictors_[id].observe(t, w.offeredQps(t));
        if (cluster_.serversHosting(id).empty())
            continue;
        Alert alert = monitor_.check(w, t);
        if (alert == Alert::Underperforming && !w.best_effort) {
            auto last = last_adjust_.find(id);
            if (last == last_adjust_.end() ||
                t - last->second >= cfg_.adjust_cooldown_s) {
                last_adjust_[id] = t;
                adjust(w, t);
            }
        } else if (alert == Alert::Overprovisioned) {
            auto last = last_adjust_.find(id);
            if (last == last_adjust_.end() ||
                t - last->second >= cfg_.shrink_cooldown_s) {
                last_adjust_[id] = t;
                auto est_it = estimates_.find(id);
                if (est_it != estimates_.end())
                    shrinkAllocation(w, est_it->second,
                                     requiredPerf(w, t), t);
            }
            strikes_[id] = 0;
        } else {
            strikes_[id] = 0;
        }
    }

    // Proactive phase detection on a sample of active workloads.
    if (cfg_.proactive_detection &&
        t - last_proactive_ >= cfg_.proactive_interval_s) {
        last_proactive_ = t;
        for (WorkloadId id : registry_.active()) {
            if (!rng_.chance(cfg_.proactive_fraction))
                continue;
            Workload &w = registry_.get(id);
            if (cluster_.serversHosting(id).empty())
                continue;
            auto est_it = estimates_.find(id);
            if (est_it == estimates_.end())
                continue;
            bool phase_changed;
            {
                // Proactive sampling re-profiles in a sandbox; charge
                // it to the profiling wall-clock budget.
                stats::ScopedTimer profile_timer(stats_.profile_time);
                phase_changed = monitor_.probePhaseChange(
                    w, est_it->second, profiler_, t);
            }
            if (phase_changed) {
                ++stats_.phase_reclassifications;
                reclassifyAndReschedule(w, t);
            }
        }
    }
}

void
QuasarManager::onCompletion(WorkloadId id, double t)
{
    strikes_.erase(id);
    predictors_.erase(id);
    last_adjust_.erase(id);
    last_reschedule_.erase(id);
    displaced_at_.erase(id);
    brownout_saved_.erase(id);
    overload_.forget(id);
    admission_.abandon(id);
    // Free capacity: retry queued workloads immediately.
    drainAdmission(t, true);
}

void
QuasarManager::onServerDown(ServerId,
                            const std::vector<WorkloadId> &displaced,
                            double t)
{
    ++stats_.server_failures;
    for (WorkloadId id : displaced) {
        Workload &w = registry_.get(id);
        if (w.completed || w.killed)
            continue;
        ++stats_.tasks_displaced;
        displaced_at_.emplace(id, t);
        replaceDisplaced(id, t);
    }
}

void
QuasarManager::replaceDisplaced(WorkloadId id, double t)
{
    Workload &w = registry_.get(id);
    auto est_it = estimates_.find(id);
    if (est_it == estimates_.end()) {
        // Crashed before it was ever classified; take the full
        // submission path (profiles in sandboxed copies as usual).
        onSubmit(id, t);
        return;
    }
    // A machine loss is not a phase change: keep the existing
    // classification and skip re-profiling entirely.
    if (!cluster_.serversHosting(id).empty()) {
        // Partial loss of a multi-node job: still holding resources,
        // so top up scale-out-first; if capacity is tight the
        // reactive monitoring path keeps working on it.
        double required = requiredPerf(w, t);
        if (predictCurrent(w, est_it->second) < required)
            tryScaleOut(w, est_it->second, required, t);
        noteRecovered(id, t);
        return;
    }
    if (admission_.contains(id))
        return; // already waiting for capacity
    if (trySchedule(id, t, false))
        return;
    // Capacity is temporarily gone (e.g. mid zone outage): park with
    // exponential backoff instead of hammering the scheduler.
    admission_.enqueueWithBackoff(id, t, cfg_.failure_backoff_s,
                                  cfg_.failure_backoff_max_s);
    ++stats_.queued;
}

void
QuasarManager::onServerUp(ServerId, double t)
{
    // Fresh capacity just appeared: retry the whole queue now,
    // ignoring any backoff timers.
    drainAdmission(t, true);
}

void
QuasarManager::onServerDegraded(ServerId sid, double, double t)
{
    (void)t;
    // A sick node is a phase change in disguise: the oracle already
    // runs its residents slower, so pre-charge the reactive path —
    // clear the adjustment cooldown and the noise-filter strike so
    // the next below-target reading acts immediately.
    for (const sim::TaskShare &share : cluster_.server(sid).tasks()) {
        Workload &w = registry_.get(share.workload);
        if (w.best_effort || w.completed)
            continue;
        strikes_[share.workload] =
            std::max(strikes_[share.workload], 1);
        last_adjust_.erase(share.workload);
    }
}

const WorkloadEstimate *
QuasarManager::estimateFor(WorkloadId id) const
{
    auto it = estimates_.find(id);
    return it == estimates_.end() ? nullptr : &it->second;
}

double
QuasarManager::overheadSeconds(WorkloadId id) const
{
    double wait = 0.0;
    // Queue wait is recorded by the admission queue per workload in
    // aggregate; per-id we report profiling + classification.
    auto it = overhead_s_.find(id);
    if (it != overhead_s_.end())
        wait += it->second;
    return wait;
}

} // namespace quasar::core
