/**
 * @file
 * The Quasar classification engine (paper Sec. 3.2).
 *
 * Four independent collaborative-filtering classifications — scale-up,
 * scale-out, heterogeneity, and interference (tolerated and caused) —
 * turn a workload's handful of profiling samples into dense
 * performance estimates, by exploiting the rows of previously
 * scheduled workloads plus a small set of offline-characterized seed
 * workloads.
 *
 * Rows are normalized before completion so that values are comparable
 * across workloads of very different absolute performance:
 *  - scale-up rows by the reference-configuration measurement,
 *  - scale-out rows by the single-node measurement,
 *  - heterogeneity rows by the profiling-platform measurement,
 *  - interference rows are raw (intensities in [0, 1], pressures per
 *    core).
 *
 * An exhaustive single-classification mode (every allocation x
 * assignment combination as one matrix) is provided for the paper's
 * Table 2 / Fig. 3e ablation.
 */

#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/estimate.hh"
#include "linalg/completion.hh"
#include "profiling/profiler.hh"
#include "stats/rng.hh"
#include "stats/timing.hh"
#include "workload/workload.hh"

namespace quasar::core
{

/** Classification-engine knobs. */
struct ClassifierConfig
{
    linalg::PqConfig pq{.rank = 8,
                        .learning_rate = 0.05,
                        .regularization = 0.03,
                        .max_epochs = 300,
                        .tolerance = 1e-6,
                        .seed = 42};
    /** Online history rows kept per matrix (oldest evicted). */
    size_t max_history_rows = 300;
    /** Use the single exhaustive classification (ablation mode). */
    bool exhaustive = false;
    /** Degradation slope assumed beyond a tolerated threshold. */
    double slope_guess = 1.5;
};

/** The four (or one, in exhaustive mode) CF classifications. */
class Classifier
{
  public:
    Classifier(const profiling::Profiler &profiler, ClassifierConfig cfg,
               uint64_t seed = 1234);

    /**
     * Exhaustively profile a few workloads offline and store their
     * dense rows (paper: 20-30 workload types profiled offline to
     * anchor the matrices).
     */
    void seedOffline(const std::vector<workload::Workload> &seeds,
                     double t);

    /**
     * Classify one workload from its profiling data: complete all
     * matrices and return dense estimates. Appends the workload's
     * observed row to the online history.
     */
    WorkloadEstimate classify(const workload::Workload &w,
                              const profiling::ProfilingData &data);

    /**
     * Runtime feedback (paper's misclassification loop): overwrite the
     * scale-up estimate at one column with an observed normalized
     * value and record it in history for future classifications.
     */
    void feedbackScaleUp(WorkloadEstimate &est, size_t column,
                         double observed_perf);

    /** @name Introspection (tests/benches) */
    /// @{
    size_t onlineRows() const;
    size_t seedRows() const;
    const ClassifierConfig &config() const { return cfg_; }
    /** Aggregate wall-clock spent inside classify(). */
    const stats::TimerStat &classifyTime() const
    {
        return classify_time_;
    }
    /// @}

  private:
    /** One workload's observed entries in one matrix. */
    struct SparseRow
    {
        std::vector<std::pair<size_t, double>> entries;
    };

    /** A classification matrix: seed rows + bounded online history. */
    struct History
    {
        size_t cols = 0;
        std::vector<SparseRow> seeds;
        std::vector<SparseRow> online;

        /** Cached latent-factor fit (refit as the history grows). */
        linalg::PqModel model;
        size_t fitted_rows = 0;
        bool has_model = false;

        void addOnline(SparseRow row, size_t max_rows);
        linalg::MaskedMatrix build() const;
    };

    /**
     * Fold the observed row into the history's cached model,
     * refitting first when the history has grown materially since the
     * last fit (amortized: per-arrival cost stays at a few msec).
     */
    std::vector<double> completeRow(History &h,
                                    const SparseRow &observed) const;

    WorkloadEstimate classifyParallel(const workload::Workload &w,
                                      const profiling::ProfilingData &d);
    WorkloadEstimate classifyExhaustive(const workload::Workload &w,
                                        const profiling::ProfilingData &d);

    /** Scale-up history for the workload's grid kind. */
    History &scaleUpHistory(workload::WorkloadType t);
    const History &scaleUpHistory(workload::WorkloadType t) const;
    History &exhaustiveHistory(workload::WorkloadType t);

    /** Column layout of the exhaustive matrix for a grid kind. */
    size_t exhaustiveCols(workload::WorkloadType t) const;

    const profiling::Profiler &profiler_;
    ClassifierConfig cfg_;
    linalg::MatrixCompletion completion_;
    stats::Rng rng_;
    stats::TimerStat classify_time_;

    /** Grids (fixed at construction from the profiler's catalog). */
    std::vector<workload::ScaleUpConfig> grid_analytics_;
    std::vector<workload::ScaleUpConfig> grid_generic_;
    std::vector<int> node_grid_;

    /** Scale-up history per workload type (paper: per-type tailoring;
     *  the response shapes of e.g. memcached and SPEC differ too much
     *  to share a matrix). Analytics has its own grid; the other three
     *  share the generic grid but keep separate rows. */
    History scale_up_analytics_;
    History scale_up_latency_;
    History scale_up_stateful_;
    History scale_up_generic_;
    /** Scale-out and interference histories, one per workload type
     *  (index = WorkloadType). */
    std::array<History, 4> scale_out_;
    History heterogeneity_;
    /** 2 * kNumSources cols: tolerated then caused, per type. */
    std::array<History, 4> interference_;

    History exhaustive_analytics_;
    History exhaustive_generic_;
};

} // namespace quasar::core

