/**
 * @file
 * Greedy joint resource allocation and assignment (paper Sec. 3.3).
 *
 * Using the classification output, the scheduler ranks available
 * servers by resource quality (platform speedup x predicted
 * interference multiplier), then sizes the allocation against the
 * performance target: per-node resources first (scale-up), then more
 * nodes (scale-out), taking the highest-quality servers first so the
 * least total resources are used. Interference awareness is two-sided:
 * the candidate must tolerate the server's current contention, and the
 * server's residents must tolerate the candidate's caused pressure.
 * Best-effort residents may be marked for eviction to make room for
 * primary workloads.
 */

#ifndef QUASAR_CORE_SCHEDULER_HH
#define QUASAR_CORE_SCHEDULER_HH

#include <functional>
#include <optional>
#include <vector>

#include "core/estimate.hh"
#include "sim/cluster.hh"
#include "workload/workload.hh"

namespace quasar::core
{

/** One node of an allocation decision. */
struct AllocationNode
{
    ServerId server = 0;
    size_t scale_up_col = 0; ///< column in the estimate's grid.
    int cores = 0;
    double memory_gb = 0.0;
    double predicted_node_perf = 0.0;
};

/** A complete allocation + assignment decision. */
struct Allocation
{
    std::vector<AllocationNode> nodes;
    workload::FrameworkKnobs knobs;
    double predicted_perf = 0.0;
    /** Best-effort tasks that must be evicted first. */
    std::vector<std::pair<ServerId, WorkloadId>> evictions;
    /** True when the target could not be fully met with free capacity. */
    bool degraded = false;

    int totalCores() const;
    double totalMemoryGb() const;
};

/** Scheduler policy knobs (ablations flagged in DESIGN.md). */
struct SchedulerConfig
{
    /** Pack per-node resources before adding nodes (paper default). */
    bool scale_up_first = true;
    /** Multiplier on the target so small estimate errors don't miss. */
    double headroom = 1.1;
    /** Max nodes per workload. */
    int max_nodes = 100;
    /** Assumed degradation slope beyond tolerated thresholds. */
    double slope_guess = 1.5;
    /** Keep per-node configs within this fraction of the best one. */
    double node_perf_slack = 0.95;
    /**
     * Stop adding nodes when a node's marginal contribution to the
     * job drops below this fraction of its standalone performance —
     * beyond the scale-out knee extra servers are wasted even if the
     * target is unmet ("least amount of resources", Sec. 3.3).
     */
    double min_marginal_efficiency = 0.40;
    /** Refuse placements predicted to lose residents more than this. */
    double max_resident_loss = 0.10;
    /**
     * Spread multi-node allocations across fault zones (Sec. 4.4):
     * prefer servers in zones the allocation does not use yet.
     */
    bool spread_fault_zones = false;
};

/**
 * Lookup for the estimates of currently-placed workloads (needed for
 * the caused-interference check against residents).
 */
using EstimateLookup =
    std::function<const WorkloadEstimate *(WorkloadId)>;

/** The greedy joint allocator/assigner. */
class GreedyScheduler
{
  public:
    /**
     * @param registry optional: when provided, placements may evict
     *        residents of strictly lower priority (Sec. 4.4), not just
     *        best-effort tasks.
     */
    GreedyScheduler(const sim::Cluster &cluster, SchedulerConfig cfg = {},
                    const workload::WorkloadRegistry *registry = nullptr)
        : cluster_(cluster), cfg_(cfg), registry_(registry) {}

    /**
     * Find an allocation meeting required_perf (absolute units
     * matching the estimate: rate for batch, capacity QPS for
     * services).
     *
     * @param w the workload being placed.
     * @param est its classification output.
     * @param required_perf performance the allocation must reach.
     * @param estimates lookup for residents' estimates (may be null).
     * @param may_evict allow evicting best-effort residents.
     * @return nullopt when nothing at all can be placed; otherwise an
     *         allocation, possibly flagged degraded.
     */
    std::optional<Allocation>
    allocate(const workload::Workload &w, const WorkloadEstimate &est,
             double required_perf, const EstimateLookup &estimates,
             bool may_evict) const;

    /**
     * Server quality score used for ranking (platform factor x
     * predicted interference multiplier x free-capacity factor).
     */
    double serverQuality(const sim::Server &srv,
                         const WorkloadEstimate &est) const;

    const SchedulerConfig &config() const { return cfg_; }

  private:
    struct NodePick
    {
        size_t col = 0;
        int cores = 0;
        double memory_gb = 0.0;
        double perf = 0.0;
        bool valid = false;
    };

    /**
     * Best per-node configuration on a server given free resources
     * (optionally counting evictable best-effort shares as free).
     */
    NodePick pickNodeConfig(const sim::Server &srv,
                            const workload::Workload &w,
                            const WorkloadEstimate &est,
                            bool count_evictable,
                            double perf_needed) const;

    /**
     * Check that placing `cores` of w on srv does not push residents
     * beyond their tolerated contention (returns false on violation).
     */
    bool residentsTolerate(const sim::Server &srv,
                           const WorkloadEstimate &est, double cores,
                           const EstimateLookup &estimates) const;

    /** True when victim may be evicted to make room for w. */
    bool evictable(const sim::TaskShare &victim,
                   const workload::Workload &w) const;

    const sim::Cluster &cluster_;
    SchedulerConfig cfg_;
    const workload::WorkloadRegistry *registry_;
};

} // namespace quasar::core

#endif // QUASAR_CORE_SCHEDULER_HH
