/**
 * @file
 * Greedy joint resource allocation and assignment (paper Sec. 3.3).
 *
 * Using the classification output, the scheduler ranks available
 * servers by resource quality (platform speedup x predicted
 * interference multiplier), then sizes the allocation against the
 * performance target: per-node resources first (scale-up), then more
 * nodes (scale-out), taking the highest-quality servers first so the
 * least total resources are used. Interference awareness is two-sided:
 * the candidate must tolerate the server's current contention, and the
 * server's residents must tolerate the candidate's caused pressure.
 * Best-effort residents may be marked for eviction to make room for
 * primary workloads.
 *
 * Decision-path performance: the platform-name→catalog-index map is
 * built once per cluster, and each server's newcomer-contention
 * ledger summary, free capacity, and health are kept in a per-server
 * index revalidated against the server's change epoch
 * (sim::Server::version()) instead of being recomputed per placement.
 *
 * Three ranking modes, all picking bit-identical placements:
 *  - dirty-set (default, SchedulerConfig::dirty_set): the per-server
 *    index is kept fresh by replaying the cluster's ChangeJournal —
 *    only servers actually touched since the last decision are
 *    recomputed — and the candidate *order* is maintained
 *    incrementally alongside it. Servers are grouped into buckets of
 *    bitwise-equal workload-independent signature (platform index,
 *    speed factor, newcomer-contention vector); every member of a
 *    bucket has the same quality for every workload, so the
 *    per-workload factors (platform factor × interference multiplier)
 *    are applied once per *bucket* at read time, and candidates are
 *    drained best-first through an admissible per-(platform, speed)
 *    upper bound (the multiplier never exceeds 1). An allocate that
 *    settles after k servers costs O(dirty + E + k log B) where E is
 *    the buckets in the few expanded top levels and B ≤ N the live
 *    bucket count — never an O(N) scoring walk or heapify.
 *  - cached (dirty_set = false): the pre-journal behavior — every
 *    decision checks every server's change epoch, refreshes stale
 *    entries lazily, then heapifies all candidates (O(N) per call).
 *    Kept as the A/B midpoint.
 *  - full_rescan: the legacy recompute-everything path (full ledger
 *    walks, eager sort), demoted to a tests-only shadow oracle: the
 *    QUASAR_VERIFY layer and the equivalence tests re-run decisions
 *    through it, but benches no longer carry a full_rescan leg and
 *    production configs must not set it.
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/estimate.hh"
#include "sim/cluster.hh"
#include "stats/timing.hh"
#include "topology/topology.hh"
#include "workload/workload.hh"

namespace quasar::shard
{
class ShardedScheduler; // src/shard/ — the sharded decision path.
}

namespace quasar::core
{

/** One node of an allocation decision. */
struct AllocationNode
{
    ServerId server = 0;
    size_t scale_up_col = 0; ///< column in the estimate's grid.
    int cores = 0;
    double memory_gb = 0.0;
    double predicted_node_perf = 0.0;
    /** Home socket of the node's share (DESIGN.md §13); always 0 on
     *  flat platforms, part of the replay contract otherwise. */
    int socket = 0;
};

/** A complete allocation + assignment decision. */
struct Allocation
{
    std::vector<AllocationNode> nodes;
    workload::FrameworkKnobs knobs;
    double predicted_perf = 0.0;
    /** Best-effort tasks that must be evicted first. */
    std::vector<std::pair<ServerId, WorkloadId>> evictions;
    /** True when the target could not be fully met with free capacity. */
    bool degraded = false;

    int totalCores() const;
    double totalMemoryGb() const;
};

/** Scheduler policy knobs (ablations flagged in DESIGN.md). */
struct SchedulerConfig
{
    /** Pack per-node resources before adding nodes (paper default). */
    bool scale_up_first = true;
    /** Multiplier on the target so small estimate errors don't miss. */
    double headroom = 1.1;
    /** Max nodes per workload. */
    int max_nodes = 100;
    /** Assumed degradation slope beyond tolerated thresholds. */
    double slope_guess = 1.5;
    /** Keep per-node configs within this fraction of the best one. */
    double node_perf_slack = 0.95;
    /**
     * Stop adding nodes when a node's marginal contribution to the
     * job drops below this fraction of its standalone performance —
     * beyond the scale-out knee extra servers are wasted even if the
     * target is unmet ("least amount of resources", Sec. 3.3).
     */
    double min_marginal_efficiency = 0.40;
    /** Refuse placements predicted to lose residents more than this. */
    double max_resident_loss = 0.10;
    /**
     * Spread multi-node allocations across fault zones (Sec. 4.4):
     * prefer servers in zones the allocation does not use yet.
     */
    bool spread_fault_zones = false;
    /**
     * Legacy decision path: recompute every server's contention
     * summary from the ledger and fully re-sort all candidates on
     * each placement, bypassing the incremental per-server index.
     * Tests-only: the shadow oracle of the QUASAR_VERIFY layer and
     * the equivalence tests set it (and must keep picking identical
     * placements); benches and production configs must not.
     */
    bool full_rescan = false;
    /**
     * Dirty-set indexing (default): refresh the per-server index by
     * replaying the cluster's change journal instead of checking
     * every server's epoch per decision, and score candidates from
     * the contiguous index. false falls back to the per-call
     * epoch-check path. Ignored when full_rescan is set. All modes
     * pick identical placements.
     */
    bool dirty_set = true;
    /**
     * Socket selection on multi-socket servers (DESIGN.md §13): pick
     * the socket with the best predicted interference multiplier for
     * the newcomer (ties: fewer homed cores, then lower id), spreading
     * cache-hungry workloads across LLC domains and packing compatible
     * ones. false falls back to topology-blind least-loaded homing
     * (fewest homed cores) — the ablation leg of bench/topology. Both
     * settings are identical on flat platforms (socket 0 always).
     */
    bool socket_aware = true;
};

/** Wall-clock timing of the scheduler's decision phases. */
struct SchedulerTiming
{
    /** Candidate scoring + ranking (index refresh included). */
    stats::TimerStat rank;
    /** The greedy walk: node sizing, checks, eviction planning. */
    stats::TimerStat place;
};

/**
 * Lookup for the estimates of currently-placed workloads (needed for
 * the caused-interference check against residents).
 */
using EstimateLookup =
    std::function<const WorkloadEstimate *(WorkloadId)>;

/** The greedy joint allocator/assigner. */
class GreedyScheduler
{
  public:
    /**
     * @param registry optional: when provided, placements may evict
     *        residents of strictly lower priority (Sec. 4.4), not just
     *        best-effort tasks.
     */
    GreedyScheduler(const sim::Cluster &cluster, SchedulerConfig cfg = {},
                    const workload::WorkloadRegistry *registry = nullptr)
        : cluster_(cluster), cfg_(cfg), registry_(registry)
    {
        rebuildPlatformIndex();
    }

    /**
     * Find an allocation meeting required_perf (absolute units
     * matching the estimate: rate for batch, capacity QPS for
     * services).
     *
     * @param w the workload being placed.
     * @param est its classification output.
     * @param required_perf performance the allocation must reach.
     * @param estimates lookup for residents' estimates (may be null).
     * @param may_evict allow evicting best-effort residents.
     * @return nullopt when nothing at all can be placed; otherwise an
     *         allocation, possibly flagged degraded.
     */
    std::optional<Allocation>
    allocate(const workload::Workload &w, const WorkloadEstimate &est,
             double required_perf, const EstimateLookup &estimates,
             bool may_evict) const;

    /**
     * Server quality score used for ranking (platform factor x
     * predicted interference multiplier x speed factor).
     */
    double serverQuality(const sim::Server &srv,
                         const WorkloadEstimate &est) const;

    /**
     * Catalog index of the server's platform from the cached
     * name→index map (rebuilt automatically if the catalog changed).
     */
    size_t platformIndexOf(const sim::Server &srv) const;

    const SchedulerConfig &config() const { return cfg_; }

    /** Decision-phase wall-clock timing since construction. */
    const SchedulerTiming &timing() const { return timing_; }

    /**
     * The complete candidate order this scheduler would walk for the
     * given estimate: every server as (quality, id), best first, ties
     * broken by ascending id. The dirty-set mode drains its maintained
     * incremental order; the other modes score and sort from scratch.
     * Diagnostic/test surface (the property suite compares the drained
     * order against a from-scratch std::sort after every mutation) —
     * O(N log N), not a decision-path call.
     */
    std::vector<std::pair<double, ServerId>>
    rankedCandidates(const WorkloadEstimate &est) const;

    /**
     * Shard seam (src/shard/, DESIGN.md §14): restrict this scheduler
     * to the servers whose entry in *shard_of equals `shard`. The
     * index, maintained order, and journal replay then cover exactly
     * that subset — the scheduler becomes one shard's decision
     * worker, with its own cursor, cache, and candidate order. The
     * table must outlive the scheduler and stay consistent with the
     * cluster (the partitioner rebuilds it only on catalog/size
     * change, which forces a re-prime here via the size check in
     * refreshIndex). Passing nullptr lifts the restriction. Resets
     * the index: the next refresh re-primes from scratch.
     */
    void restrictToShard(const std::vector<uint32_t> *shard_of,
                         uint32_t shard);

#ifdef QUASAR_VERIFY
    /**
     * Run the index/order coherence audit immediately, bypassing the
     * per-refresh sampling — lets tests prove deterministically that a
     * mutation which skipped the journal (or bumpVersion()) aborts.
     */
    void auditIndexCoherenceNow() const { auditIndexCoherence(); }
#endif

  private:
    /** The sharded decision path drives the private walk/drain seams
     *  (allocateWithSource, beginOrderedCandidates) directly. */
    friend class quasar::shard::ShardedScheduler;

    struct NodePick
    {
        size_t col = 0;
        int cores = 0;
        double memory_gb = 0.0;
        double perf = 0.0;
        int socket = 0;
        bool valid = false;
    };

    /**
     * Feasibility class of a server for the candidate drain — a
     * cached factorization of allocateImpl's rank-time filter (which
     * the cached mode applies per decision, making the filtered drain
     * placement-preserving by construction):
     *  - Open:   available and ≥ 1 free core — emitted always.
     *  - Evict:  available, no free core, but the always-evictable
     *            best-effort pool covers one — emitted iff may_evict.
     *  - Prio:   available, even the best-effort pool does not cover
     *            a core, but a non-best-effort resident (with ≥ 1
     *            core, known to the registry) could be preempted;
     *            keyed by the minimum such resident priority —
     *            emitted iff may_evict and key < w.priority.
     *  - Closed: down, or nothing evictable — never emitted.
     * Correct because a resident's registry priority is fixed while
     * it holds shares (priorities are set before admission
     * everywhere in the tree); the QUASAR_VERIFY index audit
     * recomputes the class from live state and aborts on drift.
     */
    enum class FeasClass : uint8_t
    {
        Open = 0,
        Evict = 1,
        Prio = 2,
        Closed = 3,
    };

    /** "No preemptible resident" sentinel for prio_key. */
    static constexpr int kNoPrio = std::numeric_limits<int>::max();

    /**
     * Workload-independent signature of a server's ranking state:
     * platform index + socket count, speed factor, the per-socket
     * newcomer-contention vectors (zero-padded to kMaxSockets so the
     * flat single-socket partition is unchanged) — exactly the inputs
     * of the quality expression, compared bitwise — plus the
     * feasibility class word, so the level structure partitions
     * members by drain eligibility and a filtered drain skips whole
     * classes without touching their members.
     */
    using OrderSig =
        std::array<uint64_t, 3 + size_t(topology::kMaxSockets) *
                                     interference::kNumSources>;

    /**
     * Per-server cached decision state, revalidated lazily against
     * the server's change epoch (incremental ranking index).
     */
    struct ServerCacheEntry
    {
        uint64_t version = ~uint64_t(0); ///< epoch the entry matches.
        /** Per-socket newcomer contention ([0] is the flat view on a
         *  single-socket platform). */
        std::array<interference::IVector, topology::kMaxSockets>
            socket_contention{};
        /** Allocated cores homed per socket (socket tie-breaks). */
        std::array<int, topology::kMaxSockets> socket_cores{};
        uint8_t sockets = 1;
        int free_cores = 0;
        double free_mem = 0.0;
        double free_storage = 0.0;
        double speed = 1.0;
        bool available = true;
        /** Best-effort residents' totals (always-evictable pool). */
        int be_cores = 0;
        double be_mem = 0.0;
        double be_storage = 0.0;
        /** Catalog index of the server's platform (fixed per server;
         *  cached so the dirty-set walk never hashes a name). */
        size_t platform_idx = 0;
        /** Minimum priority over non-best-effort residents holding at
         *  least one core and known to the registry (kNoPrio when
         *  none, or without a registry) — the Prio class key. */
        int prio_key = kNoPrio;
    };

    /**
     * One equivalence class of the maintained candidate order: every
     * server whose workload-independent signature (see OrderSig) is
     * *bitwise* equal. Members therefore have identical quality for
     * every workload, so read time computes the per-workload factors
     * once per bucket and emits members in ascending-id order —
     * precisely rankedBefore's tie-break. Topology enters only here,
     * through the lazily-applied best-socket multiplier: the order
     * structure itself stays workload-independent.
     */
    struct OrderBucket
    {
        OrderSig sig{};
        size_t platform_idx = 0;
        double speed = 1.0;
        std::array<interference::IVector, topology::kMaxSockets>
            socket_contention{};
        uint8_t sockets = 1;
        /** Feasibility class of every member (part of the sig). */
        FeasClass cls = FeasClass::Open;
        /** Prio-class key (kNoPrio outside FeasClass::Prio). */
        int prio_key = kNoPrio;
        /** Members, ascending (the rankedBefore tie-break order). */
        std::set<ServerId> ids;
        /** Position inside its level's class list (swap-removal). */
        uint32_t level_pos = 0;
    };

    /**
     * Buckets of one (platform, speed) level, unordered within but
     * partitioned by feasibility class so a filtered drain expands
     * only eligible buckets and skips a fully-ineligible level in
     * O(1) — this is what turns a saturated-cluster allocate failure
     * from an O(N) emit-and-reject walk into an O(levels) probe.
     */
    struct OrderLevel
    {
        std::vector<uint32_t> open;
        std::vector<uint32_t> evict;
        /** Prio-class buckets by key; drained for keys < w.priority. */
        std::map<int, std::vector<uint32_t>> prio;
        std::vector<uint32_t> closed;

        bool empty() const
        {
            return open.empty() && evict.empty() && prio.empty() &&
                   closed.empty();
        }
    };

    /** A platform's levels, fastest speed first. */
    using LevelMap = std::map<double, OrderLevel, std::greater<double>>;

    /** A cursor into one bucket during a read-time drain. */
    struct OrderCursor
    {
        double quality = 0.0;
        ServerId id = 0;
        const OrderBucket *bucket = nullptr;
        std::set<ServerId>::const_iterator it;
    };

    /** An unexpanded (platform, speed) level with its quality bound. */
    struct LevelCursor
    {
        double bound = 0.0;
        size_t platform = 0;
        LevelMap::const_iterator it;
    };

    /**
     * Which feasibility classes a drain may emit. everything() is the
     * diagnostic view (rankedCandidates); allocate builds the filter
     * from (may_evict, w.priority, registry) so the drained sequence
     * is exactly the cached mode's rank-time filtered candidate set.
     */
    struct OrderFilter
    {
        bool all = false;       ///< emit every class (diagnostics).
        bool evict = false;     ///< emit the Evict class.
        /** Emit Prio buckets with key strictly below this (kNoPrio
         *  sentinel min() disables the class). */
        int prio_below = std::numeric_limits<int>::min();

        static OrderFilter everything()
        {
            OrderFilter f;
            f.all = true;
            return f;
        }
    };

    /**
     * Read-time drain state for one allocate: `exact` holds cursors
     * into expanded buckets (top = best (quality, id)); `pending`
     * holds the best unexpanded level per platform under an admissible
     * bound (quality ≤ platform_factor × speed since the interference
     * multiplier never exceeds 1), so a candidate is emitted only once
     * no unexpanded level can beat it.
     */
    struct OrderStream
    {
        std::vector<OrderCursor> exact;
        std::vector<LevelCursor> pending;
        OrderFilter filter;
    };

    /** Recompute e from srv's current state (all modes share this, so
     *  the decision paths see bitwise-identical values). */
    void refreshEntry(const sim::Server &srv, ServerCacheEntry &e) const;

    /** refreshEntry + incremental-order maintenance (dirty mode). */
    void refreshEntryIndexed(const sim::Server &srv,
                             ServerCacheEntry &e) const;

    /** Cached state for srv, refreshed if its epoch moved. */
    const ServerCacheEntry &cachedState(const sim::Server &srv) const;

    /** True when this scheduler maintains the incremental order. */
    bool orderMaintained() const
    {
        return cfg_.dirty_set && !cfg_.full_rescan;
    }

    /** Move id into the bucket matching e (no-op when unchanged). */
    void orderPlace(ServerId id, const ServerCacheEntry &e) const;

    /** Remove id from its bucket, freeing emptied buckets/levels. */
    void orderRemove(ServerId id) const;

    /** Heap orders (std::*_heap "less"): top = best candidate/bound. */
    static bool cursorLess(const OrderCursor &a, const OrderCursor &b);
    static bool levelLess(const LevelCursor &a, const LevelCursor &b);

    /** The feasibility class (and Prio key) the entry belongs to. */
    static std::pair<FeasClass, int>
    feasibilityClass(const ServerCacheEntry &e);

    /** The level list holding buckets of the given class/key. */
    static std::vector<uint32_t> &levelList(OrderLevel &lvl,
                                            FeasClass cls,
                                            int prio_key);

    /** True when the filter admits buckets of this class/key. */
    static bool filterAdmits(const OrderFilter &f, FeasClass cls,
                             int prio_key);

    /** Start a drain of the maintained order for one estimate. */
    void beginOrderedCandidates(OrderStream &s,
                                const WorkloadEstimate &est,
                                const OrderFilter &filter) const;

    /** Next candidate in (quality desc, id asc) order, or nullopt. */
    std::optional<std::pair<double, ServerId>>
    nextOrderedCandidate(OrderStream &s,
                         const WorkloadEstimate &est) const;

    /**
     * Dirty-set mode: bring the whole index up to date by replaying
     * the cluster's change journal from this scheduler's cursor
     * (falling back to a full epoch-check scan when the journal was
     * compacted past it or the index is unprimed).
     */
    void refreshIndex() const;

    /**
     * External candidate source for the greedy walk: i → the i-th
     * best candidate or nullopt past the end. Must present a sequence
     * ordered by rankedBefore and stable under re-reads of the same
     * index (the fault-zone relaxation pass rewinds). The sharded
     * commit phase injects its K-way shard merge through this.
     */
    using CandidateFn =
        std::function<std::optional<std::pair<double, ServerId>>(
            size_t)>;

    /** The greedy walk itself (allocate() wraps it so the verify
     *  build can shadow-check each decision on the way out). When
     *  `external` is set the ranking phase is skipped entirely and
     *  candidates are pulled from it instead. */
    std::optional<Allocation>
    allocateImpl(const workload::Workload &w,
                 const WorkloadEstimate &est, double required_perf,
                 const EstimateLookup &estimates, bool may_evict,
                 const CandidateFn *external = nullptr) const;

    /**
     * Shard-merge commit seam: the full greedy walk, fed by an
     * injected candidate stream. State reads go through this
     * instance's epoch-checked cache, which yields bitwise-identical
     * values from any instance, so the caller only has to reproduce
     * the unsharded candidate *order* to reproduce its placements.
     */
    std::optional<Allocation>
    allocateWithSource(const workload::Workload &w,
                       const WorkloadEstimate &est,
                       double required_perf,
                       const EstimateLookup &estimates, bool may_evict,
                       const CandidateFn &source) const;

    /** True when id belongs to this scheduler's shard (or no
     *  restriction is installed). */
    bool memberServer(ServerId id) const
    {
        return !shard_of_ || (size_t(id) < shard_of_->size() &&
                              (*shard_of_)[size_t(id)] == shard_id_);
    }

#ifdef QUASAR_VERIFY
    /**
     * Sampled audit (verify builds only): recompute every server's
     * index entry from scratch and abort unless the journal-replayed
     * index matches field-for-field — catches mutators that touch
     * placement-relevant state without bumping the change epoch.
     */
    void auditIndexCoherence() const;
#endif

    /** Rebuild the platform-name→index map from the catalog. */
    void rebuildPlatformIndex() const;

    /**
     * Extra evictable capacity from priority preemption (residents of
     * strictly lower priority than w, excluding best-effort tasks,
     * which the cache already totals).
     */
    void priorityEvictable(const sim::Server &srv,
                           const workload::Workload &w, int &cores,
                           double &memory_gb, double &storage_gb) const;

    /**
     * Best per-node configuration on a server given free resources
     * (optionally counting evictable best-effort shares as free).
     */
    NodePick pickNodeConfig(const sim::Server &srv,
                            const workload::Workload &w,
                            const WorkloadEstimate &est,
                            bool count_evictable,
                            double perf_needed) const;

    /**
     * Check that placing `cores` of w on srv (homed on `socket`) does
     * not push residents beyond their tolerated contention: each
     * resident sees the newcomer's caused pressure at full strength on
     * its own socket and cross-socket attenuated otherwise. Returns
     * false on violation.
     */
    bool residentsTolerate(const sim::Server &srv,
                           const WorkloadEstimate &est, double cores,
                           int socket,
                           const EstimateLookup &estimates) const;

    /** True when victim may be evicted to make room for w. */
    bool evictable(const sim::TaskShare &victim,
                   const workload::Workload &w) const;

    const sim::Cluster &cluster_;
    SchedulerConfig cfg_;
    const workload::WorkloadRegistry *registry_;
    /** Shard membership table + this scheduler's shard id (see
     *  restrictToShard); nullptr = the whole cluster. */
    const std::vector<uint32_t> *shard_of_ = nullptr;
    uint32_t shard_id_ = 0;

    /** Platform-name→catalog-index map, built once per catalog. */
    mutable std::unordered_map<std::string, size_t> platform_idx_;
    mutable size_t indexed_catalog_size_ = 0;
    /** The incremental per-server ranking index. */
    mutable std::vector<ServerCacheEntry> cache_;
    /** Dirty-set journal cursor (next journal offset to replay). */
    mutable uint64_t journal_cursor_ = 0;
    /** True once the dirty-set index fully covers the cluster. */
    mutable bool index_primed_ = false;

    /** No-bucket sentinel for server_bucket_. */
    static constexpr uint32_t kNoBucket = ~uint32_t(0);
    struct SigHash
    {
        size_t operator()(const OrderSig &k) const
        {
            uint64_t h = 0xCBF29CE484222325ULL;
            for (uint64_t v : k) {
                h ^= v;
                h *= 0x100000001B3ULL;
            }
            return size_t(h);
        }
    };
    /** All order buckets; slots are stable and free-listed. */
    mutable std::vector<OrderBucket> order_buckets_;
    mutable std::vector<uint32_t> free_buckets_;
    /** Signature → bucket slot (point lookups only, never iterated). */
    mutable std::unordered_map<OrderSig, uint32_t, SigHash>
        bucket_of_sig_;
    /** Per-platform (speed-descending) level maps. */
    mutable std::vector<LevelMap> platform_order_;
    /** Each server's current bucket slot (kNoBucket when absent). */
    mutable std::vector<uint32_t> server_bucket_;
#ifdef QUASAR_VERIFY
    /** Per-scheduler sampling counter for auditIndexCoherence(). */
    mutable uint64_t audit_refreshes_ = 0;
#endif
    mutable SchedulerTiming timing_;
};

} // namespace quasar::core

