/**
 * @file
 * Runtime monitoring and phase detection (paper Sec. 4.1).
 *
 * The monitor measures every active workload's performance against its
 * constraint (with measurement noise — managers never see the oracle
 * exactly), raising under-performance and over-provisioning alerts.
 * It also supports the paper's proactive phase detection: periodically
 * sampling active workloads and injecting interference
 * microbenchmarks in place; a significant deviation from the
 * workload's classified tolerance signals a phase change.
 */

#pragma once

#include "core/estimate.hh"
#include "profiling/profiler.hh"
#include "stats/rng.hh"
#include "workload/workload.hh"

namespace quasar::core
{

/** Monitor thresholds. */
struct MonitorConfig
{
    /** Lognormal sigma on monitored performance readings. */
    double noise_sigma = 0.03;
    /** Alert when normalized perf falls below 1 - this. */
    double underperf_tolerance = 0.07;
    /** Alert when normalized perf exceeds this (resources idle). */
    double overprovision_threshold = 1.45;
    /** Tolerance deviation that signals a phase change. */
    double phase_deviation = 0.16;
    /** Sources probed per proactive phase check. */
    size_t phase_probe_sources = 3;
};

/** What the monitor concluded about one workload. */
enum class Alert
{
    None,
    Underperforming,
    Overprovisioned,
};

/** Measures running workloads and detects deviations. */
class Monitor
{
  public:
    Monitor(const sim::Cluster &cluster,
            const workload::WorkloadRegistry &registry,
            MonitorConfig cfg, stats::Rng rng)
        : oracle_(cluster, registry), cfg_(cfg), rng_(rng) {}

    /** Noisy normalized-performance reading for a workload. */
    double measure(const workload::Workload &w, double t);

    /** Noisy absolute performance (rate, or capacity for services). */
    double measureAbsolute(const workload::Workload &w, double t);

    /** Classify the current reading into an alert. */
    Alert check(const workload::Workload &w, double t);

    /**
     * In-place partial interference classification: probe a few
     * sources and compare against the classified tolerance. True when
     * the deviation exceeds the phase threshold (a phase change or a
     * misclassification).
     */
    bool probePhaseChange(const workload::Workload &w,
                          const WorkloadEstimate &est,
                          const profiling::Profiler &profiler, double t);

    const MonitorConfig &config() const { return cfg_; }
    const workload::PerfOracle &oracle() const { return oracle_; }

  private:
    workload::PerfOracle oracle_;
    MonitorConfig cfg_;
    stats::Rng rng_;
};

} // namespace quasar::core

