#include "core/overload.hh"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace quasar::core
{

const char *
overloadStateName(OverloadState s)
{
    switch (s) {
    case OverloadState::Normal:
        return "normal";
    case OverloadState::Pressured:
        return "pressured";
    case OverloadState::Overloaded:
        break;
    }
    return "overloaded";
}

OverloadDetector::OverloadDetector(const OverloadConfig &cfg)
    : cfg_(cfg), dwell_(3, size_t(OverloadState::Normal))
{
}

OverloadState
OverloadDetector::severityOf(double util, size_t depth) const
{
    if (util >= cfg_.util_overloaded || depth >= cfg_.depth_overloaded)
        return OverloadState::Overloaded;
    if (util >= cfg_.util_pressured || depth >= cfg_.depth_pressured)
        return OverloadState::Pressured;
    return OverloadState::Normal;
}

bool
OverloadDetector::clearsExitBand(OverloadState level, double util,
                                 size_t depth) const
{
    // Exit thresholds sit a hysteresis band below the thresholds that
    // entered `level`: to leave it, BOTH probes must clear the band.
    double band = 1.0 - cfg_.hysteresis;
    double util_enter = level == OverloadState::Overloaded
                            ? cfg_.util_overloaded
                            : cfg_.util_pressured;
    size_t depth_enter = level == OverloadState::Overloaded
                             ? cfg_.depth_overloaded
                             : cfg_.depth_pressured;
    return util < util_enter * band &&
           double(depth) < double(depth_enter) * band;
}

OverloadState
OverloadDetector::update(double t, double util, size_t depth)
{
    if (!started_) {
        started_ = true;
        entered_at_ = t;
    }
    OverloadState sev = severityOf(util, depth);
    OverloadState next = state_;
    if (int(sev) > int(state_)) {
        // Upgrades are immediate (possibly skipping Pressured): the
        // whole point is acting before QoS is violated after the
        // fact.
        next = sev;
    } else if (int(sev) < int(state_) &&
               t - entered_at_ >= cfg_.min_dwell_s &&
               clearsExitBand(state_, util, depth)) {
        // Downgrades are conservative: one level per update, only
        // after the minimum dwell, and only once the metrics clear
        // the exit band — hovering at the band edge cannot flap.
        next = OverloadState(int(state_) - 1);
    }
    if (next != state_)
        entered_at_ = t;
    dwell_.transitionTo(size_t(next), t);
    state_ = next;
    return state_;
}

double
ReactiveStepPolicy::update(double error, double, double current)
{
    if (error > -cfg_.deadband && error < cfg_.deadband)
        return current;
    double next =
        current + (error > 0.0 ? cfg_.reactive_step : -cfg_.reactive_step);
    return std::clamp(next, cfg_.boost_min, cfg_.boost_max);
}

double
PiPolicy::update(double error, double dt, double current)
{
    (void)current;
    if (error > -cfg_.deadband && error < cfg_.deadband)
        error = 0.0; // deadband: no action, no integration
    // Conditional integration (anti-windup): freeze the integral
    // while the unsaturated output is already past the rail in the
    // error's direction, so a long overload episode cannot wind it
    // up; integration resumes the moment the error reverses.
    double unsat = 1.0 + cfg_.kp * error + integral_;
    bool winding_hi = unsat > cfg_.boost_max && error > 0.0;
    bool winding_lo = unsat < cfg_.boost_min && error < 0.0;
    if (!winding_hi && !winding_lo)
        integral_ += cfg_.ki * error * dt;
    // Belt and braces: the integral alone can never demand an output
    // outside the reachable range.
    integral_ = std::clamp(integral_, cfg_.boost_min - 1.0,
                           cfg_.boost_max - 1.0);
    double out = 1.0 + cfg_.kp * error + integral_;
    return std::clamp(out, cfg_.boost_min, cfg_.boost_max);
}

std::unique_ptr<ScalingPolicy>
makeScalingPolicy(const OverloadConfig &cfg)
{
    switch (cfg.policy) {
    case ScalingPolicyKind::None:
        return nullptr;
    case ScalingPolicyKind::Reactive:
        return std::make_unique<ReactiveStepPolicy>(cfg);
    case ScalingPolicyKind::Pi:
        break;
    }
    return std::make_unique<PiPolicy>(cfg);
}

OverloadController::OverloadController(const OverloadConfig &cfg)
    : cfg_(cfg), detector_(cfg)
{
}

void
OverloadController::fold(uint64_t v)
{
    hash_ ^= v;
    hash_ *= 0x100000001B3ULL;
}

void
OverloadController::foldDouble(double v)
{
    // Bit-pattern fold: the replay contract is bitwise, and decision
    // dirs avoid floating-point equality entirely.
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    fold(bits);
}

OverloadState
OverloadController::observe(double t, double util, size_t depth)
{
    if (!cfg_.enabled)
        return OverloadState::Normal;
    OverloadState before = detector_.state();
    OverloadState now = detector_.update(t, util, depth);
    if (now != before) {
        fold(0x5707ULL); // state-transition tag
        foldDouble(t);
        fold(uint64_t(now));
    }
    return now;
}

bool
OverloadController::shouldDefer(const workload::Workload &w) const
{
    if (!cfg_.enabled)
        return false;
    // Latency-critical services are never gated: the entire point of
    // shedding is preserving their SLOs.
    if (workload::isLatencyCritical(w.type))
        return false;
    OverloadState s = detector_.state();
    if (w.best_effort)
        return int(s) >= int(OverloadState::Pressured);
    return s == OverloadState::Overloaded;
}

bool
OverloadController::shouldShed(const workload::Workload &w,
                               double queued_age) const
{
    if (!cfg_.enabled || detector_.state() != OverloadState::Overloaded)
        return false;
    if (workload::isLatencyCritical(w.type))
        return false;
    if (queued_age < 0.0)
        return false;
    // Shed-first ordering: best-effort work sheds at the deadline,
    // primary batch holds out twice as long before giving up its
    // queue slot.
    double deadline = w.best_effort ? cfg_.shed_deadline_s
                                    : 2.0 * cfg_.shed_deadline_s;
    return queued_age >= deadline;
}

void
OverloadController::noteDefer(WorkloadId id, double t)
{
    ++counters_.deferred;
    fold(0xDEFEULL);
    fold(uint64_t(id));
    foldDouble(t);
}

void
OverloadController::noteShed(WorkloadId id, double t)
{
    ++counters_.shed;
    fold(0x5EDULL);
    fold(uint64_t(id));
    foldDouble(t);
}

void
OverloadController::noteBrownout(WorkloadId id, double t)
{
    ++counters_.brownouts;
    fold(0xB0ULL);
    fold(uint64_t(id));
    foldDouble(t);
}

void
OverloadController::noteRestore(WorkloadId id, double t)
{
    ++counters_.restores;
    fold(0x4E5ULL);
    fold(uint64_t(id));
    foldDouble(t);
}

bool
OverloadController::beginScaleRound(double t)
{
    if (!cfg_.enabled || cfg_.policy == ScalingPolicyKind::None)
        return false;
    if (last_scale_ >= 0.0 && t - last_scale_ < cfg_.scale_interval_s)
        return false;
    last_scale_ = t;
    return true;
}

double
OverloadController::updateBoost(WorkloadId id, double measured_norm,
                                double t)
{
    if (!cfg_.enabled || cfg_.policy == ScalingPolicyKind::None)
        return 1.0;
    ServiceControl &sc = services_[id];
    if (!sc.policy) {
        sc.policy = makeScalingPolicy(cfg_);
        assert(sc.policy);
    }
    double dt = sc.last_update >= 0.0 ? t - sc.last_update
                                      : cfg_.scale_interval_s;
    double error = cfg_.slo_setpoint - measured_norm;
    sc.boost = sc.policy->update(error, dt, sc.boost);
    sc.last_update = t;
    ++counters_.autoscale_updates;
    fold(0x5CA1EULL);
    fold(uint64_t(id));
    foldDouble(sc.boost);
    return sc.boost;
}

double
OverloadController::boostFor(WorkloadId id) const
{
    auto it = services_.find(id);
    return it == services_.end() ? 1.0 : it->second.boost;
}

void
OverloadController::forget(WorkloadId id)
{
    services_.erase(id);
}

} // namespace quasar::core
