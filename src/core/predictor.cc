#include "core/predictor.hh"

#include <algorithm>
#include <cassert>

namespace quasar::core
{

void
LoadPredictor::observe(double t, double value)
{
    if (count_ == 0) {
        level_ = value;
        trend_ = 0.0;
        last_t_ = t;
        ++count_;
        return;
    }
    double dt = std::max(t - last_t_, 1e-9);
    // Forecast to the observation time, then blend the error in.
    double forecast = level_ + trend_ * dt;
    double new_level = alpha_ * value + (1.0 - alpha_) * forecast;
    double implied_trend = (new_level - level_) / dt;
    trend_ = beta_ * implied_trend + (1.0 - beta_) * trend_;
    level_ = new_level;
    last_t_ = t;
    ++count_;
}

double
LoadPredictor::predict(double t_future) const
{
    if (count_ == 0)
        return 0.0;
    if (!warmedUp())
        return std::max(level_, 0.0);
    double dt = t_future - last_t_;
    return std::max(level_ + trend_ * dt, 0.0);
}

} // namespace quasar::core
