#include "core/admission.hh"

#include <algorithm>
#include <cassert>

namespace quasar::core
{

void
AdmissionQueue::enqueue(WorkloadId id, double t)
{
    // Re-enqueue after a failed retry keeps the original wait start.
    for (const Entry &e : in_retry_) {
        if (e.id == id) {
            pending_.push_back(e);
            in_retry_.erase(
                std::remove_if(in_retry_.begin(), in_retry_.end(),
                               [id](const Entry &x) {
                                   return x.id == id;
                               }),
                in_retry_.end());
            return;
        }
    }
    assert(!contains(id));
    pending_.push_back({id, t});
}

std::vector<WorkloadId>
AdmissionQueue::drainForRetry()
{
    in_retry_ = pending_;
    pending_.clear();
    std::vector<WorkloadId> out;
    out.reserve(in_retry_.size());
    for (const Entry &e : in_retry_)
        out.push_back(e.id);
    return out;
}

void
AdmissionQueue::admitted(WorkloadId id, double t)
{
    auto it = std::find_if(in_retry_.begin(), in_retry_.end(),
                           [id](const Entry &e) { return e.id == id; });
    if (it == in_retry_.end()) {
        it = std::find_if(pending_.begin(), pending_.end(),
                          [id](const Entry &e) { return e.id == id; });
        if (it == pending_.end())
            return; // was never queued; zero wait
        waits_.add(t - it->enqueued_at);
        pending_.erase(it);
        return;
    }
    waits_.add(t - it->enqueued_at);
    in_retry_.erase(it);
}

bool
AdmissionQueue::contains(WorkloadId id) const
{
    for (const Entry &e : pending_)
        if (e.id == id)
            return true;
    for (const Entry &e : in_retry_)
        if (e.id == id)
            return true;
    return false;
}

} // namespace quasar::core
