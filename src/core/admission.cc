#include "core/admission.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::core
{

void
AdmissionQueue::applyBackoff(Entry &e, double t)
{
    if (e.backoff_s <= 0.0)
        return;
    double delay = std::min(e.backoff_s * std::pow(2.0, e.attempts),
                            e.backoff_max_s);
    ++e.attempts;
    e.not_before = t + delay;
}

void
AdmissionQueue::enqueue(WorkloadId id, double t)
{
    // Re-enqueue after a failed retry keeps the original wait start
    // (and the backoff policy the entry was created with).
    for (size_t i = 0; i < in_retry_.size(); ++i) {
        if (in_retry_[i].id == id) {
            Entry e = in_retry_[i];
            in_retry_.erase(in_retry_.begin() + long(i));
            applyBackoff(e, t);
            pending_.push_back(e);
            return;
        }
    }
    assert(!contains(id));
    pending_.push_back({id, t, 0, 0.0, 0.0, 0.0});
}

void
AdmissionQueue::enqueueWithBackoff(WorkloadId id, double t, double base_s,
                                   double max_s)
{
    for (size_t i = 0; i < in_retry_.size(); ++i) {
        if (in_retry_[i].id == id) {
            Entry e = in_retry_[i];
            in_retry_.erase(in_retry_.begin() + long(i));
            e.backoff_s = base_s;
            e.backoff_max_s = max_s;
            applyBackoff(e, t);
            pending_.push_back(e);
            return;
        }
    }
    assert(!contains(id));
    Entry e{id, t, 0, 0.0, base_s, max_s};
    applyBackoff(e, t);
    pending_.push_back(e);
}

std::vector<WorkloadId>
AdmissionQueue::drainForRetry(double now)
{
    // Entries move to in_retry_ (appending, so a nested drain during
    // an in-progress retry pass neither duplicates nor drops entries)
    // and return to pending_ via enqueue() if the retry fails.
    std::vector<WorkloadId> out;
    std::vector<Entry> not_due;
    for (Entry &e : pending_) {
        // The aging guard trumps backoff: an entry past its age limit
        // is due no matter how far its retry timer was pushed out.
        bool aged = aging_limit_s_ > 0.0 &&
                    now - e.enqueued_at >= aging_limit_s_;
        if (e.not_before <= now || aged) {
            out.push_back(e.id);
            in_retry_.push_back(e);
        } else {
            not_due.push_back(e);
        }
    }
    pending_ = std::move(not_due);
    return out;
}

void
AdmissionQueue::admitted(WorkloadId id, double t)
{
    auto it = std::find_if(in_retry_.begin(), in_retry_.end(),
                           [id](const Entry &e) { return e.id == id; });
    if (it == in_retry_.end()) {
        it = std::find_if(pending_.begin(), pending_.end(),
                          [id](const Entry &e) { return e.id == id; });
        if (it == pending_.end())
            return; // was never queued; zero wait
        waits_.add(t - it->enqueued_at);
        pending_.erase(it);
        return;
    }
    waits_.add(t - it->enqueued_at);
    in_retry_.erase(it);
}

void
AdmissionQueue::abandon(WorkloadId id)
{
    auto drop = [id](std::vector<Entry> &v) {
        v.erase(std::remove_if(v.begin(), v.end(),
                               [id](const Entry &e) {
                                   return e.id == id;
                               }),
                v.end());
    };
    drop(pending_);
    drop(in_retry_);
}

double
AdmissionQueue::enqueuedAt(WorkloadId id) const
{
    for (const Entry &e : pending_)
        if (e.id == id)
            return e.enqueued_at;
    for (const Entry &e : in_retry_)
        if (e.id == id)
            return e.enqueued_at;
    return -1.0;
}

bool
AdmissionQueue::contains(WorkloadId id) const
{
    for (const Entry &e : pending_)
        if (e.id == id)
            return true;
    for (const Entry &e : in_retry_)
        if (e.id == id)
            return true;
    return false;
}

} // namespace quasar::core
