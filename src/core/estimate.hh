/**
 * @file
 * The output of classification: a dense estimate of how a workload's
 * performance responds to scale-up, scale-out, platform choice, and
 * interference — the machine-written version of the paper's Fig. 2
 * speedup graphs, produced for every submission.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "interference/source.hh"
#include "sim/platform.hh"
#include "workload/scale_up_config.hh"

namespace quasar::core
{

/** Dense per-workload predictions driving allocation/assignment. */
struct WorkloadEstimate
{
    /** Workload type the estimate was produced for. */
    workload::WorkloadType type = workload::WorkloadType::SingleNode;

    /** Scale-up grid used (columns of scale_up_perf). */
    std::vector<workload::ScaleUpConfig> scale_up_grid;
    /**
     * Predicted absolute performance per scale-up column on the
     * profiling platform (rate for batch, capacity QPS for services).
     */
    std::vector<double> scale_up_perf;

    /** Node-count grid used (columns of scale_out_eff). */
    std::vector<int> scale_out_grid;
    /** Predicted speedup over one node, per node-count column. */
    std::vector<double> scale_out_speedup;

    /**
     * Predicted per-platform performance factor relative to the
     * profiling platform, one entry per catalog platform.
     */
    std::vector<double> platform_factor;

    /** Predicted tolerated contention intensity per source. */
    interference::IVector tolerated{};
    /** Predicted caused pressure per allocated core, per source. */
    interference::IVector caused_per_core{};

    /**
     * Exhaustive-mode cross estimates: absolute perf for every
     * (platform, scale-up column) pair, row-major platforms x columns.
     * Empty in the default four-classification mode; when present,
     * nodePerf() reads it directly instead of factorizing.
     */
    std::vector<double> cross_perf;

    /** Platform index profiling ran on. */
    size_t profiling_platform = 0;
    /** Reference configuration all rows are normalized by. */
    workload::ScaleUpConfig reference;
    /** Measured absolute performance at the reference. */
    double reference_value = 0.0;

    /** Profiling wall-clock charged to this workload, seconds. */
    double profiling_seconds = 0.0;
    /** Classification (decision) wall-clock, seconds. */
    double classification_seconds = 0.0;

    /**
     * Predicted performance of one node of catalog platform p at
     * scale-up column col (no interference).
     */
    double nodePerf(size_t platform_idx, size_t col) const;

    /**
     * Predicted scale-out speedup at an arbitrary node count
     * (log-linear interpolation between grid columns).
     */
    double scaleOutSpeedupAt(int nodes) const;

    /**
     * Predicted interference multiplier under a contention vector,
     * using the tolerated thresholds and a conservative default
     * degradation slope beyond them.
     */
    double interferenceMultiplier(const interference::IVector &contention,
                                  double slope_guess = 1.5) const;

    /**
     * Predicted job performance for nodes with the given per-node
     * perf values (applies the scale-out speedup model).
     */
    double jobPerf(const std::vector<double> &node_perfs) const;
};

} // namespace quasar::core

