#include "shard/worker_pool.hh"

namespace quasar::shard
{

WorkerPool::WorkerPool(unsigned threads)
{
    if (threads <= 1)
        return; // inline mode: no threads, no synchronization
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
WorkerPool::runBatch(const std::vector<std::function<void()>> &tasks)
{
    if (tasks.empty())
        return;
    if (workers_.empty()) {
        // Inline mode: index order, caller's thread. This is the
        // whole path on single-core hosts.
        for (const auto &task : tasks)
            task();
        return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    batch_ = &tasks;
    next_task_ = 0;
    in_flight_ = 0;
    ++generation_;
    work_cv_.notify_all();
    // The caller participates too: claim tasks until none remain,
    // then wait out stragglers. Keeps the barrier tight and makes a
    // 1-worker pool still use two lanes (caller + worker).
    while (batch_ && next_task_ < batch_->size()) {
        size_t idx = next_task_++;
        ++in_flight_;
        lock.unlock();
        (*batch_)[idx]();
        lock.lock();
        --in_flight_;
    }
    done_cv_.wait(lock, [this] {
        return next_task_ >= batch_->size() && in_flight_ == 0;
    });
    batch_ = nullptr;
}

void
WorkerPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t seen = 0;
    while (true) {
        work_cv_.wait(lock, [&] {
            return stop_ || (batch_ && generation_ != seen &&
                             next_task_ < batch_->size());
        });
        if (stop_)
            return;
        while (batch_ && next_task_ < batch_->size()) {
            size_t idx = next_task_++;
            ++in_flight_;
            lock.unlock();
            (*batch_)[idx]();
            lock.lock();
            if (--in_flight_ == 0 && next_task_ >= batch_->size())
                done_cv_.notify_all();
        }
        seen = generation_;
    }
}

} // namespace quasar::shard
