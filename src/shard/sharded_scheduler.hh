/**
 * @file
 * The sharded, parallel decision path (DESIGN.md §14).
 *
 * K per-shard core::GreedyScheduler workers — each restricted to the
 * servers the deterministic Partitioner assigns it, each with its own
 * ChangeJournal cursor, ranking cache, and maintained candidate
 * order — run the refresh/rank phase in parallel on a WorkerPool,
 * and a commit phase resolves their work into one decision:
 *
 *  - CommitMode::DeterministicMerge (default): one committer walk
 *    consumes a K-way merge of the per-shard candidate streams under
 *    the exact global ranking rules; placements are bit-identical to
 *    the unsharded scheduler at any K.
 *  - CommitMode::Optimistic: Omega-style — every shard proposes a
 *    full allocation confined to its servers, a fixed-visit-order
 *    argmax picks the winner, and the winner is validated against
 *    the shared cell state (per-server change epochs) with bounded
 *    retry on conflict.
 *
 * Replay contract: for a fixed (K, seed) the decision hash and the
 * resulting placements are bit-identical across runs and across the
 * workers' dirty_set/cached index modes; K=1 reproduces the
 * unsharded scheduler's hashes exactly. The running decision hash
 * folds (workload, socket, shard) per committed node — the shard id
 * occupies bit 56 the same way §13 folded the socket at bit 48, and
 * is 0 for K=1, keeping the unsharded definition unchanged.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/scheduler.hh"
#include "shard/shard.hh"
#include "shard/worker_pool.hh"
#include "sim/cluster.hh"
#include "workload/workload.hh"

namespace quasar::shard
{

/** Commit-protocol observability (all modes; monotone counters). */
struct ShardStats
{
    uint64_t decisions = 0;         ///< allocate() calls.
    uint64_t merge_commits = 0;     ///< decisions via the merge walk.
    uint64_t optimistic_commits = 0;///< decisions via proposal argmax.
    uint64_t commit_conflicts = 0;  ///< validation failures observed.
    uint64_t commit_retries = 0;    ///< re-proposal rounds taken.
};

/** The sharded decision front-end; one per manager when enabled. */
class ShardedScheduler
{
  public:
    ShardedScheduler(const sim::Cluster &cluster,
                     core::SchedulerConfig sched_cfg, ShardConfig cfg,
                     const workload::WorkloadRegistry *registry =
                         nullptr);

    /** Drop-in for GreedyScheduler::allocate — same semantics, same
     *  signature, resolved through the configured commit protocol. */
    std::optional<core::Allocation>
    allocate(const workload::Workload &w,
             const core::WorkloadEstimate &est, double required_perf,
             const core::EstimateLookup &estimates,
             bool may_evict) const;

    /** Running FNV-1a decision hash (see the file comment). */
    uint64_t decisionHash() const { return decision_hash_; }

    const ShardConfig &config() const { return cfg_; }
    const Partitioner &partitioner() const { return partitioner_; }
    const ShardStats &stats() const { return stats_; }

    /** Worker for shard k (tests/diagnostics). */
    const core::GreedyScheduler &shardWorker(uint32_t k) const
    {
        return *workers_[k];
    }

    /**
     * Test seam for the Omega conflict path: invoked between proposal
     * argmax and commit validation on every attempt — a test that
     * mutates the chosen servers here forces a validation failure and
     * exercises the bounded-retry machinery deterministically.
     */
    void setCommitHookForTest(std::function<void()> hook)
    {
        commit_hook_ = std::move(hook);
    }

#ifdef QUASAR_VERIFY
    /** Run the cross-shard conservation sweep immediately. */
    void auditShardsNow() const;
#endif

  private:
    /** Rebuild partition/workers when the cluster size moved. */
    void syncPartition() const;

    /** Threads the per-shard phase actually uses this run. */
    unsigned effectiveThreads() const;

    std::optional<core::Allocation>
    allocateMerge(const workload::Workload &w,
                  const core::WorkloadEstimate &est,
                  double required_perf,
                  const core::EstimateLookup &estimates,
                  bool may_evict) const;

    std::optional<core::Allocation>
    allocateOptimistic(const workload::Workload &w,
                       const core::WorkloadEstimate &est,
                       double required_perf,
                       const core::EstimateLookup &estimates,
                       bool may_evict) const;

    /** Omega commit validation: every node's server must still be at
     *  the change epoch shard k's proposal was computed against. */
    bool validateProposal(const core::Allocation &a, uint32_t k) const;

    /** Cached-mode shard feed: worker g's members scored and sorted
     *  under the exact rank-time filter allocateImpl applies. */
    std::vector<std::pair<double, ServerId>>
    cachedShardCandidates(core::GreedyScheduler &g,
                          const workload::Workload &w,
                          const core::WorkloadEstimate &est,
                          bool may_evict) const;

    /** Fold a committed decision into the running hash. */
    void foldCommit(const core::Allocation &a,
                    const workload::Workload &w) const;

    const sim::Cluster &cluster_;
    core::SchedulerConfig sched_cfg_;
    ShardConfig cfg_;
    const workload::WorkloadRegistry *registry_;

    mutable Partitioner partitioner_;
    /** Per-shard workers (stable addresses; restricted via the
     *  partitioner's table). */
    mutable std::vector<std::unique_ptr<core::GreedyScheduler>>
        workers_;
    /** The merge-commit walker: an unrestricted cached-index
     *  scheduler whose epoch-checked state reads are bitwise
     *  identical to any worker's, fed by the merged stream. */
    mutable core::GreedyScheduler committer_;
    mutable WorkerPool pool_;
    mutable uint64_t decision_hash_ = kDecisionHashBasis;
    mutable ShardStats stats_;
    std::function<void()> commit_hook_;
#ifdef QUASAR_VERIFY
    mutable uint64_t audit_allocs_ = 0;
#endif
};

} // namespace quasar::shard
