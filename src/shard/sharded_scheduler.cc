#include "shard/sharded_scheduler.hh"

#include <algorithm>
#include <cassert>
#include <thread>

#ifdef QUASAR_VERIFY
#include <cstdio>
#include <cstdlib>

// Sanctioned upward edge: the shadow oracle hooks in under
// QUASAR_VERIFY only. quasar-lint: allow(layering)
#include "verify/verify.hh"
#endif

namespace quasar::shard
{

using core::GreedyScheduler;
using workload::Workload;

namespace
{

/** The scheduler's ranking order: quality desc, id asc on ties. */
bool
rankedBefore(const std::pair<double, ServerId> &a,
             const std::pair<double, ServerId> &b)
{
    if (a.first != b.first)
        return a.first > b.first;
    return a.second < b.second;
}

} // namespace

ShardedScheduler::ShardedScheduler(
    const sim::Cluster &cluster, core::SchedulerConfig sched_cfg,
    ShardConfig cfg, const workload::WorkloadRegistry *registry)
    : cluster_(cluster), sched_cfg_(sched_cfg), cfg_(cfg),
      registry_(registry),
      partitioner_(cfg.shards, cfg.seed),
      committer_(cluster,
                 [&] {
                     // The merge-commit walker reads state through
                     // the epoch-checked cache path (no maintained
                     // order, no journal cursor of its own): its
                     // refreshEntry values are bitwise identical to
                     // every worker's, so only the candidate ORDER
                     // decides placements — and that comes from the
                     // shard merge.
                     core::SchedulerConfig c = sched_cfg;
                     c.dirty_set = false;
                     c.full_rescan = false;
                     return c;
                 }(),
                 registry),
      pool_(effectiveThreads())
{
    assert(cfg_.enabled());
    syncPartition();
}

unsigned
ShardedScheduler::effectiveThreads() const
{
#ifdef QUASAR_VERIFY
    // The verify layer's process-wide counters and shadow oracle are
    // deliberately unsynchronized; verification builds serialize the
    // per-shard phase (the replay contract is thread-count
    // independent, so this changes nothing observable).
    return 1;
#else
    unsigned want = cfg_.threads != 0
                        ? cfg_.threads
                        : std::max(1u,
                                   std::thread::hardware_concurrency());
    return std::min(want, partitioner_.shards());
#endif
}

void
ShardedScheduler::syncPartition() const
{
    bool rebuilt = partitioner_.sync(cluster_.size());
    if (!rebuilt && !workers_.empty())
        return;
    if (workers_.empty()) {
        core::SchedulerConfig worker_cfg = sched_cfg_;
        worker_cfg.dirty_set = cfg_.dirty_set;
        worker_cfg.full_rescan = false;
        workers_.reserve(partitioner_.shards());
        for (uint32_t k = 0; k < partitioner_.shards(); ++k)
            workers_.push_back(std::make_unique<GreedyScheduler>(
                cluster_, worker_cfg, registry_));
    }
    // (Re)install the membership restriction: the table's address is
    // stable, but a rebuild may have re-covered new servers, and
    // restrictToShard forces each worker to re-prime its index over
    // the current member set.
    for (uint32_t k = 0; k < partitioner_.shards(); ++k)
        workers_[k]->restrictToShard(&partitioner_.table(), k);
}

std::optional<core::Allocation>
ShardedScheduler::allocate(const Workload &w,
                           const core::WorkloadEstimate &est,
                           double required_perf,
                           const core::EstimateLookup &estimates,
                           bool may_evict) const
{
    ++stats_.decisions;
    std::optional<core::Allocation> decision =
        cfg_.commit == CommitMode::Optimistic
            ? allocateOptimistic(w, est, required_perf, estimates,
                                 may_evict)
            : allocateMerge(w, est, required_perf, estimates,
                            may_evict);
#ifdef QUASAR_VERIFY
    // Cross-shard conservation sweep, sampled like the index audit.
    if (++audit_allocs_ % 64 == 0)
        auditShardsNow();
    // The merge commit is a whole-cluster decision, so its oracle is
    // the unrestricted full_rescan walk (Optimistic proposals were
    // already shadow-checked per shard inside each worker's
    // allocate).
    if (cfg_.commit == CommitMode::DeterministicMerge)
        verify::shadowCheckAllocation(cluster_, sched_cfg_, registry_,
                                      w, est, required_perf, estimates,
                                      may_evict, decision);
#endif
    if (decision)
        foldCommit(*decision, w);
    return decision;
}

std::optional<core::Allocation>
ShardedScheduler::allocateMerge(const Workload &w,
                                const core::WorkloadEstimate &est,
                                double required_perf,
                                const core::EstimateLookup &estimates,
                                bool may_evict) const
{
    syncPartition();
    const uint32_t shards = partitioner_.shards();

    // The same feasibility filter allocateImpl's dirty drain applies:
    // the merged stream must be the unsharded candidate sequence.
    GreedyScheduler::OrderFilter filter;
    filter.evict = may_evict;
    if (may_evict && registry_)
        filter.prio_below = w.priority;

    // One feed per shard: a drain of the worker's maintained order
    // (dirty workers), or its sorted filtered candidate list (cached
    // workers) — identical sequences either way, per the per-worker
    // replay contract.
    struct ShardFeed
    {
        GreedyScheduler *sched = nullptr;
        GreedyScheduler::OrderStream order;
        std::vector<std::pair<double, ServerId>> sorted;
        size_t pos = 0;
        bool use_order = false;
        std::optional<std::pair<double, ServerId>> head;
    };
    std::vector<ShardFeed> feeds(shards);

    // Parallel per-shard phase: refresh each shard's index from its
    // own journal cursor and open its candidate stream. Workers touch
    // only their own state plus const cluster reads, so the batch is
    // race-free by construction (and the TSan suite drives it with
    // real threads).
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards);
    for (uint32_t k = 0; k < shards; ++k) {
        ShardFeed &f = feeds[k];
        f.sched = workers_[k].get();
        f.use_order = f.sched->orderMaintained();
        tasks.push_back([this, &f, &w, &est, &filter, may_evict] {
            if (f.use_order) {
                f.sched->refreshIndex();
                f.sched->beginOrderedCandidates(f.order, est, filter);
            } else {
                f.sorted = cachedShardCandidates(*f.sched, w, est,
                                                 may_evict);
            }
        });
    }
    pool_.runBatch(tasks);

    auto advance = [&est](ShardFeed &f) {
        if (f.use_order) {
            f.head = f.sched->nextOrderedCandidate(f.order, est);
        } else if (f.pos < f.sorted.size()) {
            f.head = f.sorted[f.pos++];
        } else {
            f.head = std::nullopt;
        }
    };
    for (ShardFeed &f : feeds)
        advance(f);

    // Lazy K-way merge under the global ranking rules. Server ids are
    // unique across shards, so rankedBefore is a total order and the
    // merged sequence equals the unsharded drain regardless of K.
    std::vector<std::pair<double, ServerId>> merged;
    GreedyScheduler::CandidateFn source =
        [&](size_t i) -> std::optional<std::pair<double, ServerId>> {
        while (merged.size() <= i) {
            int best = -1;
            for (uint32_t k = 0; k < shards; ++k) {
                if (!feeds[k].head)
                    continue;
                if (best < 0 ||
                    rankedBefore(*feeds[k].head, *feeds[best].head))
                    best = int(k);
            }
            if (best < 0)
                return std::nullopt;
            merged.push_back(*feeds[size_t(best)].head);
            advance(feeds[size_t(best)]);
        }
        return merged[i];
    };

    std::optional<core::Allocation> decision =
        committer_.allocateWithSource(w, est, required_perf, estimates,
                                      may_evict, source);
    ++stats_.merge_commits;
    return decision;
}

std::vector<std::pair<double, ServerId>>
ShardedScheduler::cachedShardCandidates(
    GreedyScheduler &g, const Workload &w,
    const core::WorkloadEstimate &est, bool may_evict) const
{
    // Mirror of allocateImpl's cached-mode rank filter, restricted to
    // the worker's members: identical expressions on identical cached
    // state, so the sorted result is the dirty drain's sequence bit
    // for bit.
    std::vector<std::pair<double, ServerId>> out;
    for (size_t i = 0; i < cluster_.size(); ++i) {
        if (!g.memberServer(ServerId(i)))
            continue;
        const sim::Server &srv = cluster_.server(ServerId(i));
        const auto &e = g.cachedState(srv);
        bool avail = e.available;
        int free = e.free_cores;
        if (avail && may_evict)
            free += e.be_cores;
        if (avail && free < 1 && may_evict && g.registry_) {
            double pm = 0.0, ps = 0.0;
            g.priorityEvictable(srv, w, free, pm, ps);
        }
        if (!avail || free < 1)
            continue;
        out.emplace_back(g.serverQuality(srv, est), ServerId(i));
    }
    std::sort(out.begin(), out.end(), rankedBefore);
    return out;
}

std::optional<core::Allocation>
ShardedScheduler::allocateOptimistic(
    const Workload &w, const core::WorkloadEstimate &est,
    double required_perf, const core::EstimateLookup &estimates,
    bool may_evict) const
{
    syncPartition();
    const uint32_t shards = partitioner_.shards();
    std::vector<std::optional<core::Allocation>> proposals(shards);

    for (int attempt = 0; attempt <= cfg_.max_commit_retries;
         ++attempt) {
        // Propose in parallel: every shard runs the full greedy walk
        // confined to its members, against cell state as of its own
        // journal replay.
        std::vector<std::function<void()>> tasks;
        tasks.reserve(shards);
        for (uint32_t k = 0; k < shards; ++k) {
            tasks.push_back([this, k, &proposals, &w, &est,
                             required_perf, &estimates, may_evict] {
                proposals[k] = workers_[k]->allocate(
                    w, est, required_perf, estimates, may_evict);
            });
        }
        pool_.runBatch(tasks);

        // Fixed-visit-order argmax: best predicted performance, ties
        // to the lower shard id — deterministic for a fixed (K, seed)
        // regardless of which thread ran which shard.
        int best = -1;
        for (uint32_t k = 0; k < shards; ++k) {
            if (!proposals[k])
                continue;
            if (best < 0 || proposals[k]->predicted_perf >
                                proposals[size_t(best)]->predicted_perf)
                best = int(k);
        }
        if (best < 0)
            return std::nullopt; // no shard can place anything

        if (commit_hook_)
            commit_hook_(); // test seam: induce a commit conflict

        // Omega-style validation against the shared cell state: the
        // winning proposal commits only if every server it claims is
        // still at the change epoch the proposal was computed
        // against; otherwise the round conflicts and we re-propose
        // (bounded).
        if (validateProposal(*proposals[size_t(best)],
                             uint32_t(best))) {
            ++stats_.optimistic_commits;
            return proposals[size_t(best)];
        }
        ++stats_.commit_conflicts;
        if (attempt < cfg_.max_commit_retries)
            ++stats_.commit_retries;
    }
    // Retry budget exhausted: abort the transaction (the admission
    // queue re-submits on its own schedule).
    return std::nullopt;
}

bool
ShardedScheduler::validateProposal(const core::Allocation &a,
                                   uint32_t k) const
{
    const auto &cache = workers_[k]->cache_;
    for (const core::AllocationNode &n : a.nodes) {
        const sim::Server &srv = cluster_.server(n.server);
        if (!srv.available())
            return false;
        if (size_t(n.server) >= cache.size() ||
            cache[size_t(n.server)].version != srv.version())
            return false;
    }
    return true;
}

void
ShardedScheduler::foldCommit(const core::Allocation &a,
                             const Workload &w) const
{
    for (const core::AllocationNode &n : a.nodes)
        decision_hash_ =
            foldDecision(decision_hash_, w.id, n.socket,
                         partitioner_.shardOf(n.server));
}

#ifdef QUASAR_VERIFY
void
ShardedScheduler::auditShardsNow() const
{
    ++verify::counters().shard_sweeps;
    const std::vector<uint32_t> &table = partitioner_.table();
    if (table.size() != cluster_.size()) {
        std::fprintf(stderr,
                     "QUASAR_VERIFY: shard table covers %zu servers "
                     "but the cluster has %zu\n",
                     table.size(), cluster_.size());
        std::abort();
    }
    std::vector<size_t> counts(partitioner_.shards(), 0);
    for (size_t i = 0; i < table.size(); ++i) {
        if (table[i] >= partitioner_.shards()) {
            std::fprintf(stderr,
                         "QUASAR_VERIFY: server %zu assigned to "
                         "shard %u of %u\n",
                         i, table[i], partitioner_.shards());
            std::abort();
        }
        ++counts[table[i]];
    }
    size_t total = 0;
    for (size_t c : counts)
        total += c;
    if (total != cluster_.size()) {
        std::fprintf(stderr,
                     "QUASAR_VERIFY: shard member counts sum to %zu "
                     "for %zu servers — a server is in zero or two "
                     "shards\n",
                     total, cluster_.size());
        std::abort();
    }
    // Per-shard structural oracle: every primed worker's index and
    // maintained order must hold exactly its members, coherently.
    for (uint32_t k = 0; k < partitioner_.shards(); ++k)
        if (workers_[k]->index_primed_)
            workers_[k]->auditIndexCoherenceNow();
}
#endif

} // namespace quasar::shard
