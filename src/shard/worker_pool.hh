/**
 * @file
 * Fixed-size worker pool for the per-shard decision phase.
 *
 * runBatch() executes a batch of independent tasks and returns only when
 * every task has finished — a barrier, which is what makes the
 * sharded decision path deterministic: tasks write to disjoint
 * per-shard slots, and nothing downstream reads a slot before the
 * barrier. With ≤ 1 effective thread the batch runs inline on the
 * caller, in index order, with zero synchronization — the pool adds
 * no overhead on single-core hosts, where the sharded path's win is
 * the algorithmic one (per-shard incremental indexes), not
 * parallelism.
 *
 * Threads are created once and parked on a condition variable; the
 * same pool is reused across every decision, so the per-allocate
 * cost is one lock + notify per batch, not thread churn.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace quasar::shard
{

/** Barrier-style pool: run a batch of independent tasks, wait all. */
class WorkerPool
{
  public:
    /** @param threads worker count; ≤ 1 means inline execution. */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Worker threads actually running (0 = inline mode). */
    unsigned threads() const { return unsigned(workers_.size()); }

    /**
     * Execute every task and return once all have completed. Tasks
     * must be independent (no ordering among them); each batch is a
     * full barrier. Must not be called concurrently with itself.
     */
    void runBatch(const std::vector<std::function<void()>> &tasks);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable work_cv_; ///< workers wait for a batch.
    std::condition_variable done_cv_; ///< runBatch() waits for the barrier.
    const std::vector<std::function<void()>> *batch_ = nullptr;
    size_t next_task_ = 0;    ///< next unclaimed task in the batch.
    size_t in_flight_ = 0;    ///< claimed but unfinished tasks.
    uint64_t generation_ = 0; ///< batch sequence number.
    bool stop_ = false;
};

} // namespace quasar::shard
