/**
 * @file
 * Shard partitioning for the parallel decision path (DESIGN.md §14).
 *
 * The cluster is split into K shards by a stable hash of the server
 * id: shardOf(id) is a pure function of (id, seed, K), so the
 * assignment never depends on arrival order, cluster mutations, or
 * wall clock, and a rebuild after a catalog or cluster-size change
 * reproduces every existing server's shard bit-for-bit (only new ids
 * gain entries). Each shard is then owned by one
 * core::GreedyScheduler restricted to its members — its own
 * ChangeJournal cursor, ranking cache, and maintained candidate
 * order — and the ShardedScheduler resolves their work into one
 * decision per the configured commit protocol.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace quasar::shard
{

/** How per-shard work is resolved into one cluster-level decision. */
enum class CommitMode : uint8_t
{
    /**
     * Deterministic shard-merge: the per-shard maintained orders are
     * drained through a K-way merge under the scheduler's exact
     * ranking rules (quality desc, id asc), and one committer walk
     * consumes the merged stream. Because the merge reproduces the
     * unsharded candidate order exactly, placements are bit-identical
     * to the unsharded scheduler at ANY shard count.
     */
    DeterministicMerge = 0,
    /**
     * Omega-style optimistic concurrency: every shard runs the full
     * greedy walk confined to its own servers, the proposals are
     * resolved by a fixed-visit-order argmax (predicted performance,
     * ties to the lower shard id), and the winner is validated
     * against the shared cell state with bounded retry on conflict.
     * Deterministic for a fixed (K, seed); placements may differ from
     * the unsharded scheduler except at K=1, where the single shard
     * IS the cluster.
     */
    Optimistic = 1,
};

/** Configuration of the sharded decision path. */
struct ShardConfig
{
    /** Shard count K; 0 disables the sharded path entirely. K=1 runs
     *  the subsystem with a single shard spanning the cluster and
     *  must reproduce the unsharded hashes exactly. */
    uint32_t shards = 0;
    /** Partitioner hash seed — part of the replay contract: decision
     *  and placement hashes are functions of (K, seed). */
    uint64_t seed = 0x9E3779B97F4A7C15ULL;
    CommitMode commit = CommitMode::DeterministicMerge;
    /** Bounded retry for Optimistic commit validation failures. */
    int max_commit_retries = 3;
    /** Worker threads for the per-shard phase; 0 picks
     *  min(shards, hardware_concurrency), and values ≤ 1 run the
     *  phase inline on the caller (no threads, zero overhead). */
    unsigned threads = 0;
    /** Index mode of the per-shard workers (the dirty_set/cached
     *  replay-contract axis; both must yield identical hashes). */
    bool dirty_set = true;

    bool enabled() const { return shards >= 1; }
};

/** FNV-1a over one 64-bit word, byte at a time (the repo's running-
 *  hash idiom — bench/churn folds cluster state the same way). */
inline uint64_t
fnv1aWord(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ULL;
    }
    return h;
}

/** FNV-1a offset basis (the running decision hash's start value). */
constexpr uint64_t kDecisionHashBasis = 0xCBF29CE484222325ULL;

/**
 * Fold one committed allocation node into the running decision hash:
 * workload id in the low bits, the home socket at bit 48 (exactly the
 * §13 socket fold), and the owning shard at bit 56. Unsharded runs
 * and K=1 both fold shard 0, so their decision hashes coincide by
 * construction.
 */
inline uint64_t
foldDecision(uint64_t h, WorkloadId workload, int socket,
             uint32_t shard_id)
{
    return fnv1aWord(h, uint64_t(workload) |
                            uint64_t(uint8_t(socket)) << 48 |
                            uint64_t(uint8_t(shard_id)) << 56);
}

/**
 * The deterministic shard partitioner: a table of server id → shard,
 * rebuilt only when the cluster's size changes (catalog changes
 * re-prime the workers but cannot move a server between shards —
 * the hash ignores everything but the id).
 */
class Partitioner
{
  public:
    Partitioner(uint32_t shards, uint64_t seed)
        : shards_(shards == 0 ? 1 : shards), seed_(seed)
    {
    }

    /** Pure stable hash: shard of a server id under (seed, K). */
    static uint32_t shardHash(ServerId id, uint64_t seed,
                              uint32_t shards)
    {
        uint64_t h = fnv1aWord(kDecisionHashBasis, seed);
        h = fnv1aWord(h, uint64_t(id));
        return uint32_t(h % uint64_t(shards));
    }

    /**
     * Grow/rebuild the table to cover `cluster_size` servers.
     * Existing ids keep their shard (the hash is pure); only the
     * table's coverage changes. Returns true when the table changed,
     * which callers use to re-prime the per-shard workers.
     */
    bool sync(size_t cluster_size)
    {
        if (table_.size() == cluster_size)
            return false;
        size_t old = table_.size();
        table_.resize(cluster_size);
        for (size_t i = old < cluster_size ? old : 0;
             i < cluster_size; ++i)
            table_[i] = shardHash(ServerId(i), seed_, shards_);
        return true;
    }

    uint32_t shards() const { return shards_; }
    uint64_t seed() const { return seed_; }

    /** The membership table GreedyScheduler::restrictToShard reads.
     *  Stable address for the Partitioner's lifetime. */
    const std::vector<uint32_t> &table() const { return table_; }

    uint32_t shardOf(ServerId id) const { return table_[size_t(id)]; }

    /** Member count per shard (diagnostics; shards may be empty —
     *  e.g. K greater than the server count). */
    std::vector<size_t> memberCounts() const
    {
        std::vector<size_t> counts(shards_, 0);
        for (uint32_t s : table_)
            ++counts[s];
        return counts;
    }

  private:
    uint32_t shards_;
    uint64_t seed_;
    std::vector<uint32_t> table_;
};

} // namespace quasar::shard
