#include "tracegen/reservation_model.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::tracegen
{

ReservationModel::ReservationModel(double under_fraction,
                                   double right_fraction, double max_over,
                                   double max_under_factor)
    : under_fraction_(under_fraction), right_fraction_(right_fraction),
      max_over_(max_over), max_under_factor_(max_under_factor)
{
    assert(under_fraction_ + right_fraction_ <= 1.0);
    assert(max_over_ > 1.0 && max_under_factor_ > 1.0);
}

double
ReservationModel::sampleRatio(stats::Rng &rng) const
{
    double u = rng.uniform();
    if (u < under_fraction_) {
        // Under-sized: ratio in [1/max_under, 1), skewed toward mild.
        double f = 1.0 + (max_under_factor_ - 1.0) *
                             rng.uniform() * rng.uniform();
        return 1.0 / f;
    }
    if (u < under_fraction_ + right_fraction_)
        return rng.uniform(0.9, 1.1);
    // Over-sized: ratio in (1, max_over], quadratic skew toward mild
    // over-reservation (most users pad 2-4x, few pad 10x).
    double v = rng.uniform();
    return 1.0 + (max_over_ - 1.0) * v * v;
}

int
ReservationModel::reservedCores(int needed_cores, stats::Rng &rng) const
{
    double r = sampleRatio(rng) * double(needed_cores);
    return std::max(1, int(std::lround(r)));
}

double
ReservationModel::reservedMemoryGb(double needed_gb,
                                   stats::Rng &rng) const
{
    return std::max(0.5, sampleRatio(rng) * needed_gb);
}

} // namespace quasar::tracegen
