/**
 * @file
 * Workload-lifetime samplers for churn populations: how long a
 * service stays registered / an analytics or batch job would run
 * before the churn engine retires it. Each class in a churn mix picks
 * a distribution (fixed, exponential, Pareto, lognormal) parametrized
 * by its mean, so heavy-tailed "mice and elephants" lifetimes are one
 * spec away from memoryless ones.
 *
 * Degenerate parameters are defined, not UB: non-positive means yield
 * zero-length lifetimes, shape parameters are clamped into ranges
 * where the requested mean exists, and zero spread collapses to the
 * fixed distribution.
 */

#pragma once

#include "stats/rng.hh"

namespace quasar::tracegen
{

/** Lifetime distribution of one churn class. */
struct DurationSpec
{
    enum class Kind
    {
        Fixed,       ///< exactly mean_s.
        Exponential, ///< memoryless with mean mean_s.
        Pareto,      ///< heavy tail, mean mean_s, tail shape `shape`.
        Lognormal,   ///< skewed, mean mean_s, log-space sigma `shape`.
    };

    Kind kind = Kind::Fixed;
    /** Mean lifetime in seconds (non-positive: zero lifetime). */
    double mean_s = 60.0;
    /**
     * Tail parameter: Pareto alpha (clamped > 1 so the mean exists)
     * or lognormal sigma (non-positive collapses to Fixed). Ignored
     * by Fixed and Exponential.
     */
    double shape = 1.5;

    static DurationSpec fixed(double mean_s)
    {
        return {Kind::Fixed, mean_s, 0.0};
    }
    static DurationSpec exponential(double mean_s)
    {
        return {Kind::Exponential, mean_s, 0.0};
    }
    static DurationSpec pareto(double mean_s, double alpha = 1.5)
    {
        return {Kind::Pareto, mean_s, alpha};
    }
    static DurationSpec lognormal(double mean_s, double sigma = 1.0)
    {
        return {Kind::Lognormal, mean_s, sigma};
    }
};

/** Draw one lifetime (seconds, >= 0) from the spec. */
double sampleDuration(const DurationSpec &spec, stats::Rng &rng);

} // namespace quasar::tracegen

