#include "tracegen/load_pattern.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::tracegen
{

FluctuatingLoad::FluctuatingLoad(double mean_qps, double amplitude_qps,
                                 double period_s, double phase_s)
    : mean_(mean_qps), amplitude_(amplitude_qps), period_(period_s),
      phase_(phase_s)
{
    assert(period_ > 0.0 && amplitude_ <= mean_);
}

double
FluctuatingLoad::qpsAt(double t) const
{
    double x = 2.0 * M_PI * (t + phase_) / period_;
    return std::max(0.0, mean_ + amplitude_ * std::sin(x));
}

SpikeLoad::SpikeLoad(double base_qps, double spike_qps,
                     double spike_start_s, double ramp_s, double hold_s)
    : base_(base_qps), spike_(spike_qps), start_(spike_start_s),
      ramp_(std::max(ramp_s, 1e-6)), hold_(hold_s)
{
    assert(spike_ >= base_);
}

double
SpikeLoad::qpsAt(double t) const
{
    if (t < start_ || t > start_ + 2.0 * ramp_ + hold_)
        return base_;
    if (t < start_ + ramp_) {
        double f = (t - start_) / ramp_;
        return base_ + f * (spike_ - base_);
    }
    if (t < start_ + ramp_ + hold_)
        return spike_;
    double f = (t - start_ - ramp_ - hold_) / ramp_;
    return spike_ - f * (spike_ - base_);
}

DiurnalLoad::DiurnalLoad(double min_qps, double max_qps, double period_s,
                         double peak_at_s)
    : min_(min_qps), max_(max_qps), period_(period_s), peak_at_(peak_at_s)
{
    assert(max_ >= min_ && period_ > 0.0);
}

double
DiurnalLoad::qpsAt(double t) const
{
    double x = 2.0 * M_PI * (t - peak_at_) / period_;
    double f = 0.5 * (1.0 + std::cos(x)); // 1 at the peak, 0 opposite
    return min_ + f * (max_ - min_);
}

PiecewiseLoad::PiecewiseLoad(std::vector<std::pair<double, double>> knots)
    : knots_(std::move(knots))
{
    assert(!knots_.empty());
    for (size_t i = 1; i < knots_.size(); ++i)
        assert(knots_[i].first >= knots_[i - 1].first);
}

double
PiecewiseLoad::qpsAt(double t) const
{
    if (t <= knots_.front().first)
        return knots_.front().second;
    if (t >= knots_.back().first)
        return knots_.back().second;
    for (size_t i = 1; i < knots_.size(); ++i) {
        if (t <= knots_[i].first) {
            double t0 = knots_[i - 1].first, t1 = knots_[i].first;
            double v0 = knots_[i - 1].second, v1 = knots_[i].second;
            double f = (t1 > t0) ? (t - t0) / (t1 - t0) : 1.0;
            return v0 + f * (v1 - v0);
        }
    }
    return knots_.back().second;
}

double
PiecewiseLoad::peakQps() const
{
    double m = 0.0;
    for (const auto &k : knots_)
        m = std::max(m, k.second);
    return m;
}

} // namespace quasar::tracegen
