/**
 * @file
 * Workload arrival processes for scenario construction: fixed
 * inter-arrival gaps (the paper submits jobs with 1 s / 5 s / 10 s
 * spacing) and Poisson arrivals for open-loop experiments.
 */

#ifndef QUASAR_TRACEGEN_ARRIVALS_HH
#define QUASAR_TRACEGEN_ARRIVALS_HH

#include <vector>

#include "stats/rng.hh"

namespace quasar::tracegen
{

/** Generates the gap to the next arrival. */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Seconds until the next arrival. */
    virtual double nextGap(stats::Rng &rng) = 0;
};

/** Constant spacing. */
class FixedInterArrival : public ArrivalProcess
{
  public:
    explicit FixedInterArrival(double gap_s) : gap_(gap_s) {}
    double nextGap(stats::Rng &) override { return gap_; }

  private:
    double gap_;
};

/** Exponential gaps with the given mean rate (arrivals/sec). */
class PoissonArrivals : public ArrivalProcess
{
  public:
    explicit PoissonArrivals(double rate_per_s) : rate_(rate_per_s) {}
    double nextGap(stats::Rng &rng) override
    {
        return rng.exponential(rate_);
    }

  private:
    double rate_;
};

/** Absolute arrival times for count workloads starting at start_s. */
std::vector<double> arrivalTimes(ArrivalProcess &process, size_t count,
                                 stats::Rng &rng, double start_s = 0.0);

} // namespace quasar::tracegen

#endif // QUASAR_TRACEGEN_ARRIVALS_HH
