/**
 * @file
 * Workload arrival processes for scenario construction: fixed
 * inter-arrival gaps (the paper submits jobs with 1 s / 5 s / 10 s
 * spacing), Poisson arrivals for open-loop experiments, and
 * heavy-tailed Pareto arrivals for bursty churn streams.
 *
 * Degenerate parameters are defined, not UB: a zero/negative-rate
 * Poisson process never arrives again (infinite gap), a non-positive
 * fixed gap collapses to a simultaneous burst (gap 0), and Pareto
 * shapes <= 1 (infinite mean) are clamped to a finite-mean tail.
 */

#pragma once

#include <vector>

#include "stats/rng.hh"

namespace quasar::tracegen
{

/** Generates the gap to the next arrival. */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Seconds until the next arrival. */
    virtual double nextGap(stats::Rng &rng) = 0;
};

/** Constant spacing (non-positive gaps become a burst at one time). */
class FixedInterArrival : public ArrivalProcess
{
  public:
    explicit FixedInterArrival(double gap_s)
        : gap_(gap_s > 0.0 ? gap_s : 0.0)
    {
    }
    double nextGap(stats::Rng &) override { return gap_; }

  private:
    double gap_;
};

/**
 * Exponential gaps with the given mean rate (arrivals/sec). A
 * non-positive rate means the process is off: the gap is infinite
 * (std::exponential_distribution with rate 0 would be UB).
 */
class PoissonArrivals : public ArrivalProcess
{
  public:
    explicit PoissonArrivals(double rate_per_s) : rate_(rate_per_s) {}
    double nextGap(stats::Rng &rng) override;

  private:
    double rate_;
};

/**
 * Heavy-tailed gaps: Pareto with the requested mean and tail shape
 * alpha. Alpha must exceed 1 for the mean to exist; smaller shapes
 * are clamped to a steep-but-finite tail. Models the bursty arrival
 * trains of production traces (many back-to-back submissions, rare
 * long lulls) that a Poisson stream smooths away.
 */
class ParetoArrivals : public ArrivalProcess
{
  public:
    /**
     * @param mean_gap_s mean seconds between arrivals (non-positive
     *        collapses to a burst, like FixedInterArrival).
     * @param alpha tail shape; clamped to > 1.
     */
    explicit ParetoArrivals(double mean_gap_s, double alpha = 1.5);
    double nextGap(stats::Rng &rng) override;

    double scale() const { return xm_; }
    double shape() const { return alpha_; }

  private:
    double xm_;    ///< Pareto scale (minimum gap).
    double alpha_; ///< Pareto tail shape.
};

/** Absolute arrival times for count workloads starting at start_s. */
std::vector<double> arrivalTimes(ArrivalProcess &process, size_t count,
                                 stats::Rng &rng, double start_s = 0.0);

} // namespace quasar::tracegen

