#include "tracegen/durations.hh"

#include <cmath>

namespace quasar::tracegen
{

double
sampleDuration(const DurationSpec &spec, stats::Rng &rng)
{
    double mean = spec.mean_s > 0.0 ? spec.mean_s : 0.0;
    switch (spec.kind) {
    case DurationSpec::Kind::Fixed:
        return mean;
    case DurationSpec::Kind::Exponential:
        if (mean <= 0.0)
            return 0.0;
        return rng.exponential(1.0 / mean);
    case DurationSpec::Kind::Pareto: {
        if (mean <= 0.0)
            return 0.0;
        // Mean of Pareto(xm, alpha) = xm * alpha / (alpha - 1);
        // shapes <= 1 (no mean) clamp to a steep-but-finite tail.
        double alpha = spec.shape > 1.05 ? spec.shape : 1.05;
        double xm = mean * (alpha - 1.0) / alpha;
        return rng.pareto(xm, alpha);
    }
    case DurationSpec::Kind::Lognormal: {
        if (mean <= 0.0)
            return 0.0;
        double sigma = spec.shape;
        if (sigma <= 0.0)
            return mean; // zero spread: the fixed distribution
        // exp(N(mu, sigma)) has mean exp(mu + sigma^2/2); pick mu so
        // the sampled mean equals the requested one.
        double mu = std::log(mean) - 0.5 * sigma * sigma;
        return std::exp(rng.normal(mu, sigma));
    }
    }
    return mean;
}

} // namespace quasar::tracegen
