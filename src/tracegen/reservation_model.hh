/**
 * @file
 * User reservation-error model, calibrated to the paper's Fig. 1d:
 * on the production Twitter cluster, ~70% of workloads overestimate
 * their reservation by up to 10x, ~20% underestimate by up to 5x, and
 * only ~10% reserve about the right amount.
 *
 * Reservation-based baseline managers use this model to turn a
 * workload's true resource need into the reservation a user would have
 * submitted.
 */

#pragma once

#include "stats/rng.hh"

namespace quasar::tracegen
{

/** Draws reserved/needed ratios matching the Fig. 1d distribution. */
class ReservationModel
{
  public:
    /**
     * @param under_fraction workloads that under-reserve (paper: 0.2).
     * @param right_fraction workloads that right-size (paper: 0.1).
     * @param max_over maximum over-reservation ratio (paper: 10x).
     * @param max_under_factor maximum under-reservation (paper: 5x,
     *        i.e. ratio down to 1/5).
     */
    ReservationModel(double under_fraction = 0.2,
                     double right_fraction = 0.1, double max_over = 10.0,
                     double max_under_factor = 5.0);

    /**
     * Sample a reserved/needed ratio: < 1 under-sized, ~1 right-sized,
     * > 1 over-sized.
     */
    double sampleRatio(stats::Rng &rng) const;

    /** Apply a sampled ratio to a true need, keeping a floor of 1. */
    int reservedCores(int needed_cores, stats::Rng &rng) const;
    double reservedMemoryGb(double needed_gb, stats::Rng &rng) const;

  private:
    double under_fraction_;
    double right_fraction_;
    double max_over_;
    double max_under_factor_;
};

} // namespace quasar::tracegen

