/**
 * @file
 * Time-varying load patterns for latency-critical services: the flat,
 * fluctuating, spiking, and diurnal traffic shapes of the paper's
 * Figs. 8 and 9.
 */

#pragma once

#include <memory>
#include <vector>

namespace quasar::tracegen
{

/** A deterministic offered-load curve (QPS as a function of time). */
class LoadPattern
{
  public:
    virtual ~LoadPattern() = default;

    /** Offered load at time t (seconds), in QPS. */
    virtual double qpsAt(double t) const = 0;

    /** Largest load the pattern ever offers (for capacity planning). */
    virtual double peakQps() const = 0;
};

/** Constant load (Fig. 8a). */
class FlatLoad : public LoadPattern
{
  public:
    explicit FlatLoad(double qps) : qps_(qps) {}
    double qpsAt(double) const override { return qps_; }
    double peakQps() const override { return qps_; }

  private:
    double qps_;
};

/** Sinusoidal fluctuation around a mean (Fig. 8b). */
class FluctuatingLoad : public LoadPattern
{
  public:
    /**
     * @param mean_qps center of the oscillation.
     * @param amplitude_qps peak deviation from the mean.
     * @param period_s oscillation period.
     * @param phase_s phase offset.
     */
    FluctuatingLoad(double mean_qps, double amplitude_qps,
                    double period_s, double phase_s = 0.0);
    double qpsAt(double t) const override;
    double peakQps() const override { return mean_ + amplitude_; }

  private:
    double mean_;
    double amplitude_;
    double period_;
    double phase_;
};

/** Base load with one sharp spike (Fig. 8d). */
class SpikeLoad : public LoadPattern
{
  public:
    /**
     * @param base_qps steady load outside the spike.
     * @param spike_qps peak load at the top of the spike.
     * @param spike_start_s when the ramp begins.
     * @param ramp_s duration of the up/down ramps.
     * @param hold_s time at the peak.
     */
    SpikeLoad(double base_qps, double spike_qps, double spike_start_s,
              double ramp_s, double hold_s);
    double qpsAt(double t) const override;
    double peakQps() const override { return spike_; }

  private:
    double base_;
    double spike_;
    double start_;
    double ramp_;
    double hold_;
};

/** Day-night pattern for 24h runs (Fig. 9). */
class DiurnalLoad : public LoadPattern
{
  public:
    /**
     * @param min_qps overnight trough.
     * @param max_qps daytime peak.
     * @param period_s length of a "day" (usually 86400).
     * @param peak_at_s time-of-day of the peak.
     */
    DiurnalLoad(double min_qps, double max_qps, double period_s = 86400.0,
                double peak_at_s = 14.0 * 3600.0);
    double qpsAt(double t) const override;
    double peakQps() const override { return max_; }

  private:
    double min_;
    double max_;
    double period_;
    double peak_at_;
};

/** Piecewise-linear pattern through (time, qps) knots. */
class PiecewiseLoad : public LoadPattern
{
  public:
    explicit PiecewiseLoad(std::vector<std::pair<double, double>> knots);
    double qpsAt(double t) const override;
    double peakQps() const override;

  private:
    std::vector<std::pair<double, double>> knots_;
};

using LoadPatternPtr = std::shared_ptr<const LoadPattern>;

} // namespace quasar::tracegen

