#include "tracegen/arrivals.hh"

namespace quasar::tracegen
{

std::vector<double>
arrivalTimes(ArrivalProcess &process, size_t count, stats::Rng &rng,
             double start_s)
{
    std::vector<double> times;
    times.reserve(count);
    double t = start_s;
    for (size_t i = 0; i < count; ++i) {
        times.push_back(t);
        t += process.nextGap(rng);
    }
    return times;
}

} // namespace quasar::tracegen
