#include "tracegen/arrivals.hh"

#include <limits>

namespace quasar::tracegen
{

double
PoissonArrivals::nextGap(stats::Rng &rng)
{
    if (rate_ <= 0.0)
        return std::numeric_limits<double>::infinity();
    return rng.exponential(rate_);
}

ParetoArrivals::ParetoArrivals(double mean_gap_s, double alpha)
{
    // Mean of Pareto(xm, alpha) is xm * alpha / (alpha - 1); invert
    // for xm. Shapes <= 1 have no mean — clamp to a steep tail so the
    // requested mean stays meaningful.
    alpha_ = alpha > 1.05 ? alpha : 1.05;
    double mean = mean_gap_s > 0.0 ? mean_gap_s : 0.0;
    xm_ = mean * (alpha_ - 1.0) / alpha_;
}

double
ParetoArrivals::nextGap(stats::Rng &rng)
{
    if (xm_ <= 0.0)
        return 0.0; // degenerate: a simultaneous burst
    return rng.pareto(xm_, alpha_);
}

std::vector<double>
arrivalTimes(ArrivalProcess &process, size_t count, stats::Rng &rng,
             double start_s)
{
    std::vector<double> times;
    times.reserve(count);
    double t = start_s;
    for (size_t i = 0; i < count; ++i) {
        times.push_back(t);
        t += process.nextGap(rng);
    }
    return times;
}

} // namespace quasar::tracegen
