#include "baselines/autoscale.hh"

#include <algorithm>
#include <cassert>

namespace quasar::baselines
{

using workload::Workload;

AutoScaleManager::AutoScaleManager(sim::Cluster &cluster,
                                   workload::WorkloadRegistry &registry,
                                   AutoScaleConfig cfg, uint64_t seed)
    : cluster_(cluster), registry_(registry), cfg_(cfg), rng_(seed),
      oracle_(cluster, registry)
{
}

double
AutoScaleManager::observedRho(const Workload &w, double t) const
{
    double cap = oracle_.serviceCapacityQps(w, t);
    if (cap <= 0.0)
        return 1.0;
    return std::min(1.5, w.offeredQps(t) / cap);
}

bool
AutoScaleManager::addInstance(Workload &w, double t)
{
    // Least-loaded server that fits a fixed-size instance; the policy
    // knows nothing about platform types or co-runner interference.
    std::vector<std::pair<double, ServerId>> order;
    for (size_t i = 0; i < cluster_.size(); ++i) {
        const sim::Server &srv = cluster_.server(ServerId(i));
        if (srv.hosts(w.id))
            continue;
        order.emplace_back(srv.cpuReservedFraction(), ServerId(i));
    }
    std::sort(order.begin(), order.end());
    for (const auto &[load, sid] : order) {
        sim::Server &srv = cluster_.server(sid);
        int cores = std::min(cfg_.instance_cores, srv.platform().cores);
        double mem = std::min(cfg_.instance_memory_gb,
                              srv.platform().memory_gb);
        if (!srv.canFit(cores, mem, w.storage_gb_per_node))
            continue;
        sim::TaskShare share;
        share.workload = w.id;
        share.cores = cores;
        share.memory_gb = mem;
        share.storage_gb = w.storage_gb_per_node;
        share.caused = w.causedPressure(t, cores);
        share.best_effort = false;
        srv.place(share);
        // Stateful services must move shards to the new instance.
        if (w.type == workload::WorkloadType::StatefulService &&
            w.state_gb > 0.0) {
            size_t n = cluster_.serversHosting(w.id).size();
            double moved = w.state_gb / double(std::max<size_t>(n, 1));
            w.degraded_until =
                t + moved / cfg_.migration_gbps;
            w.degraded_factor = cfg_.migration_factor;
        }
        return true;
    }
    return false;
}

void
AutoScaleManager::removeInstance(Workload &w)
{
    auto hosting = cluster_.serversHosting(w.id);
    if (int(hosting.size()) <= cfg_.min_instances)
        return;
    cluster_.server(hosting.back()).remove(w.id);
}

void
AutoScaleManager::onSubmit(WorkloadId id, double t)
{
    Workload &w = registry_.get(id);
    if (workload::isLatencyCritical(w.type)) {
        bool ok = true;
        for (int i = 0; i < cfg_.min_instances && ok; ++i)
            ok = addInstance(w, t);
        if (!ok)
            queue_.push_back(id);
        w.last_progress_update = t;
        return;
    }
    // Batch workloads: reservation + least-loaded placement.
    Reservation res =
        userReservation(w, cluster_.catalog(), model_, rng_);
    if (placeLeastLoaded(cluster_, w, t, res, w.best_effort).empty())
        queue_.push_back(id);
    else
        w.last_progress_update = t;
}

void
AutoScaleManager::onTick(double t)
{
    // Retry queued submissions.
    std::vector<WorkloadId> still_waiting;
    for (WorkloadId id : queue_) {
        Workload &w = registry_.get(id);
        if (w.completed || w.killed)
            continue;
        bool ok;
        if (workload::isLatencyCritical(w.type)) {
            ok = addInstance(w, t);
        } else {
            Reservation res =
                userReservation(w, cluster_.catalog(), model_, rng_);
            ok = !placeLeastLoaded(cluster_, w, t, res, w.best_effort)
                      .empty();
        }
        if (!ok)
            still_waiting.push_back(id);
    }
    queue_ = std::move(still_waiting);

    // Scale services on observed utilization.
    for (WorkloadId id : registry_.active()) {
        Workload &w = registry_.get(id);
        if (!workload::isLatencyCritical(w.type))
            continue;
        auto hosting = cluster_.serversHosting(id);
        if (hosting.empty())
            continue;
        double rho = observedRho(w, t);
        if (rho > cfg_.scale_out_threshold) {
            if (++hot_streak_[id] >= cfg_.hot_ticks &&
                int(hosting.size()) < cfg_.max_instances) {
                addInstance(w, t);
                hot_streak_[id] = 0;
            }
        } else {
            hot_streak_[id] = 0;
            if (rho < cfg_.scale_in_threshold)
                removeInstance(w);
        }
    }
}

void
AutoScaleManager::onCompletion(WorkloadId, double t)
{
    (void)t;
}

void
AutoScaleManager::onServerDown(ServerId,
                               const std::vector<WorkloadId> &displaced,
                               double t)
{
    // Services that lost *some* instances recover through the normal
    // utilization-driven scale-out loop; a service (or batch job) that
    // lost *all* of them is invisible to that loop and must be
    // relaunched here.
    for (WorkloadId id : displaced) {
        Workload &w = registry_.get(id);
        if (w.completed || w.killed)
            continue;
        if (!cluster_.serversHosting(id).empty())
            continue;
        bool ok;
        if (workload::isLatencyCritical(w.type)) {
            ok = true;
            for (int i = 0; i < cfg_.min_instances && ok; ++i)
                ok = addInstance(w, t);
        } else {
            Reservation res =
                userReservation(w, cluster_.catalog(), model_, rng_);
            ok = !placeLeastLoaded(cluster_, w, t, res, w.best_effort)
                      .empty();
        }
        if (ok)
            w.last_progress_update = t;
        else if (std::find(queue_.begin(), queue_.end(), id) ==
                 queue_.end())
            queue_.push_back(id);
    }
}

int
AutoScaleManager::instancesOf(WorkloadId id) const
{
    return int(cluster_.serversHosting(id).size());
}

} // namespace quasar::baselines
