/**
 * @file
 * Reservation + Paragon baseline (paper Fig. 11): resource allocation
 * still comes from user/framework reservations, but resource
 * *assignment* uses Paragon-style CF classification — servers are
 * ranked by heterogeneity (platform) affinity and interference fit,
 * and workloads are placed so co-runners tolerate each other. No
 * allocation sizing, no knob tuning, no runtime rightsizing: exactly
 * the capability gap the paper attributes to assignment-only systems.
 */

#pragma once

#include <unordered_map>
#include <vector>

#include "core/classifier.hh"
#include "baselines/reservation_ll.hh"

namespace quasar::baselines
{

/** Reservation allocation + Paragon CF assignment. */
class ParagonManager : public driver::ClusterManager
{
  public:
    ParagonManager(sim::Cluster &cluster,
                   workload::WorkloadRegistry &registry,
                   uint64_t seed = 88,
                   tracegen::ReservationModel model = {});

    /** Anchor the classifier with offline-profiled seed workloads. */
    void seedOffline(const std::vector<workload::Workload> &seeds,
                     double t = 0.0);

    void onSubmit(WorkloadId id, double t) override;
    void onTick(double t) override;
    void onCompletion(WorkloadId id, double t) override;
    /** Minimal recovery: top up lost nodes / requeue when unplaced. */
    void onServerDown(ServerId sid,
                      const std::vector<WorkloadId> &displaced,
                      double t) override;
    std::string name() const override { return "reservation+paragon"; }

    const core::WorkloadEstimate *estimateFor(WorkloadId id) const;

  private:
    bool tryPlace(WorkloadId id, double t);

    sim::Cluster &cluster_;
    workload::WorkloadRegistry &registry_;
    tracegen::ReservationModel model_;
    profiling::Profiler profiler_;
    core::Classifier classifier_;
    stats::Rng rng_;
    std::unordered_map<WorkloadId, Reservation> reservations_;
    std::unordered_map<WorkloadId, core::WorkloadEstimate> estimates_;
    std::vector<WorkloadId> queue_;
};

} // namespace quasar::baselines

