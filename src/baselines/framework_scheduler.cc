#include "baselines/framework_scheduler.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::baselines
{

using workload::Workload;

workload::FrameworkKnobs
hadoopDefaultKnobs()
{
    workload::FrameworkKnobs k;
    k.mappers_per_node = 8;
    k.heap_gb = 1.0;
    k.block_mb = 64;
    k.compression = workload::Compression::Lzo;
    k.replication = 2;
    return k;
}

Reservation
frameworkReservation(const Workload &w)
{
    assert(w.type == workload::WorkloadType::Analytics);
    workload::FrameworkKnobs k = hadoopDefaultKnobs();
    Reservation res;
    // One core per mapper slot; memory sized for the mapper heaps.
    res.cores_per_node = k.mappers_per_node;
    res.memory_per_node_gb = k.mappers_per_node * k.heap_gb;
    // Node count grows with dataset size (split-count heuristic).
    res.nodes = std::clamp(
        int(std::lround(std::ceil(w.dataset_gb / 15.0))), 2, 12);
    return res;
}

FrameworkSelfManager::FrameworkSelfManager(
    sim::Cluster &cluster, workload::WorkloadRegistry &registry,
    uint64_t seed)
    : cluster_(cluster), registry_(registry), rng_(seed)
{
}

void
FrameworkSelfManager::onSubmit(WorkloadId id, double t)
{
    const Workload &w = registry_.get(id);
    if (w.type == workload::WorkloadType::Analytics)
        reservations_[id] = frameworkReservation(w);
    else
        reservations_[id] =
            userReservation(w, cluster_.catalog(), model_, rng_);
    if (!tryPlace(id, t))
        queue_.push_back(id);
}

bool
FrameworkSelfManager::tryPlace(WorkloadId id, double t)
{
    Workload &w = registry_.get(id);
    const Reservation &res = reservations_.at(id);
    // Frameworks choose from all server types indiscriminately.
    auto used = placeLeastLoaded(cluster_, w, t, res, w.best_effort);
    if (used.empty())
        return false;
    w.active_knobs = hadoopDefaultKnobs();
    w.last_progress_update = t;
    return true;
}

void
FrameworkSelfManager::onTick(double t)
{
    std::vector<WorkloadId> still_waiting;
    for (WorkloadId id : queue_) {
        const Workload &w = registry_.get(id);
        if (w.completed || w.killed)
            continue;
        if (!tryPlace(id, t))
            still_waiting.push_back(id);
    }
    queue_ = std::move(still_waiting);
}

void
FrameworkSelfManager::onCompletion(WorkloadId, double t)
{
    onTick(t);
}

void
FrameworkSelfManager::onServerDown(ServerId,
                                   const std::vector<WorkloadId> &displaced,
                                   double t)
{
    for (WorkloadId id : displaced) {
        Workload &w = registry_.get(id);
        if (w.completed || w.killed)
            continue;
        auto it = reservations_.find(id);
        if (it == reservations_.end())
            continue;
        size_t remaining = cluster_.serversHosting(id).size();
        if (remaining == 0) {
            if (!tryPlace(id, t) &&
                std::find(queue_.begin(), queue_.end(), id) ==
                    queue_.end())
                queue_.push_back(id);
            continue;
        }
        Reservation missing = it->second;
        missing.nodes -= int(remaining);
        if (missing.nodes > 0)
            placeLeastLoaded(cluster_, w, t, missing, w.best_effort);
    }
}

const Reservation *
FrameworkSelfManager::reservationFor(WorkloadId id) const
{
    auto it = reservations_.find(id);
    return it == reservations_.end() ? nullptr : &it->second;
}

} // namespace quasar::baselines
