#include "baselines/paragon.hh"

#include <algorithm>
#include <cassert>

namespace quasar::baselines
{

using workload::Workload;

ParagonManager::ParagonManager(sim::Cluster &cluster,
                               workload::WorkloadRegistry &registry,
                               uint64_t seed,
                               tracegen::ReservationModel model)
    : cluster_(cluster), registry_(registry), model_(model),
      profiler_(cluster.catalog(), profiling::ProfilerConfig{}),
      classifier_(profiler_, core::ClassifierConfig{}, seed ^ 0x9A5A),
      rng_(seed)
{
}

void
ParagonManager::seedOffline(const std::vector<Workload> &seeds, double t)
{
    classifier_.seedOffline(seeds, t);
}

void
ParagonManager::onSubmit(WorkloadId id, double t)
{
    const Workload &w = registry_.get(id);
    reservations_[id] =
        userReservation(w, cluster_.catalog(), model_, rng_);
    // Paragon profiles and classifies for heterogeneity and
    // interference only (its classification engine predates the
    // scale-up/scale-out extensions).
    profiling::ProfilingData data = profiler_.profile(w, t, rng_);
    estimates_[id] = classifier_.classify(w, data);
    if (!tryPlace(id, t))
        queue_.push_back(id);
}

bool
ParagonManager::tryPlace(WorkloadId id, double t)
{
    Workload &w = registry_.get(id);
    const Reservation &res = reservations_.at(id);
    const core::WorkloadEstimate &est = estimates_.at(id);

    // Rank servers: platform affinity x interference fit for the
    // newcomer, skipping servers whose residents would suffer.
    const auto &catalog = cluster_.catalog();
    std::vector<std::pair<double, ServerId>> ranked;
    for (size_t i = 0; i < cluster_.size(); ++i) {
        const sim::Server &srv = cluster_.server(ServerId(i));
        if (srv.hosts(id))
            continue;
        if (!srv.canFit(res.cores_per_node, res.memory_per_node_gb,
                        w.storage_gb_per_node))
            continue;
        size_t p_idx = 0;
        for (size_t p = 0; p < catalog.size(); ++p)
            if (catalog[p].name == srv.platform().name)
                p_idx = p;
        double q = est.platform_factor[p_idx] *
                   est.interferenceMultiplier(
                       srv.contentionForNewcomer());
        // Residents must tolerate the newcomer's caused pressure.
        bool safe = true;
        const auto &cap = srv.platform().contention_capacity;
        for (const sim::TaskShare &task : srv.tasks()) {
            auto res_it = estimates_.find(task.workload);
            if (res_it == estimates_.end())
                continue;
            for (size_t s = 0; s < interference::kNumSources; ++s) {
                double added =
                    cap[s] > 0.0 ? est.caused_per_core[s] *
                                       res.cores_per_node / cap[s]
                                 : 0.0;
                double now = srv.contentionFor(task.workload)[s];
                if (now + added >
                    res_it->second.tolerated[s] + 0.15) {
                    safe = false;
                    break;
                }
            }
            if (!safe)
                break;
        }
        if (!safe)
            continue;
        ranked.emplace_back(q, ServerId(i));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });

    int placed = 0;
    for (const auto &[q, sid] : ranked) {
        if (placed >= res.nodes)
            break;
        sim::Server &srv = cluster_.server(sid);
        if (!srv.canFit(res.cores_per_node, res.memory_per_node_gb,
                        w.storage_gb_per_node))
            continue;
        sim::TaskShare share;
        share.workload = id;
        share.cores = res.cores_per_node;
        share.memory_gb = res.memory_per_node_gb;
        share.storage_gb = w.storage_gb_per_node;
        share.caused = w.causedPressure(t, res.cores_per_node);
        share.best_effort = w.best_effort;
        srv.place(share);
        ++placed;
    }
    if (placed == 0)
        return false;
    w.active_knobs = workload::FrameworkKnobs{}; // reservations: untuned
    w.last_progress_update = t;
    return true;
}

void
ParagonManager::onTick(double t)
{
    std::vector<WorkloadId> still_waiting;
    for (WorkloadId id : queue_) {
        const Workload &w = registry_.get(id);
        if (w.completed || w.killed)
            continue;
        if (!tryPlace(id, t))
            still_waiting.push_back(id);
    }
    queue_ = std::move(still_waiting);
}

void
ParagonManager::onCompletion(WorkloadId, double t)
{
    onTick(t);
}

void
ParagonManager::onServerDown(ServerId,
                             const std::vector<WorkloadId> &displaced,
                             double t)
{
    for (WorkloadId id : displaced) {
        const Workload &w = registry_.get(id);
        if (w.completed || w.killed)
            continue;
        auto it = reservations_.find(id);
        if (it == reservations_.end())
            continue;
        // Relaunch only the lost nodes: tryPlace places up to
        // res.nodes shares on servers not already hosting the
        // workload, so shrink the reservation to the missing count
        // for the duration of the call.
        int remaining = int(cluster_.serversHosting(id).size());
        int full = it->second.nodes;
        it->second.nodes = std::max(full - remaining, 1);
        bool placed = remaining >= full || tryPlace(id, t);
        it->second.nodes = full;
        if (!placed && remaining == 0 &&
            std::find(queue_.begin(), queue_.end(), id) == queue_.end())
            queue_.push_back(id);
    }
}

const core::WorkloadEstimate *
ParagonManager::estimateFor(WorkloadId id) const
{
    auto it = estimates_.find(id);
    return it == estimates_.end() ? nullptr : &it->second;
}

} // namespace quasar::baselines
