/**
 * @file
 * Framework self-scheduler baseline (paper Figs. 5-7, Table 3): each
 * analytics framework (Hadoop/Storm/Spark) sizes its own job from
 * dataset-driven heuristics with default knob settings, and picks
 * servers without regard to platform type or interference — the
 * behaviour the paper attributes to built-in framework schedulers.
 */

#pragma once

#include <unordered_map>
#include <vector>

#include "baselines/reservation_ll.hh"

namespace quasar::baselines
{

/** Hadoop's default tuning (paper Table 3, "Hadoop" column). */
workload::FrameworkKnobs hadoopDefaultKnobs();

/**
 * The reservation a framework derives for its own job: node count
 * from the dataset size, fixed per-node slots (mappers x 1 core),
 * memory from mappers x heapsize.
 */
Reservation frameworkReservation(const workload::Workload &w);

/** Framework self-scheduling manager. */
class FrameworkSelfManager : public driver::ClusterManager
{
  public:
    FrameworkSelfManager(sim::Cluster &cluster,
                         workload::WorkloadRegistry &registry,
                         uint64_t seed = 66);

    void onSubmit(WorkloadId id, double t) override;
    void onTick(double t) override;
    void onCompletion(WorkloadId id, double t) override;
    /** Minimal recovery: top up lost nodes / requeue when unplaced. */
    void onServerDown(ServerId sid,
                      const std::vector<WorkloadId> &displaced,
                      double t) override;
    std::string name() const override { return "framework-schedulers"; }

    const Reservation *reservationFor(WorkloadId id) const;

  private:
    bool tryPlace(WorkloadId id, double t);

    sim::Cluster &cluster_;
    workload::WorkloadRegistry &registry_;
    stats::Rng rng_;
    tracegen::ReservationModel model_;
    std::unordered_map<WorkloadId, Reservation> reservations_;
    std::vector<WorkloadId> queue_;
};

} // namespace quasar::baselines

