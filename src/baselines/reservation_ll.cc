#include "baselines/reservation_ll.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "workload/queueing.hh"

namespace quasar::baselines
{

using workload::TargetKind;
using workload::Workload;

namespace
{

/** The platform a typical user benchmarks on: a mid-tier box. */
const sim::Platform &
midPlatform(const std::vector<sim::Platform> &catalog)
{
    assert(!catalog.empty());
    return catalog[catalog.size() / 2];
}

workload::ScaleUpConfig
defaultConfig(const Workload &w, const sim::Platform &p)
{
    workload::ScaleUpConfig cfg;
    // Users reserve medium instances (4 vCPUs) per node so the
    // reservation is placeable across most of the fleet.
    cfg.cores = std::min(4, p.cores);
    cfg.memory_gb = std::min(w.truth.mem_demand_gb, p.memory_gb);
    // Users do not tune framework knobs; defaults apply.
    return cfg;
}

} // namespace

Reservation
trueNeed(const Workload &w, const std::vector<sim::Platform> &catalog)
{
    const sim::Platform &mid = midPlatform(catalog);
    Reservation res;

    if (w.type == workload::WorkloadType::SingleNode) {
        res.nodes = 1;
        res.memory_per_node_gb =
            std::min(w.truth.mem_demand_gb, mid.memory_gb);
        res.cores_per_node = 1;
        for (int c = 1; c <= mid.cores; ++c) {
            workload::ScaleUpConfig cfg;
            cfg.cores = c;
            cfg.memory_gb = res.memory_per_node_gb;
            res.cores_per_node = c;
            if (w.truth.nodeRateQuiet(mid, cfg) >= w.target.rate)
                break;
        }
        // Users think in instance sizes: reservations are rounded up
        // to the next standard flavor (this, plus the estimation
        // error applied later, is where the reserved-vs-used gap of
        // the paper's Fig. 1 comes from).
        static const int flavors[] = {1, 2, 4, 8, 16, 24};
        for (int f : flavors)
            if (f >= res.cores_per_node) {
                res.cores_per_node = f;
                break;
            }
        res.memory_per_node_gb =
            std::max(res.memory_per_node_gb, 2.0);
        return res;
    }

    workload::ScaleUpConfig cfg = defaultConfig(w, mid);
    res.cores_per_node = cfg.cores;
    res.memory_per_node_gb = cfg.memory_gb;
    double node_rate = w.truth.nodeRateQuiet(mid, cfg);

    double required;
    if (w.target.kind == TargetKind::QpsLatency) {
        double headroom = -std::log(0.01) / w.target.latency_qos_s;
        required = w.target.qps + headroom;
        node_rate = w.truth.capacityQps(node_rate);
    } else {
        required = w.target.rate;
    }

    res.nodes = 1;
    for (int n = 1; n <= 60; ++n) {
        res.nodes = n;
        std::vector<double> rates(size_t(n), node_rate);
        double total = w.truth.jobRate(rates);
        if (w.target.kind == TargetKind::QpsLatency) {
            // jobRate applied to per-node capacities directly.
            total = 0.0;
            for (double r : rates)
                total += r;
            total *= w.truth.scaleOutEfficiency(n);
        }
        if (total >= required)
            break;
    }
    return res;
}

Reservation
userReservation(const Workload &w,
                const std::vector<sim::Platform> &catalog,
                const tracegen::ReservationModel &model, stats::Rng &rng)
{
    // A reservation can only name instance sizes that exist in the
    // fleet: over-estimation is capped at the largest machine.
    int max_cores = 1;
    double max_mem = 1.0;
    for (const sim::Platform &p : catalog) {
        max_cores = std::max(max_cores, p.cores);
        max_mem = std::max(max_mem, p.memory_gb);
    }
    Reservation res = trueNeed(w, catalog);
    double ratio = model.sampleRatio(rng);
    if (workload::isDistributed(w.type)) {
        res.nodes = std::clamp(
            int(std::lround(double(res.nodes) * ratio)), 1, 60);
    } else {
        res.cores_per_node = std::clamp(
            int(std::lround(double(res.cores_per_node) * ratio)), 1,
            max_cores);
        res.memory_per_node_gb = std::clamp(
            res.memory_per_node_gb * ratio, 0.5, max_mem);
    }
    return res;
}

std::vector<ServerId>
placeLeastLoaded(sim::Cluster &cluster, const Workload &w, double t,
                 const Reservation &res, bool best_effort)
{
    std::vector<std::pair<double, ServerId>> order;
    order.reserve(cluster.size());
    for (size_t i = 0; i < cluster.size(); ++i) {
        const sim::Server &srv = cluster.server(ServerId(i));
        if (!srv.available())
            continue; // down machines accept no placements
        order.emplace_back(srv.cpuReservedFraction(), ServerId(i));
    }
    std::sort(order.begin(), order.end());

    std::vector<ServerId> used;
    for (int n = 0; n < res.nodes; ++n) {
        bool placed = false;
        for (const auto &[load, sid] : order) {
            sim::Server &srv = cluster.server(sid);
            if (srv.hosts(w.id))
                continue;
            if (!srv.canFit(res.cores_per_node, res.memory_per_node_gb,
                            w.storage_gb_per_node))
                continue;
            sim::TaskShare share;
            share.workload = w.id;
            share.cores = res.cores_per_node;
            share.memory_gb = res.memory_per_node_gb;
            share.storage_gb = w.storage_gb_per_node;
            share.caused = w.causedPressure(t, res.cores_per_node);
            share.best_effort = best_effort;
            srv.place(share);
            used.push_back(sid);
            placed = true;
            break;
        }
        if (!placed)
            break;
    }
    return used;
}

ReservationLLManager::ReservationLLManager(
    sim::Cluster &cluster, workload::WorkloadRegistry &registry,
    uint64_t seed, tracegen::ReservationModel model)
    : cluster_(cluster), registry_(registry), model_(model), rng_(seed)
{
}

void
ReservationLLManager::onSubmit(WorkloadId id, double t)
{
    const Workload &w = registry_.get(id);
    reservations_[id] =
        userReservation(w, cluster_.catalog(), model_, rng_);
    if (!tryPlace(id, t))
        queue_.push_back(id);
}

bool
ReservationLLManager::tryPlace(WorkloadId id, double t)
{
    Workload &w = registry_.get(id);
    const Reservation &res = reservations_.at(id);
    auto used = placeLeastLoaded(cluster_, w, t, res, w.best_effort);
    if (used.empty())
        return false;
    w.active_knobs = workload::FrameworkKnobs{}; // defaults, untuned
    w.last_progress_update = t;
    return true;
}

void
ReservationLLManager::onTick(double t)
{
    std::vector<WorkloadId> still_waiting;
    for (WorkloadId id : queue_) {
        const Workload &w = registry_.get(id);
        if (w.completed || w.killed)
            continue;
        if (!tryPlace(id, t))
            still_waiting.push_back(id);
    }
    queue_ = std::move(still_waiting);
}

void
ReservationLLManager::onCompletion(WorkloadId, double t)
{
    onTick(t); // retry queued reservations with the freed capacity
}

void
ReservationLLManager::onServerDown(ServerId,
                                   const std::vector<WorkloadId> &displaced,
                                   double t)
{
    // Minimal recovery, matching how reservation systems behave: the
    // user's orchestration relaunches lost instances of the same
    // reservation on whatever is least loaded, or waits in the queue.
    for (WorkloadId id : displaced) {
        Workload &w = registry_.get(id);
        if (w.completed || w.killed)
            continue;
        auto it = reservations_.find(id);
        if (it == reservations_.end())
            continue;
        size_t remaining = cluster_.serversHosting(id).size();
        if (remaining == 0) {
            if (!tryPlace(id, t) &&
                std::find(queue_.begin(), queue_.end(), id) ==
                    queue_.end())
                queue_.push_back(id);
            continue;
        }
        Reservation missing = it->second;
        missing.nodes -= int(remaining);
        if (missing.nodes > 0)
            placeLeastLoaded(cluster_, w, t, missing, w.best_effort);
    }
}

const Reservation *
ReservationLLManager::reservationFor(WorkloadId id) const
{
    auto it = reservations_.find(id);
    return it == reservations_.end() ? nullptr : &it->second;
}

} // namespace quasar::baselines
