/**
 * @file
 * Reservation-based allocation + least-loaded assignment: the
 * conventional cluster manager Quasar is compared against (paper
 * Figs. 1 and 11).
 *
 * Users/frameworks submit resource reservations derived from their own
 * (imperfect) understanding of the workload: a true need estimated
 * from a mid-tier platform, multiplied by the Fig. 1d reservation
 * error distribution. Assignment packs reservations onto the
 * least-loaded servers with no heterogeneity or interference
 * awareness, and never adapts at runtime.
 */

#pragma once

#include <unordered_map>
#include <vector>

#include "driver/cluster_manager.hh"
#include "sim/cluster.hh"
#include "stats/rng.hh"
#include "tracegen/reservation_model.hh"
#include "workload/workload.hh"

namespace quasar::baselines
{

/** A user/framework resource reservation. */
struct Reservation
{
    int nodes = 1;
    int cores_per_node = 1;
    double memory_per_node_gb = 1.0;
};

/**
 * The right-sized allocation a perfectly informed user would request:
 * sized on a mid-tier platform to just meet the target.
 */
Reservation trueNeed(const workload::Workload &w,
                     const std::vector<sim::Platform> &catalog);

/**
 * What the user actually reserves: the true need distorted by the
 * reservation error model (70% over-size up to 10x, 20% under-size).
 */
Reservation userReservation(const workload::Workload &w,
                            const std::vector<sim::Platform> &catalog,
                            const tracegen::ReservationModel &model,
                            stats::Rng &rng);

/**
 * Least-loaded placement: fill `nodes` shares of (cores, memory) on
 * the servers with the lowest allocated-core fraction.
 * @return ids of servers used (possibly fewer than requested).
 */
std::vector<ServerId>
placeLeastLoaded(sim::Cluster &cluster, const workload::Workload &w,
                 double t, const Reservation &res, bool best_effort);

/** Reservation + least-loaded manager. */
class ReservationLLManager : public driver::ClusterManager
{
  public:
    ReservationLLManager(sim::Cluster &cluster,
                         workload::WorkloadRegistry &registry,
                         uint64_t seed = 77,
                         tracegen::ReservationModel model = {});

    void onSubmit(WorkloadId id, double t) override;
    void onTick(double t) override;
    void onCompletion(WorkloadId id, double t) override;
    /** Minimal recovery: top up lost nodes / requeue when unplaced. */
    void onServerDown(ServerId sid,
                      const std::vector<WorkloadId> &displaced,
                      double t) override;
    std::string name() const override { return "reservation+LL"; }

    /** Reservation recorded for a workload (after error model). */
    const Reservation *reservationFor(WorkloadId id) const;

    size_t queuedCount() const { return queue_.size(); }

  private:
    bool tryPlace(WorkloadId id, double t);

    sim::Cluster &cluster_;
    workload::WorkloadRegistry &registry_;
    tracegen::ReservationModel model_;
    stats::Rng rng_;
    std::unordered_map<WorkloadId, Reservation> reservations_;
    std::vector<WorkloadId> queue_;
};

} // namespace quasar::baselines

