/**
 * @file
 * Auto-scaling baseline (paper Figs. 8 and 9): latency-critical
 * services scale between a minimum and maximum number of fixed-size
 * instances, adding a least-loaded server when observed utilization
 * exceeds a threshold (default 70%, as in AWS autoscaling) and
 * removing one when it falls below a low-water mark. The policy is
 * reactive, heterogeneity- and interference-unaware, and only scales
 * out — the weaknesses the paper demonstrates. Non-service workloads
 * are placed with the least-loaded policy.
 */

#pragma once

#include <unordered_map>
#include <vector>

#include "baselines/reservation_ll.hh"
#include "workload/workload.hh"

namespace quasar::baselines
{

/** Auto-scaling policy knobs. */
struct AutoScaleConfig
{
    double scale_out_threshold = 0.70; ///< add instance above this rho.
    double scale_in_threshold = 0.25;  ///< remove instance below.
    int min_instances = 1;
    int max_instances = 8;
    int instance_cores = 8;
    double instance_memory_gb = 16.0;
    /** Consecutive hot ticks required before scaling out. */
    int hot_ticks = 2;
    /** Migration bandwidth for stateful scale-out, GB/s. */
    double migration_gbps = 1.0;
    double migration_factor = 0.85;
};

/** The auto-scaling manager. */
class AutoScaleManager : public driver::ClusterManager
{
  public:
    AutoScaleManager(sim::Cluster &cluster,
                     workload::WorkloadRegistry &registry,
                     AutoScaleConfig cfg = {}, uint64_t seed = 55);

    void onSubmit(WorkloadId id, double t) override;
    void onTick(double t) override;
    void onCompletion(WorkloadId id, double t) override;
    /** Minimal recovery: relaunch instances of fully-lost workloads. */
    void onServerDown(ServerId sid,
                      const std::vector<WorkloadId> &displaced,
                      double t) override;
    std::string name() const override { return "autoscale"; }

    /** Current instance count of a service. */
    int instancesOf(WorkloadId id) const;

  private:
    bool addInstance(workload::Workload &w, double t);
    void removeInstance(workload::Workload &w);
    /** Observed utilization: served load / current capacity. */
    double observedRho(const workload::Workload &w, double t) const;

    sim::Cluster &cluster_;
    workload::WorkloadRegistry &registry_;
    AutoScaleConfig cfg_;
    stats::Rng rng_;
    workload::PerfOracle oracle_;
    std::unordered_map<WorkloadId, int> hot_streak_;
    std::vector<WorkloadId> queue_;
    tracegen::ReservationModel model_;
};

} // namespace quasar::baselines

