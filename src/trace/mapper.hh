/**
 * @file
 * TraceMapper: turns a canonical TraceStream into the replayable
 * instance list — classes from the existing workload-factory
 * catalogs, times rescaled to a target horizon, population rescaled
 * to a target server count.
 *
 * Classification (documented thresholds, all configurable):
 *   - priority >= service_priority_min OR sched_class >=
 *     service_sched_class_min  -> Service (latency-critical): the
 *     Google production band / Azure interactive VMs.
 *   - priority <= best_effort_priority_max -> BestEffort (the free
 *     band: evictable filler).
 *   - cpu demand >= analytics_cpu_min of the source's largest
 *     machine -> Analytics (too big for one node: scale-out
 *     framework job).
 *   - otherwise -> SingleNode batch.
 *
 * Pairing: each Arrival opens an instance; a Departure closes the
 * most recently opened instance with the same id; a Resize marks the
 * open instance as phase-changing (the replay adapter turns that
 * into a mid-life GroundTruth morph). Unmatched departures/resizes
 * are counted, never fatal.
 *
 * Rescaling: source times are shifted to 0 and scaled so the trace
 * span equals target_horizon_s. Population scales by
 * target_servers / source_servers (source_servers inferred from the
 * peak concurrent CPU demand when not given): factors < 1 thin the
 * instance list deterministically by id hash; factors > 1 clone
 * instances with deterministic id-salted arrival offsets. The whole
 * map is a pure function of (stream, config) — no RNG, no global
 * state — which is what keeps replay bit-identical.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "churn/churn.hh"
#include "trace/event.hh"

namespace quasar::trace
{

/** Mapping knobs; defaults suit both bundled fixtures. */
struct TraceMapperConfig
{
    /** Rescale the trace span onto this horizon (seconds). */
    double target_horizon_s = 900.0;
    /** Rescale the population onto this many servers. */
    int target_servers = 1000;
    /**
     * Size of the source cluster in machines; 0 infers it from the
     * peak concurrent normalized CPU demand (machine-equivalents).
     */
    double source_servers = 0.0;
    /** Salt for the deterministic thinning/cloning hash. */
    uint64_t seed = 1;

    /** @name Classification thresholds (see file comment) */
    /// @{
    int service_priority_min = 9;
    int service_sched_class_min = 3;
    int best_effort_priority_max = 1;
    double analytics_cpu_min = 0.35;
    /// @}

    /** Lifetimes shorter than this after rescale are clamped up, so
     *  micro-tasks do not arrive-and-die within one tick. */
    double min_lifetime_s = 1.0;
};

/** One replayable instance of the mapped trace. */
struct MappedItem
{
    uint64_t source_id = 0;
    churn::ChurnClass cls = churn::ChurnClass::SingleNode;
    double arrival_s = 0.0;
    /** Scheduled departure; <= 0 means "runs until completion". */
    double depart_s = 0.0;
    /** Normalized demands carried through from the trace, [0, 1]. */
    double cpu = 0.0;
    double memory = 0.0;
    /** The source resized this instance mid-life (phase change). */
    bool phase_change = false;
};

/** Per-class instance counts. */
struct MappedMix
{
    size_t single_node = 0;
    size_t analytics = 0;
    size_t service = 0;
    size_t best_effort = 0;

    size_t total() const
    {
        return single_node + analytics + service + best_effort;
    }
};

/** The mapped, rescaled, replayable trace. */
struct MappedTrace
{
    /** Instances in arrival order (ties keep source order). */
    std::vector<MappedItem> items;
    MappedMix mix;

    double horizon_s = 0.0;       ///< target horizon applied.
    int target_servers = 0;       ///< target population applied.
    double source_servers = 0.0;  ///< given or inferred source size.
    double time_scale = 1.0;      ///< target seconds per source second.
    double population_scale = 1.0;

    size_t departures_planned = 0;
    size_t phase_changes = 0;
    /** Source anomalies, counted but never fatal. */
    size_t unmatched_departures = 0;
    size_t unmatched_resizes = 0;
    size_t duplicate_arrivals = 0;
};

/** Map a canonical stream; pure function of (stream, cfg). */
MappedTrace mapTrace(const TraceStream &stream,
                     const TraceMapperConfig &cfg = {});

} // namespace quasar::trace
