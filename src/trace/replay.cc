#include "trace/replay.hh"

#include <cassert>

namespace quasar::trace
{

void
TraceReplayer::install(sim::Cluster &cluster,
                       workload::WorkloadRegistry &registry,
                       driver::ScenarioDriver &driver)
{
    assert(plan_.empty() && "install() must be called once");

    // One seeded factory stream, consumed in arrival order: the
    // population is a pure function of (trace, seed), independent of
    // everything downstream.
    stats::Rng master(seed_);
    workload::WorkloadFactory factory{master.fork()};

    plan_.reserve(trace_.items.size());
    size_t idx = 0;
    for (const MappedItem &m : trace_.items) {
        workload::Workload w = churn::makeChurnWorkload(
            m.cls, idx, factory, cluster, "trace-");

        churn::ChurnItem item;
        item.cls = m.cls;
        item.arrival_s = m.arrival_s;
        if (m.depart_s > 0.0) {
            item.depart_s = m.depart_s;
            ++counts_.departures_planned;
        }
        if (m.phase_change) {
            // The source resized this instance mid-life; morph at the
            // midpoint of its (replayed) life, like churn does.
            double end = item.depart_s > 0.0 ? item.depart_s
                                             : trace_.horizon_s;
            factory.addPhaseChange(
                w, m.arrival_s + 0.5 * (end - m.arrival_s));
            item.phase_change = true;
            ++counts_.phase_changes;
        }

        item.id = registry.add(std::move(w));
        driver.addArrival(item.id, m.arrival_s);
        if (item.depart_s > 0.0) {
            WorkloadId id = item.id;
            double at = item.depart_s;
            driver.events().schedule(at, [&driver, id, at]() {
                driver.killWorkload(id, at);
            });
        }

        plan_.push_back(item);
        ++counts_.arrivals;
        ++idx;
    }
}

} // namespace quasar::trace
