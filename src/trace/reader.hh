/**
 * @file
 * Line sources and field splitting for the trace parsers: one
 * allocation-light path from bytes on disk (plain or gzip) or bytes
 * in memory to string_view CSV fields.
 *
 * The parsers pull physical lines through the LineSource interface
 * into one reusable buffer, then split fields in place — no per-row
 * or per-field allocations. Gzip support rides zlib when the build
 * found it (QUASAR_HAVE_ZLIB); without it, opening a .gz path fails
 * with a readable error instead of a crash, so the feature is
 * optional, not assumed.
 */

#pragma once

#include <memory>
#include <string>
#include <string_view>

namespace quasar::trace
{

/** Pulls physical lines one at a time into a caller-owned buffer. */
class LineSource
{
  public:
    virtual ~LineSource() = default;

    /**
     * Read the next line into `line` (newline stripped, CR dropped).
     * @return false at end of input; `line` is unspecified then.
     */
    virtual bool next(std::string &line) = 0;
};

/** Lines from an in-memory buffer (tests, synthetic fixtures). */
class StringLines : public LineSource
{
  public:
    explicit StringLines(std::string text) : text_(std::move(text)) {}
    bool next(std::string &line) override;

  private:
    std::string text_;
    size_t pos_ = 0;
};

/**
 * Open a path as a line source. A ".gz" suffix selects the gzip
 * decoder when built with zlib; otherwise (or when the file cannot
 * be opened) returns null and fills `error`.
 */
std::unique_ptr<LineSource> openLineSource(const std::string &path,
                                           std::string *error);

/**
 * Split `line` on `delim` into at most `max` string_views.
 * @return the true field count, which may exceed `max` (extras are
 *         counted but not stored) — callers reject on mismatch.
 */
size_t splitFields(std::string_view line, char delim,
                   std::string_view *out, size_t max);

/** @name Strict scalar field decoding (no locale, no exceptions)
 * Each returns false on empty input, trailing junk, or out-of-range
 * values — the parsers turn that into a per-line diagnostic. */
/// @{
bool parseU64(std::string_view field, uint64_t &out);
bool parseI64(std::string_view field, int64_t &out);
bool parseF64(std::string_view field, double &out);
/// @}

} // namespace quasar::trace
