/**
 * @file
 * Canonical cluster-trace event model: the format-independent stream
 * every trace parser produces and everything downstream (mapper,
 * replay adapter, synthesizer, benches) consumes.
 *
 * A trace is reduced to three event kinds on normalized resource
 * demands: an instance *arrives* asking for CPU/memory, *departs*
 * when the source cluster retired it, or *resizes* mid-life (a
 * demand update — the trace-world analog of a phase change). Source
 * placement decisions (SCHEDULE rows, machine ids) are deliberately
 * dropped: the whole point of replay is that *our* manager makes the
 * placements.
 *
 * Parsers never abort on malformed input. Every rejected row becomes
 * a RowDiagnostic carrying the 1-based line number and a reason
 * string; accepted rows become events. The counts on TraceStream let
 * callers (and the CI gate) assert exactly how many rows a fixture
 * rejects.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace quasar::trace
{

/** What happened to a traced instance. */
enum class TraceEventKind
{
    Arrival,   ///< instance submitted / VM created.
    Departure, ///< instance finished, killed, or deleted.
    Resize,    ///< demand update mid-life (maps to a phase change).
};

/** One canonical event, time-ordered within a TraceStream. */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::Arrival;
    /** Seconds on the source trace's clock (not yet rescaled). */
    double time_s = 0.0;
    /** Source instance identity (job/task or VM id, possibly hashed). */
    uint64_t instance = 0;
    /** CPU demand normalized to the source's largest machine, [0, 1]. */
    double cpu = 0.0;
    /** Memory demand normalized the same way, [0, 1]. */
    double memory = 0.0;
    /** Source priority band (Google: 0-11; Azure: derived). */
    int priority = 0;
    /** Source scheduling class (Google: 0-3; Azure: from category). */
    int sched_class = 0;
};

/** One rejected row: where and why. */
struct RowDiagnostic
{
    size_t line = 0; ///< 1-based physical line in the source.
    std::string reason;
};

/** Parser output: the canonical stream plus ingest accounting. */
struct TraceStream
{
    /** "google-task-events" or "azure-vm". */
    std::string format;

    /** Events sorted by time_s (stable: ties keep file order). */
    std::vector<TraceEvent> events;

    /** Per-row rejection diagnostics, capped at the parse option's
     *  max_diagnostics; rows_rejected keeps the true total. */
    std::vector<RowDiagnostic> diagnostics;

    size_t rows_total = 0;    ///< physical non-empty lines seen.
    size_t rows_ok = 0;       ///< rows decoded successfully.
    size_t rows_rejected = 0; ///< rows rejected with a diagnostic.
    /** Well-formed rows that legitimately produce no event (e.g.
     *  Google SCHEDULE/EVICT/FAIL rows: source-cluster internals). */
    size_t rows_ignored = 0;

    /** Earliest / latest event time on the source clock, seconds. */
    double start_s = 0.0;
    double end_s = 0.0;

    /** Source span in seconds (0 when fewer than two events). */
    double spanSeconds() const
    {
        return end_s > start_s ? end_s - start_s : 0.0;
    }
};

/** Knobs shared by both parsers. */
struct ParseOptions
{
    /** Stop *storing* diagnostics past this many (counting always
     *  continues — rejection never turns into an abort). */
    size_t max_diagnostics = 256;
    /** Reject rows whose normalized CPU/memory request exceeds this
     *  (overflow-sized demands; Google requests are <= 1 by format). */
    double demand_cap = 1.5;
};

/** FNV-1a of a byte string, for hashing non-numeric instance ids. */
inline uint64_t
fnv1a(const char *data, size_t n, uint64_t h = 0xCBF29CE484222325ULL)
{
    for (size_t i = 0; i < n; ++i) {
        h ^= uint64_t(static_cast<unsigned char>(data[i]));
        h *= 0x100000001B3ULL;
    }
    return h;
}

} // namespace quasar::trace
