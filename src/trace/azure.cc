#include "trace/azure.hh"

#include <algorithm>

namespace quasar::trace
{

namespace
{

constexpr size_t kFields = 6;
constexpr double kMaxCores = 1024.0;
constexpr double kMaxMemoryGb = 16384.0;

void
reject(TraceStream &out, const ParseOptions &opt, size_t line,
       std::string reason)
{
    ++out.rows_rejected;
    if (out.diagnostics.size() < opt.max_diagnostics)
        out.diagnostics.push_back({line, std::move(reason)});
}

/** Case-insensitive ASCII compare against a lowercase literal. */
bool
equalsLower(std::string_view field, std::string_view lower)
{
    if (field.size() != lower.size())
        return false;
    for (size_t i = 0; i < field.size(); ++i) {
        char c = field[i];
        if (c >= 'A' && c <= 'Z')
            c = char(c - 'A' + 'a');
        if (c != lower[i])
            return false;
    }
    return true;
}

} // namespace

TraceStream
parseAzureVm(LineSource &lines, const ParseOptions &opt)
{
    TraceStream out;
    out.format = "azure-vm";

    std::string line;
    std::string_view f[kFields];
    size_t lineno = 0;
    double max_cores = 0.0, max_mem = 0.0;
    while (lines.next(line)) {
        ++lineno;
        if (line.empty())
            continue;
        // Optional header row.
        if (lineno == 1 && line.rfind("vmid", 0) == 0)
            continue;
        ++out.rows_total;

        size_t n = splitFields(line, ',', f, kFields);
        if (n != kFields) {
            reject(out, opt, lineno,
                   "expected 6 fields, got " + std::to_string(n));
            continue;
        }

        if (f[0].empty()) {
            reject(out, opt, lineno, "empty vm id");
            continue;
        }
        uint64_t vm = 0;
        if (!parseU64(f[0], vm))
            vm = fnv1a(f[0].data(), f[0].size());

        double created = 0.0;
        if (!parseF64(f[1], created)) {
            reject(out, opt, lineno, "create time not a number");
            continue;
        }
        if (created < 0.0) {
            reject(out, opt, lineno, "negative create time");
            continue;
        }

        bool has_delete = false;
        double deleted = -1.0;
        if (!f[2].empty()) {
            if (!parseF64(f[2], deleted)) {
                reject(out, opt, lineno, "delete time not a number");
                continue;
            }
            if (deleted >= 0.0) {
                if (deleted < created) {
                    reject(out, opt, lineno,
                           "delete time precedes create time");
                    continue;
                }
                has_delete = true;
            }
        }

        double cores = 0.0, mem = 0.0;
        if (!parseF64(f[4], cores)) {
            reject(out, opt, lineno, "core bucket not a number");
            continue;
        }
        if (cores <= 0.0 || cores > kMaxCores) {
            reject(out, opt, lineno, "core bucket out of range (0, 1024]");
            continue;
        }
        if (!parseF64(f[5], mem)) {
            reject(out, opt, lineno, "memory bucket not a number");
            continue;
        }
        if (mem < 0.0 || mem > kMaxMemoryGb) {
            reject(out, opt, lineno,
                   "memory bucket out of range [0, 16384]");
            continue;
        }

        // Category -> the canonical (priority, sched_class) hint.
        int priority = 0, sched_class = 0;
        if (equalsLower(f[3], "interactive")) {
            priority = 9;
            sched_class = 3;
        } else if (equalsLower(f[3], "delay-insensitive")) {
            priority = 5;
            sched_class = 1;
        } else if (f[3].empty() || equalsLower(f[3], "unknown")) {
            priority = 0;
            sched_class = 0;
        } else {
            reject(out, opt, lineno,
                   "unknown vm category '" + std::string(f[3]) + "'");
            continue;
        }

        TraceEvent arrive;
        arrive.kind = TraceEventKind::Arrival;
        arrive.time_s = created;
        arrive.instance = vm;
        arrive.cpu = cores; // normalized after the scan below.
        arrive.memory = mem;
        arrive.priority = priority;
        arrive.sched_class = sched_class;
        out.events.push_back(arrive);
        if (has_delete) {
            TraceEvent depart = arrive;
            depart.kind = TraceEventKind::Departure;
            depart.time_s = deleted;
            out.events.push_back(depart);
        }
        max_cores = std::max(max_cores, cores);
        max_mem = std::max(max_mem, mem);
        ++out.rows_ok;
    }

    // Azure buckets are absolute; the canonical model wants demands
    // normalized to the biggest machine of the source, like Google's.
    for (TraceEvent &ev : out.events) {
        if (max_cores > 0.0)
            ev.cpu /= max_cores;
        if (max_mem > 0.0)
            ev.memory /= max_mem;
    }

    std::stable_sort(out.events.begin(), out.events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.time_s < b.time_s;
                     });
    if (!out.events.empty()) {
        out.start_s = out.events.front().time_s;
        out.end_s = out.events.back().time_s;
    }
    return out;
}

TraceStream
parseAzureVmFile(const std::string &path, const ParseOptions &opt)
{
    std::string error;
    std::unique_ptr<LineSource> src = openLineSource(path, &error);
    if (!src) {
        TraceStream out;
        out.format = "azure-vm";
        out.diagnostics.push_back({0, error});
        ++out.rows_rejected;
        return out;
    }
    return parseAzureVm(*src, opt);
}

} // namespace quasar::trace
