#include "trace/synth.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace quasar::trace
{

namespace
{

/** Minimum closed lifetimes before we trust a per-class fit. */
constexpr size_t kMinSamples = 8;
/** Gap dispersion above which arrivals stop looking memoryless. */
constexpr double kPoissonCvMax = 1.2;
/** Lifetime-CV bands (see header). */
constexpr double kFixedCvMax = 0.35;
constexpr double kExponentialCvMax = 1.25;

struct Moments
{
    size_t n = 0;
    double mean = 0.0;
    double cv = 0.0;
};

Moments
moments(const std::vector<double> &xs)
{
    Moments m;
    m.n = xs.size();
    if (m.n == 0)
        return m;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    m.mean = sum / double(m.n);
    if (m.n < 2 || m.mean <= 0.0)
        return m;
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m.mean) * (x - m.mean);
    m.cv = std::sqrt(ss / double(m.n - 1)) / m.mean;
    return m;
}

/** Skewness of ln(x) over positive samples (0 when undefined). */
double
logSkew(const std::vector<double> &xs)
{
    std::vector<double> logs;
    logs.reserve(xs.size());
    for (double x : xs)
        if (x > 0.0)
            logs.push_back(std::log(x));
    if (logs.size() < 3)
        return 0.0;
    double n = double(logs.size());
    double mean = 0.0;
    for (double l : logs)
        mean += l;
    mean /= n;
    double m2 = 0.0, m3 = 0.0;
    for (double l : logs) {
        double d = l - mean;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= n;
    m3 /= n;
    if (m2 <= 0.0)
        return 0.0;
    return m3 / std::pow(m2, 1.5);
}

/** Stddev of ln(x) over positive samples. */
double
logSigma(const std::vector<double> &xs)
{
    std::vector<double> logs;
    logs.reserve(xs.size());
    for (double x : xs)
        if (x > 0.0)
            logs.push_back(std::log(x));
    if (logs.size() < 2)
        return 0.0;
    double mean = 0.0;
    for (double l : logs)
        mean += l;
    mean /= double(logs.size());
    double ss = 0.0;
    for (double l : logs)
        ss += (l - mean) * (l - mean);
    return std::sqrt(ss / double(logs.size() - 1));
}

/**
 * Hill-style tail estimate over positive samples: alpha = n / sum
 * ln(x / x_min), clamped into (1, 3] so the fitted mean exists and
 * the tail stays plausible for cluster data.
 */
double
hillAlpha(const std::vector<double> &xs)
{
    double x_min = 0.0;
    for (double x : xs)
        // Sentinel compare: x_min is assigned exactly 0.0 above and
        // only ever replaced by a sample, never computed.
        if (x > 0.0 && (x_min == 0.0 || x < x_min)) // quasar-lint: allow(float-eq)
            x_min = x;
    if (x_min <= 0.0)
        return 1.5;
    double sum = 0.0;
    size_t n = 0;
    for (double x : xs) {
        if (x <= 0.0)
            continue;
        sum += std::log(x / x_min);
        ++n;
    }
    if (n == 0 || sum <= 0.0)
        return 1.5;
    return std::clamp(double(n) / sum, 1.05, 3.0);
}

LifetimeFitStats
fitLifetimes(const std::vector<double> &xs,
             tracegen::DurationSpec &spec)
{
    LifetimeFitStats stats;
    Moments m = moments(xs);
    stats.samples = m.n;
    stats.mean_s = m.mean;
    stats.cv = m.cv;
    stats.log_skew = logSkew(xs);
    if (m.n < kMinSamples || m.mean <= 0.0)
        return stats; // keep the caller's default spec.

    if (m.cv < kFixedCvMax)
        spec = tracegen::DurationSpec::fixed(m.mean);
    else if (m.cv < kExponentialCvMax)
        spec = tracegen::DurationSpec::exponential(m.mean);
    else if (stats.log_skew > 1.0)
        spec = tracegen::DurationSpec::pareto(m.mean, hillAlpha(xs));
    else
        spec = tracegen::DurationSpec::lognormal(
            m.mean, std::max(logSigma(xs), 0.1));
    stats.fitted = true;
    return stats;
}

} // namespace

SynthFit
fitChurnConfig(const MappedTrace &trace, uint64_t seed,
               double horizon_s)
{
    SynthFit fit;
    fit.config.seed = seed;
    fit.config.horizon_s =
        horizon_s > 0.0 ? horizon_s : trace.horizon_s;
    if (trace.items.empty())
        return fit;

    // ---- Arrival pacing. -------------------------------------------
    fit.arrivals = trace.items.size();
    fit.config.start_s = std::max(trace.items.front().arrival_s, 0.0);
    std::vector<double> gaps;
    gaps.reserve(trace.items.size());
    for (size_t i = 1; i < trace.items.size(); ++i)
        gaps.push_back(trace.items[i].arrival_s -
                       trace.items[i - 1].arrival_s);
    Moments gm = moments(gaps);
    fit.arrival_gap_mean_s = gm.mean;
    fit.arrival_gap_cv = gm.cv;
    double span = trace.items.back().arrival_s -
                  trace.items.front().arrival_s;
    fit.config.arrival_rate_per_s =
        span > 0.0 ? double(trace.items.size() - 1) / span
                   : double(trace.items.size());
    if (gm.n >= kMinSamples && gm.cv > kPoissonCvMax) {
        fit.config.arrivals = churn::ArrivalKind::Pareto;
        fit.config.pareto_alpha = hillAlpha(gaps);
    } else {
        fit.config.arrivals = churn::ArrivalKind::Poisson;
    }

    // ---- Mix. ------------------------------------------------------
    double total = double(trace.mix.total());
    if (total > 0.0) {
        fit.config.mix.single_node =
            double(trace.mix.single_node) / total;
        fit.config.mix.analytics = double(trace.mix.analytics) / total;
        fit.config.mix.service = double(trace.mix.service) / total;
        fit.config.mix.best_effort =
            double(trace.mix.best_effort) / total;
    }

    // ---- Per-class lifetimes (closed instances only). --------------
    std::vector<double> lives[4];
    for (const MappedItem &item : trace.items) {
        if (item.depart_s <= 0.0)
            continue;
        lives[size_t(item.cls)].push_back(item.depart_s -
                                          item.arrival_s);
    }
    fit.single_node =
        fitLifetimes(lives[size_t(churn::ChurnClass::SingleNode)],
                     fit.config.batch_lifetime);
    fit.analytics =
        fitLifetimes(lives[size_t(churn::ChurnClass::Analytics)],
                     fit.config.analytics_lifetime);
    fit.service =
        fitLifetimes(lives[size_t(churn::ChurnClass::Service)],
                     fit.config.service_lifetime);
    fit.best_effort =
        fitLifetimes(lives[size_t(churn::ChurnClass::BestEffort)],
                     fit.config.best_effort_lifetime);

    // ---- Phase changes. --------------------------------------------
    fit.config.phase_change_fraction =
        total > 0.0 ? double(trace.phase_changes) / total : 0.0;
    return fit;
}

} // namespace quasar::trace
