/**
 * @file
 * Parser for Google cluster-trace-style task-events CSV.
 *
 * Expected row shape (the 2011 clusterdata task_events table, 13
 * comma-separated columns, no header):
 *
 *   0 timestamp      microseconds, int64 >= 0
 *   1 missing-info   optional int (ignored)
 *   2 job id         uint64
 *   3 task index     uint64
 *   4 machine id     optional (ignored: we re-place everything)
 *   5 event type     0 SUBMIT, 1 SCHEDULE, 2 EVICT, 3 FAIL,
 *                    4 FINISH, 5 KILL, 6 LOST, 7 UPDATE_PENDING,
 *                    8 UPDATE_RUNNING
 *   6 user           optional string (ignored)
 *   7 sched class    optional int 0-3 (empty -> 0)
 *   8 priority       optional int 0-11 (empty -> 0)
 *   9 CPU request    optional float, normalized to the largest
 *                    machine (empty -> 0)
 *  10 memory request optional float, normalized (empty -> 0)
 *  11 disk request   optional float (ignored)
 *  12 different-machine constraint (ignored)
 *
 * Canonical mapping: SUBMIT -> Arrival; FINISH/KILL/LOST ->
 * Departure; UPDATE_* -> Resize. SCHEDULE/EVICT/FAIL are internal to
 * the source cluster and are counted as ignored rows. The instance
 * id folds job id and task index into one uint64.
 *
 * Strictness: wrong field counts, non-numeric or negative
 * timestamps, unknown event types, non-numeric priorities/classes,
 * and demands outside [0, demand_cap] are rejected with a per-line
 * diagnostic; the special "outside the trace window" timestamps (0
 * handled as trace start, 2^63-1 rejected) follow the format notes.
 * The parser itself never throws and never aborts.
 */

#pragma once

#include <string>

#include "trace/event.hh"
#include "trace/reader.hh"

namespace quasar::trace
{

/** Parse task-events rows from any line source. */
TraceStream parseGoogleTaskEvents(LineSource &lines,
                                  const ParseOptions &opt = {});

/**
 * Parse a task-events file (".gz" handled when built with zlib). An
 * unopenable path yields an empty stream whose single diagnostic at
 * line 0 carries the open error.
 */
TraceStream parseGoogleTaskEventsFile(const std::string &path,
                                      const ParseOptions &opt = {});

} // namespace quasar::trace
