#include "trace/reader.hh"

#include <charconv>
#include <cstdio>
#include <fstream>

#if defined(QUASAR_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace quasar::trace
{

namespace
{

/** Plain file, read through one reusable getline buffer. */
class FileLines : public LineSource
{
  public:
    explicit FileLines(const std::string &path) : in_(path) {}
    bool ok() const { return in_.good(); }

    bool next(std::string &line) override
    {
        if (!std::getline(in_, line))
            return false;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        return true;
    }

  private:
    std::ifstream in_;
};

#if defined(QUASAR_HAVE_ZLIB)
/** Gzip-compressed file via zlib's gzFile, chunked into lines. */
class GzLines : public LineSource
{
  public:
    explicit GzLines(const std::string &path)
        : gz_(gzopen(path.c_str(), "rb"))
    {
    }
    ~GzLines() override
    {
        if (gz_)
            gzclose(gz_);
    }
    GzLines(const GzLines &) = delete;
    GzLines &operator=(const GzLines &) = delete;

    bool ok() const { return gz_ != nullptr; }

    bool next(std::string &line) override
    {
        line.clear();
        char chunk[4096];
        bool got = false;
        // gzgets stops at a newline or a full chunk; loop until the
        // newline lands so arbitrarily long lines stay correct.
        while (gzgets(gz_, chunk, sizeof(chunk)) != nullptr) {
            got = true;
            line += chunk;
            if (!line.empty() && line.back() == '\n') {
                line.pop_back();
                break;
            }
        }
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        return got;
    }

  private:
    gzFile gz_;
};
#endif

bool
endsWithGz(const std::string &path)
{
    return path.size() >= 3 &&
           path.compare(path.size() - 3, 3, ".gz") == 0;
}

} // namespace

bool
StringLines::next(std::string &line)
{
    if (pos_ >= text_.size())
        return false;
    size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos)
        nl = text_.size();
    line.assign(text_, pos_, nl - pos_);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    pos_ = nl + 1;
    return true;
}

std::unique_ptr<LineSource>
openLineSource(const std::string &path, std::string *error)
{
    if (endsWithGz(path)) {
#if defined(QUASAR_HAVE_ZLIB)
        auto gz = std::make_unique<GzLines>(path);
        if (!gz->ok()) {
            if (error)
                *error = "cannot open gzip file: " + path;
            return nullptr;
        }
        return gz;
#else
        if (error)
            *error = "gzip trace '" + path +
                     "' but this build has no zlib; gunzip the file "
                     "or rebuild with zlib available";
        return nullptr;
#endif
    }
    auto f = std::make_unique<FileLines>(path);
    if (!f->ok()) {
        if (error)
            *error = "cannot open file: " + path;
        return nullptr;
    }
    return f;
}

size_t
splitFields(std::string_view line, char delim, std::string_view *out,
            size_t max)
{
    size_t count = 0;
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
        if (i == line.size() || line[i] == delim) {
            if (count < max)
                out[count] = line.substr(start, i - start);
            ++count;
            start = i + 1;
        }
    }
    return count;
}

namespace
{

std::string_view
trimmed(std::string_view f)
{
    while (!f.empty() && (f.front() == ' ' || f.front() == '\t'))
        f.remove_prefix(1);
    while (!f.empty() && (f.back() == ' ' || f.back() == '\t'))
        f.remove_suffix(1);
    return f;
}

} // namespace

bool
parseU64(std::string_view field, uint64_t &out)
{
    field = trimmed(field);
    if (field.empty())
        return false;
    auto [p, ec] = std::from_chars(field.data(),
                                   field.data() + field.size(), out);
    return ec == std::errc() && p == field.data() + field.size();
}

bool
parseI64(std::string_view field, int64_t &out)
{
    field = trimmed(field);
    if (field.empty())
        return false;
    auto [p, ec] = std::from_chars(field.data(),
                                   field.data() + field.size(), out);
    return ec == std::errc() && p == field.data() + field.size();
}

bool
parseF64(std::string_view field, double &out)
{
    field = trimmed(field);
    if (field.empty())
        return false;
    auto [p, ec] = std::from_chars(field.data(),
                                   field.data() + field.size(), out);
    return ec == std::errc() && p == field.data() + field.size();
}

} // namespace quasar::trace
