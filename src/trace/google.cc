#include "trace/google.hh"

#include <algorithm>
#include <cstdint>

namespace quasar::trace
{

namespace
{

constexpr size_t kFields = 13;
constexpr int64_t kOutsideWindow = INT64_MAX;

void
reject(TraceStream &out, const ParseOptions &opt, size_t line,
       std::string reason)
{
    ++out.rows_rejected;
    if (out.diagnostics.size() < opt.max_diagnostics)
        out.diagnostics.push_back({line, std::move(reason)});
}

void
finalize(TraceStream &out)
{
    std::stable_sort(out.events.begin(), out.events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.time_s < b.time_s;
                     });
    if (!out.events.empty()) {
        out.start_s = out.events.front().time_s;
        out.end_s = out.events.back().time_s;
    }
}

} // namespace

TraceStream
parseGoogleTaskEvents(LineSource &lines, const ParseOptions &opt)
{
    TraceStream out;
    out.format = "google-task-events";

    std::string line;
    std::string_view f[kFields];
    size_t lineno = 0;
    while (lines.next(line)) {
        ++lineno;
        if (line.empty())
            continue;
        ++out.rows_total;

        size_t n = splitFields(line, ',', f, kFields);
        if (n != kFields) {
            reject(out, opt, lineno,
                   "expected 13 fields, got " + std::to_string(n));
            continue;
        }

        int64_t ts_us = 0;
        if (!parseI64(f[0], ts_us)) {
            reject(out, opt, lineno, "timestamp not an integer");
            continue;
        }
        if (ts_us < 0) {
            reject(out, opt, lineno, "negative timestamp");
            continue;
        }
        if (ts_us == kOutsideWindow) {
            reject(out, opt, lineno,
                   "timestamp outside the trace window (2^63-1)");
            continue;
        }

        uint64_t job = 0, task = 0;
        if (!parseU64(f[2], job)) {
            reject(out, opt, lineno, "job id not an integer");
            continue;
        }
        if (!parseU64(f[3], task)) {
            reject(out, opt, lineno, "task index not an integer");
            continue;
        }

        int64_t type = 0;
        if (!parseI64(f[5], type)) {
            reject(out, opt, lineno, "event type not an integer");
            continue;
        }
        if (type < 0 || type > 8) {
            reject(out, opt, lineno,
                   "unknown event type " + std::to_string(type));
            continue;
        }

        int64_t sched_class = 0;
        if (!f[7].empty() && !parseI64(f[7], sched_class)) {
            reject(out, opt, lineno,
                   "scheduling class not an integer");
            continue;
        }
        int64_t priority = 0;
        if (!f[8].empty() && !parseI64(f[8], priority)) {
            reject(out, opt, lineno, "priority not an integer");
            continue;
        }

        double cpu = 0.0, mem = 0.0;
        if (!f[9].empty() && !parseF64(f[9], cpu)) {
            reject(out, opt, lineno, "CPU request not a number");
            continue;
        }
        if (!f[10].empty() && !parseF64(f[10], mem)) {
            reject(out, opt, lineno, "memory request not a number");
            continue;
        }
        if (cpu < 0.0 || cpu > opt.demand_cap) {
            reject(out, opt, lineno,
                   "CPU request out of range [0, " +
                       std::to_string(opt.demand_cap) + "]");
            continue;
        }
        if (mem < 0.0 || mem > opt.demand_cap) {
            reject(out, opt, lineno,
                   "memory request out of range [0, " +
                       std::to_string(opt.demand_cap) + "]");
            continue;
        }

        // SCHEDULE/EVICT/FAIL are the source scheduler's own moves;
        // replay makes its own, so they carry no canonical event.
        if (type == 1 || type == 2 || type == 3) {
            ++out.rows_ok;
            ++out.rows_ignored;
            continue;
        }

        TraceEvent ev;
        ev.time_s = double(ts_us) * 1e-6;
        // Fold (job, task) into one instance id; the multiplier is a
        // large odd constant so distinct pairs rarely collide and the
        // fold stays deterministic.
        ev.instance = job * 0x9E3779B97F4A7C15ULL + task;
        ev.priority = int(priority);
        ev.sched_class = int(sched_class);
        ev.cpu = cpu;
        ev.memory = mem;
        if (type == 0)
            ev.kind = TraceEventKind::Arrival;
        else if (type == 7 || type == 8)
            ev.kind = TraceEventKind::Resize;
        else // 4 FINISH / 5 KILL / 6 LOST
            ev.kind = TraceEventKind::Departure;
        out.events.push_back(ev);
        ++out.rows_ok;
    }

    finalize(out);
    return out;
}

TraceStream
parseGoogleTaskEventsFile(const std::string &path,
                          const ParseOptions &opt)
{
    std::string error;
    std::unique_ptr<LineSource> src = openLineSource(path, &error);
    if (!src) {
        TraceStream out;
        out.format = "google-task-events";
        out.diagnostics.push_back({0, error});
        ++out.rows_rejected;
        return out;
    }
    return parseGoogleTaskEvents(*src, opt);
}

} // namespace quasar::trace
