/**
 * @file
 * Trace synthesizer: fits the churn engine's generative knobs to an
 * ingested trace, so a small checked-in fixture (1-2k rows) can
 * drive 1k-10k-server runs with the trace's statistical character —
 * the open-loop generator then extrapolates the population instead
 * of looping the fixture.
 *
 * Fitting is moment-matching, pure arithmetic, no RNG:
 *   - Arrival pacing: rate = arrivals per second of the mapped
 *     horizon; gap CV <= ~1.2 keeps Poisson, heavier dispersion
 *     switches to Pareto with a Hill-style tail estimate.
 *   - Mix: per-class instance shares of the mapped population.
 *   - Lifetimes per class: CV < 0.35 -> fixed; CV < 1.25 ->
 *     exponential; heavier tails pick Pareto when the log-lifetimes
 *     skew right, lognormal otherwise (sigma = stddev of ln x).
 *   - Phase changes: the mapped phase-change fraction.
 * Classes with too few closed lifetimes keep the engine defaults —
 * a 2k-row fixture cannot pin four lifetime distributions at once,
 * and a silent garbage fit would be worse than a documented default.
 */

#pragma once

#include "churn/churn.hh"
#include "trace/mapper.hh"

namespace quasar::trace
{

/** Per-class fitting evidence (reported, also used for the fit). */
struct LifetimeFitStats
{
    size_t samples = 0; ///< closed lifetimes observed.
    double mean_s = 0.0;
    double cv = 0.0;        ///< stddev / mean.
    double log_skew = 0.0;  ///< skewness of ln(lifetime).
    bool fitted = false;    ///< false: kept the engine default.
};

/** The fitted generator plus the evidence behind it. */
struct SynthFit
{
    churn::ChurnConfig config;

    size_t arrivals = 0;
    double arrival_gap_mean_s = 0.0;
    double arrival_gap_cv = 0.0;

    LifetimeFitStats single_node;
    LifetimeFitStats analytics;
    LifetimeFitStats service;
    LifetimeFitStats best_effort;
};

/**
 * Fit a ChurnConfig to a mapped trace. Pure function of (trace,
 * seed); the seed is stamped into the returned config so the
 * synthetic stream replays deterministically. `horizon_s` scales the
 * generated stream (default 0 keeps the trace's mapped horizon).
 */
SynthFit fitChurnConfig(const MappedTrace &trace, uint64_t seed,
                        double horizon_s = 0.0);

} // namespace quasar::trace
