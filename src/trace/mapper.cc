#include "trace/mapper.hh"

#include <algorithm>
#include <cmath>
#include <map>

namespace quasar::trace
{

using churn::ChurnClass;

namespace
{

/** An instance reconstructed from arrival/departure pairing, still
 *  on the source clock. */
struct RawInstance
{
    uint64_t id = 0;
    double arrival = 0.0;
    double depart = -1.0; ///< < 0: never closed in the trace.
    double cpu = 0.0;
    double memory = 0.0;
    int priority = 0;
    int sched_class = 0;
    bool phase_change = false;
};

/** Deterministic uniform in [0, 1) from (id, clone, salt). */
double
hash01(uint64_t id, uint64_t clone, uint64_t salt)
{
    uint64_t x = id;
    x ^= clone * 0x9E3779B97F4A7C15ULL;
    x ^= salt * 0xBF58476D1CE4E5B9ULL;
    // splitmix64 finalizer: full avalanche so nearby ids decorrelate.
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return double(x >> 11) * 0x1.0p-53;
}

ChurnClass
classify(const RawInstance &r, const TraceMapperConfig &cfg)
{
    if (r.priority >= cfg.service_priority_min ||
        r.sched_class >= cfg.service_sched_class_min)
        return ChurnClass::Service;
    if (r.priority <= cfg.best_effort_priority_max)
        return ChurnClass::BestEffort;
    if (r.cpu >= cfg.analytics_cpu_min)
        return ChurnClass::Analytics;
    return ChurnClass::SingleNode;
}

/** Peak concurrent normalized CPU demand (machine-equivalents). */
double
peakConcurrentCpu(const std::vector<RawInstance> &raw, double end_s)
{
    // +cpu at arrival, -cpu at close (or trace end when open-ended),
    // swept in time order with departures applied before arrivals at
    // the same instant (a closed instance has freed its machine).
    std::vector<std::pair<double, double>> deltas;
    deltas.reserve(raw.size() * 2);
    for (const RawInstance &r : raw) {
        deltas.emplace_back(r.arrival, r.cpu);
        double close = r.depart >= 0.0 ? r.depart : end_s;
        deltas.emplace_back(close, -r.cpu);
    }
    std::stable_sort(deltas.begin(), deltas.end(),
                     [](const auto &a, const auto &b) {
                         if (a.first != b.first)
                             return a.first < b.first;
                         return a.second < b.second;
                     });
    double level = 0.0, peak = 0.0;
    for (const auto &[t, d] : deltas) {
        (void)t;
        level += d;
        peak = std::max(peak, level);
    }
    return peak;
}

} // namespace

MappedTrace
mapTrace(const TraceStream &stream, const TraceMapperConfig &cfg)
{
    MappedTrace out;
    out.horizon_s = cfg.target_horizon_s;
    out.target_servers = cfg.target_servers;

    // ---- 1. Pair arrivals with departures/resizes. -----------------
    std::vector<RawInstance> raw;
    raw.reserve(stream.events.size());
    // Open instances per id: indices into raw, innermost last.
    std::map<uint64_t, std::vector<size_t>> open;
    for (const TraceEvent &ev : stream.events) {
        switch (ev.kind) {
        case TraceEventKind::Arrival: {
            std::vector<size_t> &stack = open[ev.instance];
            if (!stack.empty())
                ++out.duplicate_arrivals;
            RawInstance r;
            r.id = ev.instance;
            r.arrival = ev.time_s;
            r.cpu = ev.cpu;
            r.memory = ev.memory;
            r.priority = ev.priority;
            r.sched_class = ev.sched_class;
            stack.push_back(raw.size());
            raw.push_back(r);
            break;
        }
        case TraceEventKind::Departure: {
            auto it = open.find(ev.instance);
            if (it == open.end() || it->second.empty()) {
                ++out.unmatched_departures;
                break;
            }
            raw[it->second.back()].depart = ev.time_s;
            it->second.pop_back();
            break;
        }
        case TraceEventKind::Resize: {
            auto it = open.find(ev.instance);
            if (it == open.end() || it->second.empty()) {
                ++out.unmatched_resizes;
                break;
            }
            raw[it->second.back()].phase_change = true;
            break;
        }
        }
    }
    if (raw.empty())
        return out;

    // ---- 2. Source size and scale factors. -------------------------
    double span = stream.spanSeconds();
    out.time_scale =
        span > 0.0 ? cfg.target_horizon_s / span : 1.0;
    out.source_servers =
        cfg.source_servers > 0.0
            ? cfg.source_servers
            : std::max(1.0, peakConcurrentCpu(raw, stream.end_s));
    out.population_scale =
        double(cfg.target_servers) / out.source_servers;

    // ---- 3. Rescale + thin/clone into the replayable list. ---------
    size_t whole = size_t(out.population_scale);
    double frac = out.population_scale - double(whole);
    // Clone jitter window: clones of one source instance spread over
    // a small slice of the horizon so replicated arrivals do not land
    // as a synchronized thundering herd.
    double jitter_s = 0.02 * cfg.target_horizon_s;
    for (const RawInstance &r : raw) {
        size_t copies =
            whole + (hash01(r.id, whole, cfg.seed) < frac ? 1 : 0);
        for (size_t c = 0; c < copies; ++c) {
            MappedItem item;
            item.source_id =
                c == 0 ? r.id
                       : r.id ^ (0xA24BAED4963EE407ULL * (c + 1));
            item.cls = classify(r, cfg);
            item.cpu = r.cpu;
            item.memory = r.memory;
            item.phase_change = r.phase_change;

            double shift =
                c == 0 ? 0.0
                       : hash01(item.source_id, c, cfg.seed) * jitter_s;
            double arrive =
                (r.arrival - stream.start_s) * out.time_scale + shift;
            arrive = std::min(arrive, cfg.target_horizon_s);
            item.arrival_s = arrive;
            if (r.depart >= 0.0) {
                double life =
                    (r.depart - r.arrival) * out.time_scale;
                life = std::max(life, cfg.min_lifetime_s);
                double depart = arrive + life;
                // Departures past the horizon degrade to "runs until
                // completion", matching the churn engine's contract.
                item.depart_s =
                    depart < cfg.target_horizon_s ? depart : 0.0;
            }
            out.items.push_back(item);
        }
    }

    std::stable_sort(out.items.begin(), out.items.end(),
                     [](const MappedItem &a, const MappedItem &b) {
                         return a.arrival_s < b.arrival_s;
                     });

    for (const MappedItem &item : out.items) {
        switch (item.cls) {
        case ChurnClass::SingleNode:
            ++out.mix.single_node;
            break;
        case ChurnClass::Analytics:
            ++out.mix.analytics;
            break;
        case ChurnClass::Service:
            ++out.mix.service;
            break;
        case ChurnClass::BestEffort:
            ++out.mix.best_effort;
            break;
        }
        if (item.depart_s > 0.0)
            ++out.departures_planned;
        if (item.phase_change)
            ++out.phase_changes;
    }
    return out;
}

} // namespace quasar::trace
