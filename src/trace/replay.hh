/**
 * @file
 * Trace replay adapter: feeds a mapped trace into the scenario
 * driver through the same event-queue contract the churn engine
 * uses, so ingested cluster traces drive experiments exactly like
 * synthetic churn streams.
 *
 * Replay contract: the installed plan is a pure function of
 * (MappedTrace, seed) — arrivals, departures, phase changes, and the
 * drawn workload population never consult cluster, scheduler, or
 * manager state. Identical inputs therefore produce bit-identical
 * placements across scheduler modes (dirty_set / cached /
 * full_rescan) and across repeated replays, which is what
 * bench/trace_replay gates on.
 *
 * The canonical per-row demands steer the map (classification,
 * population rescale); within-class workload parameters (family,
 * dataset size, QPS) are drawn from the replayer's seeded factory
 * stream via churn::makeChurnWorkload, keeping trace populations on
 * the same catalogs as every other experiment.
 */

#pragma once

#include <vector>

#include "churn/churn.hh"
#include "trace/mapper.hh"

namespace quasar::trace
{

/**
 * Schedules one mapped trace onto a scenario driver. Build, call
 * install() once, then run the driver; the replayer must outlive the
 * run (the driver's queue holds no back-references, but the plan is
 * the run's provenance record).
 */
class TraceReplayer
{
  public:
    explicit TraceReplayer(MappedTrace trace, uint64_t seed = 1)
        : trace_(std::move(trace)), seed_(seed)
    {
    }

    /**
     * Register every mapped instance as a workload and schedule all
     * arrivals, departures, and phase changes onto the driver's
     * event queue. Call once per replayer.
     */
    void install(sim::Cluster &cluster,
                 workload::WorkloadRegistry &registry,
                 driver::ScenarioDriver &driver);

    /** The installed plan, in arrival order. */
    const std::vector<churn::ChurnItem> &plan() const { return plan_; }

    const churn::ChurnCounts &counts() const { return counts_; }

    /** The mapped trace this replayer was built from. */
    const MappedTrace &trace() const { return trace_; }

  private:
    MappedTrace trace_;
    uint64_t seed_ = 1;
    std::vector<churn::ChurnItem> plan_;
    churn::ChurnCounts counts_;
};

} // namespace quasar::trace
