/**
 * @file
 * Parser for Azure-VM-style trace rows.
 *
 * Expected row shape (modeled on the Azure Public Dataset vmtable,
 * reduced to the columns replay needs; 6 comma-separated columns, an
 * optional header line starting with "vmid" is skipped):
 *
 *   0 vm id       uint64, or any non-empty string (hashed FNV-1a)
 *   1 created     seconds since trace start, number >= 0
 *   2 deleted     seconds; empty or -1 means "never deleted"
 *   3 category    "interactive", "delay-insensitive", "unknown",
 *                 or empty (drives the class hint below)
 *   4 cores       VM core bucket, number > 0
 *   5 memory      VM memory bucket in GB, number >= 0
 *
 * Canonical mapping: each row yields an Arrival at `created` and,
 * when the VM was deleted inside the window, a Departure at
 * `deleted`. CPU/memory are normalized to the largest bucket seen in
 * the file (Azure buckets are absolute, unlike Google's pre-
 * normalized requests). Category becomes the (priority, sched_class)
 * hint: interactive VMs map like Google production-band rows,
 * delay-insensitive like mid-band batch, unknown like the free band.
 *
 * Strictness: wrong field counts, bad numbers, negative create
 * times, deletes before creates, and overflow-sized buckets (cores >
 * 1024, memory > 16384 GB) are rejected with per-line diagnostics;
 * the parser never throws and never aborts.
 */

#pragma once

#include <string>

#include "trace/event.hh"
#include "trace/reader.hh"

namespace quasar::trace
{

/** Parse Azure-VM-style rows from any line source. */
TraceStream parseAzureVm(LineSource &lines,
                         const ParseOptions &opt = {});

/**
 * Parse an Azure-VM-style file (".gz" handled when built with
 * zlib). An unopenable path yields an empty stream whose single
 * diagnostic at line 0 carries the open error.
 */
TraceStream parseAzureVmFile(const std::string &path,
                             const ParseOptions &opt = {});

} // namespace quasar::trace
