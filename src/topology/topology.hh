/**
 * @file
 * Server socket/LLC topology: the descriptor that turns the flat
 * per-server contention model into a locality-dependent one.
 *
 * A Platform optionally carries a Topology: sockets → LLC domains →
 * cores. The platform's contention capacity is split across sockets
 * (splitCapacity), and pressure caused by a resident task lands on its
 * *home* socket at full strength while remote sockets see it
 * attenuated by a per-source cross-socket factor:
 *
 *   view_s[i] = local_s[i] + cross[i] * Σ_{s' != s} local_{s'}[i]
 *
 * Cache-side sources (L1I, L2, Cpu) do not cross the socket boundary
 * at all; memory bandwidth partially does (shared interconnect); disk
 * and network are machine-global (full capacity per socket, factor 1),
 * which keeps their behaviour identical to the flat model.
 *
 * The default (empty `sockets`) is a flat single-socket machine whose
 * arithmetic is bit-identical to the pre-topology model — the replay
 * contract (DESIGN.md §13) depends on that.
 */

#pragma once

#include <vector>

#include "interference/source.hh"

namespace quasar::topology
{

/** Hard cap on sockets per server (sizes the fixed-width scheduler
 *  order signature; real boxes are 1/2/4-socket). */
inline constexpr int kMaxSockets = 4;

/** One socket: a set of cores sharing llc_domains last-level caches. */
struct SocketDesc
{
    int cores = 0;
    /** LLC slices on the socket (CoD/sub-NUMA clusters); each extra
     *  domain concentrates cache pressure into a smaller slice, so the
     *  per-socket LLC capacity is divided by this count. */
    int llc_domains = 1;
};

/** Socket/LLC layout of one platform. Empty sockets = flat machine. */
struct Topology
{
    std::vector<SocketDesc> sockets;
    /** Per-source attenuation of pressure seen from a remote socket,
     *  in [0, 1]: 0 = fully socket-private, 1 = machine-global. */
    interference::IVector cross_socket = defaultCrossSocket();

    int numSockets() const
    {
        return sockets.empty() ? 1 : int(sockets.size());
    }

    /** True for the flat (pre-topology, single-socket) model. */
    bool flat() const { return numSockets() == 1; }

    /**
     * Split a platform's contention capacity into per-socket capacity
     * vectors. Machine-global sources (DiskIO, Network) keep the full
     * capacity on every socket; the rest divide evenly by socket count
     * and LLCache additionally by the socket's llc_domains. A flat
     * topology returns the input unchanged (bitwise), preserving the
     * replay contract.
     */
    std::vector<interference::IVector>
    splitCapacity(const interference::IVector &total) const;

    /** Sanity: 1..kMaxSockets sockets, positive cores per socket and
     *  at least one LLC domain each, cores summing to platform_cores,
     *  cross factors within [0, 1]. Flat is always valid. */
    bool valid(int platform_cores) const;

    /** The attenuation factors described in the file header. */
    static interference::IVector defaultCrossSocket();

    /** Explicit flat topology (identical behaviour to the default). */
    static Topology single();

    /**
     * Symmetric n-socket layout over total_cores (n in [1,
     * kMaxSockets]); any core remainder goes to the lower sockets.
     */
    static Topology symmetric(int total_cores, int num_sockets,
                              int llc_domains_per_socket = 1);
};

/** True for sources that are machine-global rather than per-socket
 *  (their capacity is not split and their cross factor is 1). */
bool isMachineGlobal(interference::Source s);

} // namespace quasar::topology
