#include "topology/topology.hh"

#include <cassert>

namespace quasar::topology
{

using interference::IVector;
using interference::Source;

bool
isMachineGlobal(Source s)
{
    return s == Source::DiskIO || s == Source::Network;
}

IVector
Topology::defaultCrossSocket()
{
    IVector v = interference::zeroVector();
    // Memory bandwidth crosses the interconnect at half strength; LLC
    // and prefetcher pressure leak a little through shared directories
    // and snoop traffic; core-private resources not at all; disk and
    // network are machine-global.
    v[size_t(Source::MemoryBw)] = 0.5;
    v[size_t(Source::L1ICache)] = 0.0;
    v[size_t(Source::LLCache)] = 0.1;
    v[size_t(Source::DiskIO)] = 1.0;
    v[size_t(Source::Network)] = 1.0;
    v[size_t(Source::L2Cache)] = 0.0;
    v[size_t(Source::Cpu)] = 0.0;
    v[size_t(Source::Prefetch)] = 0.1;
    return v;
}

Topology
Topology::single()
{
    return Topology{};
}

Topology
Topology::symmetric(int total_cores, int num_sockets,
                    int llc_domains_per_socket)
{
    assert(num_sockets >= 1 && num_sockets <= kMaxSockets);
    assert(total_cores >= num_sockets);
    assert(llc_domains_per_socket >= 1);
    Topology t;
    if (num_sockets == 1)
        return t; // flat: keep the default (bit-identical) model
    int base = total_cores / num_sockets;
    int rem = total_cores % num_sockets;
    for (int s = 0; s < num_sockets; ++s) {
        SocketDesc d;
        d.cores = base + (s < rem ? 1 : 0);
        d.llc_domains = llc_domains_per_socket;
        t.sockets.push_back(d);
    }
    return t;
}

std::vector<IVector>
Topology::splitCapacity(const IVector &total) const
{
    std::vector<IVector> caps;
    if (flat()) {
        // Exact copy: the flat path must stay bitwise identical to
        // the pre-topology model.
        caps.push_back(total);
        return caps;
    }
    const double n = double(sockets.size());
    for (const SocketDesc &d : sockets) {
        IVector cap = interference::zeroVector();
        for (size_t i = 0; i < interference::kNumSources; ++i) {
            if (isMachineGlobal(Source(i))) {
                cap[i] = total[i];
                continue;
            }
            cap[i] = total[i] / n;
            if (Source(i) == Source::LLCache && d.llc_domains > 1)
                cap[i] /= double(d.llc_domains);
        }
        caps.push_back(cap);
    }
    return caps;
}

bool
Topology::valid(int platform_cores) const
{
    if (sockets.empty())
        return true;
    if (int(sockets.size()) > kMaxSockets)
        return false;
    int cores = 0;
    for (const SocketDesc &d : sockets) {
        if (d.cores <= 0 || d.llc_domains < 1)
            return false;
        cores += d.cores;
    }
    if (cores != platform_cores)
        return false;
    for (size_t i = 0; i < interference::kNumSources; ++i)
        if (!(cross_socket[i] >= 0.0) || cross_socket[i] > 1.0)
            return false;
    return true;
}

} // namespace quasar::topology
