/**
 * @file
 * Maintained per-socket contention ledger.
 *
 * Server keeps one of these up to date through every placement-
 * relevant mutation (place/remove/resize/isolation/inject/markDown):
 * the isolation-masked raw pressure homed on each socket. It is the
 * *mirror*, not the source of truth — decision-path reads recompute
 * fresh ordered task walks so floating-point add/subtract drift can
 * never leak into the bit-identical replay contract. The ledger serves
 * per-socket reporting and the QUASAR_VERIFY conservation sweep
 * (Σ socket ledgers == the server's flat pressure ledger, no negative
 * pressure), which catches any mutation path that forgets to maintain
 * it — exactly the bug class the change-epoch audit catches for the
 * scheduler index.
 */

#pragma once

#include <array>

#include "interference/source.hh"
#include "topology/topology.hh"

namespace quasar::topology
{

/** Per-socket isolation-masked raw pressure, incrementally held. */
class SocketLedger
{
  public:
    /** Reset to all-zero pressure over the given socket count. */
    void reset(int sockets)
    {
        sockets_ = sockets;
        for (auto &v : local_)
            v = interference::zeroVector();
    }

    int sockets() const { return sockets_; }

    /** Pressure homed on socket s (not normalized by capacity). */
    const interference::IVector &local(int s) const
    {
        return local_[size_t(s)];
    }

    /** Account a share's caused pressure landing on its home socket
     *  (isolated sources stay inside their partition). */
    void add(int s, const interference::IVector &caused,
             const interference::IVector &isolation)
    {
        for (size_t i = 0; i < interference::kNumSources; ++i)
            // The isolation mask is binary (0.0 or 1.0) by
            // construction, never computed.
            if (isolation[i] == 0.0) // quasar-lint: allow(float-eq)
                local_[size_t(s)][i] += caused[i];
    }

    /** Remove a share's contribution (exact values it was added with). */
    void sub(int s, const interference::IVector &caused,
             const interference::IVector &isolation)
    {
        for (size_t i = 0; i < interference::kNumSources; ++i)
            // Same binary mask as add(): exact compare is the point.
            if (isolation[i] == 0.0) // quasar-lint: allow(float-eq)
                local_[size_t(s)][i] -= caused[i];
    }

    /** Single-source adjustment (isolation grant/revoke). */
    void adjustSource(int s, interference::Source src, double delta)
    {
        local_[size_t(s)][size_t(src)] += delta;
    }

    /** Sum over sockets: the server's flat raw-pressure ledger. */
    interference::IVector total() const
    {
        interference::IVector t = local_[0];
        for (int s = 1; s < sockets_; ++s)
            for (size_t i = 0; i < interference::kNumSources; ++i)
                t[i] += local_[size_t(s)][i];
        return t;
    }

  private:
    std::array<interference::IVector, kMaxSockets> local_{};
    int sockets_ = 1;
};

} // namespace quasar::topology
