#include "verify/verify.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "workload/scale_up_config.hh"

namespace quasar::verify
{

Counters &
counters()
{
    static Counters c;
    return c;
}

namespace
{

[[noreturn]] void
fail(const std::string &what)
{
    std::fprintf(stderr,
                 "\n=== QUASAR_VERIFY violation ===\n%s\n"
                 "(sweeps=%" PRIu64 " shadow_checks=%" PRIu64
                 " divergences=%" PRIu64 ")\n",
                 what.c_str(), counters().cluster_sweeps,
                 counters().shadow_checks,
                 counters().shadow_divergences);
    std::abort();
}

std::string
describeAllocation(const std::optional<core::Allocation> &a)
{
    if (!a)
        return "  <no allocation>";
    std::ostringstream os;
    os.precision(17);
    for (const core::AllocationNode &n : a->nodes)
        os << "  node server=" << n.server << " col=" << n.scale_up_col
           << " cores=" << n.cores << " mem=" << n.memory_gb
           << " socket=" << n.socket
           << " perf=" << n.predicted_node_perf << "\n";
    for (const auto &[sid, wid] : a->evictions)
        os << "  evict server=" << sid << " workload=" << wid << "\n";
    os << "  predicted_perf=" << a->predicted_perf
       << " degraded=" << (a->degraded ? "yes" : "no");
    return os.str();
}

/** Field-exact (bitwise on doubles) equality of two decisions. */
bool
sameAllocation(const std::optional<core::Allocation> &a,
               const std::optional<core::Allocation> &b)
{
    if (a.has_value() != b.has_value())
        return false;
    if (!a)
        return true;
    if (a->nodes.size() != b->nodes.size() ||
        a->evictions.size() != b->evictions.size())
        return false;
    for (size_t i = 0; i < a->nodes.size(); ++i) {
        const core::AllocationNode &x = a->nodes[i];
        const core::AllocationNode &y = b->nodes[i];
        // Exact double compares are the point: the replay contract is
        // bit-identical, not merely close.
        if (x.server != y.server || x.scale_up_col != y.scale_up_col ||
            x.cores != y.cores || x.memory_gb != y.memory_gb ||
            x.socket != y.socket ||
            x.predicted_node_perf != y.predicted_node_perf)
            return false;
    }
    for (size_t i = 0; i < a->evictions.size(); ++i)
        if (a->evictions[i] != b->evictions[i])
            return false;
    return a->knobs == b->knobs &&
           a->predicted_perf == b->predicted_perf &&
           a->degraded == b->degraded;
}

} // namespace

void
sweepCluster(const sim::Cluster &cluster,
             const workload::WorkloadRegistry *registry)
{
    ++counters().cluster_sweeps;

    // Per-server accounting and local structural invariants.
    uint64_t version_sum = 0;
    std::map<WorkloadId, std::vector<ServerId>> hosting;
    for (size_t s = 0; s < cluster.size(); ++s) {
        const sim::Server &srv = cluster.server(ServerId(s));
        version_sum += srv.version();
        if (!srv.checkInvariants())
            fail("server " + std::to_string(s) +
                 " failed checkInvariants() (allocation over "
                 "capacity, duplicate share, share on a down "
                 "machine, usage above allocation, or an illegal "
                 "speed factor)");
        // Socket-ledger conservation (DESIGN.md §13): the maintained
        // per-socket ledger is a pure mirror of the task shares, so
        // every socket must match a fresh ordered recompute (within a
        // drift epsilon — the mirror accumulates add/subtract
        // round-off by design, which is exactly why decision paths
        // never read it), no component may run negative, and the
        // sockets must sum to the flat raw-pressure ledger.
        {
            interference::IVector summed{};
            for (int sock = 0; sock < srv.numSockets(); ++sock) {
                const interference::IVector maintained =
                    srv.maintainedSocketPressure(sock);
                const interference::IVector fresh =
                    srv.freshSocketPressure(sock);
                for (size_t i = 0; i < interference::kNumSources;
                     ++i) {
                    if (maintained[i] < -1e-6)
                        fail("socket ledger negative on server " +
                             std::to_string(s) + " socket " +
                             std::to_string(sock) + " source " +
                             std::to_string(i) + ": " +
                             std::to_string(maintained[i]));
                    const double tol =
                        1e-6 + 1e-6 * std::abs(fresh[i]);
                    if (std::abs(maintained[i] - fresh[i]) > tol)
                        fail("socket ledger desynchronized on "
                             "server " +
                             std::to_string(s) + " socket " +
                             std::to_string(sock) + " source " +
                             std::to_string(i) + ": maintained " +
                             std::to_string(maintained[i]) +
                             " vs fresh " + std::to_string(fresh[i]));
                    summed[i] += maintained[i];
                }
            }
            const interference::IVector raw = srv.rawPressure();
            for (size_t i = 0; i < interference::kNumSources; ++i) {
                const double tol = 1e-6 + 1e-6 * std::abs(raw[i]);
                if (std::abs(summed[i] - raw[i]) > tol)
                    fail("socket ledger sum diverges from the flat "
                         "raw-pressure ledger on server " +
                         std::to_string(s) + " source " +
                         std::to_string(i) + ": sum " +
                         std::to_string(summed[i]) + " vs raw " +
                         std::to_string(raw[i]));
            }
        }
        for (const sim::TaskShare &t : srv.tasks()) {
            hosting[t.workload].push_back(ServerId(s));
            if (registry) {
                if (!registry->contains(t.workload))
                    fail("server " + std::to_string(s) +
                         " hosts unknown workload " +
                         std::to_string(t.workload));
                const workload::Workload &w =
                    registry->get(t.workload);
                if (w.completed)
                    fail("completed workload " +
                         std::to_string(t.workload) +
                         " still holds resources on server " +
                         std::to_string(s));
                if (w.killed)
                    fail("killed workload " +
                         std::to_string(t.workload) +
                         " still holds resources on server " +
                         std::to_string(s));
            }
        }
    }

    // Overload-control accounting: shed is a terminal outcome that
    // implies killed (and therefore, via the checks above, holds no
    // resources anywhere). A shed flag without killed means some path
    // invented a fifth outcome outside the admitted / completed /
    // departed / shed split.
    if (registry) {
        for (WorkloadId wid : registry->active()) {
            const workload::Workload &w = registry->get(wid);
            if (w.shed && !w.killed)
                fail("workload " + std::to_string(wid) +
                     " is marked shed but not killed — shed must be "
                     "terminal");
        }
    }

    // No duplicate placements: each (server, workload) pair is unique
    // by the per-server check above; across servers, only distributed
    // workload types may hold shares on more than one machine.
    if (registry) {
        for (const auto &[wid, servers] : hosting) {
            if (servers.size() > 1 && registry->contains(wid) &&
                !workload::isDistributed(registry->get(wid).type)) {
                std::string where;
                for (ServerId sid : servers) {
                    // Two appends, not `" " + to_string(...)`: the
                    // temporary-string operator+ trips a gcc-12
                    // -Wrestrict false positive (PR105651) under
                    // -Werror.
                    where += ' ';
                    where += std::to_string(sid);
                }
                fail("non-distributed workload " +
                     std::to_string(wid) + " placed on " +
                     std::to_string(servers.size()) + " servers:" +
                     where);
            }
        }
    }

    // Hosting-index coherence: the incrementally-maintained reverse
    // index must match this sweep's direct scan exactly — same
    // workloads, same servers, same (ascending) order — and the busy
    // set must be precisely the non-empty servers. A mismatch means a
    // membership mutation path skipped its listener notification.
    if (cluster.hostingIndex().hostedWorkloads() != hosting.size())
        fail("hosting index tracks " +
             std::to_string(cluster.hostingIndex().hostedWorkloads()) +
             " hosted workloads but a direct scan finds " +
             std::to_string(hosting.size()));
    std::vector<ServerId> busy_scan;
    for (size_t s = 0; s < cluster.size(); ++s)
        if (!cluster.server(ServerId(s)).tasks().empty())
            busy_scan.push_back(ServerId(s));
    if (cluster.busyServers() != busy_scan)
        fail("hosting index busy-server set diverges from a direct "
             "scan (" +
             std::to_string(cluster.busyServers().size()) +
             " indexed vs " + std::to_string(busy_scan.size()) +
             " scanned)");
    for (auto &[wid, servers] : hosting) {
        std::sort(servers.begin(), servers.end());
        if (cluster.serversHosting(wid) != servers)
            fail("hosting index entry for workload " +
                 std::to_string(wid) +
                 " diverges from a direct scan");
    }

    // Journal coherence: every placement-relevant mutation bumps the
    // server's epoch AND notes the journal (servers are attached at
    // cluster construction), so the epochs must sum to the journal's
    // monotone note count. A mismatch means some mutator forgot
    // bumpVersion() or noted without bumping — exactly the bug class
    // that silently desynchronizes the dirty-set scheduler index.
    const sim::ChangeJournal &journal = cluster.journal();
    if (version_sum != journal.totalNoted())
        fail("ChangeJournal incoherent: sum of server change epochs "
             "is " +
             std::to_string(version_sum) + " but the journal has " +
             std::to_string(journal.totalNoted()) +
             " total notes — a mutation path bumped without noting "
             "(or noted without bumping)");
    if (journal.base() > journal.end())
        fail("ChangeJournal window inverted: base " +
             std::to_string(journal.base()) + " > end " +
             std::to_string(journal.end()));
    for (uint64_t pos = journal.base(); pos < journal.end(); ++pos)
        if (size_t(journal.at(pos)) >= cluster.size())
            fail("ChangeJournal entry at offset " +
                 std::to_string(pos) + " names server " +
                 std::to_string(journal.at(pos)) +
                 " outside the cluster (size " +
                 std::to_string(cluster.size()) + ")");
}

void
shadowCheckAllocation(const sim::Cluster &cluster,
                      const core::SchedulerConfig &cfg,
                      const workload::WorkloadRegistry *registry,
                      const workload::Workload &w,
                      const core::WorkloadEstimate &est,
                      double required_perf,
                      const core::EstimateLookup &estimates,
                      bool may_evict,
                      const std::optional<core::Allocation> &primary,
                      const std::vector<uint32_t> *shard_of,
                      uint32_t shard_id)
{
    ++counters().shadow_checks;

    // Fresh scheduler on the legacy recompute-everything path: no
    // shared cache, no journal cursor, nothing to inherit a primary-
    // path bug from. Its own verify hook is a no-op (full_rescan never
    // shadows), so this cannot recurse. A shard worker's oracle gets
    // the identical membership restriction: the equivalence claim is
    // per shard, against a from-scratch walk over the same members.
    core::SchedulerConfig shadow_cfg = cfg;
    shadow_cfg.full_rescan = true;
    core::GreedyScheduler shadow(cluster, shadow_cfg, registry);
    if (shard_of)
        shadow.restrictToShard(shard_of, shard_id);
    std::optional<core::Allocation> expected =
        shadow.allocate(w, est, required_perf, estimates, may_evict);

    if (!sameAllocation(primary, expected)) {
        ++counters().shadow_divergences;
        fail("shadow scheduler oracle divergence for workload " +
             std::to_string(w.id) + " (" + w.name + "), mode=" +
             (cfg.dirty_set ? "dirty_set" : "cached") +
             (shard_of ? " shard=" + std::to_string(shard_id) : "") +
             ":\n--- incremental decision ---\n" +
             describeAllocation(primary) +
             "\n--- full_rescan decision ---\n" +
             describeAllocation(expected));
    }
}

} // namespace quasar::verify
