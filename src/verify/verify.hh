/**
 * @file
 * Debug-build runtime verification layer (CMake option QUASAR_VERIFY).
 *
 * Two kinds of checks, both absent from release builds (every call
 * site is guarded by `#ifdef QUASAR_VERIFY`, and this translation unit
 * is only compiled into the library when the option is ON):
 *
 *  - **Invariant sweeps** (`sweepCluster`): cluster-wide conservation
 *    checks — per-server resource accounting against placed workloads,
 *    no leaked shares for completed/unknown workloads, no duplicate
 *    placements (a non-distributed workload on more than one server),
 *    and ChangeJournal coherence (the sum of server change epochs must
 *    equal the journal's total note count, and every retained entry
 *    must name a real server). The ScenarioDriver runs a sweep at the
 *    end of every tick, so every driver-based test and bench becomes a
 *    soak test of the accounting and journal plumbing.
 *
 *  - **Shadow scheduler oracle** (`shadowCheckAllocation`): every
 *    decision taken by an incremental index mode (dirty_set or cached)
 *    is re-run through the legacy full_rescan path and the two
 *    Allocations are compared field-for-field, bitwise on doubles.
 *    Any divergence aborts with a diff. This is the automated
 *    equivalence evidence ROADMAP wants before the legacy path can be
 *    demoted: a QUASAR_VERIFY soak across the chaos + churn suites
 *    proves zero divergences over every decision those scenarios take.
 *
 * On violation the layer prints a detailed report to stderr and
 * aborts: a verification build treats a broken invariant like a failed
 * assert, so CI cannot green a divergent scheduler. Counters are
 * exposed so tests can additionally assert that the oracle actually
 * ran (a silently-disabled oracle proves nothing).
 */

#pragma once

#include <cstdint>
#include <optional>

#include "core/scheduler.hh"
#include "sim/cluster.hh"
#include "workload/workload.hh"

namespace quasar::verify
{

/** How often the layer has run / what it has seen (process-wide). */
struct Counters
{
    uint64_t cluster_sweeps = 0;
    uint64_t shadow_checks = 0;
    /** Primary-vs-shadow mismatches observed. Always 0 on a live
     *  process — a divergence aborts — but kept as a counter so the
     *  failure path is testable and soak reports can print it. */
    uint64_t shadow_divergences = 0;
    /** Full index-coherence audits executed (sampled per refresh,
     *  plus any test-forced unsampled runs). */
    uint64_t index_audits = 0;
    /** Cross-shard conservation sweeps (sampled per sharded
     *  allocate): partition table coverage, range, and exactly-one-
     *  shard-per-server accounting, plus every primed worker's
     *  per-shard index-coherence audit. */
    uint64_t shard_sweeps = 0;
};

/** Mutable access to the process-wide counters. */
Counters &counters();

/**
 * Cluster-wide invariant sweep. `registry` may be null; the
 * registry-dependent checks (leaked shares, duplicate placements of
 * non-distributed workloads) are skipped without it. Aborts with a
 * report on the first violated invariant.
 */
void sweepCluster(const sim::Cluster &cluster,
                  const workload::WorkloadRegistry *registry);

/**
 * Re-run one allocation decision through the full_rescan legacy path
 * and abort unless the primary decision matches it exactly (node list,
 * sizing columns, evictions, knobs, predicted performance — doubles
 * compared bitwise). Called by GreedyScheduler::allocate for every
 * decision its incremental modes take. When the primary is a shard
 * worker (shard_of != nullptr), the oracle is restricted to the same
 * shard — the per-shard shadow oracle of DESIGN.md §14.
 */
void shadowCheckAllocation(
    const sim::Cluster &cluster, const core::SchedulerConfig &cfg,
    const workload::WorkloadRegistry *registry,
    const workload::Workload &w, const core::WorkloadEstimate &est,
    double required_perf, const core::EstimateLookup &estimates,
    bool may_evict, const std::optional<core::Allocation> &primary,
    const std::vector<uint32_t> *shard_of = nullptr,
    uint32_t shard_id = 0);

} // namespace quasar::verify
