/**
 * @file
 * Interface every cluster manager implements — Quasar and all the
 * baseline managers (reservation + least-loaded, reservation + Paragon,
 * auto-scaling, framework self-schedulers). The ScenarioDriver calls
 * these hooks as simulated time advances.
 */

#pragma once

#include <string>
#include <vector>

#include "common/types.hh"

namespace quasar::driver
{

/** Callbacks a manager receives from the scenario driver. */
class ClusterManager
{
  public:
    virtual ~ClusterManager() = default;

    /** A workload has arrived and awaits placement. */
    virtual void onSubmit(WorkloadId id, double t) = 0;

    /** Periodic monitoring/adaptation hook. */
    virtual void onTick(double t) = 0;

    /** A workload finished and was removed from the cluster. */
    virtual void onCompletion(WorkloadId id, double t) = 0;

    /** @name Failure hooks (Sec. 4.4 fault tolerance) */
    /// @{
    /**
     * A server crashed; its in-flight shares were already dropped by
     * the driver. `displaced` lists the workloads that held resources
     * there and now need recovery. Default: do nothing (workloads
     * stall until the manager re-places them some other way).
     */
    virtual void onServerDown(ServerId,
                              const std::vector<WorkloadId> &displaced,
                              double)
    {
        (void)displaced;
    }

    /** A server came back up, empty and at full speed. */
    virtual void onServerUp(ServerId, double) {}

    /** A server degraded to the given execution-speed factor. */
    virtual void onServerDegraded(ServerId, double speed_factor, double)
    {
        (void)speed_factor;
    }
    /// @}

    /** Human-readable name for reports. */
    virtual std::string name() const = 0;
};

} // namespace quasar::driver

