/**
 * @file
 * Interface every cluster manager implements — Quasar and all the
 * baseline managers (reservation + least-loaded, reservation + Paragon,
 * auto-scaling, framework self-schedulers). The ScenarioDriver calls
 * these hooks as simulated time advances.
 */

#ifndef QUASAR_DRIVER_CLUSTER_MANAGER_HH
#define QUASAR_DRIVER_CLUSTER_MANAGER_HH

#include <string>

#include "common/types.hh"

namespace quasar::driver
{

/** Callbacks a manager receives from the scenario driver. */
class ClusterManager
{
  public:
    virtual ~ClusterManager() = default;

    /** A workload has arrived and awaits placement. */
    virtual void onSubmit(WorkloadId id, double t) = 0;

    /** Periodic monitoring/adaptation hook. */
    virtual void onTick(double t) = 0;

    /** A workload finished and was removed from the cluster. */
    virtual void onCompletion(WorkloadId id, double t) = 0;

    /** Human-readable name for reports. */
    virtual std::string name() const = 0;
};

} // namespace quasar::driver

#endif // QUASAR_DRIVER_CLUSTER_MANAGER_HH
