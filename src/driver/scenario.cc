#include "driver/scenario.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "workload/queueing.hh"

#ifdef QUASAR_VERIFY
// Sanctioned upward edge: replay sweeps hook in under QUASAR_VERIFY
// only. quasar-lint: allow(layering)
#include "verify/verify.hh"
#endif

namespace quasar::driver
{

using workload::Workload;

WorkloadOutcome
outcomeOf(const Workload &w)
{
    if (w.shed)
        return WorkloadOutcome::Shed;
    if (w.killed)
        return WorkloadOutcome::Departed;
    if (w.completed)
        return WorkloadOutcome::Completed;
    return WorkloadOutcome::Active;
}

ScenarioDriver::ScenarioDriver(sim::Cluster &cluster,
                               workload::WorkloadRegistry &registry,
                               ClusterManager &manager, DriverConfig cfg)
    : cluster_(cluster), registry_(registry), manager_(manager),
      cfg_(cfg), oracle_(cluster, registry), cpu_used_(cluster.size()),
      cpu_reserved_(cluster.size()), mem_used_(cluster.size()),
      storage_used_(cluster.size())
{
    assert(cfg_.tick_s > 0.0);
}

void
ScenarioDriver::addArrival(WorkloadId id, double t)
{
    assert(registry_.contains(id));
    events_.schedule(t, [this, id, t]() {
        Workload &w = registry_.get(id);
        w.arrival_time = t;
        w.last_progress_update = t;
        manager_.onSubmit(id, t);
    });
}

void
ScenarioDriver::killWorkload(WorkloadId id, double t)
{
    Workload &w = registry_.get(id);
    if (w.completed || w.killed)
        return;
    // Settle batch progress up to the departure instant; the workload
    // may complete exactly here, in which case the completion wins.
    if (!workload::isLatencyCritical(w.type))
        integrateProgress(w, t);
    if (w.completed)
        return;
    w.killed = true;
    w.completion_time = t;
    cluster_.removeEverywhere(id);
    manager_.onCompletion(id, t);
}

void
ScenarioDriver::run(double until)
{
    run_until_ = until;
    events_.scheduleAfter(cfg_.tick_s, [this]() { tick(); });
    events_.run(until);
}

void
ScenarioDriver::installFaults(sim::FaultInjector &faults)
{
    faults.arm(events_, *this);
}

void
ScenarioDriver::integrateProgress(workload::Workload &w, double t)
{
    if (workload::isLatencyCritical(w.type) || w.completed)
        return;
    if (cluster_.serversHosting(w.id).empty()) {
        w.last_progress_update = t;
        return;
    }
    double rate = oracle_.currentRate(w, t);
    // A workload whose only server is down or fully degraded (speed
    // factor 0) reports a zero rate; a hosed model could even return
    // a negative or non-finite one. Either way the completion-time
    // division below must never see it: clamp to "no progress" and
    // let wall-clock advance.
    if (!std::isfinite(rate) || rate < 0.0)
        rate = 0.0;
    double dt = std::max(t - w.last_progress_update, 0.0);
    double remaining = w.total_work - w.work_done;
    if (remaining <= 0.0) {
        // Work already accounted for (e.g. progress settled by a
        // fault hook at this same instant); finish now, not at a
        // time extrapolated through a division by the current rate.
        w.work_done = w.total_work;
        completeWorkload(w, t);
        return;
    }
    if (rate > 0.0 && rate * dt >= remaining) {
        double at = w.last_progress_update + remaining / rate;
        // Guard against rounding pushing the completion instant
        // outside the integration window.
        at = std::min(std::max(at, w.last_progress_update), t);
        w.work_done = w.total_work;
        completeWorkload(w, at);
        return;
    }
    w.work_done += rate * dt;
    w.last_progress_update = t;
}

void
ScenarioDriver::beforeServerStateChange(ServerId sid, double t)
{
    // Settle batch progress at the pre-fault rate for every workload
    // touching this server; ids are copied because a completion here
    // mutates the server's task list.
    std::vector<WorkloadId> resident;
    for (const sim::TaskShare &share : cluster_.server(sid).tasks())
        resident.push_back(share.workload);
    for (WorkloadId id : resident)
        integrateProgress(registry_.get(id), t);
}

void
ScenarioDriver::serverFailed(ServerId sid,
                             const std::vector<WorkloadId> &displaced,
                             double t)
{
    manager_.onServerDown(sid, displaced, t);
}

void
ScenarioDriver::serverRecovered(ServerId sid, double t)
{
    manager_.onServerUp(sid, t);
}

void
ScenarioDriver::serverDegraded(ServerId sid, double speed_factor,
                               double t)
{
    manager_.onServerDegraded(sid, speed_factor, t);
}

void
ScenarioDriver::completeWorkload(Workload &w, double at)
{
    w.completed = true;
    w.completion_time = at;
    cluster_.removeEverywhere(w.id);
    manager_.onCompletion(w.id, at);
}

void
ScenarioDriver::tick()
{
    stats::ScopedTimer tick_timer(tick_time_);
    const double t = events_.now();
    ++ticks_;

    // 1. Integrate batch progress / sample service QoS.
    for (WorkloadId id : registry_.active()) {
        Workload &w = registry_.get(id);
        bool placed = !cluster_.serversHosting(id).empty();
        if (placed && w.first_placed_at < 0.0)
            w.first_placed_at = w.last_progress_update;

        if (workload::isLatencyCritical(w.type)) {
            double offered = w.offeredQps(t);
            double cap =
                placed ? oracle_.serviceCapacityQps(w, t) : 0.0;
            double ok_cap = workload::maxQpsWithinQos(
                cap, w.target.latency_qos_s);
            ServiceTrace &trace = service_traces_[id];
            if (ticks_ % cfg_.record_every == 0) {
                trace.offered_qps.record(t, offered);
                trace.served_qps.record(
                    t, workload::servedQps(offered, cap));
                trace.served_ok_qps.record(
                    t, workload::servedQps(offered, ok_cap));
                trace.p99_latency.record(
                    t, workload::percentileLatency(offered, cap));
                trace.qos_fraction.record(
                    t, workload::fractionMeetingQos(
                           offered, cap, w.target.latency_qos_s));
            }
        } else {
            integrateProgress(w, t);
            if (w.completed)
                continue;
        }

        if (placed && !w.best_effort)
            norm_perf_[id].add(oracle_.normalizedPerformance(w, t));
    }

    // 2. Refresh measured usage for utilization accounting. Only busy
    // servers can have usage to refresh; idle machines cost nothing
    // here even at 10k-server scale.
    for (ServerId sid : cluster_.busyServers()) {
        sim::Server &srv = cluster_.server(sid);
        // setUsage mutates shares in place only (membership, and with
        // it the busy set being iterated, never changes here).
        for (const sim::TaskShare &share : srv.tasks()) {
            const Workload &w = registry_.get(share.workload);
            srv.setUsage(share.workload,
                         oracle_.usedCores(w, share, t));
        }
    }

    // 3. Record utilization series.
    if (ticks_ % cfg_.record_every == 0) {
        for (size_t s = 0; s < cluster_.size(); ++s) {
            const sim::Server &srv = cluster_.server(ServerId(s));
            cpu_used_.record(s, t, srv.cpuUtilization());
            cpu_reserved_.record(s, t, srv.cpuReservedFraction());
            mem_used_.record(s, t, srv.memoryUtilization());
            storage_used_.record(s, t, srv.storageUtilization());
        }
        sim::ClusterSnapshot snap = cluster_.snapshot();
        agg_cpu_used_.record(t, snap.cpu_used);
        agg_cpu_reserved_.record(t, snap.cpu_reserved);
        agg_mem_used_.record(t, snap.mem_used);
    }

    // 4. Manager adaptation hook.
    manager_.onTick(t);
    if (tick_hook_)
        tick_hook_(t);

#ifdef QUASAR_VERIFY
    // Verify builds: full cluster invariant sweep each tick, so every
    // driver-based test doubles as an accounting/journal soak.
    verify::sweepCluster(cluster_, &registry_);
#endif

    // 5. Next tick.
    if (t + cfg_.tick_s <= run_until_)
        events_.scheduleAfter(cfg_.tick_s, [this]() { tick(); });
}

double
ScenarioDriver::meanNormalizedPerf(WorkloadId id) const
{
    auto it = norm_perf_.find(id);
    return it == norm_perf_.end() ? 0.0 : it->second.mean();
}

const ServiceTrace *
ScenarioDriver::serviceTrace(WorkloadId id) const
{
    auto it = service_traces_.find(id);
    return it == service_traces_.end() ? nullptr : &it->second;
}

double
ScenarioDriver::completionTime(WorkloadId id) const
{
    const Workload &w = registry_.get(id);
    return w.completed ? w.completion_time : -1.0;
}

} // namespace quasar::driver
