/**
 * @file
 * Scenario driver: the simulation harness every experiment runs on.
 *
 * Owns the event queue and advances a cluster + workload registry +
 * manager through a scenario: workload arrivals, periodic ticks that
 * integrate batch progress (fluid model), service load evolution,
 * completions, and utilization/performance recording for the paper's
 * figures.
 */

#pragma once

#include <functional>
#include <map>
#include <vector>

#include "driver/cluster_manager.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"
#include "sim/failure.hh"
#include "stats/summary.hh"
#include "stats/timeseries.hh"
#include "stats/timing.hh"
#include "workload/workload.hh"

namespace quasar::driver
{

/** Driver knobs. */
struct DriverConfig
{
    /** Progress-integration / monitoring tick, seconds. */
    double tick_s = 10.0;
    /** Record utilization series every this many ticks. */
    size_t record_every = 1;
};

/**
 * Terminal QoS-accounting outcome of a workload. Every arrival ends
 * in exactly one of these (Active only while the run is still going),
 * so experiment reports can split "killed" into its real causes:
 * churn departures / cancellations vs. overload-control sheds.
 * Brownout degradation is orthogonal (Workload::brownout_ever) — a
 * degraded workload still completes or departs.
 */
enum class WorkloadOutcome
{
    Active,    ///< still running or queued.
    Completed, ///< ran to completion.
    Departed,  ///< churn departure / cancellation (killed, not shed).
    Shed,      ///< dropped by overload control (terminal, accounted).
};

/** Classify a workload into its QoS-accounting outcome. */
WorkloadOutcome outcomeOf(const workload::Workload &w);

/** Per-service tracking for throughput/latency figures. */
struct ServiceTrace
{
    stats::TimeSeries offered_qps;
    stats::TimeSeries served_qps;     ///< throughput within capacity.
    stats::TimeSeries served_ok_qps;  ///< throughput also within QoS.
    stats::TimeSeries p99_latency;
    stats::TimeSeries qos_fraction;   ///< fraction of queries in QoS.
};

/** Drives one scenario run. */
class ScenarioDriver : public sim::FaultListener
{
  public:
    ScenarioDriver(sim::Cluster &cluster,
                   workload::WorkloadRegistry &registry,
                   ClusterManager &manager, DriverConfig cfg = {});

    /** Schedule a workload arrival (workload already registered). */
    void addArrival(WorkloadId id, double t);

    /**
     * Retire a workload at time t (a churn departure: the tenant
     * leaves, the job is cancelled). Batch progress is settled first;
     * then the workload is marked killed, its shares are dropped
     * everywhere, and the manager sees a completion so queued work
     * re-admits into the freed capacity. No-op if already finished.
     */
    void killWorkload(WorkloadId id, double t);

    /**
     * Arm a fault injector against this run: its events fire on the
     * driver's event queue, and the driver settles progress, drops
     * in-flight shares on crashed servers, and relays the failure to
     * the manager's hooks. The injector must outlive the run.
     */
    void installFaults(sim::FaultInjector &faults);

    /** @name FaultListener (called by the armed injector) */
    /// @{
    void beforeServerStateChange(ServerId sid, double t) override;
    void serverFailed(ServerId sid,
                      const std::vector<WorkloadId> &displaced,
                      double t) override;
    void serverRecovered(ServerId sid, double t) override;
    void serverDegraded(ServerId sid, double speed_factor,
                        double t) override;
    /// @}

    /** Run until the given time (events stop firing after it). */
    void run(double until);

    /**
     * Install a callback invoked at the end of every tick (after
     * progress integration and recording) — benches use it to sample
     * experiment-specific state such as per-workload core counts.
     */
    void setTickHook(std::function<void(double)> hook)
    {
        tick_hook_ = std::move(hook);
    }

    sim::EventQueue &events() { return events_; }
    double now() const { return events_.now(); }

    /**
     * Wall-clock (host) cost of the driver tick loop — progress
     * integration, usage refresh, recording, and the manager's
     * adaptation hook together. Completes the decision-path timing
     * story: classify/schedule/adapt live in QuasarStats, rank/place
     * in SchedulerTiming, and the per-tick envelope here.
     */
    const stats::TimerStat &tickTiming() const { return tick_time_; }

    /** @name Recorded results */
    /// @{
    const stats::UtilizationGrid &cpuUsedGrid() const
    {
        return cpu_used_;
    }
    const stats::UtilizationGrid &cpuReservedGrid() const
    {
        return cpu_reserved_;
    }
    const stats::UtilizationGrid &memGrid() const { return mem_used_; }
    const stats::UtilizationGrid &storageGrid() const
    {
        return storage_used_;
    }
    const stats::TimeSeries &aggCpuUsed() const { return agg_cpu_used_; }
    const stats::TimeSeries &aggCpuReserved() const
    {
        return agg_cpu_reserved_;
    }
    const stats::TimeSeries &aggMemUsed() const { return agg_mem_used_; }

    /** Mean normalized performance of a workload over its lifetime. */
    double meanNormalizedPerf(WorkloadId id) const;

    /** Per-service traces (only latency-critical workloads appear). */
    const ServiceTrace *serviceTrace(WorkloadId id) const;

    /** Completion time of a batch workload (-1 if not finished). */
    double completionTime(WorkloadId id) const;
    /// @}

  private:
    void tick();
    void completeWorkload(workload::Workload &w, double at);
    /** Integrate a batch workload's progress up to time t. */
    void integrateProgress(workload::Workload &w, double t);

    sim::Cluster &cluster_;
    workload::WorkloadRegistry &registry_;
    ClusterManager &manager_;
    DriverConfig cfg_;
    sim::EventQueue events_;
    workload::PerfOracle oracle_;

    stats::UtilizationGrid cpu_used_;
    stats::UtilizationGrid cpu_reserved_;
    stats::UtilizationGrid mem_used_;
    stats::UtilizationGrid storage_used_;
    stats::TimeSeries agg_cpu_used_;
    stats::TimeSeries agg_cpu_reserved_;
    stats::TimeSeries agg_mem_used_;

    std::function<void(double)> tick_hook_;
    stats::TimerStat tick_time_;
    std::map<WorkloadId, stats::Accumulator> norm_perf_;
    std::map<WorkloadId, ServiceTrace> service_traces_;
    size_t ticks_ = 0;
    double run_until_ = 0.0;
};

} // namespace quasar::driver

