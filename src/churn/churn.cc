#include "churn/churn.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "tracegen/arrivals.hh"
#include "tracegen/load_pattern.hh"

namespace quasar::churn
{

using workload::Workload;

namespace
{

/** The catalog's fastest platform, for analytics targets. */
const sim::Platform &
bestPlatform(const sim::Cluster &cluster)
{
    const auto &catalog = cluster.catalog();
    assert(!catalog.empty());
    size_t best = 0;
    for (size_t i = 1; i < catalog.size(); ++i) {
        double a = catalog[i].core_perf * double(catalog[i].cores);
        double b =
            catalog[best].core_perf * double(catalog[best].cores);
        if (a > b)
            best = i;
    }
    return catalog[best];
}

ChurnClass
drawClass(const ChurnMix &mix, stats::Rng &rng)
{
    std::vector<double> weights = {
        std::max(mix.single_node, 0.0), std::max(mix.analytics, 0.0),
        std::max(mix.service, 0.0), std::max(mix.best_effort, 0.0)};
    double total = weights[0] + weights[1] + weights[2] + weights[3];
    if (total <= 0.0)
        return ChurnClass::SingleNode; // degenerate mix: batch only
    switch (rng.weightedIndex(weights)) {
    case 0:
        return ChurnClass::SingleNode;
    case 1:
        return ChurnClass::Analytics;
    case 2:
        return ChurnClass::Service;
    default:
        return ChurnClass::BestEffort;
    }
}

const tracegen::DurationSpec &
lifetimeSpec(const ChurnConfig &cfg, ChurnClass cls)
{
    switch (cls) {
    case ChurnClass::Service:
        return cfg.service_lifetime;
    case ChurnClass::Analytics:
        return cfg.analytics_lifetime;
    case ChurnClass::BestEffort:
        return cfg.best_effort_lifetime;
    case ChurnClass::SingleNode:
        break;
    }
    return cfg.batch_lifetime;
}

} // namespace

Workload
makeChurnWorkload(ChurnClass cls, size_t idx,
                  workload::WorkloadFactory &factory,
                  const sim::Cluster &cluster, const char *name_prefix)
{
    auto &rng = factory.rng();
    std::string name = name_prefix + std::to_string(idx);
    switch (cls) {
    case ChurnClass::SingleNode: {
        static const char *families[] = {
            "spec-int", "spec-fp",  "parsec",  "splash2",
            "minebench", "bioparallel", "specjbb", "mix"};
        return factory.singleNodeJob(name,
                                     families[rng.uniformInt(0, 7)]);
    }
    case ChurnClass::Analytics: {
        // Log-uniform dataset 1-40 GB: small enough that a healthy
        // manager retires jobs at churn timescales.
        double gb = std::exp(rng.uniform(0.0, std::log(40.0)));
        double y = rng.uniform();
        Workload w;
        if (y < 0.6)
            w = factory.hadoopJob(name, gb);
        else if (y < 0.8)
            w = factory.stormJob(name, gb);
        else
            w = factory.sparkJob(name, gb);
        w.target = workload::WorkloadFactory::defaultAnalyticsTarget(
            w, bestPlatform(cluster), 3);
        return w;
    }
    case ChurnClass::Service: {
        double y = rng.uniform();
        if (y < 0.5) {
            double qps = rng.uniform(100.0, 400.0);
            auto load = std::make_shared<tracegen::FluctuatingLoad>(
                0.75 * qps, 0.25 * qps, rng.uniform(1800.0, 7200.0));
            return factory.webService(name, qps, 0.1, load);
        }
        if (y < 0.8) {
            double qps = rng.uniform(5e4, 2e5);
            auto load = std::make_shared<tracegen::FluctuatingLoad>(
                0.7 * qps, 0.3 * qps, rng.uniform(3600.0, 14400.0));
            return factory.memcachedService(name, qps, 200e-6,
                                            rng.uniform(10.0, 60.0),
                                            load);
        }
        double qps = rng.uniform(3e3, 12e3);
        auto load = std::make_shared<tracegen::FluctuatingLoad>(
            0.7 * qps, 0.3 * qps, rng.uniform(3600.0, 14400.0));
        return factory.cassandraService(name, qps, 30e-3,
                                        rng.uniform(80.0, 250.0),
                                        load);
    }
    case ChurnClass::BestEffort:
        break;
    }
    return factory.bestEffortJob(name);
}

void
ChurnEngine::emitArrival(double t)
{
    ChurnClass cls = drawClass(cfg_.mix, factory_->rng());
    Workload w =
        makeChurnWorkload(cls, next_idx_, *factory_, *cluster_);

    ChurnItem item;
    item.cls = cls;
    item.arrival_s = t;

    double life = tracegen::sampleDuration(lifetimeSpec(cfg_, cls),
                                           *lifetimes_);
    if (life > 0.0 && t + life < cfg_.horizon_s) {
        item.depart_s = t + life;
        ++counts_.departures_planned;
    }

    if (phases_->chance(cfg_.phase_change_fraction)) {
        // Morph mid-life (or mid-horizon for stayers).
        double end =
            item.depart_s > 0.0 ? item.depart_s : cfg_.horizon_s;
        factory_->addPhaseChange(w, t + 0.5 * (end - t));
        item.phase_change = true;
        ++counts_.phase_changes;
    }

    item.id = registry_->add(std::move(w));
    driver_->addArrival(item.id, t);
    if (item.depart_s > 0.0) {
        driver::ScenarioDriver &driver = *driver_;
        WorkloadId id = item.id;
        double at = item.depart_s;
        driver.events().schedule(at, [&driver, id, at]() {
            driver.killWorkload(id, at);
        });
    }

    plan_.push_back(item);
    ++counts_.arrivals;
    ++next_idx_;
}

double
ChurnEngine::pacedGap(double t)
{
    double gap = process_->nextGap(*pacing_);
    if (!std::isfinite(gap) || !cfg_.rate_pattern)
        return gap;
    // The profile is a unit-less multiplier on the configured rate:
    // 2x the rate halves the gap. A (near-)zero profile value means
    // "no arrivals right now" — step a fixed beat forward instead of
    // dividing toward infinity, so the stream resumes when the
    // profile does.
    double mult = cfg_.rate_pattern->qpsAt(t);
    if (mult <= 1e-9)
        return gap + 1.0 / std::max(cfg_.arrival_rate_per_s, 1e-9);
    return gap / mult;
}

void
ChurnEngine::closedLoopStep()
{
    double t = driver_->events().now();
    // Backpressure: a saturated admission queue makes the would-be
    // tenant walk away (a deferral), not queue up. Pacing continues
    // regardless, so the probe is consulted exactly once per instant
    // and the stream stays deterministic for a deterministic manager.
    if (depth_probe_ && depth_probe_() >= cfg_.closed_loop_target)
        ++deferrals_;
    else
        emitArrival(t);

    double gap = pacedGap(t);
    if (!std::isfinite(gap))
        return; // zero-rate process: the stream is over
    double next = t + gap;
    if (next < cfg_.horizon_s)
        driver_->events().schedule(next,
                                   [this]() { closedLoopStep(); });
}

void
ChurnEngine::install(sim::Cluster &cluster,
                     workload::WorkloadRegistry &registry,
                     driver::ScenarioDriver &driver)
{
    assert(plan_.empty() && !factory_ &&
           "install() must be called once");
    cluster_ = &cluster;
    registry_ = &registry;
    driver_ = &driver;

    // Independent streams so a different mix draw never perturbs the
    // arrival clock (and vice versa): pacing, population, and
    // lifetimes each consume their own fork of the master seed.
    stats::Rng master(cfg_.seed);
    pacing_ = std::make_unique<stats::Rng>(master.fork());
    factory_ =
        std::make_unique<workload::WorkloadFactory>(master.fork());
    lifetimes_ = std::make_unique<stats::Rng>(master.fork());
    phases_ = std::make_unique<stats::Rng>(master.fork());

    if (cfg_.arrivals == ArrivalKind::Pareto)
        process_ = std::make_unique<tracegen::ParetoArrivals>(
            cfg_.arrival_rate_per_s > 0.0
                ? 1.0 / cfg_.arrival_rate_per_s
                : 0.0,
            cfg_.pareto_alpha);
    else
        process_ = std::make_unique<tracegen::PoissonArrivals>(
            cfg_.arrival_rate_per_s);

    if (cfg_.closed_loop) {
        // Lazy generation: each pacing instant draws its arrival (or
        // defers) with simulation-time knowledge of the probed depth.
        if (cfg_.start_s < cfg_.horizon_s)
            driver.events().schedule(cfg_.start_s,
                                     [this]() { closedLoopStep(); });
    } else {
        // Open loop: the whole plan is generated here, before the
        // run, and never consults simulation state.
        double t = cfg_.start_s;
        while (t < cfg_.horizon_s) {
            emitArrival(t);
            double gap = pacedGap(t);
            if (!std::isfinite(gap))
                break; // zero-rate process: the stream is over
            t += gap;
        }
    }

    if (cfg_.server_mttf_s > 0.0) {
        sim::FaultInjectorConfig fcfg;
        fcfg.mttf_s = cfg_.server_mttf_s;
        fcfg.mttr_s = cfg_.server_mttr_s;
        fcfg.degrade_fraction = cfg_.degrade_fraction;
        fcfg.horizon_s = cfg_.horizon_s;
        // Derived deterministically so the fault stream replays with
        // the rest of the plan.
        fcfg.seed = cfg_.seed * 0x9E3779B97F4A7C15ULL + 0xFA17;
        faults_ =
            std::make_unique<sim::FaultInjector>(cluster, fcfg);
        driver.installFaults(*faults_);
    }
}

} // namespace quasar::churn
