/**
 * @file
 * Churn engine: trace-driven open-loop workload streams for
 * cluster-scale experiments.
 *
 * Production clusters are never the static populations of the paper's
 * figures: tenants arrive, leave, change phases, and machines fail
 * underneath them. The engine generates that churn as a seeded,
 * reproducible event stream — arrivals paced by a Poisson or
 * heavy-tailed Pareto process, a mixed population of services /
 * analytics / single-node batch / best-effort fillers drawn from the
 * workload factory, per-class lifetime distributions that retire
 * workloads (open-loop departures), optional mid-life phase changes,
 * and optional stochastic server faults riding the same stream.
 *
 * Open- vs closed-loop: by default the stream is OPEN-loop — the
 * entire plan is generated ahead of time from the config's seed and
 * never consults simulation state, so arrivals do not wait for
 * completions and an overloaded manager faces a growing admission
 * queue instead of a conveniently throttled trace. That is also the
 * replay contract: identical (config, seed) produces the identical
 * event stream no matter which scheduler mode or manager runs
 * underneath, which is what lets the equivalence sweeps compare
 * decision paths event for event and the benches compare sustained
 * decision throughput.
 *
 * The CLOSED-loop variant (cfg.closed_loop) models tenants that back
 * off when the cluster is saturated: each pacing instant consults a
 * depth probe (typically the manager's admission-queue size) and
 * skips the arrival while depth >= closed_loop_target, counting it as
 * a deferral. Generation is lazy — each arrival is drawn at its
 * pacing instant from the same forked RNG streams — so the stream is
 * still a pure function of (config, seed, manager behavior): the same
 * manager under the same seed replays the identical stream.
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tracegen/arrivals.hh"
#include "tracegen/load_pattern.hh"

#include "driver/scenario.hh"
#include "sim/cluster.hh"
#include "sim/failure.hh"
#include "tracegen/durations.hh"
#include "workload/factory.hh"
#include "workload/workload.hh"

namespace quasar::churn
{

/** Which arrival process paces the open-loop stream. */
enum class ArrivalKind
{
    Poisson, ///< memoryless inter-arrivals.
    Pareto,  ///< heavy-tailed bursts and lulls.
};

/** Population weights of the mix (normalized internally). */
struct ChurnMix
{
    double single_node = 0.50; ///< SPEC/PARSEC-style batch.
    double analytics = 0.20;   ///< Hadoop/Storm/Spark jobs.
    double service = 0.15;     ///< latency-critical services.
    double best_effort = 0.15; ///< evictable filler tasks.
};

/** Full description of one churn stream. */
struct ChurnConfig
{
    /** Master seed: the whole plan is a pure function of it + cfg. */
    uint64_t seed = 1;

    ArrivalKind arrivals = ArrivalKind::Poisson;
    /** Mean arrivals per second of the open-loop stream. */
    double arrival_rate_per_s = 0.5;
    /** Pareto tail shape (used when arrivals == Pareto). */
    double pareto_alpha = 1.5;
    /**
     * Optional deterministic rate profile: the instantaneous arrival
     * rate is arrival_rate_per_s * pattern(t) (qpsAt read as a unit-
     * less multiplier — 1.0 = the configured rate), shaping diurnal
     * swells and flash crowds onto either arrival process. Part of
     * the config, so the stream stays a pure function of (cfg, seed).
     */
    tracegen::LoadPatternPtr rate_pattern;

    /** First arrival lands here... */
    double start_s = 1.0;
    /** ...and generation stops at this horizon (seconds). */
    double horizon_s = 1800.0;

    ChurnMix mix;

    /** @name Per-class lifetimes (departures are scheduled kills) */
    /// @{
    tracegen::DurationSpec service_lifetime =
        tracegen::DurationSpec::lognormal(1200.0, 0.8);
    tracegen::DurationSpec analytics_lifetime =
        tracegen::DurationSpec::pareto(700.0, 1.8);
    tracegen::DurationSpec batch_lifetime =
        tracegen::DurationSpec::exponential(500.0);
    tracegen::DurationSpec best_effort_lifetime =
        tracegen::DurationSpec::exponential(300.0);
    /// @}

    /** Fraction of arrivals that morph mid-life (phase change). */
    double phase_change_fraction = 0.08;

    /** @name Closed-loop pacing (see file comment) */
    /// @{
    /** Condition arrivals on the depth probe instead of open-loop. */
    bool closed_loop = false;
    /** Defer arrivals while the probed depth is >= this. */
    size_t closed_loop_target = 64;
    /// @}

    /** @name Stochastic machine faults (0 mttf disables) */
    /// @{
    double server_mttf_s = 0.0; ///< mean time to failure per server.
    double server_mttr_s = 600.0;
    double degrade_fraction = 0.25; ///< degrade instead of crash.
    /// @}
};

/** The workload class a churn item was drawn from. */
enum class ChurnClass
{
    SingleNode,
    Analytics,
    Service,
    BestEffort,
};

/** One planned workload of the stream. */
struct ChurnItem
{
    WorkloadId id = kInvalidWorkload;
    ChurnClass cls = ChurnClass::SingleNode;
    double arrival_s = 0.0;
    /** Scheduled departure; <= 0 means "runs until completion". */
    double depart_s = 0.0;
    bool phase_change = false;
};

/** Plan-level totals (available right after install()). */
struct ChurnCounts
{
    size_t arrivals = 0;
    size_t departures_planned = 0;
    size_t phase_changes = 0;
};

/**
 * Draw one workload of the given class from the factory catalogs —
 * the population model shared by the churn engine and the trace
 * replayer (src/trace/). Within-class parameters (family, dataset
 * size, QPS, ...) come from the factory's RNG stream, so callers that
 * draw in a fixed order get a deterministic population.
 */
workload::Workload makeChurnWorkload(ChurnClass cls, size_t idx,
                                     workload::WorkloadFactory &factory,
                                     const sim::Cluster &cluster,
                                     const char *name_prefix = "churn-");

/**
 * Generates one churn stream and schedules it onto a scenario driver.
 * Build, call install() once, then run the driver; the engine must
 * outlive the run (it owns the armed fault injector).
 */
class ChurnEngine
{
  public:
    explicit ChurnEngine(ChurnConfig cfg = {}) : cfg_(cfg) {}

    /**
     * Pre-generate the full open-loop plan from the config's seed,
     * register every workload, and schedule all arrivals, departures,
     * phase changes, and faults onto the driver's event queue. The
     * plan depends only on the config — never on cluster, scheduler,
     * or manager state — so identical configs replay identically.
     * Call once per engine.
     */
    void install(sim::Cluster &cluster,
                 workload::WorkloadRegistry &registry,
                 driver::ScenarioDriver &driver);

    /**
     * Closed-loop depth source, consulted once per pacing instant
     * (e.g. [&m] { return m.admission().size(); }). Set before
     * install(); without a probe the closed loop never defers and
     * degenerates to open-loop pacing.
     */
    void setDepthProbe(std::function<size_t()> probe)
    {
        depth_probe_ = std::move(probe);
    }

    /**
     * The generated plan, in arrival order. Open-loop: complete after
     * install(). Closed-loop: grows as the run generates lazily.
     */
    const std::vector<ChurnItem> &plan() const { return plan_; }

    const ChurnCounts &counts() const { return counts_; }

    /** Arrivals skipped by closed-loop backpressure so far. */
    size_t deferrals() const { return deferrals_; }

    /** The armed fault injector; null when faults are disabled. */
    const sim::FaultInjector *faults() const { return faults_.get(); }

  private:
    /** Draw + register + schedule one arrival at time t. */
    void emitArrival(double t);
    /** One closed-loop pacing instant: maybe emit, then re-arm. */
    void closedLoopStep();
    /**
     * Next inter-arrival gap as seen from time t: the process's raw
     * gap, divided by the rate profile's multiplier at t (infinite
     * when the process rate is zero).
     */
    double pacedGap(double t);

    ChurnConfig cfg_;
    std::vector<ChurnItem> plan_;
    ChurnCounts counts_;
    std::unique_ptr<sim::FaultInjector> faults_;

    /** @name Generation state (lazy generation keeps them live) */
    /// @{
    sim::Cluster *cluster_ = nullptr;
    workload::WorkloadRegistry *registry_ = nullptr;
    driver::ScenarioDriver *driver_ = nullptr;
    std::unique_ptr<stats::Rng> pacing_;
    std::unique_ptr<stats::Rng> lifetimes_;
    std::unique_ptr<stats::Rng> phases_;
    std::unique_ptr<workload::WorkloadFactory> factory_;
    std::unique_ptr<tracegen::ArrivalProcess> process_;
    /// @}

    std::function<size_t()> depth_probe_;
    size_t deferrals_ = 0;
    size_t next_idx_ = 0;
};

} // namespace quasar::churn

