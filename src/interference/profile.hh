/**
 * @file
 * Per-workload interference behaviour: the pressure a workload causes
 * in each shared resource and the contention it tolerates before its
 * performance degrades.
 *
 * The paper's interference classification records, per source, the
 * microbenchmark intensity at which workload performance drops below an
 * acceptable QoS level (typically 5%). That "tolerated intensity" is
 * exactly what SensitivityProfile::toleratedIntensity computes from the
 * underlying ground-truth threshold/slope model.
 */

#pragma once

#include "interference/source.hh"

namespace quasar::interference
{

/**
 * Ground-truth interference behaviour of one workload. Performance
 * multiplier per source is 1 up to the tolerance threshold and then
 * degrades linearly with contention, down to a floor:
 *
 *   m_r(C) = clamp(1 - slope_r * max(0, C_r - threshold_r), floor, 1)
 *
 * The total multiplier is the product over sources.
 */
struct SensitivityProfile
{
    /** Contention level where degradation begins, per source. */
    IVector threshold{};
    /** Perf loss per unit of excess contention, per source. */
    IVector slope{};
    /** Pressure caused per allocated core, per source. */
    IVector caused_per_core{};
    /** Lowest possible multiplier (workload never fully stops). */
    double floor = 0.05;

    /** Multiplier for one source at contention c. */
    double sourceMultiplier(Source s, double c) const;

    /** Combined multiplier under a full contention vector. */
    double multiplier(const IVector &contention) const;

    /**
     * Intensity at which performance drops by qos_loss (default 5%),
     * i.e. what interference classification records. Clamped to
     * [0, 1]; 1 means "insensitive at any intensity".
     */
    double toleratedIntensity(Source s, double qos_loss = 0.05) const;

    /** Pressure vector caused when running with the given cores. */
    IVector causedAt(double cores) const;
};

} // namespace quasar::interference

