/**
 * @file
 * Shared-resource interference sources.
 *
 * Mirrors the paper's Table 1 interference patterns (A = none, then
 * memory bandwidth, L1 instruction cache, last-level cache, disk I/O,
 * network, L2 cache, CPU, and prefetchers). Contention on each source
 * is expressed as a pressure in [0, 1+] where 1.0 means the resource is
 * fully saturated by co-runners.
 */

#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace quasar::interference
{

/** The shared resources a co-runner can contend on. */
enum class Source : size_t
{
    MemoryBw = 0,
    L1ICache,
    LLCache,
    DiskIO,
    Network,
    L2Cache,
    Cpu,
    Prefetch,
};

/** Number of interference sources (Table 1 patterns B-I). */
constexpr size_t kNumSources = 8;

/** One pressure/sensitivity value per source. */
using IVector = std::array<double, kNumSources>;

/** Zero-initialized vector. */
IVector zeroVector();

/** Element-wise sum. */
IVector add(const IVector &a, const IVector &b);

/** Element-wise scale. */
IVector scale(const IVector &a, double k);

/** Human-readable source name ("memory", "l1i", ...). */
const std::string &sourceName(Source s);

/** Source by index with bounds checking. */
Source sourceAt(size_t i);

} // namespace quasar::interference

