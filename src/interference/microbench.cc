#include "interference/microbench.hh"

#include <algorithm>

namespace quasar::interference
{

IVector
Microbenchmark::caused() const
{
    IVector v = zeroVector();
    v[static_cast<size_t>(source)] = intensity;
    return v;
}

double
probeToleratedIntensity(
    const std::function<double(const IVector &)> &perf_at, Source source,
    double qos_loss, double step)
{
    const double base = perf_at(zeroVector());
    if (base <= 0.0)
        return 0.0;
    const double limit = (1.0 - qos_loss) * base;

    Microbenchmark mb{source, 0.0};
    double tolerated = 0.0;
    for (double i = step; i <= 1.0 + 1e-9; i += step) {
        mb.intensity = std::min(i, 1.0);
        if (perf_at(mb.caused()) < limit)
            return tolerated;
        tolerated = mb.intensity;
    }
    return 1.0;
}

} // namespace quasar::interference
