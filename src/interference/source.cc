#include "interference/source.hh"

#include <cassert>

namespace quasar::interference
{

IVector
zeroVector()
{
    IVector v{};
    v.fill(0.0);
    return v;
}

IVector
add(const IVector &a, const IVector &b)
{
    IVector out;
    for (size_t i = 0; i < kNumSources; ++i)
        out[i] = a[i] + b[i];
    return out;
}

IVector
scale(const IVector &a, double k)
{
    IVector out;
    for (size_t i = 0; i < kNumSources; ++i)
        out[i] = a[i] * k;
    return out;
}

const std::string &
sourceName(Source s)
{
    static const std::array<std::string, kNumSources> names = {
        "memory", "l1i", "llc", "disk", "network", "l2", "cpu",
        "prefetch",
    };
    return names[static_cast<size_t>(s)];
}

Source
sourceAt(size_t i)
{
    assert(i < kNumSources);
    return static_cast<Source>(i);
}

} // namespace quasar::interference
