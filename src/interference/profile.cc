#include "interference/profile.hh"

#include <algorithm>
#include <cmath>

namespace quasar::interference
{

double
SensitivityProfile::sourceMultiplier(Source s, double c) const
{
    size_t i = static_cast<size_t>(s);
    double excess = std::max(0.0, c - threshold[i]);
    double m = 1.0 - slope[i] * excess;
    return std::clamp(m, floor, 1.0);
}

double
SensitivityProfile::multiplier(const IVector &contention) const
{
    double m = 1.0;
    for (size_t i = 0; i < kNumSources; ++i)
        m *= sourceMultiplier(sourceAt(i), contention[i]);
    return std::max(m, floor);
}

double
SensitivityProfile::toleratedIntensity(Source s, double qos_loss) const
{
    size_t i = static_cast<size_t>(s);
    if (slope[i] <= 0.0)
        return 1.0;
    double intensity = threshold[i] + qos_loss / slope[i];
    return std::clamp(intensity, 0.0, 1.0);
}

IVector
SensitivityProfile::causedAt(double cores) const
{
    return scale(caused_per_core, cores);
}

} // namespace quasar::interference
