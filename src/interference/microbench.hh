/**
 * @file
 * Synthetic contentious microbenchmarks (the iBench analog of the
 * paper). A microbenchmark stresses exactly one shared resource at a
 * tunable intensity; the interference classifier and the phase/straggler
 * detectors inject them next to a workload and ramp the intensity until
 * the workload's performance drops below the QoS threshold.
 */

#pragma once

#include <functional>

#include "interference/source.hh"

namespace quasar::interference
{

/** A single-resource contentious kernel at a given intensity. */
struct Microbenchmark
{
    Source source = Source::MemoryBw;
    double intensity = 0.0; ///< pressure injected, in [0, 1].

    /** Pressure vector this kernel adds to a server. */
    IVector caused() const;
};

/**
 * Ramp a microbenchmark's intensity against a live measurement until
 * performance drops by qos_loss relative to the undisturbed run, and
 * report the last tolerated intensity.
 *
 * @param perf_at callback returning workload performance when the
 *                given pressure vector is injected next to it.
 * @param source resource to stress.
 * @param qos_loss acceptable fractional loss (paper: 5%).
 * @param step intensity ramp granularity.
 * @return highest intensity with perf >= (1 - qos_loss) * base, in
 *         [0, 1]; 1.0 when the workload never degrades.
 */
double probeToleratedIntensity(
    const std::function<double(const IVector &)> &perf_at, Source source,
    double qos_loss = 0.05, double step = 0.02);

} // namespace quasar::interference

