#include "workload/scale_up_config.hh"

#include <array>
#include <cassert>
#include <cstdio>

namespace quasar::workload
{

const std::string &
workloadTypeName(WorkloadType t)
{
    static const std::array<std::string, 4> names = {
        "analytics", "latency-service", "stateful-service", "single-node",
    };
    return names[static_cast<size_t>(t)];
}

bool
isDistributed(WorkloadType t)
{
    return t != WorkloadType::SingleNode;
}

bool
isLatencyCritical(WorkloadType t)
{
    return t == WorkloadType::LatencyService ||
           t == WorkloadType::StatefulService;
}

const std::string &
compressionName(Compression c)
{
    static const std::array<std::string, 3> names = {"none", "lzo",
                                                     "gzip"};
    return names[static_cast<size_t>(c)];
}

std::string
ScaleUpConfig::describe(WorkloadType t) const
{
    char buf[128];
    if (t == WorkloadType::Analytics) {
        std::snprintf(buf, sizeof(buf),
                      "%dc/%.1fGB m=%d heap=%.2f %s", cores, memory_gb,
                      knobs.mappers_per_node, knobs.heap_gb,
                      compressionName(knobs.compression).c_str());
    } else {
        std::snprintf(buf, sizeof(buf), "%dc/%.1fGB", cores, memory_gb);
    }
    return buf;
}

namespace
{

std::vector<int>
coreSteps(int max_cores)
{
    static const int steps[] = {1, 2, 4, 6, 8, 12, 16, 24};
    std::vector<int> out;
    for (int s : steps)
        if (s <= max_cores)
            out.push_back(s);
    if (out.empty())
        out.push_back(max_cores);
    return out;
}

std::vector<double>
memorySteps(double max_gb)
{
    static const double steps[] = {1, 2, 4, 8, 16, 24, 48};
    std::vector<double> out;
    for (double s : steps)
        if (s <= max_gb + 1e-9)
            out.push_back(s);
    if (out.empty())
        out.push_back(max_gb);
    return out;
}

} // namespace

std::vector<ScaleUpConfig>
scaleUpGrid(const sim::Platform &platform, WorkloadType type)
{
    std::vector<ScaleUpConfig> grid;
    if (type == WorkloadType::Analytics) {
        // Reduced (cores, memory) grid crossed with framework knobs.
        static const int cores_steps[] = {2, 4, 8, 12, 24};
        static const double mem_steps[] = {2, 4, 8, 24, 48};
        static const int mapper_steps[] = {2, 4, 8, 12};
        static const double heap_steps[] = {0.75, 1.5};
        static const Compression comp_steps[] = {Compression::Lzo,
                                                 Compression::Gzip};
        for (int c : cores_steps) {
            if (c > platform.cores)
                continue;
            for (double m : mem_steps) {
                if (m > platform.memory_gb + 1e-9)
                    continue;
                for (int mp : mapper_steps) {
                    for (double h : heap_steps) {
                        // Heaps must fit: mappers * heap <= memory.
                        if (mp * h > m + 1e-9)
                            continue;
                        for (Compression comp : comp_steps) {
                            ScaleUpConfig cfg;
                            cfg.cores = c;
                            cfg.memory_gb = m;
                            cfg.knobs.mappers_per_node = mp;
                            cfg.knobs.heap_gb = h;
                            cfg.knobs.compression = comp;
                            grid.push_back(cfg);
                        }
                    }
                }
            }
        }
    } else {
        for (int c : coreSteps(platform.cores)) {
            for (double m : memorySteps(platform.memory_gb)) {
                ScaleUpConfig cfg;
                cfg.cores = c;
                cfg.memory_gb = m;
                grid.push_back(cfg);
            }
        }
    }
    assert(!grid.empty() && "platform too small for any configuration");
    return grid;
}

std::vector<int>
scaleOutGrid(int max_nodes)
{
    std::vector<int> out;
    for (int n = 1; n <= 8 && n <= max_nodes; ++n)
        out.push_back(n);
    for (int n = 10; n <= 20 && n <= max_nodes; n += 2)
        out.push_back(n);
    for (int n = 24; n <= 40 && n <= max_nodes; n += 4)
        out.push_back(n);
    for (int n = 50; n <= max_nodes; n += 10)
        out.push_back(n);
    return out;
}

} // namespace quasar::workload
