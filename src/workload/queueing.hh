/**
 * @file
 * Tail-latency queueing model for latency-critical services.
 *
 * Each service is approximated as an M/M/1-style station whose service
 * capacity (QPS) is derived from the allocation via the ground-truth
 * rate model. The exponential sojourn tail gives closed forms for the
 * p99 latency, the maximum load meeting a latency QoS (the "knee" of
 * the paper's Fig. 2 throughput-latency curves), and the fraction of
 * requests meeting QoS — the metric of the paper's Figs. 8e and 9.
 */

#pragma once

namespace quasar::workload
{

/** Latency reported when a service is saturated (offered >= capacity). */
constexpr double kSaturatedLatency = 60.0;

/**
 * p-th percentile sojourn time (seconds).
 * @param offered_qps arriving load.
 * @param capacity_qps service capacity.
 * @param p percentile in (0, 100).
 */
double percentileLatency(double offered_qps, double capacity_qps,
                         double p = 99.0);

/** Mean sojourn time (seconds). */
double meanLatency(double offered_qps, double capacity_qps);

/**
 * Highest offered load (QPS) whose p-th percentile latency stays
 * within qos_s; 0 when the capacity cannot meet the QoS at any load.
 */
double maxQpsWithinQos(double capacity_qps, double qos_s,
                       double p = 99.0);

/**
 * Fraction of requests with sojourn <= qos_s at the given load
 * (1 - exp(-(capacity - offered) * qos) for a stable station, 0 when
 * saturated).
 */
double fractionMeetingQos(double offered_qps, double capacity_qps,
                          double qos_s);

/** Delivered throughput: min(offered, capacity). */
double servedQps(double offered_qps, double capacity_qps);

} // namespace quasar::workload

