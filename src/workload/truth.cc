#include "workload/truth.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::workload
{

double
amdahlSpeedup(double serial_fraction, double effective_cores)
{
    assert(effective_cores > 0.0);
    double s = std::clamp(serial_fraction, 0.0, 1.0);
    return 1.0 / (s + (1.0 - s) / effective_cores);
}

double
memoryFactor(const GroundTruth &t, double memory_gb)
{
    double demand = std::max(t.mem_demand_gb, 1e-6);
    if (memory_gb >= demand) {
        // Gentle caching bonus beyond the working set.
        return 1.0 + t.mem_bonus * std::log2(memory_gb / demand);
    }
    // Sub-working-set thrash: superlinear penalty with a floor. The
    // paper's Fig. 2 shows up to ~10x swing from per-server resources,
    // so the floor keeps the dynamic range in that regime.
    double ratio = memory_gb / demand;
    double f = std::pow(ratio, 1.3);
    if (ratio < 0.35)
        f *= 0.6; // cliff when badly undersized
    return std::max(f, 0.08);
}

double
knobFactor(const GroundTruth &t, const ScaleUpConfig &cfg)
{
    if (t.type != WorkloadType::Analytics)
        return 1.0;

    const FrameworkKnobs &k = cfg.knobs;
    double ratio = double(k.mappers_per_node) / double(cfg.cores);
    double m = std::log(ratio / t.mapper_ratio_opt);
    double mapper_f = std::exp(-0.5 * (m / t.mapper_tol) * (m / t.mapper_tol));

    double h = std::log2(k.heap_gb / t.heap_opt_gb);
    double heap_f = std::exp(-0.5 * (h / t.heap_tol) * (h / t.heap_tol));

    double comp_f = 1.0;
    switch (k.compression) {
      case Compression::Gzip:
        comp_f = 1.0 + 0.08 * t.compression_affinity;
        break;
      case Compression::Lzo:
        comp_f = 1.0 - 0.08 * t.compression_affinity;
        break;
      case Compression::None:
        comp_f = 1.0 - 0.12 * std::fabs(t.compression_affinity) - 0.05;
        break;
    }

    // Knobs modulate, they do not dominate: blend toward 1.
    double f = mapper_f * heap_f * comp_f;
    return 0.55 + 0.45 * f;
}

double
GroundTruth::idiosyncrasy(const sim::Platform &platform) const
{
    // splitmix64 over (seed, platform name hash) -> lognormal factor.
    uint64_t x = idio_seed ^
                 (std::hash<std::string>{}(platform.name) * 0x9e3779b9ULL);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x = x ^ (x >> 31);
    // Map to (-1, 1) then to a lognormal-ish factor.
    double u = (double(x >> 11) / double(1ULL << 53)) * 2.0 - 1.0;
    return std::exp(u * idio_sigma);
}

double
GroundTruth::nodeRate(const sim::Platform &platform,
                      const ScaleUpConfig &cfg,
                      const interference::IVector &contention) const
{
    assert(cfg.cores >= 1 && cfg.cores <= platform.cores);
    assert(cfg.memory_gb <= platform.memory_gb + 1e-9);

    double core_speed = std::pow(platform.core_perf, cpu_exponent);
    double useful_cores = std::min(double(cfg.cores), parallelism);
    double compute =
        core_speed * amdahlSpeedup(serial_fraction, useful_cores);

    double io_tier =
        platform.contention_capacity[size_t(interference::Source::DiskIO)];
    double io = io_tier > 0.0 ? std::pow(io_tier, io_exponent) : 1.0;

    double rate = base_rate * dataset_complexity * compute *
                  memoryFactor(*this, cfg.memory_gb) * io *
                  knobFactor(*this, cfg) * idiosyncrasy(platform) *
                  sensitivity.multiplier(contention);
    return std::max(rate, 0.0);
}

double
GroundTruth::nodeRateQuiet(const sim::Platform &platform,
                           const ScaleUpConfig &cfg) const
{
    return nodeRate(platform, cfg, interference::zeroVector());
}

double
GroundTruth::scaleOutEfficiency(int n) const
{
    assert(n >= 1);
    return std::pow(double(n), scale_out_alpha - 1.0) /
           (1.0 + scale_out_overhead * double(n - 1));
}

double
GroundTruth::jobRate(const std::vector<double> &node_rates) const
{
    if (node_rates.empty())
        return 0.0;
    double sum = 0.0;
    for (double r : node_rates)
        sum += r;
    return sum * scaleOutEfficiency(int(node_rates.size()));
}

double
GroundTruth::capacityQps(double total_rate) const
{
    assert(req_cost > 0.0);
    return total_rate / req_cost;
}

} // namespace quasar::workload
