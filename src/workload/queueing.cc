#include "workload/queueing.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::workload
{

double
percentileLatency(double offered_qps, double capacity_qps, double p)
{
    assert(p > 0.0 && p < 100.0);
    if (capacity_qps <= 0.0 || offered_qps >= capacity_qps)
        return kSaturatedLatency;
    double headroom = capacity_qps - offered_qps;
    double lat = -std::log(1.0 - p / 100.0) / headroom;
    return std::min(lat, kSaturatedLatency);
}

double
meanLatency(double offered_qps, double capacity_qps)
{
    if (capacity_qps <= 0.0 || offered_qps >= capacity_qps)
        return kSaturatedLatency;
    return std::min(1.0 / (capacity_qps - offered_qps),
                    kSaturatedLatency);
}

double
maxQpsWithinQos(double capacity_qps, double qos_s, double p)
{
    assert(qos_s > 0.0);
    double needed_headroom = -std::log(1.0 - p / 100.0) / qos_s;
    return std::max(0.0, capacity_qps - needed_headroom);
}

double
fractionMeetingQos(double offered_qps, double capacity_qps, double qos_s)
{
    if (capacity_qps <= 0.0 || offered_qps >= capacity_qps)
        return 0.0;
    double headroom = capacity_qps - offered_qps;
    return std::clamp(1.0 - std::exp(-headroom * qos_s), 0.0, 1.0);
}

double
servedQps(double offered_qps, double capacity_qps)
{
    return std::min(std::max(offered_qps, 0.0),
                    std::max(capacity_qps, 0.0));
}

} // namespace quasar::workload
