#include "workload/factory.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::workload
{

using interference::IVector;
using interference::kNumSources;
using interference::Source;

namespace
{

/** Linear interpolation. */
double
lerp(double lo, double hi, double u)
{
    return lo + (hi - lo) * u;
}

} // namespace

interference::SensitivityProfile
WorkloadFactory::makeSensitivity(
    const std::vector<double> &threshold_center,
    const std::vector<double> &caused_center)
{
    assert(threshold_center.size() == kNumSources);
    assert(caused_center.size() == kNumSources);
    interference::SensitivityProfile p;
    // One shared "tolerance" latent per workload: aggressive
    // workloads tolerate less and cause more across all sources (plus
    // small per-source noise). The correlation is what lets two
    // probed sources predict the rest.
    double u = rng_.uniform();
    for (size_t i = 0; i < kNumSources; ++i) {
        double th = threshold_center[i] + 0.20 * (u - 0.5) +
                    rng_.uniform(-0.05, 0.05);
        p.threshold[i] = std::clamp(th, 0.05, 0.98);
        // Sources with a low tolerance threshold also degrade faster.
        bool sensitive = threshold_center[i] < 0.5;
        double base = sensitive ? lerp(2.2, 1.0, u) : lerp(0.5, 0.1, u);
        p.slope[i] = base * rng_.uniform(0.9, 1.1);
        p.caused_per_core[i] = std::max(
            0.0, caused_center[i] * lerp(1.25, 0.75, u) *
                     rng_.uniform(0.9, 1.1));
    }
    p.floor = 0.05;
    return p;
}

GroundTruth
WorkloadFactory::analyticsTruth(double dataset_gb, double mem_hunger,
                                double io_weight)
{
    // Workload behaviour is driven by a low-dimensional latent
    // archetype position (u1: parallelism/serialness, u2: compute vs
    // IO boundedness, u3: memory appetite) plus small independent
    // jitter. Real workload populations have exactly this structure —
    // it is what makes collaborative filtering from two profiling
    // samples possible (paper Sec. 3.2).
    double u1 = rng_.uniform();
    double u2 = rng_.uniform();
    double u3 = rng_.uniform();
    auto jitter = [this](double v, double eps) {
        return v * (1.0 + eps * rng_.uniform(-1.0, 1.0));
    };

    GroundTruth t;
    t.type = WorkloadType::Analytics;
    t.base_rate = rng_.uniform(0.6, 1.6);
    t.serial_fraction = jitter(lerp(0.02, 0.12, u1), 0.15);
    t.parallelism = jitter(lerp(22.0, 10.0, u1), 0.10);
    t.cpu_exponent = jitter(lerp(0.6, 1.0, u2), 0.08);
    // Per-node memory demand is heap/buffer bound (data streams from
    // disk), so it grows only gently with the dataset.
    t.mem_demand_gb = std::clamp(
        jitter(mem_hunger * lerp(0.6, 1.4, u3) *
                   (1.0 + 0.12 * std::log2(1.0 + dataset_gb)),
               0.10),
        1.0, 16.0);
    t.mem_bonus = lerp(0.01, 0.06, u3);
    t.scale_out_alpha = jitter(lerp(0.85, 1.08, u2), 0.03);
    t.scale_out_overhead = jitter(lerp(0.03, 0.002, u3), 0.2);
    t.io_exponent = io_weight * lerp(1.0, 0.5, u2);
    t.dataset_complexity = rng_.uniform(0.55, 1.6);
    t.mapper_ratio_opt = jitter(lerp(0.8, 2.0, u2), 0.10);
    t.mapper_tol = lerp(0.45, 0.9, u1);
    t.heap_opt_gb = jitter(lerp(0.6, 2.0, u3), 0.10);
    t.heap_tol = lerp(0.6, 1.2, u2);
    t.compression_affinity = std::clamp(
        2.0 * u1 - 1.0 + rng_.uniform(-0.2, 0.2), -1.0, 1.0);
    t.idio_seed = rng_.engine()();
    t.idio_sigma = rng_.uniform(0.02, 0.08);
    return t;
}

Workload
WorkloadFactory::hadoopJob(const std::string &name, double dataset_gb)
{
    Workload w;
    w.name = name;
    w.type = WorkloadType::Analytics;
    w.framework = "hadoop";
    w.dataset_gb = dataset_gb;
    w.truth = analyticsTruth(dataset_gb, rng_.uniform(1.5, 6.0), 0.5);
    w.truth.sensitivity = makeSensitivity(
        // Disk/memory-bandwidth bound; tolerant of L1I/prefetch.
        {0.35, 0.80, 0.45, 0.30, 0.55, 0.60, 0.45, 0.75},
        {0.07, 0.01, 0.04, 0.06, 0.03, 0.02, 0.05, 0.01});
    w.total_work = dataset_gb * rng_.uniform(60.0, 140.0);
    w.storage_gb_per_node = std::min(200.0, 2.0 * dataset_gb);
    return w;
}

Workload
WorkloadFactory::stormJob(const std::string &name, double dataset_gb)
{
    Workload w;
    w.name = name;
    w.type = WorkloadType::Analytics;
    w.framework = "storm";
    w.dataset_gb = dataset_gb;
    w.truth = analyticsTruth(dataset_gb, rng_.uniform(1.0, 4.0), 0.2);
    // Streaming: CPU and network bound.
    w.truth.sensitivity = makeSensitivity(
        {0.45, 0.60, 0.40, 0.70, 0.30, 0.55, 0.35, 0.70},
        {0.05, 0.02, 0.04, 0.01, 0.06, 0.03, 0.06, 0.01});
    w.truth.serial_fraction = rng_.uniform(0.01, 0.06);
    w.total_work = dataset_gb * rng_.uniform(40.0, 100.0);
    w.storage_gb_per_node = 20.0;
    return w;
}

Workload
WorkloadFactory::sparkJob(const std::string &name, double dataset_gb)
{
    Workload w;
    w.name = name;
    w.type = WorkloadType::Analytics;
    w.framework = "spark";
    w.dataset_gb = dataset_gb;
    w.truth = analyticsTruth(dataset_gb, rng_.uniform(4.0, 10.0), 0.15);
    // In-memory: memory bandwidth/capacity and LLC bound.
    w.truth.sensitivity = makeSensitivity(
        {0.25, 0.65, 0.30, 0.75, 0.50, 0.45, 0.40, 0.55},
        {0.09, 0.01, 0.06, 0.01, 0.03, 0.04, 0.05, 0.02});
    w.truth.mem_bonus = rng_.uniform(0.05, 0.12);
    w.total_work = dataset_gb * rng_.uniform(30.0, 90.0);
    w.storage_gb_per_node = 10.0;
    return w;
}

Workload
WorkloadFactory::memcachedService(const std::string &name,
                                  double peak_qps, double qos_s,
                                  double state_gb,
                                  tracegen::LoadPatternPtr load)
{
    Workload w;
    w.name = name;
    w.type = WorkloadType::StatefulService;
    w.framework = "memcached";
    w.state_gb = state_gb;
    w.load = std::move(load);
    w.target = PerformanceTarget::qpsLatency(peak_qps, qos_s);

    double u1 = rng_.uniform();
    double u2 = rng_.uniform();
    GroundTruth t;
    t.type = WorkloadType::StatefulService;
    t.base_rate = rng_.uniform(0.8, 1.2);
    t.serial_fraction = lerp(0.01, 0.04, u1);
    t.parallelism = 32.0;
    t.cpu_exponent = lerp(1.0, 0.7, u1);
    t.mem_demand_gb = lerp(12.0, 36.0, u2) * rng_.uniform(0.92, 1.08);
    t.mem_bonus = lerp(0.02, 0.05, u2);
    t.scale_out_alpha = lerp(0.96, 1.02, u2);
    t.scale_out_overhead = lerp(0.01, 0.001, u2);
    t.io_exponent = 0.1;
    t.dataset_complexity = rng_.uniform(0.8, 1.2);
    t.req_cost = 2.6e-5 * rng_.uniform(0.8, 1.3);
    t.idio_seed = rng_.engine()();
    t.idio_sigma = rng_.uniform(0.02, 0.06);
    // Network/LLC/CPU sensitive (tail latency collapses under them).
    t.sensitivity = makeSensitivity(
        {0.35, 0.55, 0.25, 0.85, 0.20, 0.45, 0.30, 0.60},
        {0.04, 0.02, 0.05, 0.00, 0.07, 0.03, 0.05, 0.02});
    w.truth = t;
    w.storage_gb_per_node = 5.0;
    return w;
}

Workload
WorkloadFactory::webService(const std::string &name, double peak_qps,
                            double qos_s, tracegen::LoadPatternPtr load)
{
    Workload w;
    w.name = name;
    w.type = WorkloadType::LatencyService;
    w.framework = "webserver";
    w.load = std::move(load);
    w.target = PerformanceTarget::qpsLatency(peak_qps, qos_s);

    double u1 = rng_.uniform();
    double u2 = rng_.uniform();
    GroundTruth t;
    t.type = WorkloadType::LatencyService;
    t.base_rate = rng_.uniform(0.7, 1.3);
    t.serial_fraction = lerp(0.03, 0.10, u1);
    t.parallelism = lerp(20.0, 8.0, u1) * rng_.uniform(0.92, 1.08);
    t.cpu_exponent = lerp(1.0, 0.8, u1);
    t.mem_demand_gb = lerp(3.0, 8.0, u2) * rng_.uniform(0.92, 1.08);
    t.scale_out_alpha = lerp(0.94, 1.0, u2);
    t.scale_out_overhead = lerp(0.015, 0.002, u2);
    t.io_exponent = 0.1;
    t.dataset_complexity = rng_.uniform(0.8, 1.2);
    t.req_cost = 0.03 * rng_.uniform(0.6, 1.5);
    t.idio_seed = rng_.engine()();
    t.idio_sigma = rng_.uniform(0.02, 0.06);
    // CPU/network/L2 sensitive.
    t.sensitivity = makeSensitivity(
        {0.45, 0.40, 0.40, 0.80, 0.30, 0.35, 0.25, 0.60},
        {0.04, 0.03, 0.04, 0.01, 0.05, 0.04, 0.06, 0.02});
    w.truth = t;
    w.storage_gb_per_node = 10.0;
    return w;
}

Workload
WorkloadFactory::cassandraService(const std::string &name,
                                  double peak_qps, double qos_s,
                                  double state_gb,
                                  tracegen::LoadPatternPtr load)
{
    Workload w;
    w.name = name;
    w.type = WorkloadType::StatefulService;
    w.framework = "cassandra";
    w.state_gb = state_gb;
    w.load = std::move(load);
    w.target = PerformanceTarget::qpsLatency(peak_qps, qos_s);

    double u1 = rng_.uniform();
    double u2 = rng_.uniform();
    GroundTruth t;
    t.type = WorkloadType::StatefulService;
    t.base_rate = rng_.uniform(0.7, 1.2);
    t.serial_fraction = lerp(0.03, 0.08, u1);
    t.parallelism = lerp(24.0, 12.0, u1) * rng_.uniform(0.92, 1.08);
    t.cpu_exponent = lerp(0.7, 0.4, u1);
    t.mem_demand_gb = lerp(6.0, 16.0, u2) * rng_.uniform(0.92, 1.08);
    t.scale_out_alpha = lerp(0.95, 1.02, u2);
    t.scale_out_overhead = lerp(0.015, 0.002, u2);
    t.io_exponent = lerp(0.6, 1.0, u1); // disk bound
    t.dataset_complexity = rng_.uniform(0.8, 1.2);
    t.req_cost = 1.5e-3 * rng_.uniform(0.7, 1.4);
    t.idio_seed = rng_.engine()();
    t.idio_sigma = rng_.uniform(0.02, 0.06);
    // Disk I/O dominates; memory bandwidth and network follow.
    t.sensitivity = makeSensitivity(
        {0.35, 0.70, 0.50, 0.20, 0.40, 0.60, 0.50, 0.70},
        {0.05, 0.01, 0.03, 0.08, 0.04, 0.02, 0.03, 0.01});
    w.truth = t;
    w.storage_gb_per_node = std::max(50.0, state_gb / 10.0);
    return w;
}

Workload
WorkloadFactory::singleNodeJob(const std::string &name,
                               const std::string &family)
{
    Workload w;
    w.name = name;
    w.type = WorkloadType::SingleNode;
    w.framework = family;

    GroundTruth t;
    t.type = WorkloadType::SingleNode;
    t.base_rate = rng_.uniform(0.5, 1.5);
    t.idio_seed = rng_.engine()();
    t.idio_sigma = rng_.uniform(0.03, 0.10);
    t.scale_out_alpha = 1.0;
    t.scale_out_overhead = 0.0;
    t.dataset_complexity = rng_.uniform(0.7, 1.4);

    double u1 = rng_.uniform();
    double u2 = rng_.uniform();
    if (family == "spec-int" || family == "spec-fp") {
        t.parallelism = 1.0;
        t.serial_fraction = 1.0; // single-threaded
        t.cpu_exponent = lerp(0.9, 1.1, u1);
        t.mem_demand_gb = lerp(0.5, 3.0, u2);
        t.sensitivity = makeSensitivity(
            {0.40, 0.35, 0.30, 0.90, 0.90, 0.35, 0.30, 0.45},
            {0.05, 0.03, 0.04, 0.00, 0.00, 0.04, 0.08, 0.03});
    } else if (family == "parsec" || family == "splash2") {
        t.parallelism = double(1 << rng_.uniformInt(1, 3)); // 2-8
        t.serial_fraction = lerp(0.05, 0.25, u1);
        t.cpu_exponent = lerp(1.0, 0.8, u1);
        t.mem_demand_gb = lerp(1.0, 6.0, u2);
        t.sensitivity = makeSensitivity(
            {0.30, 0.55, 0.35, 0.90, 0.85, 0.40, 0.35, 0.50},
            {0.07, 0.02, 0.05, 0.00, 0.00, 0.04, 0.07, 0.03});
    } else if (family == "minebench" || family == "bioparallel") {
        t.parallelism = double(1 << rng_.uniformInt(1, 3));
        t.serial_fraction = lerp(0.08, 0.30, u1);
        t.cpu_exponent = lerp(0.9, 0.6, u1);
        t.mem_demand_gb = lerp(2.0, 8.0, u2);
        t.sensitivity = makeSensitivity(
            {0.25, 0.60, 0.25, 0.80, 0.85, 0.45, 0.40, 0.45},
            {0.08, 0.01, 0.06, 0.01, 0.00, 0.03, 0.05, 0.04});
    } else if (family == "specjbb") {
        t.parallelism = double(1 << rng_.uniformInt(2, 4)); // 4-16
        t.serial_fraction = lerp(0.03, 0.10, u1);
        t.cpu_exponent = lerp(1.0, 0.8, u1);
        t.mem_demand_gb = lerp(2.0, 10.0, u2);
        t.sensitivity = makeSensitivity(
            {0.35, 0.45, 0.30, 0.85, 0.70, 0.40, 0.30, 0.55},
            {0.05, 0.03, 0.05, 0.00, 0.02, 0.04, 0.06, 0.02});
    } else { // "mix": multiprogrammed 4-app mixes
        t.parallelism = 4.0;
        t.serial_fraction = lerp(0.10, 0.40, u1);
        t.cpu_exponent = lerp(1.0, 0.7, u1);
        t.mem_demand_gb = lerp(2.0, 8.0, u2);
        t.sensitivity = makeSensitivity(
            {0.30, 0.45, 0.30, 0.80, 0.80, 0.40, 0.30, 0.45},
            {0.07, 0.03, 0.06, 0.01, 0.01, 0.04, 0.07, 0.03});
    }

    w.truth = t;
    w.total_work = rng_.uniform(100.0, 600.0);
    w.storage_gb_per_node = 2.0;
    // Target: what the job gets from a couple of cores on a decent
    // machine — placement quality matters, yet a good manager can
    // meet it without hoarding.
    w.target = PerformanceTarget::ips(
        0.8 * t.base_rate * std::pow(0.8, t.cpu_exponent) *
        amdahlSpeedup(t.serial_fraction,
                      std::min(t.parallelism, 2.0)));
    return w;
}

Workload
WorkloadFactory::bestEffortJob(const std::string &name)
{
    // Skewed toward the low-parallelism families that dominate
    // best-effort queues (SPEC-style single-app tasks).
    static const char *families[] = {"spec-int", "spec-fp", "spec-int",
                                     "spec-fp",  "mix",     "parsec",
                                     "minebench"};
    size_t f = size_t(rng_.uniformInt(0, 6));
    Workload w = singleNodeJob(name, families[f]);
    w.best_effort = true;
    return w;
}

Workload
WorkloadFactory::randomWorkload(const std::string &name)
{
    double x = rng_.uniform();
    if (x < 0.55) {
        static const char *families[] = {"spec-int", "spec-fp",
                                         "parsec", "splash2",
                                         "bioparallel", "minebench",
                                         "specjbb", "mix"};
        return singleNodeJob(name,
                             families[rng_.uniformInt(0, 7)]);
    }
    if (x < 0.85) {
        // Small analytics job: log-uniform dataset 1-60 GB.
        double gb = std::exp(rng_.uniform(0.0, std::log(60.0)));
        double y = rng_.uniform();
        if (y < 0.6)
            return hadoopJob(name, gb);
        return y < 0.8 ? stormJob(name, gb) : sparkJob(name, gb);
    }
    // Small latency service.
    double y = rng_.uniform();
    if (y < 0.5) {
        double qps = rng_.uniform(100.0, 400.0);
        auto load = std::make_shared<tracegen::FluctuatingLoad>(
            0.75 * qps, 0.25 * qps, rng_.uniform(1800.0, 7200.0));
        return webService(name, qps, 0.1, load);
    }
    if (y < 0.8) {
        double qps = rng_.uniform(50e3, 250e3);
        auto load = std::make_shared<tracegen::FluctuatingLoad>(
            0.7 * qps, 0.3 * qps, rng_.uniform(3600.0, 14400.0));
        return memcachedService(name, qps, 200e-6,
                                rng_.uniform(20.0, 100.0), load);
    }
    double qps = rng_.uniform(3e3, 15e3);
    auto load = std::make_shared<tracegen::FluctuatingLoad>(
        0.7 * qps, 0.3 * qps, rng_.uniform(3600.0, 14400.0));
    return cassandraService(name, qps, 30e-3,
                            rng_.uniform(100.0, 500.0), load);
}

void
WorkloadFactory::addPhaseChange(Workload &w, double at_time)
{
    assert(at_time >= 0.0);
    GroundTruth next = w.truth;
    // Phase changes usually hurt: a new execution phase with a lower
    // rate and a different working set.
    next.base_rate *= rng_.uniform(0.45, 1.02);
    next.mem_demand_gb =
        std::clamp(next.mem_demand_gb * rng_.uniform(0.6, 2.0), 0.5,
                   48.0);
    // Interference behaviour shifts coherently: the new phase is
    // systematically more (or less) sensitive across resources.
    double shift = rng_.uniform(0.15, 0.45) *
                   (rng_.chance(0.5) ? 1.0 : -1.0);
    for (size_t i = 0; i < kNumSources; ++i) {
        next.sensitivity.threshold[i] = std::clamp(
            next.sensitivity.threshold[i] + shift +
                rng_.uniform(-0.05, 0.05),
            0.05, 0.98);
        next.sensitivity.caused_per_core[i] = std::max(
            0.0,
            next.sensitivity.caused_per_core[i] * rng_.uniform(0.4, 2.2));
    }
    w.phase_change_time = at_time;
    w.phase_truth = next;
}

PerformanceTarget
WorkloadFactory::defaultAnalyticsTarget(const Workload &w,
                                        const sim::Platform &best,
                                        int nodes, double slack)
{
    assert(w.type == WorkloadType::Analytics && w.total_work > 0.0);
    double best_rate = 0.0;
    for (const ScaleUpConfig &cfg : scaleUpGrid(best, w.type))
        best_rate = std::max(best_rate, w.truth.nodeRateQuiet(best, cfg));
    std::vector<double> rates(size_t(nodes), best_rate);
    double job_rate = w.truth.jobRate(rates);
    assert(job_rate > 0.0);
    return PerformanceTarget::completionTime(
        slack * w.total_work / job_rate, w.total_work);
}

} // namespace quasar::workload
