/**
 * @file
 * Workload types, framework tuning knobs, and the quantized scale-up
 * configuration space.
 *
 * The scale-up classification matrix (paper Sec. 3.2) has one column
 * per quantized configuration: integer core counts and memory blocks,
 * plus the framework parameters for analytics jobs (mappers per node,
 * JVM heapsize, compression). Grids are generated per platform and
 * workload type by scaleUpGrid().
 */

#pragma once

#include <string>
#include <vector>

#include "sim/platform.hh"

namespace quasar::workload
{

/** The four workload classes Quasar manages (paper Sec. 3.1). */
enum class WorkloadType
{
    Analytics,       ///< Hadoop / Storm / Spark style framework jobs.
    LatencyService,  ///< stateless low-latency services (webserver).
    StatefulService, ///< memcached / Cassandra style stateful services.
    SingleNode,      ///< single-server batch (SPEC/PARSEC style).
};

const std::string &workloadTypeName(WorkloadType t);

/** True when the type can use more than one server. */
bool isDistributed(WorkloadType t);

/** True for services with a QPS/latency target. */
bool isLatencyCritical(WorkloadType t);

/** Intermediate-data compression codecs (Hadoop-style). */
enum class Compression
{
    None,
    Lzo,
    Gzip,
};

const std::string &compressionName(Compression c);

/** Framework parameters tuned by the scale-up classification. */
struct FrameworkKnobs
{
    int mappers_per_node = 8;
    double heap_gb = 1.0;
    int block_mb = 64;
    Compression compression = Compression::Lzo;
    int replication = 2;

    bool operator==(const FrameworkKnobs &) const = default;
};

/** One quantized per-server allocation (a scale-up matrix column). */
struct ScaleUpConfig
{
    int cores = 1;
    double memory_gb = 1.0;
    FrameworkKnobs knobs; ///< meaningful for Analytics only.

    bool operator==(const ScaleUpConfig &) const = default;

    std::string describe(WorkloadType t) const;
};

/**
 * The quantized scale-up column space for a workload type on a
 * platform. Analytics grids cross a reduced (cores, memory) grid with
 * framework-knob combinations; other types use the full quantized
 * (cores, memory) grid.
 */
std::vector<ScaleUpConfig> scaleUpGrid(const sim::Platform &platform,
                                       WorkloadType type);

/**
 * The quantized node-count column space for scale-out classification:
 * 1..8 then progressively coarser steps up to max_nodes (paper:
 * offline profiling covers 1..100 nodes).
 */
std::vector<int> scaleOutGrid(int max_nodes = 100);

} // namespace quasar::workload

