#include "workload/workload.hh"

#include <algorithm>
#include <cassert>

#include "workload/queueing.hh"

namespace quasar::workload
{

PerformanceTarget
PerformanceTarget::completionTime(double seconds, double total_work)
{
    assert(seconds > 0.0 && total_work > 0.0);
    PerformanceTarget t;
    t.kind = TargetKind::CompletionTime;
    t.completion_time_s = seconds;
    t.rate = total_work / seconds;
    return t;
}

PerformanceTarget
PerformanceTarget::qpsLatency(double qps, double qos_s)
{
    assert(qps > 0.0 && qos_s > 0.0);
    PerformanceTarget t;
    t.kind = TargetKind::QpsLatency;
    t.qps = qps;
    t.latency_qos_s = qos_s;
    return t;
}

PerformanceTarget
PerformanceTarget::ips(double rate)
{
    assert(rate > 0.0);
    PerformanceTarget t;
    t.kind = TargetKind::Ips;
    t.rate = rate;
    return t;
}

const GroundTruth &
Workload::truthAt(double t) const
{
    if (phase_change_time >= 0.0 && t >= phase_change_time)
        return phase_truth;
    return truth;
}

double
Workload::offeredQps(double t) const
{
    if (!load || !isLatencyCritical(type))
        return 0.0;
    return load->qpsAt(t);
}

interference::IVector
Workload::causedPressure(double t, double cores) const
{
    return truthAt(t).sensitivity.causedAt(cores);
}

WorkloadId
WorkloadRegistry::add(Workload w)
{
    WorkloadId id = items_.size();
    w.id = id;
    items_.push_back(std::make_unique<Workload>(std::move(w)));
    active_candidates_.push_back(id);
    return id;
}

bool
WorkloadRegistry::contains(WorkloadId id) const
{
    return id < items_.size();
}

Workload &
WorkloadRegistry::get(WorkloadId id)
{
    assert(contains(id));
    return *items_[id];
}

const Workload &
WorkloadRegistry::get(WorkloadId id) const
{
    assert(contains(id));
    return *items_[id];
}

std::vector<WorkloadId>
WorkloadRegistry::active() const
{
    // Self-healing compaction: ids are assigned monotonically and a
    // finished workload never reactivates, so dropping completed and
    // killed entries in place preserves ascending order and keeps the
    // candidate list at O(active) for the next call.
    std::erase_if(active_candidates_, [this](WorkloadId id) {
        const Workload &w = *items_[id];
        return w.completed || w.killed;
    });
    return active_candidates_;
}

std::vector<WorkloadId>
WorkloadRegistry::all() const
{
    std::vector<WorkloadId> out;
    out.reserve(items_.size());
    for (const auto &w : items_)
        out.push_back(w->id);
    return out;
}

std::vector<double>
PerfOracle::nodeRates(const Workload &w, double t) const
{
    const GroundTruth &truth = w.truthAt(t);
    std::vector<double> rates;
    for (ServerId sid : cluster_.serversHosting(w.id)) {
        const sim::Server &srv = cluster_.server(sid);
        const sim::TaskShare *share = srv.share(w.id);
        assert(share);
        ScaleUpConfig cfg;
        cfg.cores = share->cores;
        cfg.memory_gb = share->memory_gb;
        cfg.knobs = w.active_knobs;
        double rate = truth.nodeRate(srv.platform(), cfg,
                                     srv.contentionFor(w.id));
        // Private partitions shrink the usable share of each isolated
        // resource slightly (Sec. 4.4 partitioning cost).
        for (size_t i = 0; i < interference::kNumSources; ++i)
            if (share->isolation[i] != 0.0)
                rate *= 0.95;
        // A degraded (sick) machine executes everything slower.
        rate *= srv.speedFactor();
        rates.push_back(rate);
    }
    return rates;
}

double
PerfOracle::currentRate(const Workload &w, double t) const
{
    std::vector<double> rates = nodeRates(w, t);
    if (rates.empty())
        return 0.0;
    const GroundTruth &truth = w.truthAt(t);
    double degrade =
        (t < w.degraded_until) ? w.degraded_factor : 1.0;
    if (w.type == WorkloadType::SingleNode)
        return rates.front() * degrade;
    return truth.jobRate(rates) * degrade;
}

double
PerfOracle::serviceCapacityQps(const Workload &w, double t) const
{
    assert(isLatencyCritical(w.type));
    return w.truthAt(t).capacityQps(currentRate(w, t));
}

double
PerfOracle::serviceP99(const Workload &w, double t) const
{
    return percentileLatency(w.offeredQps(t),
                             serviceCapacityQps(w, t));
}

double
PerfOracle::normalizedPerformance(const Workload &w, double t) const
{
    if (isLatencyCritical(w.type)) {
        // Deliverable-QPS-within-QoS over offered load. Above 1 the
        // service has headroom (a shrink signal for the manager);
        // below 1 it is dropping or QoS-violating queries.
        double offered = w.offeredQps(t);
        if (offered <= 0.0)
            return 1.0;
        double cap = serviceCapacityQps(w, t);
        return maxQpsWithinQos(cap, w.target.latency_qos_s) / offered;
    }
    if (w.target.rate <= 0.0)
        return 1.0;
    return currentRate(w, t) / w.target.rate;
}

double
PerfOracle::usedCores(const Workload &w, const sim::TaskShare &share,
                      double t) const
{
    const GroundTruth &truth = w.truthAt(t);
    double useful = std::min(double(share.cores), truth.parallelism);
    if (isLatencyCritical(w.type)) {
        double cap = serviceCapacityQps(w, t);
        double rho = cap > 0.0
                         ? std::clamp(w.offeredQps(t) / cap, 0.0, 1.0)
                         : 0.0;
        return useful * rho;
    }
    // Cores stalled on shared-resource contention are not doing
    // productive cycles; CPU utilization in the performance-counter
    // sense drops with interference.
    for (ServerId sid : cluster_.serversHosting(w.id)) {
        const sim::Server &srv = cluster_.server(sid);
        if (srv.share(w.id) == &share) {
            useful *= truth.sensitivity.multiplier(
                srv.contentionFor(w.id));
            break;
        }
    }
    return useful;
}

} // namespace quasar::workload
