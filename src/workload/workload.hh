/**
 * @file
 * Workload submissions, the performance-target interface, the workload
 * registry, and the performance oracle.
 *
 * PerformanceTarget is the paper's user-facing API (Sec. 3.1): instead
 * of a resource reservation, a submission carries a throughput and/or
 * latency constraint whose form depends on workload type. The
 * PerfOracle computes the *true* performance of a workload given its
 * current placement in a cluster — managers never call it directly for
 * decisions; they see it filtered through noisy profiling and runtime
 * monitoring.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/cluster.hh"
#include "tracegen/load_pattern.hh"
#include "workload/truth.hh"

namespace quasar::workload
{

/** How a submission expresses its constraint (paper Sec. 3.1). */
enum class TargetKind
{
    CompletionTime, ///< distributed frameworks: execution time.
    QpsLatency,     ///< latency-critical: QPS target + latency QoS.
    Ips,            ///< single-node: instructions-per-second analog.
};

/** The performance constraint attached to a submission. */
struct PerformanceTarget
{
    TargetKind kind = TargetKind::Ips;
    /** Required completion time, seconds (CompletionTime). */
    double completion_time_s = 0.0;
    /** Required sustained throughput, QPS (QpsLatency). */
    double qps = 0.0;
    /** Tail-latency bound, seconds at p99 (QpsLatency). */
    double latency_qos_s = 0.0;
    /** Required work rate, units/s (CompletionTime and Ips). */
    double rate = 0.0;

    static PerformanceTarget completionTime(double seconds,
                                            double total_work);
    static PerformanceTarget qpsLatency(double qps, double qos_s);
    static PerformanceTarget ips(double rate);
};

/** One submitted workload plus its hidden truth and runtime state. */
struct Workload
{
    WorkloadId id = kInvalidWorkload;
    std::string name;
    WorkloadType type = WorkloadType::SingleNode;
    std::string framework; ///< "hadoop", "spark", "memcached", ...
    GroundTruth truth;
    PerformanceTarget target;

    /** Total work units (analytics / single-node). */
    double total_work = 0.0;
    double dataset_gb = 0.0;
    /** Resident state for stateful services. */
    double state_gb = 0.0;
    /** Storage demanded per node at placement time. */
    double storage_gb_per_node = 0.0;
    /** Offered traffic (latency-critical only). */
    tracegen::LoadPatternPtr load;
    bool best_effort = false;
    /**
     * Scheduling priority (Sec. 4.4): a placement may evict resident
     * tasks of strictly lower priority. Best-effort tasks behave as
     * priority INT_MIN regardless of this field.
     */
    int priority = 0;
    /**
     * Optional spending cap, $/hour across all servers charged to the
     * workload (Sec. 4.4 cost targets); <= 0 means unlimited.
     */
    double cost_cap_per_hour = 0.0;
    double arrival_time = 0.0;

    /** Framework knobs active in the current placement. */
    FrameworkKnobs active_knobs;

    /** @name Runtime state */
    /// @{
    double work_done = 0.0;
    double last_progress_update = 0.0;
    /** First time the workload held any resources (<0 = never);
     *  admission-queue wait is completion overhead, not performance
     *  (paper Sec. 6.5). */
    double first_placed_at = -1.0;
    bool completed = false;
    double completion_time = -1.0;
    bool killed = false;
    /**
     * Terminal overload-control outcome: dropped from the admission
     * queue by load shedding, never having reached the deadline-aware
     * retry budget. A shed workload is always also killed (and holds
     * no resources); the flag distinguishes accounted-shed arrivals
     * from churn departures in outcome accounting.
     */
    bool shed = false;
    /** @name Brownout (graceful degradation under overload) */
    /// @{
    /** Currently running in the reduced-allocation brownout mode. */
    bool brownout_active = false;
    /** Ever browned out (distinct "degraded" outcome accounting). */
    bool brownout_ever = false;
    /// @}
    /**
     * Transient degradation window (state migration for stateful
     * services, relaunch cost, ...): performance is multiplied by
     * degraded_factor until degraded_until.
     */
    double degraded_until = 0.0;
    double degraded_factor = 1.0;
    /// @}

    /** @name Optional phase change (Sec. 4.1) */
    /// @{
    double phase_change_time = -1.0; ///< <0 means no phase change.
    GroundTruth phase_truth;
    /// @}

    /** Ground truth in effect at time t. */
    const GroundTruth &truthAt(double t) const;

    /** Offered QPS at time t (0 for non-services). */
    double offeredQps(double t) const;

    /** Interference pressure caused when running with cores. */
    interference::IVector causedPressure(double t, double cores) const;
};

/** Owner of all submitted workloads, keyed by id. */
class WorkloadRegistry
{
  public:
    /** Register a workload; assigns and returns its id. */
    WorkloadId add(Workload w);

    bool contains(WorkloadId id) const;
    Workload &get(WorkloadId id);
    const Workload &get(WorkloadId id) const;

    size_t size() const { return items_.size(); }

    /**
     * Ids of workloads not yet completed or killed, ascending. Served
     * from a self-compacting candidate list: each call drops the
     * entries that finished since the last one, so a long churn run
     * pays O(active) per query instead of rescanning every workload
     * ever submitted.
     */
    std::vector<WorkloadId> active() const;

    /** All ids in submission order. */
    std::vector<WorkloadId> all() const;

  private:
    std::vector<std::unique_ptr<Workload>> items_;
    /** Superset of the active ids, compacted on read (see active()). */
    mutable std::vector<WorkloadId> active_candidates_;
};

/**
 * Computes true performance from the cluster's current placement.
 * Decision-making components must consume it only through profiling
 * and monitoring wrappers that add measurement noise.
 */
class PerfOracle
{
  public:
    PerfOracle(const sim::Cluster &cluster,
               const WorkloadRegistry &registry)
        : cluster_(cluster), registry_(registry) {}

    /**
     * True aggregate work rate of w with its current placement and
     * co-runners at time t (work units/s).
     */
    double currentRate(const Workload &w, double t) const;

    /** Service capacity in QPS under the current placement. */
    double serviceCapacityQps(const Workload &w, double t) const;

    /** p99 latency at the offered load of time t. */
    double serviceP99(const Workload &w, double t) const;

    /**
     * Performance normalized to the target at time t: rate/target for
     * batch, (QPS delivered within QoS)/offered for services. 1.0
     * means the constraint is exactly met; above 1 means headroom.
     */
    double normalizedPerformance(const Workload &w, double t) const;

    /**
     * Cores the workload actually exercises on a server (for
     * utilization accounting): limited by its useful parallelism, and
     * scaled by load for services.
     */
    double usedCores(const Workload &w, const sim::TaskShare &share,
                     double t) const;

  private:
    std::vector<double> nodeRates(const Workload &w, double t) const;

    const sim::Cluster &cluster_;
    const WorkloadRegistry &registry_;
};

} // namespace quasar::workload

