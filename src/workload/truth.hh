/**
 * @file
 * Ground-truth performance model.
 *
 * This is the simulator's hidden function mapping (platform, scale-up
 * configuration, node count, interference) to workload performance.
 * The cluster managers never read it directly; they observe it through
 * short noisy profiling runs and runtime monitoring, exactly as Quasar
 * observes real workloads.
 *
 * The model composes:
 *  - Amdahl scale-up in effective compute (cores x per-core speed),
 *  - a saturating working-set memory curve with a thrash cliff,
 *  - framework-knob response surfaces (mappers/node, heapsize,
 *    compression) for analytics jobs,
 *  - per-platform idiosyncrasy (deterministic hash noise) so the truth
 *    is low-rank-plus-residual rather than exactly low rank,
 *  - sub/super-linear scale-out with communication overhead,
 *  - multiplicative interference degradation from SensitivityProfile,
 *  - dataset complexity scaling.
 *
 * These are exactly the behaviour families the paper's Fig. 2 measures
 * on real Hadoop and memcached deployments.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "interference/profile.hh"
#include "sim/platform.hh"
#include "workload/scale_up_config.hh"

namespace quasar::workload
{

/** Hidden performance parameters of one workload + dataset. */
struct GroundTruth
{
    WorkloadType type = WorkloadType::SingleNode;

    /** Work-rate on one reference compute unit, work units/sec. */
    double base_rate = 1.0;
    /** Amdahl serial fraction for scale-up within a server. */
    double serial_fraction = 0.05;
    /** Max cores per node the workload can keep busy. */
    double parallelism = 16.0;
    /** Sensitivity to per-core speed (1 = CPU-bound, ~0.3 = IO). */
    double cpu_exponent = 1.0;
    /** Working-set size per node, GB. */
    double mem_demand_gb = 4.0;
    /** Rate bonus per doubling of memory beyond the working set. */
    double mem_bonus = 0.03;
    /** Scale-out exponent (alpha ~ 1; > 1 superlinear). */
    double scale_out_alpha = 0.95;
    /** Communication overhead per extra node. */
    double scale_out_overhead = 0.01;
    /** Sensitivity to the platform I/O tier. */
    double io_exponent = 0.0;
    /** Dataset complexity multiplier on rate (paper: up to 3x). */
    double dataset_complexity = 1.0;

    /** Interference caused/tolerated behaviour. */
    interference::SensitivityProfile sensitivity;

    /** @name Framework-knob response (Analytics only) */
    /// @{
    double mapper_ratio_opt = 1.5; ///< optimal mappers per core.
    double mapper_tol = 0.6;       ///< log-space width of the optimum.
    double heap_opt_gb = 1.0;      ///< optimal JVM heap.
    double heap_tol = 0.8;         ///< log2-space width.
    double compression_affinity = 0.0; ///< [-1, 1], >0 favors gzip.
    /// @}

    /** @name Latency-service shape */
    /// @{
    /** Work units consumed per request (capacity = rate/req_cost). */
    double req_cost = 1e-3;
    /// @}

    /** Seed for deterministic per-platform idiosyncrasy. */
    uint64_t idio_seed = 0;
    /** Idiosyncrasy log-sigma (residual off the low-rank structure). */
    double idio_sigma = 0.05;

    /**
     * True work rate of one node under the given configuration and
     * normalized contention vector.
     */
    double nodeRate(const sim::Platform &platform,
                    const ScaleUpConfig &cfg,
                    const interference::IVector &contention) const;

    /** Rate with zero contention. */
    double nodeRateQuiet(const sim::Platform &platform,
                         const ScaleUpConfig &cfg) const;

    /** Scale-out efficiency factor for n nodes (applied to rate sum). */
    double scaleOutEfficiency(int n) const;

    /**
     * Total job rate when the given per-node rates run together as one
     * distributed job.
     */
    double jobRate(const std::vector<double> &node_rates) const;

    /** Service capacity in QPS from a total work rate. */
    double capacityQps(double total_rate) const;

    /** Deterministic per-platform residual factor. */
    double idiosyncrasy(const sim::Platform &platform) const;
};

/** Knob-response multiplier in (0, 1]; 1 at the per-job optimum. */
double knobFactor(const GroundTruth &t, const ScaleUpConfig &cfg);

/** Memory-adequacy multiplier: thrash cliff below the working set. */
double memoryFactor(const GroundTruth &t, double memory_gb);

/** Amdahl speedup over one reference compute unit. */
double amdahlSpeedup(double serial_fraction, double effective_cores);

} // namespace quasar::workload

