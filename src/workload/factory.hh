/**
 * @file
 * Workload factory: generates the synthetic analogs of the paper's
 * workload families — Hadoop/Storm/Spark analytics jobs (Mahout-style
 * data mining over 1-900 GB datasets), memcached and webserver
 * (HotCRP) latency-critical services, Cassandra-style stateful
 * services, and SPEC/PARSEC-style single-node batch jobs.
 *
 * Each archetype draws its hidden GroundTruth parameters from
 * archetype-specific distributions, so any two "Hadoop jobs" are
 * related but not identical — the structure collaborative filtering
 * exploits.
 */

#pragma once

#include <string>

#include "stats/rng.hh"
#include "workload/workload.hh"

namespace quasar::workload
{

/** Generates workloads with randomized hidden parameters. */
class WorkloadFactory
{
  public:
    explicit WorkloadFactory(stats::Rng rng) : rng_(rng) {}

    /** @name Analytics frameworks */
    /// @{
    /** Hadoop-style batch job over a dataset of the given size. */
    Workload hadoopJob(const std::string &name, double dataset_gb);
    /** Storm-style streaming job (latency-lean analytics). */
    Workload stormJob(const std::string &name, double dataset_gb);
    /** Spark-style in-memory job (memory-hungry analytics). */
    Workload sparkJob(const std::string &name, double dataset_gb);
    /// @}

    /** @name Latency-critical services */
    /// @{
    /** memcached-style in-memory key-value service. */
    Workload memcachedService(const std::string &name, double peak_qps,
                              double qos_s, double state_gb,
                              tracegen::LoadPatternPtr load);
    /** HotCRP/Apache-style webserving stack. */
    Workload webService(const std::string &name, double peak_qps,
                        double qos_s, tracegen::LoadPatternPtr load);
    /** Cassandra-style disk-backed NoSQL store. */
    Workload cassandraService(const std::string &name, double peak_qps,
                              double qos_s, double state_gb,
                              tracegen::LoadPatternPtr load);
    /// @}

    /**
     * Single-node batch job from one of the benchmark families
     * ("spec-int", "spec-fp", "parsec", "bioparallel", "minebench",
     * "specjbb", "mix").
     */
    Workload singleNodeJob(const std::string &name,
                           const std::string &family);

    /** Random single-node best-effort filler task. */
    Workload bestEffortJob(const std::string &name);

    /**
     * Random workload of any type, for the paper's 1200-workload
     * large-scale mix (Fig. 11): ~40% single-node, ~35% analytics,
     * ~25% services.
     */
    Workload randomWorkload(const std::string &name);

    /**
     * Give a workload a phase change at the given time: its hidden
     * truth morphs (rate, memory demand, and interference behaviour),
     * as in Sec. 4.1.
     */
    void addPhaseChange(Workload &w, double at_time);

    /**
     * Provisional completion-time target: the time the job would take
     * at a healthy allocation (best platform, a few nodes), padded by
     * slack. Benches that need the paper's "best after sweep" target
     * override this.
     */
    static PerformanceTarget
    defaultAnalyticsTarget(const Workload &w,
                           const sim::Platform &best_platform,
                           int nodes = 4, double slack = 1.15);

    stats::Rng &rng() { return rng_; }

  private:
    interference::SensitivityProfile
    makeSensitivity(const std::vector<double> &threshold_center,
                    const std::vector<double> &caused_center);
    GroundTruth analyticsTruth(double dataset_gb, double mem_hunger,
                               double io_weight);

    stats::Rng rng_;
};

} // namespace quasar::workload

