#include "sim/server.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::sim
{

using interference::IVector;
using interference::kNumSources;

Server::Server(ServerId id, const Platform &platform, int fault_zone)
    : id_(id), platform_(platform), fault_zone_(fault_zone)
{
    assert(platform_.topology.valid(platform_.cores));
    num_sockets_ = platform_.topology.numSockets();
    std::vector<IVector> caps =
        platform_.topology.splitCapacity(platform_.contention_capacity);
    for (int s = 0; s < num_sockets_; ++s)
        socket_caps_[size_t(s)] = caps[size_t(s)];
    cross_ = platform_.topology.cross_socket;
    socket_ledger_.reset(num_sockets_);
}

bool
Server::canFit(int cores, double memory_gb, double storage_gb) const
{
    if (state_ == ServerState::Down)
        return false;
    return cores <= coresFree() && memory_gb <= memoryFree() + 1e-9 &&
           storage_gb <= storageFree() + 1e-9;
}

std::vector<TaskShare>
Server::markDown()
{
    std::vector<TaskShare> displaced;
    if (state_ == ServerState::Down)
        return displaced;
    bumpVersion();
    state_ = ServerState::Down;
    speed_factor_ = 1.0;
    displaced.swap(tasks_);
    for (IVector &v : injected_)
        v = interference::zeroVector();
    socket_ledger_.reset(num_sockets_);
    if (membership_)
        for (const TaskShare &t : displaced)
            membership_->taskRemoved(id_, t.workload);
    return displaced;
}

bool
Server::degrade(double speed_factor)
{
    if (state_ == ServerState::Down)
        return false;
    // Clamp into [0, 1): 0 models a fully stalled machine (failing
    // controller, thermal shutdown-in-progress) that still holds its
    // shares; NaN and negative inputs stall rather than corrupt.
    if (!(speed_factor >= 0.0))
        speed_factor = 0.0;
    speed_factor = std::min(speed_factor, std::nextafter(1.0, 0.0));
    bumpVersion();
    state_ = ServerState::Degraded;
    speed_factor_ = speed_factor;
    return true;
}

void
Server::recover()
{
    bumpVersion();
    state_ = ServerState::Up;
    speed_factor_ = 1.0;
}

bool
Server::checkInvariants() const
{
    if (coresAllocated() > platform_.cores)
        return false;
    if (memoryAllocated() > platform_.memory_gb + 1e-6)
        return false;
    if (storageAllocated() > platform_.storage_gb + 1e-6)
        return false;
    if (state_ == ServerState::Down && !tasks_.empty())
        return false;
    // Fully stalled (speed 0) is legal only in the degraded state.
    if (speed_factor_ < 0.0 || speed_factor_ > 1.0)
        return false;
    if (state_ != ServerState::Degraded && speed_factor_ != 1.0)
        return false;
    for (size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i].workload == kInvalidWorkload)
            return false;
        if (tasks_[i].cores_used > double(tasks_[i].cores) + 1e-9)
            return false;
        if (tasks_[i].socket < 0 || tasks_[i].socket >= num_sockets_)
            return false;
        for (size_t j = i + 1; j < tasks_.size(); ++j)
            if (tasks_[i].workload == tasks_[j].workload)
                return false;
    }
    return true;
}

void
Server::place(const TaskShare &share)
{
    assert(share.workload != kInvalidWorkload);
    assert(!hosts(share.workload));
    assert(share.socket >= 0 && share.socket < num_sockets_);
    assert(canFit(share.cores, share.memory_gb, share.storage_gb));
    bumpVersion();
    tasks_.push_back(share);
    socket_ledger_.add(share.socket, share.caused, share.isolation);
    if (membership_)
        membership_->taskPlaced(id_, share.workload);
}

bool
Server::remove(WorkloadId w)
{
    auto it = std::find_if(tasks_.begin(), tasks_.end(),
                           [w](const TaskShare &t) {
                               return t.workload == w;
                           });
    if (it == tasks_.end())
        return false;
    bumpVersion();
    socket_ledger_.sub(it->socket, it->caused, it->isolation);
    tasks_.erase(it);
    if (membership_)
        membership_->taskRemoved(id_, w);
    return true;
}

bool
Server::hosts(WorkloadId w) const
{
    return share(w) != nullptr;
}

bool
Server::resize(WorkloadId w, int cores, double memory_gb)
{
    TaskShare *t = findShare(w);
    if (!t)
        return false;
    int extra_cores = cores - t->cores;
    double extra_mem = memory_gb - t->memory_gb;
    if (extra_cores > coresFree() || extra_mem > memoryFree() + 1e-9)
        return false;
    bumpVersion();
    // Scale caused pressure with the new core share.
    if (t->cores > 0) {
        double ratio = double(cores) / double(t->cores);
        IVector before = t->caused;
        t->caused = interference::scale(t->caused, ratio);
        if (before != t->caused) {
            socket_ledger_.sub(t->socket, before, t->isolation);
            socket_ledger_.add(t->socket, t->caused, t->isolation);
        }
    }
    t->cores = cores;
    t->memory_gb = memory_gb;
    // A shrink caps what the task can physically consume; the stale
    // measurement from before the resize must not report usage above
    // the new limit (the next monitoring tick re-measures anyway).
    if (t->cores_used > double(cores))
        t->cores_used = double(cores);
    return true;
}

const TaskShare *
Server::share(WorkloadId w) const
{
    for (const TaskShare &t : tasks_)
        if (t.workload == w)
            return &t;
    return nullptr;
}

TaskShare *
Server::findShare(WorkloadId w)
{
    // Mutable-reference escape hatch: every caller that writes through
    // the returned share bumps. quasar-lint: allow(mutation-journaling)
    for (TaskShare &t : tasks_)
        if (t.workload == w)
            return &t;
    return nullptr;
}

std::vector<WorkloadId>
Server::bestEffortTasks() const
{
    std::vector<WorkloadId> out;
    for (const TaskShare &t : tasks_)
        if (t.best_effort)
            out.push_back(t.workload);
    return out;
}

int
Server::coresAllocated() const
{
    int n = 0;
    for (const TaskShare &t : tasks_)
        n += t.cores;
    return n;
}

double
Server::memoryAllocated() const
{
    double m = 0.0;
    for (const TaskShare &t : tasks_)
        m += t.memory_gb;
    return m;
}

double
Server::storageAllocated() const
{
    double s = 0.0;
    for (const TaskShare &t : tasks_)
        s += t.storage_gb;
    return s;
}

IVector
Server::rawPressureExcluding(WorkloadId w) const
{
    IVector total = injected_[0];
    for (int s = 1; s < num_sockets_; ++s)
        for (size_t i = 0; i < kNumSources; ++i)
            total[i] += injected_[size_t(s)][i];
    for (const TaskShare &t : tasks_) {
        if (t.workload == w)
            continue;
        for (size_t i = 0; i < kNumSources; ++i) {
            // Pressure inside a private partition stays there.
            if (t.isolation[i] == 0.0)
                total[i] += t.caused[i];
        }
    }
    return total;
}

void
Server::localPressureExcluding(
    WorkloadId w,
    std::array<IVector, topology::kMaxSockets> &local) const
{
    for (int s = 0; s < num_sockets_; ++s)
        local[size_t(s)] = injected_[size_t(s)];
    for (const TaskShare &t : tasks_) {
        if (t.workload == w)
            continue;
        IVector &home = local[size_t(t.socket)];
        for (size_t i = 0; i < kNumSources; ++i) {
            // Pressure inside a private partition stays there. The
            // mask holds exact sentinels (0.0/1.0 assigned verbatim),
            // never arithmetic. quasar-lint: allow(decision-purity)
            if (t.isolation[i] == 0.0)
                home[i] += t.caused[i];
        }
    }
}

IVector
Server::viewFromLocal(
    const std::array<IVector, topology::kMaxSockets> &local,
    int socket) const
{
    IVector raw = local[size_t(socket)];
    for (int s = 0; s < num_sockets_; ++s) {
        if (s == socket)
            continue;
        for (size_t i = 0; i < kNumSources; ++i)
            raw[i] += cross_[i] * local[size_t(s)][i];
    }
    return raw;
}

IVector
Server::normalizeAt(const IVector &raw, int socket,
                    const TaskShare *self) const
{
    const IVector &caps = socket_caps_[size_t(socket)];
    IVector out;
    for (size_t i = 0; i < kNumSources; ++i) {
        // An isolated source is contention-free for this task. Exact
        // sentinel compare, same as localPressureExcluding.
        // quasar-lint: allow(decision-purity)
        if (self && self->isolation[i] != 0.0) {
            out[i] = 0.0;
            continue;
        }
        double cap = caps[i];
        out[i] = cap > 0.0 ? raw[i] / cap : 0.0;
    }
    return out;
}

IVector
Server::contentionFor(WorkloadId w) const
{
    const TaskShare *self = share(w);
    int socket = self ? self->socket : 0;
    std::array<IVector, topology::kMaxSockets> local;
    localPressureExcluding(w, local);
    return normalizeAt(viewFromLocal(local, socket), socket, self);
}

IVector
Server::contentionForNewcomer() const
{
    return contentionFor(kInvalidWorkload);
}

IVector
Server::contentionForNewcomerAt(int socket) const
{
    assert(socket >= 0 && socket < num_sockets_);
    std::array<IVector, topology::kMaxSockets> local;
    localPressureExcluding(kInvalidWorkload, local);
    return normalizeAt(viewFromLocal(local, socket), socket, nullptr);
}

Server::SocketSnapshot
Server::socketSnapshot() const
{
    SocketSnapshot snap;
    snap.sockets = num_sockets_;
    std::array<IVector, topology::kMaxSockets> local;
    localPressureExcluding(kInvalidWorkload, local);
    for (int s = 0; s < num_sockets_; ++s)
        snap.contention[size_t(s)] =
            normalizeAt(viewFromLocal(local, s), s, nullptr);
    for (const TaskShare &t : tasks_)
        snap.cores_homed[size_t(t.socket)] += t.cores;
    return snap;
}

int
Server::coresHomed(int socket) const
{
    int n = 0;
    for (const TaskShare &t : tasks_)
        if (t.socket == socket)
            n += t.cores;
    return n;
}

IVector
Server::maintainedSocketPressure(int socket) const
{
    IVector v = socket_ledger_.local(socket);
    for (size_t i = 0; i < kNumSources; ++i)
        v[i] += injected_[size_t(socket)][i];
    return v;
}

IVector
Server::freshSocketPressure(int socket) const
{
    std::array<IVector, topology::kMaxSockets> local;
    localPressureExcluding(kInvalidWorkload, local);
    return local[size_t(socket)];
}

IVector
Server::rawPressure() const
{
    return rawPressureExcluding(kInvalidWorkload);
}

void
Server::injectPressure(const IVector &normalized)
{
    injectPressureAt(0, normalized);
}

void
Server::injectPressureAt(int socket, const IVector &normalized)
{
    assert(socket >= 0 && socket < num_sockets_);
    bumpVersion();
    const IVector &caps = socket_caps_[size_t(socket)];
    for (size_t i = 0; i < kNumSources; ++i)
        injected_[size_t(socket)][i] += normalized[i] * caps[i];
}

void
Server::clearInjectedPressure()
{
    bumpVersion();
    for (IVector &v : injected_)
        v = interference::zeroVector();
}

bool
Server::setIsolation(WorkloadId w, interference::Source source,
                     bool isolated)
{
    TaskShare *t = findShare(w);
    if (!t)
        return false;
    bumpVersion();
    double next = isolated ? 1.0 : 0.0;
    double prev = t->isolation[static_cast<size_t>(source)];
    if (prev != next) {
        // The grant moves the share's pressure into (or out of) its
        // private partition; mirror that in the maintained ledger.
        double delta = t->caused[static_cast<size_t>(source)];
        socket_ledger_.adjustSource(t->socket, source,
                                    isolated ? -delta : delta);
    }
    t->isolation[static_cast<size_t>(source)] = next;
    return true;
}

bool
Server::setUsage(WorkloadId w, double cores_used)
{
    TaskShare *t = findShare(w);
    if (!t)
        return false;
    t->cores_used = std::clamp(cores_used, 0.0, double(t->cores));
    return true;
}

double
Server::cpuUtilization() const
{
    double used = 0.0;
    for (const TaskShare &t : tasks_)
        used += t.cores_used;
    return platform_.cores > 0 ? used / double(platform_.cores) : 0.0;
}

double
Server::cpuReservedFraction() const
{
    return platform_.cores > 0
               ? double(coresAllocated()) / double(platform_.cores)
               : 0.0;
}

double
Server::memoryUtilization() const
{
    return platform_.memory_gb > 0.0
               ? memoryAllocated() / platform_.memory_gb
               : 0.0;
}

double
Server::storageUtilization() const
{
    return platform_.storage_gb > 0.0
               ? storageAllocated() / platform_.storage_gb
               : 0.0;
}

} // namespace quasar::sim
