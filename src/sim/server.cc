#include "sim/server.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasar::sim
{

using interference::IVector;
using interference::kNumSources;

bool
Server::canFit(int cores, double memory_gb, double storage_gb) const
{
    if (state_ == ServerState::Down)
        return false;
    return cores <= coresFree() && memory_gb <= memoryFree() + 1e-9 &&
           storage_gb <= storageFree() + 1e-9;
}

std::vector<TaskShare>
Server::markDown()
{
    std::vector<TaskShare> displaced;
    if (state_ == ServerState::Down)
        return displaced;
    bumpVersion();
    state_ = ServerState::Down;
    speed_factor_ = 1.0;
    displaced.swap(tasks_);
    injected_ = interference::zeroVector();
    if (membership_)
        for (const TaskShare &t : displaced)
            membership_->taskRemoved(id_, t.workload);
    return displaced;
}

bool
Server::degrade(double speed_factor)
{
    if (state_ == ServerState::Down)
        return false;
    // Clamp into [0, 1): 0 models a fully stalled machine (failing
    // controller, thermal shutdown-in-progress) that still holds its
    // shares; NaN and negative inputs stall rather than corrupt.
    if (!(speed_factor >= 0.0))
        speed_factor = 0.0;
    speed_factor = std::min(speed_factor, std::nextafter(1.0, 0.0));
    bumpVersion();
    state_ = ServerState::Degraded;
    speed_factor_ = speed_factor;
    return true;
}

void
Server::recover()
{
    bumpVersion();
    state_ = ServerState::Up;
    speed_factor_ = 1.0;
}

bool
Server::checkInvariants() const
{
    if (coresAllocated() > platform_.cores)
        return false;
    if (memoryAllocated() > platform_.memory_gb + 1e-6)
        return false;
    if (storageAllocated() > platform_.storage_gb + 1e-6)
        return false;
    if (state_ == ServerState::Down && !tasks_.empty())
        return false;
    // Fully stalled (speed 0) is legal only in the degraded state.
    if (speed_factor_ < 0.0 || speed_factor_ > 1.0)
        return false;
    if (state_ != ServerState::Degraded && speed_factor_ != 1.0)
        return false;
    for (size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i].workload == kInvalidWorkload)
            return false;
        if (tasks_[i].cores_used > double(tasks_[i].cores) + 1e-9)
            return false;
        for (size_t j = i + 1; j < tasks_.size(); ++j)
            if (tasks_[i].workload == tasks_[j].workload)
                return false;
    }
    return true;
}

void
Server::place(const TaskShare &share)
{
    assert(share.workload != kInvalidWorkload);
    assert(!hosts(share.workload));
    assert(canFit(share.cores, share.memory_gb, share.storage_gb));
    bumpVersion();
    tasks_.push_back(share);
    if (membership_)
        membership_->taskPlaced(id_, share.workload);
}

bool
Server::remove(WorkloadId w)
{
    auto it = std::find_if(tasks_.begin(), tasks_.end(),
                           [w](const TaskShare &t) {
                               return t.workload == w;
                           });
    if (it == tasks_.end())
        return false;
    bumpVersion();
    tasks_.erase(it);
    if (membership_)
        membership_->taskRemoved(id_, w);
    return true;
}

bool
Server::hosts(WorkloadId w) const
{
    return share(w) != nullptr;
}

bool
Server::resize(WorkloadId w, int cores, double memory_gb)
{
    TaskShare *t = findShare(w);
    if (!t)
        return false;
    int extra_cores = cores - t->cores;
    double extra_mem = memory_gb - t->memory_gb;
    if (extra_cores > coresFree() || extra_mem > memoryFree() + 1e-9)
        return false;
    bumpVersion();
    // Scale caused pressure with the new core share.
    if (t->cores > 0) {
        double ratio = double(cores) / double(t->cores);
        t->caused = interference::scale(t->caused, ratio);
    }
    t->cores = cores;
    t->memory_gb = memory_gb;
    // A shrink caps what the task can physically consume; the stale
    // measurement from before the resize must not report usage above
    // the new limit (the next monitoring tick re-measures anyway).
    if (t->cores_used > double(cores))
        t->cores_used = double(cores);
    return true;
}

const TaskShare *
Server::share(WorkloadId w) const
{
    for (const TaskShare &t : tasks_)
        if (t.workload == w)
            return &t;
    return nullptr;
}

TaskShare *
Server::findShare(WorkloadId w)
{
    for (TaskShare &t : tasks_)
        if (t.workload == w)
            return &t;
    return nullptr;
}

std::vector<WorkloadId>
Server::bestEffortTasks() const
{
    std::vector<WorkloadId> out;
    for (const TaskShare &t : tasks_)
        if (t.best_effort)
            out.push_back(t.workload);
    return out;
}

int
Server::coresAllocated() const
{
    int n = 0;
    for (const TaskShare &t : tasks_)
        n += t.cores;
    return n;
}

double
Server::memoryAllocated() const
{
    double m = 0.0;
    for (const TaskShare &t : tasks_)
        m += t.memory_gb;
    return m;
}

double
Server::storageAllocated() const
{
    double s = 0.0;
    for (const TaskShare &t : tasks_)
        s += t.storage_gb;
    return s;
}

IVector
Server::rawPressureExcluding(WorkloadId w) const
{
    IVector total = injected_;
    for (const TaskShare &t : tasks_) {
        if (t.workload == w)
            continue;
        for (size_t i = 0; i < kNumSources; ++i) {
            // Pressure inside a private partition stays there.
            if (t.isolation[i] == 0.0)
                total[i] += t.caused[i];
        }
    }
    return total;
}

IVector
Server::contentionFor(WorkloadId w) const
{
    IVector raw = rawPressureExcluding(w);
    const TaskShare *self = share(w);
    IVector out;
    for (size_t i = 0; i < kNumSources; ++i) {
        // An isolated source is contention-free for this task.
        if (self && self->isolation[i] != 0.0) {
            out[i] = 0.0;
            continue;
        }
        double cap = platform_.contention_capacity[i];
        out[i] = cap > 0.0 ? raw[i] / cap : 0.0;
    }
    return out;
}

IVector
Server::contentionForNewcomer() const
{
    return contentionFor(kInvalidWorkload);
}

void
Server::injectPressure(const IVector &normalized)
{
    bumpVersion();
    for (size_t i = 0; i < kNumSources; ++i)
        injected_[i] += normalized[i] * platform_.contention_capacity[i];
}

void
Server::clearInjectedPressure()
{
    bumpVersion();
    injected_ = interference::zeroVector();
}

bool
Server::setIsolation(WorkloadId w, interference::Source source,
                     bool isolated)
{
    TaskShare *t = findShare(w);
    if (!t)
        return false;
    bumpVersion();
    t->isolation[static_cast<size_t>(source)] = isolated ? 1.0 : 0.0;
    return true;
}

bool
Server::setUsage(WorkloadId w, double cores_used)
{
    TaskShare *t = findShare(w);
    if (!t)
        return false;
    t->cores_used = std::clamp(cores_used, 0.0, double(t->cores));
    return true;
}

double
Server::cpuUtilization() const
{
    double used = 0.0;
    for (const TaskShare &t : tasks_)
        used += t.cores_used;
    return platform_.cores > 0 ? used / double(platform_.cores) : 0.0;
}

double
Server::cpuReservedFraction() const
{
    return platform_.cores > 0
               ? double(coresAllocated()) / double(platform_.cores)
               : 0.0;
}

double
Server::memoryUtilization() const
{
    return platform_.memory_gb > 0.0
               ? memoryAllocated() / platform_.memory_gb
               : 0.0;
}

double
Server::storageUtilization() const
{
    return platform_.storage_gb > 0.0
               ? storageAllocated() / platform_.storage_gb
               : 0.0;
}

} // namespace quasar::sim
