#include "sim/event_queue.hh"

#include <cassert>

namespace quasar::sim
{

void
EventHandle::cancel()
{
    if (cancelled_)
        *cancelled_ = true;
}

bool
EventHandle::pending() const
{
    return cancelled_ && !*cancelled_;
}

EventHandle
EventQueue::schedule(SimTime t, std::function<void()> fn)
{
    assert(t >= now_);
    auto cancelled = std::make_shared<bool>(false);
    heap_.push(Item{t, next_seq_++, std::move(fn), cancelled});
    return EventHandle(cancelled);
}

EventHandle
EventQueue::scheduleAfter(SimTime delay, std::function<void()> fn)
{
    assert(delay >= 0.0);
    return schedule(now_ + delay, std::move(fn));
}

void
EventQueue::pruneCancelledTop() const
{
    // Cancelled items may linger in the heap; drop them as they
    // surface so the top is always the next *runnable* event.
    while (!heap_.empty() && *heap_.top().cancelled)
        heap_.pop();
}

bool
EventQueue::empty() const
{
    pruneCancelledTop();
    return heap_.empty();
}

void
EventQueue::run(SimTime until)
{
    for (;;) {
        // Judge the horizon against the next *runnable* event: a
        // cancelled entry inside the window must not let step() fire
        // a real event beyond it.
        pruneCancelledTop();
        if (heap_.empty() || heap_.top().time > until)
            break;
        if (!step())
            break;
    }
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Item item = heap_.top();
        heap_.pop();
        if (*item.cancelled)
            continue;
        assert(item.time >= now_);
        now_ = item.time;
        ++events_run_;
        item.fn();
        return true;
    }
    return false;
}

} // namespace quasar::sim
