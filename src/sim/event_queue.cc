#include "sim/event_queue.hh"

#include <cassert>

namespace quasar::sim
{

void
EventHandle::cancel()
{
    if (cancelled_)
        *cancelled_ = true;
}

bool
EventHandle::pending() const
{
    return cancelled_ && !*cancelled_;
}

EventHandle
EventQueue::schedule(SimTime t, std::function<void()> fn)
{
    assert(t >= now_);
    auto cancelled = std::make_shared<bool>(false);
    heap_.push(Item{t, next_seq_++, std::move(fn), cancelled});
    return EventHandle(cancelled);
}

EventHandle
EventQueue::scheduleAfter(SimTime delay, std::function<void()> fn)
{
    assert(delay >= 0.0);
    return schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::empty() const
{
    // Cancelled items may linger in the heap; treat them as absent.
    auto copy = heap_;
    while (!copy.empty()) {
        if (!*copy.top().cancelled)
            return false;
        copy.pop();
    }
    return true;
}

void
EventQueue::run(SimTime until)
{
    while (!heap_.empty() && heap_.top().time <= until) {
        if (!step())
            break;
    }
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Item item = heap_.top();
        heap_.pop();
        if (*item.cancelled)
            continue;
        assert(item.time >= now_);
        now_ = item.time;
        ++events_run_;
        item.fn();
        return true;
    }
    return false;
}

} // namespace quasar::sim
