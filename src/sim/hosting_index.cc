#include "sim/hosting_index.hh"

#include <algorithm>
#include <cassert>

namespace quasar::sim
{

void
HostingIndex::taskPlaced(ServerId sid, WorkloadId w)
{
    // Sorted insertion keeps the list in the ascending order the old
    // full scan produced (a server hosts a workload at most once).
    std::vector<ServerId> &servers = hosting_[w];
    auto it = std::lower_bound(servers.begin(), servers.end(), sid);
    assert(it == servers.end() || *it != sid);
    servers.insert(it, sid);

    if (task_counts_.size() <= size_t(sid))
        task_counts_.resize(size_t(sid) + 1, 0);
    if (task_counts_[size_t(sid)]++ == 0) {
        auto bit = std::lower_bound(busy_.begin(), busy_.end(), sid);
        busy_.insert(bit, sid);
    }
}

void
HostingIndex::taskRemoved(ServerId sid, WorkloadId w)
{
    auto hit = hosting_.find(w);
    assert(hit != hosting_.end());
    std::vector<ServerId> &servers = hit->second;
    auto it = std::lower_bound(servers.begin(), servers.end(), sid);
    assert(it != servers.end() && *it == sid);
    servers.erase(it);
    if (servers.empty())
        hosting_.erase(hit);

    assert(size_t(sid) < task_counts_.size() &&
           task_counts_[size_t(sid)] > 0);
    if (--task_counts_[size_t(sid)] == 0) {
        auto bit = std::lower_bound(busy_.begin(), busy_.end(), sid);
        assert(bit != busy_.end() && *bit == sid);
        busy_.erase(bit);
    }
}

const std::vector<ServerId> &
HostingIndex::serversOf(WorkloadId w) const
{
    static const std::vector<ServerId> kEmpty;
    auto it = hosting_.find(w);
    return it == hosting_.end() ? kEmpty : it->second;
}

} // namespace quasar::sim
