/**
 * @file
 * Server platform descriptions and catalogs.
 *
 * The local-cluster catalog mirrors the paper's Table 1 (platforms A-J,
 * from a dual-core Atom board to a dual-socket 24-core Xeon with 48 GB
 * of RAM). The EC2 catalog models the 14 dedicated instance types of
 * the paper's 200-server experiment.
 */

#pragma once

#include <string>
#include <vector>

#include "interference/source.hh"
#include "topology/topology.hh"

namespace quasar::sim
{

/** One server hardware configuration. */
struct Platform
{
    std::string name;       ///< short label ("A".."J" or instance type).
    int cores = 0;          ///< hardware threads available.
    double memory_gb = 0.0; ///< installed memory.
    double storage_gb = 0.0;///< local storage capacity.
    double core_perf = 1.0; ///< per-core speed relative to platform J.
    /** Hourly price of the whole server (Sec. 4.4 cost targets). */
    double cost_per_hour = 0.0;
    /**
     * Per-source contention capacity: how much aggregate pressure this
     * platform absorbs before a source saturates (1.0 = the baseline
     * 8-core box).
     */
    interference::IVector contention_capacity{};
    /**
     * Socket/LLC layout (DESIGN.md §13). Default is flat single-socket
     * — bit-identical to the pre-topology model under replay.
     */
    topology::Topology topology{};

    /** Peak compute throughput: cores * core_perf. */
    double computeCapacity() const { return cores * core_perf; }
};

/**
 * The ten heterogeneous platforms of the paper's local cluster
 * (Table 1): A(2c/4GB) .. J(24c/48GB).
 */
std::vector<Platform> localPlatforms();

/** The fourteen EC2 dedicated instance types (small .. xlarge tiers). */
std::vector<Platform> ec2Platforms();

/**
 * Clone a platform with a symmetric n-socket topology (n in
 * [1, topology::kMaxSockets]); n = 1 keeps the flat model.
 */
Platform withSockets(Platform p, int sockets,
                     int llc_domains_per_socket = 1);

/**
 * NUMA preset catalog: 1-, 2- and 4-socket boxes (the 4-socket one
 * with two LLC domains per socket, a sub-NUMA-cluster part). Same
 * capacity model as the other catalogs; only the topology differs.
 */
std::vector<Platform> numaPlatforms();

/** Find a platform by name; aborts if absent. */
const Platform &platformByName(const std::vector<Platform> &catalog,
                               const std::string &name);

/** Index of the highest-end platform (max compute capacity). */
size_t highestEndPlatform(const std::vector<Platform> &catalog);

} // namespace quasar::sim

