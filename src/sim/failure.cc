#include "sim/failure.hh"

#include <algorithm>
#include <cassert>

namespace quasar::sim
{

void
FaultInjector::crashServer(double t, ServerId sid)
{
    assert(sid < cluster_.size());
    plan_.push_back({t, FaultKind::ServerCrash, sid, -1, 0.5});
}

void
FaultInjector::recoverServer(double t, ServerId sid)
{
    assert(sid < cluster_.size());
    plan_.push_back({t, FaultKind::ServerRecovery, sid, -1, 1.0});
}

void
FaultInjector::degradeServer(double t, ServerId sid, double speed_factor)
{
    assert(sid < cluster_.size());
    // 0 is a legal full stall (Server::degrade clamps into [0, 1)).
    assert(speed_factor >= 0.0 && speed_factor < 1.0);
    plan_.push_back(
        {t, FaultKind::ServerDegrade, sid, -1, speed_factor});
}

void
FaultInjector::crashZone(double t, int zone)
{
    plan_.push_back({t, FaultKind::ZoneOutage, 0, zone, 0.5});
}

void
FaultInjector::recoverZone(double t, int zone)
{
    plan_.push_back({t, FaultKind::ZoneRecovery, 0, zone, 1.0});
}

void
FaultInjector::generateStochastic()
{
    if (cfg_.mttf_s <= 0.0 || cfg_.horizon_s <= 0.0)
        return;
    stats::Rng rng(cfg_.seed);
    // Independent renewal process per server: fail after exp(MTTF) of
    // healthy operation, recover after exp(MTTR), repeat. Generated
    // up-front in server order, so the plan is a pure function of the
    // seed regardless of how the simulation interleaves.
    for (size_t s = 0; s < cluster_.size(); ++s) {
        double t = rng.exponential(1.0 / cfg_.mttf_s);
        while (t < cfg_.horizon_s) {
            bool degrade = rng.chance(cfg_.degrade_fraction);
            double repair = rng.exponential(1.0 / cfg_.mttr_s);
            if (degrade) {
                plan_.push_back({t, FaultKind::ServerDegrade,
                                 ServerId(s), -1, cfg_.degrade_speed});
            } else {
                plan_.push_back({t, FaultKind::ServerCrash, ServerId(s),
                                 -1, 0.5});
            }
            double up_at = t + repair;
            if (up_at < cfg_.horizon_s)
                plan_.push_back({up_at, FaultKind::ServerRecovery,
                                 ServerId(s), -1, 1.0});
            t = up_at + rng.exponential(1.0 / cfg_.mttf_s);
        }
    }
}

void
FaultInjector::crashOne(ServerId sid, double t, FaultListener &listener)
{
    Server &srv = cluster_.server(sid);
    if (srv.state() == ServerState::Down)
        return; // already dead; idempotent
    listener.beforeServerStateChange(sid, t);
    std::vector<TaskShare> dropped = srv.markDown();
    std::vector<WorkloadId> displaced;
    displaced.reserve(dropped.size());
    for (const TaskShare &share : dropped)
        displaced.push_back(share.workload);
    ++stats_.crashes;
    listener.serverFailed(sid, displaced, t);
}

void
FaultInjector::recoverOne(ServerId sid, double t,
                          FaultListener &listener)
{
    Server &srv = cluster_.server(sid);
    if (srv.state() == ServerState::Up)
        return; // nothing to repair
    listener.beforeServerStateChange(sid, t);
    srv.recover();
    ++stats_.recoveries;
    listener.serverRecovered(sid, t);
}

void
FaultInjector::apply(const FaultEvent &ev, double t,
                     FaultListener &listener)
{
    switch (ev.kind) {
      case FaultKind::ServerCrash:
        crashOne(ev.server, t, listener);
        break;
      case FaultKind::ServerRecovery:
        recoverOne(ev.server, t, listener);
        break;
      case FaultKind::ServerDegrade: {
        Server &srv = cluster_.server(ev.server);
        if (srv.state() == ServerState::Down)
            break; // cannot degrade a dead machine
        listener.beforeServerStateChange(ev.server, t);
        if (srv.degrade(ev.speed_factor)) {
            ++stats_.degradations;
            listener.serverDegraded(ev.server, ev.speed_factor, t);
        }
        break;
      }
      case FaultKind::ZoneOutage:
        ++stats_.zone_outages;
        for (ServerId sid : cluster_.serversInZone(ev.zone))
            crashOne(sid, t, listener);
        break;
      case FaultKind::ZoneRecovery:
        for (ServerId sid : cluster_.serversInZone(ev.zone))
            recoverOne(sid, t, listener);
        break;
    }
}

void
FaultInjector::arm(EventQueue &events, FaultListener &listener)
{
    assert(!armed_);
    armed_ = true;
    generateStochastic();
    // Stable sort keeps same-time events in submission order, which
    // together with the queue's FIFO tie-break makes runs repeatable.
    std::stable_sort(plan_.begin(), plan_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.time < b.time;
                     });
    for (const FaultEvent &ev : plan_) {
        events.schedule(std::max(ev.time, events.now()),
                        [this, ev, &events, &listener]() {
                            apply(ev, events.now(), listener);
                        });
    }
}

} // namespace quasar::sim
