/**
 * @file
 * Change journal: a bounded append-only log of server mutations that
 * lets readers (the scheduler's dirty-set index) discover *which*
 * servers changed since their last visit in O(changes) instead of
 * scanning every server's change epoch per decision — the difference
 * between O(dirty) and O(N) bookkeeping at 10k servers.
 *
 * The cluster owns one journal; every placement-relevant Server
 * mutation (the same set that bumps Server::version()) appends the
 * server's id. Readers keep their own cursor into the log, so any
 * number of independent schedulers can consume it concurrently.
 * Entries are *not* deduplicated — readers dedupe naturally by
 * comparing their cached epoch against Server::version() when they
 * refresh an entry.
 *
 * The log is bounded: when it reaches its capacity the oldest half is
 * dropped and the base offset advances. A reader whose cursor falls
 * behind the base has missed entries and must fall back to a full
 * version-check scan (exactly the pre-dirty-set behavior), then
 * resynchronize its cursor to end(). Memory therefore stays O(cap)
 * regardless of run length, and laggards degrade gracefully instead
 * of reading stale state.
 *
 * Storage is a fixed ring buffer, so compaction is an O(1) index
 * advance — the earlier vector-backed log paid an O(cap) erase-from-
 * front every cap/2 notes, a periodic latency spike in the tick loop
 * at scale. The absolute-offset contract (base()/end()/at()) is
 * unchanged; only the retained window's physical layout moved.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace quasar::sim
{

/** Bounded multi-reader log of touched server ids. */
class ChangeJournal
{
  public:
    /** @param capacity max retained entries before compaction. */
    explicit ChangeJournal(size_t capacity = 4096)
        : cap_(capacity < 16 ? 16 : capacity), ring_(cap_)
    {
    }

    /** Record a mutation of the given server. */
    void note(ServerId id)
    {
        if (size_ == cap_) {
            // Drop the oldest half by advancing the ring head — O(1),
            // no element ever moves. Laggard readers detect the base
            // moving past their cursor and fall back to a full scan.
            size_t drop = size_ / 2;
            head_ = wrap(head_ + drop);
            base_ += drop;
            size_ -= drop;
        }
        ring_[wrap(head_ + size_)] = id;
        ++size_;
    }

    /** Offset of the oldest retained entry. */
    uint64_t base() const { return base_; }

    /** One past the newest entry (a fresh reader's cursor). */
    uint64_t end() const { return base_ + size_; }

    /** Entry at absolute offset pos (base() <= pos < end()). */
    ServerId at(uint64_t pos) const
    {
        return ring_[wrap(head_ + size_t(pos - base_))];
    }

    /** Total mutations ever recorded (monotone). */
    uint64_t totalNoted() const { return end(); }

  private:
    size_t wrap(size_t i) const { return i < cap_ ? i : i - cap_; }

    size_t cap_;
    uint64_t base_ = 0;
    size_t head_ = 0; ///< ring slot of the entry at offset base_.
    size_t size_ = 0; ///< retained entries (<= cap_).
    std::vector<ServerId> ring_;
};

} // namespace quasar::sim

