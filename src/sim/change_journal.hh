/**
 * @file
 * Change journal: a bounded append-only log of server mutations that
 * lets readers (the scheduler's dirty-set index) discover *which*
 * servers changed since their last visit in O(changes) instead of
 * scanning every server's change epoch per decision — the difference
 * between O(dirty) and O(N) bookkeeping at 10k servers.
 *
 * The cluster owns one journal; every placement-relevant Server
 * mutation (the same set that bumps Server::version()) appends the
 * server's id. Readers keep their own cursor into the log, so any
 * number of independent schedulers can consume it concurrently.
 * Entries are *not* deduplicated — readers dedupe naturally by
 * comparing their cached epoch against Server::version() when they
 * refresh an entry.
 *
 * The log is bounded: when it reaches its capacity the oldest half is
 * dropped and the base offset advances. A reader whose cursor falls
 * behind the base has missed entries and must fall back to a full
 * version-check scan (exactly the pre-dirty-set behavior), then
 * resynchronize its cursor to end(). Memory therefore stays O(cap)
 * regardless of run length, and laggards degrade gracefully instead
 * of reading stale state.
 *
 * Storage is a fixed ring buffer, so compaction is an O(1) index
 * advance — the earlier vector-backed log paid an O(cap) erase-from-
 * front every cap/2 notes, a periodic latency spike in the tick loop
 * at scale. The absolute-offset contract (base()/end()/at()) is
 * unchanged; only the retained window's physical layout moved.
 *
 * Multi-reader cursor contract (the shard decision path fans the
 * journal out to K per-shard readers, each with its own cursor):
 *
 *  1. Reads (base()/end()/at()/totalNoted()) are const and touch no
 *     mutable state, so any number of reader threads may call them
 *     concurrently — the per-shard refresh phase does exactly that.
 *  2. note() is single-writer and must never run concurrently with a
 *     reader: the simulation mutates servers (and notes them) only
 *     between decision phases, never during one. This phasing is the
 *     synchronization; the journal itself carries no locks.
 *  3. Compaction only advances base() — retained offsets keep their
 *     values and entries never move to a different absolute offset.
 *     A reader must therefore snapshot `end()` once, replay
 *     [cursor, end), and resync its cursor to that snapshot.
 *  4. A laggard whose cursor < base() has lost entries to compaction
 *     (its window was dropped while it sat out); at() would serve it
 *     entries from the *wrong* offsets, so readers MUST check
 *     cursor >= base() before replaying and otherwise fall back to a
 *     full version-check scan, then resync to end(). at() asserts
 *     the window so a reader that skips the check dies loudly in
 *     debug builds instead of replaying aliased entries. With K
 *     cursors the laggard check is per-reader: one shard falling
 *     back never perturbs the others' incremental replay.
 */

#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace quasar::sim
{

/** Bounded multi-reader log of touched server ids. */
class ChangeJournal
{
  public:
    /** @param capacity max retained entries before compaction. */
    explicit ChangeJournal(size_t capacity = 4096)
        : cap_(capacity < 16 ? 16 : capacity), ring_(cap_)
    {
    }

    /** Record a mutation of the given server. */
    void note(ServerId id)
    {
        if (size_ == cap_) {
            // Drop the oldest half by advancing the ring head — O(1),
            // no element ever moves. Laggard readers detect the base
            // moving past their cursor and fall back to a full scan.
            size_t drop = size_ / 2;
            head_ = wrap(head_ + drop);
            base_ += drop;
            size_ -= drop;
        }
        ring_[wrap(head_ + size_)] = id;
        ++size_;
    }

    /** Offset of the oldest retained entry. */
    uint64_t base() const { return base_; }

    /** One past the newest entry (a fresh reader's cursor). */
    uint64_t end() const { return base_ + size_; }

    /** Entry at absolute offset pos (base() <= pos < end()). */
    ServerId at(uint64_t pos) const
    {
        // A cursor behind base() was compacted away; serving it would
        // alias a newer entry at the wrapped slot (see the laggard
        // clause of the multi-reader contract above).
        assert(pos >= base_ && pos < end());
        return ring_[wrap(head_ + size_t(pos - base_))];
    }

    /** Total mutations ever recorded (monotone). */
    uint64_t totalNoted() const { return end(); }

  private:
    size_t wrap(size_t i) const { return i < cap_ ? i : i - cap_; }

    size_t cap_;
    uint64_t base_ = 0;
    size_t head_ = 0; ///< ring slot of the entry at offset base_.
    size_t size_ = 0; ///< retained entries (<= cap_).
    std::vector<ServerId> ring_;
};

} // namespace quasar::sim

