/**
 * @file
 * Change journal: a bounded append-only log of server mutations that
 * lets readers (the scheduler's dirty-set index) discover *which*
 * servers changed since their last visit in O(changes) instead of
 * scanning every server's change epoch per decision — the difference
 * between O(dirty) and O(N) bookkeeping at 10k servers.
 *
 * The cluster owns one journal; every placement-relevant Server
 * mutation (the same set that bumps Server::version()) appends the
 * server's id. Readers keep their own cursor into the log, so any
 * number of independent schedulers can consume it concurrently.
 * Entries are *not* deduplicated — readers dedupe naturally by
 * comparing their cached epoch against Server::version() when they
 * refresh an entry.
 *
 * The log is bounded: when it exceeds its capacity the oldest half is
 * dropped and the base offset advances. A reader whose cursor falls
 * behind the base has missed entries and must fall back to a full
 * version-check scan (exactly the pre-dirty-set behavior), then
 * resynchronize its cursor to end(). Memory therefore stays O(cap)
 * regardless of run length, and laggards degrade gracefully instead
 * of reading stale state.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace quasar::sim
{

/** Bounded multi-reader log of touched server ids. */
class ChangeJournal
{
  public:
    /** @param capacity max retained entries before compaction. */
    explicit ChangeJournal(size_t capacity = 4096)
        : cap_(capacity < 16 ? 16 : capacity)
    {
    }

    /** Record a mutation of the given server. */
    void note(ServerId id)
    {
        if (log_.size() >= cap_) {
            // Drop the oldest half; laggard readers detect the base
            // moving past their cursor and fall back to a full scan.
            size_t drop = log_.size() / 2;
            log_.erase(log_.begin(),
                       log_.begin() + std::ptrdiff_t(drop));
            base_ += drop;
        }
        log_.push_back(id);
    }

    /** Offset of the oldest retained entry. */
    uint64_t base() const { return base_; }

    /** One past the newest entry (a fresh reader's cursor). */
    uint64_t end() const { return base_ + log_.size(); }

    /** Entry at absolute offset pos (base() <= pos < end()). */
    ServerId at(uint64_t pos) const { return log_[pos - base_]; }

    /** Total mutations ever recorded (monotone). */
    uint64_t totalNoted() const { return end(); }

  private:
    size_t cap_;
    uint64_t base_ = 0;
    std::vector<ServerId> log_;
};

} // namespace quasar::sim

