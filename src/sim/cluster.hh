/**
 * @file
 * A cluster: the set of servers a manager schedules onto, with
 * aggregate capacity/utilization queries and builders for the paper's
 * two testbeds (40-server local cluster, 200-server EC2 cluster).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "sim/change_journal.hh"
#include "sim/hosting_index.hh"
#include "sim/platform.hh"
#include "sim/server.hh"

namespace quasar::sim
{

/** Aggregate point-in-time utilization snapshot. */
struct ClusterSnapshot
{
    double cpu_used = 0.0;      ///< fraction of total cores in use.
    double cpu_reserved = 0.0;  ///< fraction of total cores allocated.
    double mem_used = 0.0;      ///< fraction of total memory allocated.
    double storage_used = 0.0;  ///< fraction of total storage allocated.
};

/** The set of machines under management. */
class Cluster
{
  public:
    /**
     * Build with counts[i] servers of catalog[i]; servers are dealt
     * round-robin across num_fault_zones failure domains.
     */
    Cluster(const std::vector<Platform> &catalog,
            const std::vector<int> &counts, int num_fault_zones = 4);

    int numFaultZones() const { return num_fault_zones_; }

    /**
     * The paper's local testbed: 40 servers, 4 of each of the ten
     * Table 1 platforms A-J.
     */
    static Cluster localCluster();

    /**
     * The paper's EC2 testbed: 200 dedicated servers spread over the
     * 14 instance types (14 or 15 of each).
     */
    static Cluster ec2Cluster();

    size_t size() const { return servers_.size(); }
    Server &server(ServerId i) { return *servers_[i]; }
    const Server &server(ServerId i) const { return *servers_[i]; }

    const std::vector<Platform> &catalog() const { return catalog_; }

    /** Indices of servers with the given platform name. */
    std::vector<ServerId> serversOfPlatform(const std::string &name) const;

    /**
     * The servers currently hosting w, ascending. Answered from the
     * incrementally-maintained hosting index — O(log active
     * workloads), not an O(servers) scan.
     */
    std::vector<ServerId> serversHosting(WorkloadId w) const;

    /**
     * Servers with at least one resident task, ascending. The driver
     * tick sweeps this instead of every machine, so a mostly-idle
     * 10k-server cluster ticks at the cost of its busy subset.
     */
    const std::vector<ServerId> &busyServers() const
    {
        return hosting_->busyServers();
    }

    /** The maintained reverse index (verify sweeps cross-check it). */
    const HostingIndex &hostingIndex() const { return *hosting_; }

    /** @name Alive capacity (fault tolerance) */
    /// @{
    /** Servers not currently down. */
    size_t aliveServerCount() const;
    /** Cores on servers that are not down. */
    int aliveCores() const;
    /** Memory on servers that are not down, GB. */
    double aliveMemoryGb() const;
    /** Ids of servers in the given fault zone. */
    std::vector<ServerId> serversInZone(int zone) const;
    /** Ids of currently-down servers. */
    std::vector<ServerId> downServers() const;
    /// @}

    /** Remove w from every server; count of shares removed. */
    size_t removeEverywhere(WorkloadId w);

    /**
     * The cluster-wide change journal every server's version bumps
     * append to; dirty-set index readers keep a cursor into it. Held
     * behind a stable pointer so moving the Cluster does not
     * invalidate the servers' attachment.
     */
    const ChangeJournal &journal() const { return *journal_; }

    int totalCores() const { return total_cores_; }
    double totalMemoryGb() const { return total_memory_; }
    double totalStorageGb() const { return total_storage_; }

    ClusterSnapshot snapshot() const;

  private:
    std::vector<Platform> catalog_;
    std::unique_ptr<ChangeJournal> journal_;
    std::unique_ptr<HostingIndex> hosting_;
    std::vector<std::unique_ptr<Server>> servers_;
    int num_fault_zones_ = 1;
    int total_cores_ = 0;
    double total_memory_ = 0.0;
    double total_storage_ = 0.0;
};

} // namespace quasar::sim

