/**
 * @file
 * Fault injection (Sec. 4.4 fault tolerance): scripted and
 * seeded-stochastic machine failures delivered through the simulation
 * EventQueue. Event kinds cover the full machine-churn spectrum a
 * co-located cluster sees — single-server crashes, recoveries,
 * whole-fault-zone outages (rack/PDU), and degradations (a sick node
 * that keeps running at a reduced speed factor).
 *
 * The injector applies the state transition to the Server and hands
 * the consequences to a FaultListener (in practice the
 * ScenarioDriver), which settles workload progress, drops in-flight
 * shares, and notifies the cluster manager. All stochastic events are
 * pre-generated from the config seed at arm() time, so a run is
 * bit-identical for a fixed seed.
 */

#pragma once

#include <vector>

#include "common/types.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"
#include "stats/rng.hh"

namespace quasar::sim
{

/** What a fault event does to its target. */
enum class FaultKind
{
    ServerCrash,    ///< machine dies; shares are dropped.
    ServerRecovery, ///< machine returns, empty and at full speed.
    ServerDegrade,  ///< machine keeps running at reduced speed.
    ZoneOutage,     ///< every server in a fault zone crashes.
    ZoneRecovery,   ///< every server in a fault zone recovers.
};

/** One scheduled fault. */
struct FaultEvent
{
    double time = 0.0;
    FaultKind kind = FaultKind::ServerCrash;
    ServerId server = 0;       ///< target machine (server events).
    int zone = -1;             ///< target zone (zone events).
    double speed_factor = 0.5; ///< degraded speed (ServerDegrade).
};

/**
 * Receives fault notifications as they fire. Default implementations
 * are no-ops so tests can observe only what they care about.
 */
class FaultListener
{
  public:
    virtual ~FaultListener() = default;

    /**
     * Called immediately before any state transition of a server,
     * while its shares are still in place — the driver settles batch
     * progress at the pre-fault rate here.
     */
    virtual void beforeServerStateChange(ServerId, double) {}

    /** The server crashed; the listed workloads held resources on it. */
    virtual void serverFailed(ServerId, const std::vector<WorkloadId> &,
                              double)
    {
    }

    /** The server came back up (empty, full speed). */
    virtual void serverRecovered(ServerId, double) {}

    /** The server degraded to the given speed factor. */
    virtual void serverDegraded(ServerId, double, double) {}
};

/** Stochastic churn knobs (all optional; 0 MTTF disables). */
struct FaultInjectorConfig
{
    /** Mean time to failure per server, seconds (0 = no churn). */
    double mttf_s = 0.0;
    /** Mean time to repair, seconds. */
    double mttr_s = 600.0;
    /** Probability a stochastic failure degrades instead of crashing. */
    double degrade_fraction = 0.0;
    /** Speed factor of stochastic degradations. */
    double degrade_speed = 0.5;
    /** Generate stochastic events in [0, horizon_s). */
    double horizon_s = 0.0;
    uint64_t seed = 0xFA17;
};

/** Counters for reports and invariant checks. */
struct FaultStats
{
    size_t crashes = 0;      ///< servers actually taken down.
    size_t recoveries = 0;   ///< servers actually brought back.
    size_t degradations = 0; ///< servers actually degraded.
    size_t zone_outages = 0; ///< zone events fired.
};

/** Schedules faults and applies them to the cluster. */
class FaultInjector
{
  public:
    explicit FaultInjector(Cluster &cluster,
                           FaultInjectorConfig cfg = {})
        : cluster_(cluster), cfg_(cfg) {}

    /** @name Scripted events (call before arm()) */
    /// @{
    void crashServer(double t, ServerId sid);
    void recoverServer(double t, ServerId sid);
    void degradeServer(double t, ServerId sid, double speed_factor);
    void crashZone(double t, int zone);
    void recoverZone(double t, int zone);
    /// @}

    /**
     * Generate stochastic events (per config) and schedule everything
     * onto the queue, delivering consequences to the listener. Call
     * once, before running the queue; the listener must outlive it.
     */
    void arm(EventQueue &events, FaultListener &listener);

    /** All events (scripted + generated), in schedule order. */
    const std::vector<FaultEvent> &plan() const { return plan_; }

    const FaultStats &stats() const { return stats_; }

  private:
    void apply(const FaultEvent &ev, double t, FaultListener &listener);
    void crashOne(ServerId sid, double t, FaultListener &listener);
    void recoverOne(ServerId sid, double t, FaultListener &listener);
    void generateStochastic();

    Cluster &cluster_;
    FaultInjectorConfig cfg_;
    std::vector<FaultEvent> plan_;
    FaultStats stats_;
    bool armed_ = false;
};

} // namespace quasar::sim

