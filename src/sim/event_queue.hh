/**
 * @file
 * Minimal discrete-event simulation core: a clock and a priority queue
 * of timestamped callbacks. Events scheduled at the same time fire in
 * scheduling order (FIFO tie-break), which keeps scenario runs
 * deterministic.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace quasar::sim
{

/** Handle for cancelling a scheduled event. */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event; no-op if it already fired or was cancelled. */
    void cancel();

    /** True when the handle refers to a still-pending event. */
    bool pending() const;

  private:
    friend class EventQueue;
    explicit EventHandle(std::shared_ptr<bool> cancelled)
        : cancelled_(std::move(cancelled)) {}

    std::shared_ptr<bool> cancelled_;
};

/** The simulation clock and pending-event heap. */
class EventQueue
{
  public:
    /** Current simulated time in seconds. */
    SimTime now() const { return now_; }

    /**
     * Schedule fn at absolute time t (must be >= now).
     * @return a handle usable to cancel the event.
     */
    EventHandle schedule(SimTime t, std::function<void()> fn);

    /** Schedule fn at now + delay. */
    EventHandle scheduleAfter(SimTime delay, std::function<void()> fn);

    /** True when no runnable events remain. */
    bool empty() const;

    /**
     * Run events until the queue drains or the next runnable event
     * lies beyond until. Cancelled entries are skipped when judging
     * the horizon, so an event past until never fires just because a
     * cancelled one preceded it inside the window.
     */
    void run(SimTime until = 1e18);

    /** Execute exactly one event; returns false when none remain. */
    bool step();

    /** Number of events executed so far. */
    uint64_t eventsRun() const { return events_run_; }

  private:
    struct Item
    {
        SimTime time;
        uint64_t seq;
        std::function<void()> fn;
        std::shared_ptr<bool> cancelled;
    };
    struct Later
    {
        bool operator()(const Item &a, const Item &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    /** Pop cancelled entries off the top (logically a no-op, so it is
     *  safe from const queries; avoids copying the heap to peek). */
    void pruneCancelledTop() const;

    SimTime now_ = 0.0;
    uint64_t next_seq_ = 0;
    uint64_t events_run_ = 0;
    mutable std::priority_queue<Item, std::vector<Item>, Later> heap_;
};

} // namespace quasar::sim

