#include "sim/cluster.hh"

#include <algorithm>
#include <cassert>

namespace quasar::sim
{

Cluster::Cluster(const std::vector<Platform> &catalog,
                 const std::vector<int> &counts, int num_fault_zones)
    : catalog_(catalog),
      num_fault_zones_(std::max(num_fault_zones, 1))
{
    assert(catalog.size() == counts.size());
    ServerId next = 0;
    for (size_t i = 0; i < catalog.size(); ++i) {
        for (int k = 0; k < counts[i]; ++k) {
            int zone = int(next) % num_fault_zones_;
            servers_.push_back(
                std::make_unique<Server>(next++, catalog[i], zone));
            total_cores_ += catalog[i].cores;
            total_memory_ += catalog[i].memory_gb;
            total_storage_ += catalog[i].storage_gb;
        }
    }
    // Retain enough journal history that a scheduler running one
    // decision behind a burst touching every server still replays
    // incrementally instead of falling back to a full scan.
    journal_ = std::make_unique<ChangeJournal>(
        std::max<size_t>(4096, 8 * servers_.size()));
    // Both live behind stable pointers so moving the Cluster does not
    // invalidate the servers' attachments.
    hosting_ = std::make_unique<HostingIndex>();
    for (auto &srv : servers_) {
        srv->attachJournal(journal_.get());
        srv->attachMembership(hosting_.get());
    }
}

Cluster
Cluster::localCluster()
{
    auto catalog = localPlatforms();
    std::vector<int> counts(catalog.size(), 4);
    return Cluster(catalog, counts);
}

Cluster
Cluster::ec2Cluster()
{
    auto catalog = ec2Platforms();
    // 200 dedicated servers over 14 instance types, weighted toward
    // the larger instances (the paper's scenario keeps ~1000 cores
    // almost fully used at steady state).
    std::vector<int> counts = {6, 6, 8, 14, 6, 8, 16, 30,
                               8, 30, 8, 16, 30, 14};
    assert(counts.size() == catalog.size());
    return Cluster(catalog, counts);
}

std::vector<ServerId>
Cluster::serversOfPlatform(const std::string &name) const
{
    std::vector<ServerId> out;
    for (size_t i = 0; i < servers_.size(); ++i)
        if (servers_[i]->platform().name == name)
            out.push_back(ServerId(i));
    return out;
}

std::vector<ServerId>
Cluster::serversHosting(WorkloadId w) const
{
    return hosting_->serversOf(w);
}

size_t
Cluster::aliveServerCount() const
{
    size_t n = 0;
    for (const auto &s : servers_)
        if (s->available())
            ++n;
    return n;
}

int
Cluster::aliveCores() const
{
    int n = 0;
    for (const auto &s : servers_)
        if (s->available())
            n += s->platform().cores;
    return n;
}

double
Cluster::aliveMemoryGb() const
{
    double m = 0.0;
    for (const auto &s : servers_)
        if (s->available())
            m += s->platform().memory_gb;
    return m;
}

std::vector<ServerId>
Cluster::serversInZone(int zone) const
{
    std::vector<ServerId> out;
    for (size_t i = 0; i < servers_.size(); ++i)
        if (servers_[i]->faultZone() == zone)
            out.push_back(ServerId(i));
    return out;
}

std::vector<ServerId>
Cluster::downServers() const
{
    std::vector<ServerId> out;
    for (size_t i = 0; i < servers_.size(); ++i)
        if (!servers_[i]->available())
            out.push_back(ServerId(i));
    return out;
}

size_t
Cluster::removeEverywhere(WorkloadId w)
{
    // Copy: each remove() edits the index entry we are walking.
    std::vector<ServerId> hosting = hosting_->serversOf(w);
    size_t n = 0;
    for (ServerId sid : hosting)
        if (servers_[sid]->remove(w))
            ++n;
    return n;
}

ClusterSnapshot
Cluster::snapshot() const
{
    ClusterSnapshot snap;
    double used_cores = 0.0;
    double reserved_cores = 0.0;
    double used_mem = 0.0;
    double used_storage = 0.0;
    for (const auto &s : servers_) {
        used_cores += s->cpuUtilization() * s->platform().cores;
        reserved_cores += s->coresAllocated();
        used_mem += s->memoryAllocated();
        used_storage += s->storageAllocated();
    }
    if (total_cores_ > 0) {
        snap.cpu_used = used_cores / double(total_cores_);
        snap.cpu_reserved = reserved_cores / double(total_cores_);
    }
    if (total_memory_ > 0.0)
        snap.mem_used = used_mem / total_memory_;
    if (total_storage_ > 0.0)
        snap.storage_used = used_storage / total_storage_;
    return snap;
}

} // namespace quasar::sim
