/**
 * @file
 * A single server: cgroup-style resource accounting for resident
 * tasks, plus the contention ledger that turns co-location into the
 * interference vectors workloads experience.
 */

#pragma once

#include <array>
#include <vector>

#include "common/types.hh"
#include "interference/source.hh"
#include "sim/change_journal.hh"
#include "sim/platform.hh"
#include "topology/ledger.hh"

namespace quasar::sim
{

/**
 * Machine health (Sec. 4.4 fault tolerance). Up runs at full speed;
 * Degraded keeps running at a reduced speed factor (a sick node:
 * failing disk, thermal throttling); Down hosts nothing and accepts
 * no placements until recovery.
 */
enum class ServerState
{
    Up,
    Degraded,
    Down,
};

/**
 * Observer of task-membership changes (which workloads live on which
 * servers). place()/remove()/markDown() are the only membership
 * mutators, so a listener attached to every server sees the complete
 * edit stream — the Cluster's HostingIndex uses it to answer
 * serversHosting() in O(log n) instead of an O(servers) scan.
 */
class MembershipListener
{
  public:
    virtual ~MembershipListener() = default;
    virtual void taskPlaced(ServerId sid, WorkloadId w) = 0;
    virtual void taskRemoved(ServerId sid, WorkloadId w) = 0;
};

/** Resources granted to one workload on one server. */
struct TaskShare
{
    WorkloadId workload = kInvalidWorkload;
    int cores = 0;
    double memory_gb = 0.0;
    double storage_gb = 0.0;
    /** Pressure this task puts on each shared resource (absolute). */
    interference::IVector caused{};
    /** Measured core usage (may be below the allocation). */
    double cores_used = 0.0;
    /** True for best-effort (evictable, low-priority) placements. */
    bool best_effort = false;
    /**
     * Per-source isolation mask (Sec. 4.4 resource partitioning, e.g.
     * cache ways or NIC rate limits): on an isolated source the task
     * neither suffers nor causes contention, at a small capacity cost
     * charged by the performance model.
     */
    interference::IVector isolation{};
    /**
     * Home socket of the share (DESIGN.md §13): its caused pressure
     * lands here at full strength and is seen cross-socket attenuated.
     * Always 0 on a flat (single-socket) platform.
     */
    int socket = 0;
};

/** One machine in the cluster. */
class Server
{
  public:
    Server(ServerId id, const Platform &platform, int fault_zone = 0);

    ServerId id() const { return id_; }
    const Platform &platform() const { return platform_; }
    /** Failure-domain id (rack/PDU); Sec. 4.4 fault zones. */
    int faultZone() const { return fault_zone_; }

    /**
     * Change epoch: bumped by every mutation that affects placement
     * decisions (shares, health, injected pressure, isolation) — the
     * scheduler's per-server index revalidates against it instead of
     * re-walking the contention ledger on every placement. Usage
     * updates (setUsage) do not bump it: measured core usage feeds
     * only utilization reporting, never placement.
     */
    uint64_t version() const { return version_; }

    /**
     * Attach the cluster's change journal: every version bump is also
     * logged there so index readers can find dirty servers in
     * O(changes). The journal must outlive the server (the owning
     * Cluster guarantees this).
     */
    void attachJournal(ChangeJournal *journal) { journal_ = journal; }

    /**
     * Attach a task-membership observer (see MembershipListener). The
     * listener must outlive the server (the owning Cluster holds its
     * index behind a stable pointer, like the journal).
     */
    void attachMembership(MembershipListener *listener)
    {
        membership_ = listener;
    }

    /** @name Health */
    /// @{
    ServerState state() const { return state_; }
    /** True unless the server is down (degraded still serves). */
    bool available() const { return state_ != ServerState::Down; }
    /** Execution-speed multiplier: 1 up, (0,1) degraded, 0 down. */
    double speedFactor() const
    {
        return state_ == ServerState::Down ? 0.0 : speed_factor_;
    }
    /**
     * Crash the machine: every resident share is dropped and returned
     * so the caller can notify the manager of the displaced workloads.
     * Idempotent (a second crash returns nothing).
     */
    std::vector<TaskShare> markDown();
    /**
     * Enter the degraded state at the given speed factor, clamped
     * into [0, 1): 0 is a fully stalled (but not crashed) machine
     * whose resident tasks make no progress. False when down.
     */
    bool degrade(double speed_factor);
    /** Return to full-speed service (empty after a crash). */
    void recover();
    /**
     * Debug invariant check: allocations within platform capacity, no
     * duplicate workload shares, down implies empty, usage within
     * allocation. Chaos tests call this after every step.
     */
    bool checkInvariants() const;
    /// @}

    /** @name Placement */
    /// @{
    bool canFit(int cores, double memory_gb, double storage_gb) const;
    void place(const TaskShare &share);
    /** Remove a workload's share; false when not hosted here. */
    bool remove(WorkloadId w);
    bool hosts(WorkloadId w) const;
    /** Resize an existing share; false when not hosted here. */
    bool resize(WorkloadId w, int cores, double memory_gb);
    const TaskShare *share(WorkloadId w) const;
    const std::vector<TaskShare> &tasks() const { return tasks_; }
    /** Ids of best-effort tasks, eviction candidates. */
    std::vector<WorkloadId> bestEffortTasks() const;
    /// @}

    /** @name Capacity */
    /// @{
    int coresAllocated() const;
    int coresFree() const { return platform_.cores - coresAllocated(); }
    double memoryAllocated() const;
    double memoryFree() const
    {
        return platform_.memory_gb - memoryAllocated();
    }
    double storageAllocated() const;
    double storageFree() const
    {
        return platform_.storage_gb - storageAllocated();
    }
    /// @}

    /** @name Interference */
    /// @{
    /**
     * Normalized contention seen by workload w at its home socket:
     * co-runners' caused pressure (full strength same-socket,
     * attenuated cross-socket) plus any injected pressure, excluding
     * w's own contribution, over the socket's capacity. On a flat
     * platform this is bit-identical to the pre-topology flat view.
     */
    interference::IVector contentionFor(WorkloadId w) const;

    /** Contention a prospective task would see on socket 0. */
    interference::IVector contentionForNewcomer() const;

    /** Contention a prospective task would see on a given socket. */
    interference::IVector contentionForNewcomerAt(int socket) const;

    /**
     * Inject raw pressure on socket 0 (microbenchmark probes);
     * intensity is normalized, i.e. scaled by the socket's capacity
     * internally (== platform capacity on a flat machine).
     */
    void injectPressure(const interference::IVector &normalized);
    /** Inject pressure homed on a specific socket. */
    void injectPressureAt(int socket,
                          const interference::IVector &normalized);
    void clearInjectedPressure();

    /**
     * Grant or revoke a private partition of one shared resource to a
     * resident workload; false when not hosted here.
     */
    bool setIsolation(WorkloadId w, interference::Source source,
                      bool isolated);
    /// @}

    /** @name Topology (DESIGN.md §13) */
    /// @{
    int numSockets() const { return num_sockets_; }
    /** Per-socket slice of the platform's contention capacity. */
    const interference::IVector &socketCapacity(int socket) const
    {
        return socket_caps_[size_t(socket)];
    }
    /** Per-source cross-socket attenuation factors. */
    const interference::IVector &crossSocketFactor() const
    {
        return cross_;
    }
    /** Allocated cores of resident tasks homed on a socket. */
    int coresHomed(int socket) const;

    /**
     * One ordered ledger walk producing every per-socket newcomer
     * view plus homed core counts — the scheduler's refresh unit.
     * contention[0] is bitwise-equal to contentionForNewcomer().
     */
    struct SocketSnapshot
    {
        int sockets = 1;
        std::array<interference::IVector, topology::kMaxSockets>
            contention{};
        std::array<int, topology::kMaxSockets> cores_homed{};
    };
    SocketSnapshot socketSnapshot() const;

    /**
     * Maintained per-socket raw pressure (incremental ledger plus
     * injected pressure) — reporting and the verify conservation
     * sweep. Decision paths never read it: they recompute fresh
     * ordered walks so add/subtract drift cannot touch replay.
     */
    interference::IVector maintainedSocketPressure(int socket) const;
    /** Fresh recompute of the same quantity (conservation oracle). */
    interference::IVector freshSocketPressure(int socket) const;
    /** Fresh flat raw-pressure ledger (sum over sockets). */
    interference::IVector rawPressure() const;

#ifdef QUASAR_VERIFY
    /**
     * Corrupt the maintained socket ledger without touching any task
     * share — lets the verify death test prove the conservation sweep
     * catches a desynchronized ledger.
     */
    void desyncSocketLedgerForTest(int socket,
                                   interference::Source src,
                                   double raw_delta)
    {
        // Deliberately unjournaled — the whole point is to desync.
        // quasar-lint: allow(mutation-journaling)
        socket_ledger_.adjustSource(socket, src, raw_delta);
    }
#endif
    /// @}

    /** @name Measured usage (for utilization reporting) */
    /// @{
    /** Record measured core usage of a resident workload. */
    bool setUsage(WorkloadId w, double cores_used);
    /** Sum of measured usage / total cores, in [0, 1]. */
    double cpuUtilization() const;
    /** Allocated cores / total cores (the reservation view). */
    double cpuReservedFraction() const;
    double memoryUtilization() const;
    double storageUtilization() const;
    /// @}

  private:
    TaskShare *findShare(WorkloadId w);
    interference::IVector rawPressureExcluding(WorkloadId w) const;

    /**
     * Per-socket local raw pressure in ledger order (injected first,
     * then every share homed where it sits), excluding w. The single
     * sequence of floating-point adds all contention reads share, so
     * the flat (single-socket) case reproduces the pre-topology
     * arithmetic bit for bit.
     */
    void localPressureExcluding(
        WorkloadId w,
        std::array<interference::IVector, topology::kMaxSockets>
            &local) const;

    /** Raw pressure visible from one socket: local plus attenuated
     *  remote contributions. */
    interference::IVector viewFromLocal(
        const std::array<interference::IVector,
                         topology::kMaxSockets> &local,
        int socket) const;

    /** Normalize a raw view by the socket capacity, zeroing sources
     *  the (optional) reading share holds an isolation grant on. */
    interference::IVector normalizeAt(const interference::IVector &raw,
                                      int socket,
                                      const TaskShare *self) const;

    /** Note a placement-relevant mutation (see version()). */
    void bumpVersion()
    {
        ++version_;
        if (journal_)
            journal_->note(id_);
    }

    ServerId id_;
    Platform platform_;
    int fault_zone_ = 0;
    ServerState state_ = ServerState::Up;
    double speed_factor_ = 1.0;
    uint64_t version_ = 0;
    ChangeJournal *journal_ = nullptr;
    MembershipListener *membership_ = nullptr;
    std::vector<TaskShare> tasks_;
    /** Injected pressure by home socket ([0] on flat machines). */
    std::array<interference::IVector, topology::kMaxSockets>
        injected_{};
    /** @name Topology state (fixed at construction) */
    /// @{
    int num_sockets_ = 1;
    std::array<interference::IVector, topology::kMaxSockets>
        socket_caps_{};
    interference::IVector cross_{};
    /// @}
    /** Maintained per-socket ledger (see maintainedSocketPressure). */
    topology::SocketLedger socket_ledger_;
};

} // namespace quasar::sim

