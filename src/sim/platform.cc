#include "sim/platform.hh"

#include <cassert>
#include <cstdlib>

namespace quasar::sim
{

namespace
{

using interference::IVector;
using interference::Source;

/**
 * Build a contention-capacity vector from a platform's gross
 * characteristics. Compute-side sources (caches, CPU, prefetch) scale
 * with core count and speed; memory bandwidth with installed memory;
 * disk and network with a per-tier factor.
 */
IVector
capacityFor(int cores, double mem_gb, double core_perf, double io_tier)
{
    IVector v = interference::zeroVector();
    double compute = cores * core_perf / 8.0; // 8-core box = 1.0
    v[size_t(Source::MemoryBw)] = mem_gb / 16.0;
    v[size_t(Source::L1ICache)] = compute;
    v[size_t(Source::LLCache)] = compute;
    v[size_t(Source::DiskIO)] = io_tier;
    v[size_t(Source::Network)] = io_tier;
    v[size_t(Source::L2Cache)] = compute;
    v[size_t(Source::Cpu)] = compute;
    v[size_t(Source::Prefetch)] = compute;
    return v;
}

Platform
make(const std::string &name, int cores, double mem_gb, double storage_gb,
     double core_perf, double io_tier)
{
    Platform p;
    p.name = name;
    p.cores = cores;
    p.memory_gb = mem_gb;
    p.storage_gb = storage_gb;
    p.core_perf = core_perf;
    // A simple market price: compute-weighted with a memory premium.
    p.cost_per_hour =
        0.05 * cores * core_perf + 0.005 * mem_gb + 0.05 * io_tier;
    p.contention_capacity = capacityFor(cores, mem_gb, core_perf,
                                        io_tier);
    return p;
}

} // namespace

std::vector<Platform>
localPlatforms()
{
    // Table 1: cores / memory. Core speed and I/O tiers are graded from
    // the Atom board (A) up to the dual-socket Xeon (J).
    return {
        make("A", 2, 4, 250, 0.45, 0.5),
        make("B", 4, 8, 250, 0.60, 0.6),
        make("C", 8, 12, 500, 0.65, 0.8),
        make("D", 8, 16, 500, 0.75, 0.8),
        make("E", 8, 20, 500, 0.85, 1.0),
        make("F", 8, 24, 1000, 0.90, 1.0),
        make("G", 12, 16, 1000, 0.80, 1.0),
        make("H", 12, 24, 1000, 0.90, 1.2),
        make("I", 16, 48, 2000, 0.95, 1.5),
        make("J", 24, 48, 2000, 1.00, 1.5),
    };
}

std::vector<Platform>
ec2Platforms()
{
    // Fourteen dedicated instance types, small through xlarge tiers.
    return {
        make("m1.small", 1, 1.7, 160, 0.40, 0.4),
        make("m1.medium", 1, 3.75, 410, 0.55, 0.5),
        make("m1.large", 2, 7.5, 840, 0.55, 0.6),
        make("m1.xlarge", 4, 15, 1680, 0.55, 0.8),
        make("m3.medium", 1, 3.75, 400, 0.70, 0.6),
        make("m3.large", 2, 7.5, 800, 0.70, 0.8),
        make("m3.xlarge", 4, 15, 1600, 0.75, 1.0),
        make("m3.2xlarge", 8, 30, 3200, 0.75, 1.2),
        make("c1.medium", 2, 1.7, 350, 0.65, 0.6),
        make("c1.xlarge", 8, 7, 1680, 0.70, 1.0),
        make("c3.large", 2, 3.75, 320, 0.90, 0.8),
        make("c3.xlarge", 4, 7.5, 640, 0.95, 1.0),
        make("c3.2xlarge", 8, 15, 1280, 1.00, 1.2),
        make("m2.2xlarge", 4, 34.2, 850, 0.70, 1.0),
    };
}

Platform
withSockets(Platform p, int sockets, int llc_domains_per_socket)
{
    p.topology = topology::Topology::symmetric(p.cores, sockets,
                                               llc_domains_per_socket);
    assert(p.topology.valid(p.cores));
    return p;
}

std::vector<Platform>
numaPlatforms()
{
    // Socket counts follow the part class: the single-socket box is a
    // mid-range E-class machine, the 2-socket a Xeon-class J, and the
    // 4-socket a large sub-NUMA-clustered (2 LLC domains per socket)
    // consolidation host.
    return {
        withSockets(make("n1.flat", 8, 24, 1000, 0.90, 1.0), 1),
        withSockets(make("n2.twosocket", 16, 48, 2000, 0.95, 1.2), 2),
        withSockets(make("n4.quad", 32, 96, 4000, 1.00, 1.5), 4, 2),
    };
}

const Platform &
platformByName(const std::vector<Platform> &catalog,
               const std::string &name)
{
    for (const Platform &p : catalog)
        if (p.name == name)
            return p;
    assert(false && "unknown platform");
    std::abort();
}

size_t
highestEndPlatform(const std::vector<Platform> &catalog)
{
    assert(!catalog.empty());
    size_t best = 0;
    for (size_t i = 1; i < catalog.size(); ++i)
        if (catalog[i].computeCapacity() >
            catalog[best].computeCapacity()) {
            best = i;
        }
    return best;
}

} // namespace quasar::sim
