/**
 * @file
 * Reverse hosting index: workload -> hosting servers, plus the set of
 * busy (non-empty) servers — maintained incrementally from the
 * servers' membership edit stream.
 *
 * Why: the driver tick, the performance oracle, and the manager all
 * ask "which servers host w?" on hot paths. A direct answer is an
 * O(servers) scan per query; at 10k servers with thousands of active
 * workloads that scan dominated the tick (~half a second per tick in
 * BENCH_churn). The index answers in O(log active workloads) and
 * hands the tick's usage sweep the busy-server set so idle machines
 * cost nothing.
 *
 * Determinism: per-workload server lists are kept sorted ascending —
 * exactly the order the old scan produced — so every consumer
 * iterates identically and placements stay bit-identical. QUASAR_VERIFY
 * sweeps cross-check the index against a direct scan every tick.
 */

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hh"
#include "sim/server.hh"

namespace quasar::sim
{

/** Incrementally-maintained reverse index (see file comment). */
class HostingIndex : public MembershipListener
{
  public:
    void taskPlaced(ServerId sid, WorkloadId w) override;
    void taskRemoved(ServerId sid, WorkloadId w) override;

    /** Servers hosting w, ascending; empty vector when none. */
    const std::vector<ServerId> &serversOf(WorkloadId w) const;

    /** Servers with at least one resident task, ascending. */
    const std::vector<ServerId> &busyServers() const { return busy_; }

    /** Count of workloads currently holding any resources. */
    size_t hostedWorkloads() const { return hosting_.size(); }

  private:
    /** Ordered map: iteration order is part of the replay contract. */
    std::map<WorkloadId, std::vector<ServerId>> hosting_;
    std::vector<uint32_t> task_counts_; ///< resident tasks per server.
    std::vector<ServerId> busy_;
};

} // namespace quasar::sim
