/**
 * @file
 * Small shared identifiers used across modules.
 */

#pragma once

#include <cstdint>

namespace quasar
{

/** Unique workload identifier assigned at submission. */
using WorkloadId = uint64_t;

/** Sentinel for "no workload". */
constexpr WorkloadId kInvalidWorkload = ~0ULL;

/** Server index within a cluster. */
using ServerId = uint32_t;

/** Simulated time in seconds. */
using SimTime = double;

} // namespace quasar

