/**
 * @file
 * Side-effect-free profiling of incoming workloads (paper Secs. 3.2 and
 * 4.2).
 *
 * On submission, Quasar launches sandboxed copies of the workload and
 * measures it briefly under a handful of configurations:
 *  - scale-up: a canonical reference allocation plus randomly chosen
 *    alternatives on the highest-end platform,
 *  - scale-out: the same parameters on 1..4 nodes,
 *  - heterogeneity: the same parameters on a randomly chosen second
 *    platform,
 *  - interference: injected microbenchmarks ramped until performance
 *    drops below the QoS level, recording the tolerated intensity per
 *    probed source.
 *
 * All measurements carry multiplicative lognormal noise: the managers
 * never see the ground truth exactly. The Profiler also provides the
 * exhaustive (dense) rows used for the offline-characterized seed
 * workloads and for validation.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hh"
#include "workload/workload.hh"

namespace quasar::profiling
{

/** One observed matrix entry: column index and measured value. */
struct Sample
{
    size_t column = 0;
    double value = 0.0;
};

/** Everything profiling learned about one workload. */
struct ProfilingData
{
    /** Platform used for scale-up profiling (highest-end). */
    size_t scale_up_platform = 0;
    /** Reference configuration shared by all profiling runs. */
    workload::ScaleUpConfig reference;
    /** Raw measurement at the reference configuration. */
    double reference_value = 0.0;

    std::vector<Sample> scale_up;      ///< columns into the scale-up grid.
    std::vector<Sample> scale_out;     ///< columns into the node grid.
    /**
     * Columns = platform indices; measured at the small canonical
     * hetConfig() so values are comparable across platforms. Entry 0
     * is always the profiling platform (the row's normalizer).
     */
    std::vector<Sample> heterogeneity;
    std::vector<Sample> interference;  ///< columns = sources; value =
                                       ///< tolerated intensity.
    std::vector<Sample> caused;        ///< columns = sources; value =
                                       ///< caused pressure per core.

    /** Wall-clock profiling cost charged to the workload, seconds. */
    double profiling_seconds = 0.0;
};

/** Profiling knobs. */
struct ProfilerConfig
{
    /** Observed entries per classification row (paper default: 2). */
    size_t samples_per_classification = 2;
    /** Lognormal sigma of measurement noise. */
    double noise_sigma = 0.05;
    /** QoS loss that defines tolerated interference (paper: 5%). */
    double qos_loss = 0.05;
    /** Largest node count probed online for scale-out (paper: 4). */
    int max_scale_out_probe = 4;
};

/** Produces profiling data from sandboxed runs. */
class Profiler
{
  public:
    Profiler(std::vector<sim::Platform> catalog, ProfilerConfig cfg = {});

    /** Profile a workload at submission (or re-profile at time t). */
    ProfilingData profile(const workload::Workload &w, double t,
                          stats::Rng &rng) const;

    /** @name Single sandboxed measurements */
    /// @{
    /**
     * Measured performance (rate, or capacity QPS for services) of one
     * node of the given platform at cfg under zero contention.
     */
    double measureNode(const workload::Workload &w, double t,
                       const sim::Platform &platform,
                       const workload::ScaleUpConfig &cfg,
                       stats::Rng &rng) const;

    /** Measured performance of n identical nodes. */
    double measureNodes(const workload::Workload &w, double t,
                        const sim::Platform &platform,
                        const workload::ScaleUpConfig &cfg, int nodes,
                        stats::Rng &rng) const;

    /**
     * Probe tolerated intensity for one interference source by ramping
     * a microbenchmark (noise-free probe, quantized by the ramp step).
     */
    double probeTolerance(const workload::Workload &w, double t,
                          const sim::Platform &platform,
                          const workload::ScaleUpConfig &cfg,
                          interference::Source source) const;
    /// @}

    /**
     * Measured pressure per allocated core the workload causes on one
     * source (observed by co-running a canary probe next to it).
     */
    double measureCausedPerCore(const workload::Workload &w, double t,
                                interference::Source source,
                                stats::Rng &rng) const;

    /** @name Dense (exhaustive offline) rows */
    /// @{
    std::vector<double> denseScaleUpRow(const workload::Workload &w,
                                        double t, stats::Rng &rng) const;
    std::vector<double>
    denseScaleOutRow(const workload::Workload &w, double t,
                     const workload::ScaleUpConfig &ref,
                     stats::Rng &rng) const;
    std::vector<double>
    denseHeterogeneityRow(const workload::Workload &w, double t,
                          stats::Rng &rng) const;
    std::vector<double>
    denseInterferenceRow(const workload::Workload &w, double t,
                         const workload::ScaleUpConfig &ref) const;
    std::vector<double> denseCausedRow(const workload::Workload &w,
                                       double t, stats::Rng &rng) const;
    /// @}

    /**
     * Profiling wall-clock cost by workload type (paper Sec. 3.4:
     * 10-15 s for batch, minutes for analytics with dataset, up to
     * 3-5 min setup for stateful services).
     */
    double profilingSeconds(const workload::Workload &w,
                            size_t num_samples) const;

    /** Clamp a configuration to what a platform can host. */
    static workload::ScaleUpConfig
    clampConfig(const workload::ScaleUpConfig &cfg,
                const sim::Platform &platform);

    /** The canonical reference configuration on a platform. */
    static workload::ScaleUpConfig
    referenceConfig(const sim::Platform &platform,
                    workload::WorkloadType type);

    /**
     * The small canonical configuration (1 core, 1 GB) used for
     * heterogeneity profiling: it fits every platform, so measured
     * values isolate per-platform speed rather than capacity.
     */
    static workload::ScaleUpConfig hetConfig();

    const std::vector<sim::Platform> &catalog() const { return catalog_; }
    const ProfilerConfig &config() const { return cfg_; }
    size_t scaleUpPlatform() const { return scale_up_platform_; }

  private:
    std::vector<sim::Platform> catalog_;
    ProfilerConfig cfg_;
    size_t scale_up_platform_;
};

} // namespace quasar::profiling

