#include "profiling/profiler.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "interference/microbench.hh"

namespace quasar::profiling
{

using workload::ScaleUpConfig;
using workload::Workload;
using workload::WorkloadType;

Profiler::Profiler(std::vector<sim::Platform> catalog, ProfilerConfig cfg)
    : catalog_(std::move(catalog)), cfg_(cfg),
      scale_up_platform_(sim::highestEndPlatform(catalog_))
{
    assert(!catalog_.empty());
    assert(cfg_.samples_per_classification >= 1);
}

ScaleUpConfig
Profiler::clampConfig(const ScaleUpConfig &cfg,
                      const sim::Platform &platform)
{
    ScaleUpConfig out = cfg;
    out.cores = std::min(out.cores, platform.cores);
    out.memory_gb = std::min(out.memory_gb, platform.memory_gb);
    return out;
}

ScaleUpConfig
Profiler::referenceConfig(const sim::Platform &platform,
                          WorkloadType type)
{
    auto grid = workload::scaleUpGrid(platform, type);
    assert(!grid.empty());
    // Pick the grid column closest to half the platform's cores and
    // memory, preferring default-ish knobs; deterministic.
    double half_c = std::max(1.0, platform.cores / 2.0);
    double half_m = std::max(1.0, platform.memory_gb / 2.0);
    size_t best = 0;
    double best_score = 1e18;
    for (size_t i = 0; i < grid.size(); ++i) {
        const ScaleUpConfig &g = grid[i];
        double score = std::fabs(std::log(double(g.cores) / half_c)) +
                       std::fabs(std::log(g.memory_gb / half_m));
        if (type == WorkloadType::Analytics) {
            score +=
                0.1 * std::fabs(std::log(double(g.knobs.mappers_per_node) /
                                         8.0));
            score += 0.1 * std::fabs(std::log(g.knobs.heap_gb / 1.0));
            if (g.knobs.compression != workload::Compression::Lzo)
                score += 0.05;
        }
        if (score < best_score) {
            best_score = score;
            best = i;
        }
    }
    return grid[best];
}

ScaleUpConfig
Profiler::hetConfig()
{
    ScaleUpConfig cfg;
    cfg.cores = 1;
    cfg.memory_gb = 1.0;
    cfg.knobs.mappers_per_node = 4;
    cfg.knobs.heap_gb = 0.75;
    return cfg;
}

double
Profiler::measureNode(const Workload &w, double t,
                      const sim::Platform &platform,
                      const ScaleUpConfig &cfg, stats::Rng &rng) const
{
    const workload::GroundTruth &truth = w.truthAt(t);
    double rate = truth.nodeRate(platform, clampConfig(cfg, platform),
                                 interference::zeroVector());
    double value = workload::isLatencyCritical(w.type)
                       ? truth.capacityQps(rate)
                       : rate;
    return value * rng.lognormalNoise(cfg_.noise_sigma);
}

double
Profiler::measureNodes(const Workload &w, double t,
                       const sim::Platform &platform,
                       const ScaleUpConfig &cfg, int nodes,
                       stats::Rng &rng) const
{
    assert(nodes >= 1);
    const workload::GroundTruth &truth = w.truthAt(t);
    double node_rate = truth.nodeRate(platform,
                                      clampConfig(cfg, platform),
                                      interference::zeroVector());
    std::vector<double> rates(size_t(nodes), node_rate);
    double rate = truth.jobRate(rates);
    double value = workload::isLatencyCritical(w.type)
                       ? truth.capacityQps(rate)
                       : rate;
    return value * rng.lognormalNoise(cfg_.noise_sigma);
}

double
Profiler::probeTolerance(const Workload &w, double t,
                         const sim::Platform &platform,
                         const ScaleUpConfig &cfg,
                         interference::Source source) const
{
    const workload::GroundTruth &truth = w.truthAt(t);
    ScaleUpConfig clamped = clampConfig(cfg, platform);
    auto perf_at = [&](const interference::IVector &contention) {
        return truth.nodeRate(platform, clamped, contention);
    };
    return interference::probeToleratedIntensity(perf_at, source,
                                                 cfg_.qos_loss);
}

ProfilingData
Profiler::profile(const Workload &w, double t, stats::Rng &rng) const
{
    ProfilingData data;
    data.scale_up_platform = scale_up_platform_;
    const sim::Platform &top = catalog_[scale_up_platform_];

    auto grid = workload::scaleUpGrid(top, w.type);
    ScaleUpConfig ref = referenceConfig(top, w.type);
    size_t ref_col = 0;
    for (size_t i = 0; i < grid.size(); ++i)
        if (grid[i] == ref) {
            ref_col = i;
            break;
        }
    data.reference = ref;
    data.reference_value = measureNode(w, t, top, ref, rng);

    const size_t k = cfg_.samples_per_classification;

    // Scale-up: the reference plus columns sampled from the far part
    // of the configuration space (random among the most distant
    // columns — a D-optimal-ish design that makes two samples
    // informative about the response shape).
    data.scale_up.push_back({ref_col, data.reference_value});
    {
        std::vector<std::pair<double, size_t>> far;
        far.reserve(grid.size());
        for (size_t i = 0; i < grid.size(); ++i) {
            if (i == ref_col)
                continue;
            double d =
                std::fabs(std::log(double(grid[i].cores) /
                                   double(ref.cores))) +
                std::fabs(std::log(grid[i].memory_gb / ref.memory_gb));
            far.emplace_back(d, i);
        }
        std::sort(far.rbegin(), far.rend());
        size_t pool = std::max<size_t>(1, far.size() * 3 / 10);
        auto perm = rng.permutation(pool);
        for (size_t pi : perm) {
            if (data.scale_up.size() >= k)
                break;
            size_t i = far[pi].second;
            data.scale_up.push_back(
                {i, measureNode(w, t, top, grid[i], rng)});
        }
    }

    // Scale-out: node-count grid, sampled at 1 and small counts.
    if (workload::isDistributed(w.type)) {
        auto ngrid = workload::scaleOutGrid();
        data.scale_out.push_back({0, data.reference_value}); // n = 1
        std::vector<size_t> small_cols;
        for (size_t i = 1; i < ngrid.size(); ++i)
            if (ngrid[i] <= cfg_.max_scale_out_probe)
                small_cols.push_back(i);
        auto perm = rng.permutation(small_cols.size());
        for (size_t pi : perm) {
            if (data.scale_out.size() >= k)
                break;
            size_t col = small_cols[pi];
            data.scale_out.push_back(
                {col, measureNodes(w, t, top, ref, ngrid[col], rng)});
        }
    }

    // Heterogeneity: the scale-up platform plus random other types,
    // all at the small canonical configuration.
    ScaleUpConfig het = hetConfig();
    data.heterogeneity.push_back(
        {scale_up_platform_, measureNode(w, t, top, het, rng)});
    {
        auto perm = rng.permutation(catalog_.size());
        for (size_t i : perm) {
            if (data.heterogeneity.size() >= k)
                break;
            if (i == scale_up_platform_)
                continue;
            data.heterogeneity.push_back(
                {i, measureNode(w, t, catalog_[i], het, rng)});
        }
    }

    // Interference: ramp microbenchmarks on randomly chosen sources;
    // the same co-run also observes the pressure the workload causes.
    {
        auto perm = rng.permutation(interference::kNumSources);
        for (size_t i : perm) {
            if (data.interference.size() >= k)
                break;
            auto src = interference::sourceAt(i);
            data.interference.push_back(
                {i, probeTolerance(w, t, top, ref, src)});
            data.caused.push_back(
                {i, measureCausedPerCore(w, t, src, rng)});
        }
    }

    size_t total_samples = data.scale_up.size() + data.scale_out.size() +
                           data.heterogeneity.size() +
                           data.interference.size();
    data.profiling_seconds = profilingSeconds(w, total_samples);
    return data;
}

std::vector<double>
Profiler::denseScaleUpRow(const Workload &w, double t,
                          stats::Rng &rng) const
{
    const sim::Platform &top = catalog_[scale_up_platform_];
    auto grid = workload::scaleUpGrid(top, w.type);
    std::vector<double> row;
    row.reserve(grid.size());
    for (const ScaleUpConfig &cfg : grid)
        row.push_back(measureNode(w, t, top, cfg, rng));
    return row;
}

std::vector<double>
Profiler::denseScaleOutRow(const Workload &w, double t,
                           const ScaleUpConfig &ref,
                           stats::Rng &rng) const
{
    const sim::Platform &top = catalog_[scale_up_platform_];
    auto ngrid = workload::scaleOutGrid();
    std::vector<double> row;
    row.reserve(ngrid.size());
    for (int n : ngrid)
        row.push_back(measureNodes(w, t, top, ref, n, rng));
    return row;
}

std::vector<double>
Profiler::denseHeterogeneityRow(const Workload &w, double t,
                                stats::Rng &rng) const
{
    ScaleUpConfig het = hetConfig();
    std::vector<double> row;
    row.reserve(catalog_.size());
    for (const sim::Platform &p : catalog_)
        row.push_back(measureNode(w, t, p, het, rng));
    return row;
}

double
Profiler::measureCausedPerCore(const Workload &w, double t,
                               interference::Source source,
                               stats::Rng &rng) const
{
    const workload::GroundTruth &truth = w.truthAt(t);
    size_t i = static_cast<size_t>(source);
    return truth.sensitivity.caused_per_core[i] *
           rng.lognormalNoise(cfg_.noise_sigma);
}

std::vector<double>
Profiler::denseCausedRow(const Workload &w, double t,
                         stats::Rng &rng) const
{
    std::vector<double> row;
    row.reserve(interference::kNumSources);
    for (size_t i = 0; i < interference::kNumSources; ++i)
        row.push_back(
            measureCausedPerCore(w, t, interference::sourceAt(i), rng));
    return row;
}

std::vector<double>
Profiler::denseInterferenceRow(const Workload &w, double t,
                               const ScaleUpConfig &ref) const
{
    const sim::Platform &top = catalog_[scale_up_platform_];
    std::vector<double> row;
    row.reserve(interference::kNumSources);
    for (size_t i = 0; i < interference::kNumSources; ++i)
        row.push_back(probeTolerance(w, t, top, ref,
                                     interference::sourceAt(i)));
    return row;
}

double
Profiler::profilingSeconds(const Workload &w, size_t num_samples) const
{
    // The four classifications profile in parallel (paper Sec. 3.4);
    // the cost is dominated by the slowest run of each type.
    double base = 0.0;
    switch (w.type) {
      case WorkloadType::Analytics:
        base = 90.0; // small subset of map tasks to ~20% completion
        break;
      case WorkloadType::LatencyService:
        base = 10.0; // 5-10 s under live traffic
        break;
      case WorkloadType::StatefulService:
        base = 210.0; // includes service warm-up (3-5 min)
        break;
      case WorkloadType::SingleNode:
        base = 15.0;
        break;
    }
    return base + 2.0 * double(num_samples);
}

} // namespace quasar::profiling
