/**
 * @file
 * Fixed-bin histogram and empirical CDF utilities used by the benches
 * to render the paper's distribution figures (Fig. 1c, Fig. 8e, Fig. 9
 * latency CDFs) as text rows.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace quasar::stats
{

/** Equal-width histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x, double weight = 1.0);

    size_t numBins() const { return counts_.size(); }
    double binLo(size_t i) const;
    double binHi(size_t i) const;
    double count(size_t i) const { return counts_[i]; }
    double total() const { return total_; }

    /** Fraction of mass in bins with upper edge <= x (empirical CDF). */
    double cdfAt(double x) const;

    /** CDF sampled at each bin edge, as (edge, fraction) pairs. */
    std::vector<std::pair<double, double>> cdfPoints() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<double> counts_;
    double total_ = 0.0;
};

/** Render samples as an ASCII CDF table with the given column labels. */
std::string formatCdfTable(const std::vector<double> &values,
                           const std::string &value_label,
                           size_t rows = 10);

} // namespace quasar::stats

