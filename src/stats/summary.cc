#include "stats/summary.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace quasar::stats
{

void
Accumulator::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::variance() const
{
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Samples::addAll(const std::vector<double> &xs)
{
    xs_.insert(xs_.end(), xs.begin(), xs.end());
}

double
Samples::mean() const
{
    if (xs_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs_)
        s += x;
    return s / double(xs_.size());
}

double
Samples::stddev() const
{
    if (xs_.size() < 2)
        return 0.0;
    double m = mean();
    double s = 0.0;
    for (double x : xs_)
        s += (x - m) * (x - m);
    return std::sqrt(s / double(xs_.size() - 1));
}

double
Samples::min() const
{
    return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double
Samples::max() const
{
    return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

double
Samples::percentile(double p) const
{
    // Out-of-range or NaN ranks must not reach the interpolation
    // below: a negative rank cast to size_t is UB, and release
    // builds compile the assert away. NaN orders below everything,
    // matching "no meaningful rank requested".
    if (!(p >= 0.0))
        p = 0.0;
    else if (p > 100.0)
        p = 100.0;
    if (xs_.empty())
        return 0.0;
    std::vector<double> sorted(xs_);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted[0];
    double rank = p / 100.0 * double(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - double(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
Samples::fractionBelow(double threshold) const
{
    if (xs_.empty())
        return 0.0;
    size_t n = 0;
    for (double x : xs_)
        if (x <= threshold)
            ++n;
    return double(n) / double(xs_.size());
}

StateDwell::StateDwell(size_t num_states, size_t initial_state)
    : seconds_(num_states, 0.0), state_(initial_state)
{
    assert(initial_state < num_states);
}

void
StateDwell::observe(double now)
{
    if (!started_) {
        started_ = true;
        last_ = now;
        return;
    }
    seconds_[state_] += std::max(now - last_, 0.0);
    last_ = now;
}

void
StateDwell::transitionTo(size_t state, double now)
{
    assert(state < seconds_.size());
    observe(now);
    if (state != state_)
        ++transitions_;
    state_ = state;
}

double
StateDwell::secondsIn(size_t state) const
{
    return state < seconds_.size() ? seconds_[state] : 0.0;
}

double
StateDwell::fractionIn(size_t state) const
{
    double total = 0.0;
    for (double s : seconds_)
        total += s;
    return total > 0.0 ? secondsIn(state) / total : 0.0;
}

ErrorReport
makeErrorReport(const Samples &errors)
{
    ErrorReport r;
    r.avg = errors.mean();
    r.p90 = errors.percentile(90.0);
    r.max = errors.max();
    return r;
}

std::string
formatErrorReport(const ErrorReport &r)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%5.1f%% / %5.1f%% / %5.1f%%",
                  r.avg * 100.0, r.p90 * 100.0, r.max * 100.0);
    return buf;
}

} // namespace quasar::stats
