#include "stats/timeseries.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace quasar::stats
{

void
TimeSeries::record(double t, double v)
{
    assert(times_.empty() || t >= times_.back());
    times_.push_back(t);
    values_.push_back(v);
}

double
TimeSeries::meanOver(double t0, double t1) const
{
    double sum = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < times_.size(); ++i) {
        if (times_[i] >= t0 && times_[i] < t1) {
            sum += values_[i];
            ++n;
        }
    }
    return n ? sum / double(n) : 0.0;
}

double
TimeSeries::mean() const
{
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum / double(values_.size());
}

double
TimeSeries::last(double fallback) const
{
    return values_.empty() ? fallback : values_.back();
}

void
UtilizationGrid::record(size_t server, double t, double util)
{
    assert(server < series_.size());
    series_[server].record(t, util);
}

std::vector<double>
UtilizationGrid::windowMeans(double t0, double t1) const
{
    std::vector<double> out;
    out.reserve(series_.size());
    for (const auto &s : series_)
        out.push_back(s.meanOver(t0, t1));
    return out;
}

double
UtilizationGrid::overallMean() const
{
    double sum = 0.0;
    size_t n = 0;
    for (const auto &s : series_) {
        for (double v : s.values()) {
            sum += v;
            ++n;
        }
    }
    return n ? sum / double(n) : 0.0;
}

std::string
UtilizationGrid::renderHeatmap(double t0, double t1, size_t buckets) const
{
    static const char glyphs[] = " .:-=+*#%@";
    double width = (t1 - t0) / double(buckets);
    std::string out;
    out.reserve(series_.size() * (buckets + 16));
    char label[32];
    for (size_t s = 0; s < series_.size(); ++s) {
        std::snprintf(label, sizeof(label), "srv%3zu |", s);
        out += label;
        for (size_t b = 0; b < buckets; ++b) {
            double m = series_[s].meanOver(t0 + width * double(b),
                                           t0 + width * double(b + 1));
            int g = static_cast<int>(std::clamp(m, 0.0, 1.0) * 9.0);
            out += glyphs[g];
        }
        out += "|\n";
    }
    return out;
}

} // namespace quasar::stats
