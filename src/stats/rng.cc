#include "stats/rng.hh"

#include <cassert>
#include <cmath>
#include <numeric>

namespace quasar::stats
{

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
}

double
Rng::lognormalNoise(double sigma)
{
    if (sigma <= 0.0)
        return 1.0;
    std::lognormal_distribution<double> d(0.0, sigma);
    return d(engine_);
}

double
Rng::exponential(double rate)
{
    std::exponential_distribution<double> d(rate);
    return d(engine_);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    std::bernoulli_distribution d(p);
    return d(engine_);
}

double
Rng::pareto(double xm, double alpha)
{
    assert(xm > 0.0 && alpha > 0.0);
    double u = uniform(1e-12, 1.0);
    return xm / std::pow(u, 1.0 / alpha);
}

size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    assert(!weights.empty());
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    assert(total > 0.0);
    double x = uniform(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (x < acc)
            return i;
    }
    return weights.size() - 1;
}

std::vector<size_t>
Rng::permutation(size_t n)
{
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), size_t{0});
    for (size_t i = n; i > 1; --i) {
        size_t j = static_cast<size_t>(uniformInt(0, int64_t(i) - 1));
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent stream; both remain usable.
    return Rng(engine_());
}

} // namespace quasar::stats
