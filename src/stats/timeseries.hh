/**
 * @file
 * Time-series recording for utilization traces. Benches use these to
 * emit the per-server heatmap data of the paper's Figs. 7, 10 and 11
 * and the allocated-vs-used curves of Fig. 11d.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace quasar::stats
{

/** A single (time, value) sample stream. */
class TimeSeries
{
  public:
    void record(double t, double v);

    size_t size() const { return times_.size(); }
    bool empty() const { return times_.empty(); }
    double timeAt(size_t i) const { return times_[i]; }
    double valueAt(size_t i) const { return values_[i]; }

    const std::vector<double> &times() const { return times_; }
    const std::vector<double> &values() const { return values_; }

    /** Mean of values with sample time in [t0, t1). */
    double meanOver(double t0, double t1) const;

    /** Mean of all values. */
    double mean() const;

    /** Last recorded value, or fallback when empty. */
    double last(double fallback = 0.0) const;

  private:
    std::vector<double> times_;
    std::vector<double> values_;
};

/**
 * One series per server; supports window averaging for heatmap rows and
 * text rendering of the kind used in Figs. 7/10/11.
 */
class UtilizationGrid
{
  public:
    explicit UtilizationGrid(size_t num_servers) : series_(num_servers) {}

    void record(size_t server, double t, double util);

    size_t numServers() const { return series_.size(); }
    const TimeSeries &server(size_t i) const { return series_[i]; }

    /** Per-server mean utilization over a time window. */
    std::vector<double> windowMeans(double t0, double t1) const;

    /** Grand mean across servers and all samples. */
    double overallMean() const;

    /**
     * ASCII heatmap: one row per server, one column per time bucket,
     * glyphs scaled 0-100%.
     */
    std::string renderHeatmap(double t0, double t1, size_t buckets) const;

  private:
    std::vector<TimeSeries> series_;
};

} // namespace quasar::stats

