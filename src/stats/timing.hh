/**
 * @file
 * Lightweight wall-clock instrumentation for the decision path:
 * streaming timer statistics plus an RAII scoped timer. Used to
 * aggregate classify / rank / place / adapt latencies into
 * QuasarStats and the decision-path benchmark without measurable
 * overhead when a section is never entered.
 *
 * All accumulation is O(1) and allocation-free; a TimerStat is a POD
 * that can live inside hot objects (scheduler, classifier, manager
 * stats) and be read at any time.
 */

#pragma once

#include <chrono>
#include <cstdint>

namespace quasar::stats
{

/** Streaming count/total/max accumulator for one timed section. */
struct TimerStat
{
    uint64_t count = 0;
    double total_s = 0.0;
    double max_s = 0.0;

    void add(double seconds)
    {
        ++count;
        total_s += seconds;
        if (seconds > max_s)
            max_s = seconds;
    }

    /** Mean seconds per sample; 0 when nothing was recorded. */
    double meanSeconds() const
    {
        return count ? total_s / double(count) : 0.0;
    }

    void reset() { *this = TimerStat{}; }
};

/**
 * RAII timer: measures the scope's wall-clock duration on a steady
 * clock and adds it to the given TimerStat on destruction.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(TimerStat &stat)
        : stat_(stat), start_(std::chrono::steady_clock::now())
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        auto end = std::chrono::steady_clock::now();
        stat_.add(std::chrono::duration<double>(end - start_).count());
    }

  private:
    TimerStat &stat_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace quasar::stats

