#include "stats/histogram.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "stats/summary.hh"

namespace quasar::stats
{

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / double(bins)), counts_(bins, 0.0)
{
    assert(hi > lo && bins > 0);
}

void
Histogram::add(double x, double weight)
{
    double clamped = std::clamp(x, lo_, std::nextafter(hi_, lo_));
    auto bin = static_cast<size_t>((clamped - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
    counts_[bin] += weight;
    total_ += weight;
}

double
Histogram::binLo(size_t i) const
{
    return lo_ + width_ * double(i);
}

double
Histogram::binHi(size_t i) const
{
    return lo_ + width_ * double(i + 1);
}

double
Histogram::cdfAt(double x) const
{
    if (total_ <= 0.0)
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (binHi(i) <= x)
            acc += counts_[i];
        else
            break;
    }
    return acc / total_;
}

std::vector<std::pair<double, double>>
Histogram::cdfPoints() const
{
    std::vector<std::pair<double, double>> pts;
    pts.reserve(counts_.size() + 1);
    double acc = 0.0;
    pts.emplace_back(lo_, 0.0);
    for (size_t i = 0; i < counts_.size(); ++i) {
        acc += counts_[i];
        pts.emplace_back(binHi(i), total_ > 0.0 ? acc / total_ : 0.0);
    }
    return pts;
}

std::string
formatCdfTable(const std::vector<double> &values,
               const std::string &value_label, size_t rows)
{
    Samples s;
    s.addAll(values);
    std::string out = "  pctl   " + value_label + "\n";
    char buf[64];
    for (size_t i = 0; i <= rows; ++i) {
        double p = 100.0 * double(i) / double(rows);
        std::snprintf(buf, sizeof(buf), "  %5.1f  %10.3f\n", p,
                      s.percentile(p));
        out += buf;
    }
    return out;
}

} // namespace quasar::stats
