/**
 * @file
 * Streaming and batch summary statistics: mean/stddev accumulation,
 * percentiles over stored samples, and error-report helpers used by the
 * classification-validation experiments (paper Table 2).
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace quasar::stats
{

/**
 * Welford-style streaming accumulator for mean and variance; does not
 * store samples.
 */
class Accumulator
{
  public:
    void add(double x);

    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Sample set with percentile queries. Stores all samples; intended for
 * experiment post-processing, not hot paths.
 */
class Samples
{
  public:
    void add(double x) { xs_.push_back(x); }
    void addAll(const std::vector<double> &xs);

    size_t count() const { return xs_.size(); }
    bool empty() const { return xs_.empty(); }
    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;

    /**
     * Linear-interpolated percentile.
     * @param p percentile, clamped into [0, 100] (NaN maps to 0,
     *        i.e. the minimum); 0.0 on an empty sample set. Safe to
     *        call from report/bench code without pre-validation.
     */
    double percentile(double p) const;

    /** Fraction of samples satisfying x <= threshold. */
    double fractionBelow(double threshold) const;

    const std::vector<double> &values() const { return xs_; }

  private:
    std::vector<double> xs_;
};

/**
 * Time-in-state accounting over a small enumerated state space (e.g.
 * the overload controller's Normal/Pressured/Overloaded machine).
 * States are dense small integers; time advances monotonically via
 * observe()/transitionTo(). Used for "time in overload" reporting.
 */
class StateDwell
{
  public:
    explicit StateDwell(size_t num_states, size_t initial_state = 0);

    /** Credit elapsed time to the current state (now >= last call). */
    void observe(double now);

    /** Credit elapsed time, then switch to `state`. */
    void transitionTo(size_t state, double now);

    size_t state() const { return state_; }
    size_t transitions() const { return transitions_; }

    /** Seconds credited to `state` so far (up to the last observe). */
    double secondsIn(size_t state) const;

    /** secondsIn / total observed time; 0 before any time passes. */
    double fractionIn(size_t state) const;

  private:
    std::vector<double> seconds_;
    size_t state_ = 0;
    size_t transitions_ = 0;
    double last_ = 0.0;
    bool started_ = false;
};

/**
 * avg / 90th-percentile / max triple, the error format of paper
 * Table 2.
 */
struct ErrorReport
{
    double avg = 0.0;
    double p90 = 0.0;
    double max = 0.0;
};

/** Build an ErrorReport from a set of absolute relative errors. */
ErrorReport makeErrorReport(const Samples &errors);

/** Render an ErrorReport as "a% / b% / c%" for bench output. */
std::string formatErrorReport(const ErrorReport &r);

} // namespace quasar::stats

