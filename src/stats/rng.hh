/**
 * @file
 * Seedable random number generator with the distribution helpers used
 * throughout the Quasar simulator.
 *
 * Every stochastic component takes an explicit Rng (or a seed) so that
 * experiments are reproducible run-to-run; nothing in the library reads
 * global entropy.
 */

#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace quasar::stats
{

/**
 * Thin wrapper over std::mt19937_64 exposing the handful of
 * distributions the simulator needs. Copyable; copies diverge.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /** Uniform real in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Gaussian with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal multiplicative noise factor with median 1.0.
     * @param sigma log-space standard deviation.
     */
    double lognormalNoise(double sigma);

    /** Exponential with given rate (mean 1/rate). */
    double exponential(double rate);

    /** Bernoulli trial. */
    bool chance(double p);

    /** Pareto-distributed value with scale xm and shape alpha. */
    double pareto(double xm, double alpha);

    /** Pick an index in [0, weights.size()) proportionally to weight. */
    size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an index vector [0, n). */
    std::vector<size_t> permutation(size_t n);

    /** Fork a child generator with an independent stream. */
    Rng fork();

    /** Underlying engine, for use with std:: distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace quasar::stats

