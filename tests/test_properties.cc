/**
 * @file
 * Property-based sweeps (parameterized over seeds): invariants of the
 * ground-truth model, the queueing closed forms, the classifier's
 * output ranges, and the scheduler's feasibility guarantees must hold
 * for arbitrary workloads, not just hand-picked cases.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/classifier.hh"
#include "core/scheduler.hh"
#include "workload/factory.hh"
#include "workload/queueing.hh"

using namespace quasar;
using workload::ScaleUpConfig;
using workload::Workload;

class SeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeedSweep, TruthModelInvariants)
{
    workload::WorkloadFactory f{stats::Rng(GetParam())};
    auto catalog = sim::localPlatforms();
    Workload w = f.randomWorkload("p");
    const workload::GroundTruth &t = w.truth;

    for (const sim::Platform &p : catalog) {
        auto grid = workload::scaleUpGrid(p, w.type);
        double prev_mem_rate = -1.0;
        for (const ScaleUpConfig &cfg : grid) {
            double quiet = t.nodeRateQuiet(p, cfg);
            // Rates are positive and finite.
            EXPECT_GT(quiet, 0.0);
            EXPECT_TRUE(std::isfinite(quiet));
            // Contention can only slow a workload down.
            auto hot = interference::zeroVector();
            hot.fill(0.95);
            EXPECT_LE(t.nodeRate(p, cfg, hot), quiet + 1e-12);
            (void)prev_mem_rate;
        }
    }
    // Memory factor is non-decreasing in memory.
    double prev = 0.0;
    for (double m = 0.5; m <= 64.0; m *= 2.0) {
        double cur = workload::memoryFactor(t, m);
        EXPECT_GE(cur, prev - 1e-12);
        prev = cur;
    }
    // Scale-out efficiency starts at exactly 1.
    EXPECT_DOUBLE_EQ(t.scaleOutEfficiency(1), 1.0);
}

TEST_P(SeedSweep, SensitivityProfileInvariants)
{
    workload::WorkloadFactory f{stats::Rng(GetParam() ^ 0xABCD)};
    Workload w = f.randomWorkload("p");
    const auto &s = w.truth.sensitivity;
    for (size_t i = 0; i < interference::kNumSources; ++i) {
        auto src = interference::sourceAt(i);
        // Multiplier is 1 at zero contention and non-increasing.
        EXPECT_DOUBLE_EQ(s.sourceMultiplier(src, 0.0), 1.0);
        double prev = 1.0;
        for (double c = 0.0; c <= 1.5; c += 0.1) {
            double m = s.sourceMultiplier(src, c);
            EXPECT_LE(m, prev + 1e-12);
            EXPECT_GE(m, s.floor - 1e-12);
            prev = m;
        }
        double tol = s.toleratedIntensity(src);
        EXPECT_GE(tol, 0.0);
        EXPECT_LE(tol, 1.0);
    }
}

TEST_P(SeedSweep, QueueingMonotonicity)
{
    stats::Rng rng(GetParam() ^ 0x9999);
    double cap = rng.uniform(100.0, 1e6);
    double qos = rng.uniform(1e-4, 0.1);
    double prev_lat = 0.0, prev_frac = 1.0;
    for (double rho = 0.05; rho < 1.2; rho += 0.05) {
        double off = rho * cap;
        double lat = workload::percentileLatency(off, cap);
        double frac = workload::fractionMeetingQos(off, cap, qos);
        EXPECT_GE(lat, prev_lat - 1e-12);    // latency rises with load
        EXPECT_LE(frac, prev_frac + 1e-12);  // QoS share falls
        prev_lat = lat;
        prev_frac = frac;
    }
    double knee = workload::maxQpsWithinQos(cap, qos);
    if (knee > 0.0) {
        EXPECT_LE(workload::percentileLatency(knee * 0.999, cap),
                  qos + 1e-9);
    }
}

TEST_P(SeedSweep, ProfilerSamplesAreWellFormed)
{
    auto catalog = sim::localPlatforms();
    profiling::Profiler profiler(catalog, {});
    workload::WorkloadFactory f{stats::Rng(GetParam() ^ 0x1111)};
    stats::Rng rng(GetParam() ^ 0x2222);
    Workload w = f.randomWorkload("p");
    auto d = profiler.profile(w, 0.0, rng);
    EXPECT_GT(d.reference_value, 0.0);
    auto grid = workload::scaleUpGrid(
        catalog[profiler.scaleUpPlatform()], w.type);
    for (const auto &s : d.scale_up) {
        EXPECT_LT(s.column, grid.size());
        EXPECT_GT(s.value, 0.0);
    }
    for (const auto &s : d.interference) {
        EXPECT_LT(s.column, interference::kNumSources);
        EXPECT_GE(s.value, 0.0);
        EXPECT_LE(s.value, 1.0);
    }
    EXPECT_GT(d.profiling_seconds, 0.0);
}

namespace
{

/** Shared classifier world for the scheduler sweep (built once). */
struct SweepWorld
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler{cluster.catalog(), {}};
    core::Classifier clf{profiler, {}, 1};

    SweepWorld()
    {
        workload::WorkloadFactory f{stats::Rng(13131)};
        std::vector<Workload> seeds;
        for (int i = 0; i < 6; ++i)
            seeds.push_back(
                f.hadoopJob("s", f.rng().uniform(5.0, 150.0)));
        static const char *fams[] = {"spec-int", "parsec", "specjbb"};
        for (int i = 0; i < 6; ++i)
            seeds.push_back(f.singleNodeJob("s", fams[i % 3]));
        for (int i = 0; i < 2; ++i) {
            double q = f.rng().uniform(5e4, 2e5);
            seeds.push_back(f.memcachedService(
                "s", q, 2e-4, 30.0,
                std::make_shared<tracegen::FlatLoad>(q)));
        }
        clf.seedOffline(seeds, 0.0);
    }

    static SweepWorld &get()
    {
        static SweepWorld w;
        return w;
    }
};

} // namespace

TEST_P(SeedSweep, SchedulerFeasibilityInvariants)
{
    SweepWorld &w = SweepWorld::get();
    workload::WorkloadFactory f{stats::Rng(GetParam() ^ 0x3333)};
    stats::Rng rng(GetParam() ^ 0x4444);
    Workload job = f.randomWorkload("p");
    job.cost_cap_per_hour = rng.chance(0.5)
                                ? rng.uniform(0.5, 6.0)
                                : 0.0;
    WorkloadId id = w.registry.add(std::move(job));
    auto data = w.profiler.profile(w.registry.get(id), 0.0, rng);
    auto est = w.clf.classify(w.registry.get(id), data);

    core::GreedyScheduler sched(w.cluster, {}, &w.registry);
    double required = rng.uniform(0.1, 20.0) * est.reference_value;
    auto alloc = sched.allocate(w.registry.get(id), est, required,
                                nullptr, false);
    if (!alloc.has_value())
        return; // nothing placeable is a legal outcome

    EXPECT_FALSE(alloc->nodes.empty());
    EXPECT_GT(alloc->predicted_perf, 0.0);
    double cost = 0.0;
    std::set<ServerId> used;
    for (const auto &node : alloc->nodes) {
        const sim::Server &srv = w.cluster.server(node.server);
        // Fits the machine.
        EXPECT_LE(node.cores,
                  srv.coresFree() + 0); // cluster is empty here
        EXPECT_LE(node.memory_gb, srv.platform().memory_gb + 1e-9);
        // No duplicate servers.
        EXPECT_TRUE(used.insert(node.server).second);
        cost += srv.platform().cost_per_hour * double(node.cores) /
                double(srv.platform().cores);
        // Column consistent with the granted resources.
        EXPECT_EQ(est.scale_up_grid[node.scale_up_col].cores,
                  node.cores);
    }
    const Workload &placed = w.registry.get(id);
    if (placed.cost_cap_per_hour > 0.0) {
        EXPECT_LE(cost, placed.cost_cap_per_hour + 1e-9);
    }
    // Single-node workloads never get more than one server.
    if (!workload::isDistributed(placed.type)) {
        EXPECT_EQ(alloc->nodes.size(), 1u);
    }
}

TEST_P(SeedSweep, ClassifierOutputRanges)
{
    SweepWorld &w = SweepWorld::get();
    workload::WorkloadFactory f{stats::Rng(GetParam() ^ 0x5555)};
    stats::Rng rng(GetParam() ^ 0x6666);
    Workload job = f.randomWorkload("p");
    WorkloadId id = w.registry.add(std::move(job));
    auto data = w.profiler.profile(w.registry.get(id), 0.0, rng);
    auto est = w.clf.classify(w.registry.get(id), data);

    for (double v : est.scale_up_perf) {
        EXPECT_GE(v, 0.0);
        EXPECT_TRUE(std::isfinite(v));
    }
    for (double v : est.platform_factor) {
        EXPECT_GE(v, 0.0);
        EXPECT_TRUE(std::isfinite(v));
    }
    for (double v : est.scale_out_speedup)
        EXPECT_GE(v, 0.0);
    for (size_t i = 0; i < interference::kNumSources; ++i) {
        EXPECT_GE(est.tolerated[i], 0.0);
        EXPECT_LE(est.tolerated[i], 1.0);
        EXPECT_GE(est.caused_per_core[i], 0.0);
        EXPECT_LE(est.caused_per_core[i], 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));
