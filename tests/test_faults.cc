/**
 * @file
 * Fault-injection tests: the Server health state machine, the
 * FaultInjector (scripted, zone, and stochastic events), AdmissionQueue
 * retry/backoff edge cases, and a randomized chaos suite that kills and
 * restores machines under a live QuasarManager while checking
 * conservation invariants after every step.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "baselines/autoscale.hh"
#include "baselines/framework_scheduler.hh"
#include "baselines/reservation_ll.hh"
#include "core/admission.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"
#include "sim/failure.hh"
#include "workload/factory.hh"

using namespace quasar;
using workload::Workload;

namespace
{

sim::TaskShare
makeShare(WorkloadId id, int cores, double mem)
{
    sim::TaskShare share;
    share.workload = id;
    share.cores = cores;
    share.memory_gb = mem;
    return share;
}

/** Records every fault callback in arrival order. */
struct RecordingListener : sim::FaultListener
{
    struct Note
    {
        char what; // 'b'efore, 'f'ailed, 'r'ecovered, 'd'egraded
        ServerId server;
        double t;
        std::vector<WorkloadId> displaced;
    };
    std::vector<Note> notes;

    void beforeServerStateChange(ServerId sid, double t) override
    {
        notes.push_back({'b', sid, t, {}});
    }
    void serverFailed(ServerId sid,
                      const std::vector<WorkloadId> &displaced,
                      double t) override
    {
        notes.push_back({'f', sid, t, displaced});
    }
    void serverRecovered(ServerId sid, double t) override
    {
        notes.push_back({'r', sid, t, {}});
    }
    void serverDegraded(ServerId sid, double, double t) override
    {
        notes.push_back({'d', sid, t, {}});
    }
};

} // namespace

// ---------------------------------------------------------------------
// Server health state machine
// ---------------------------------------------------------------------

TEST(ServerHealth, CrashDropsSharesAndBlocksPlacement)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    sim::Server &srv = cluster.server(36);
    srv.place(makeShare(7, 2, 4.0));
    srv.place(makeShare(8, 1, 2.0));
    ASSERT_TRUE(srv.checkInvariants());

    std::vector<sim::TaskShare> dropped = srv.markDown();
    EXPECT_EQ(dropped.size(), 2u);
    EXPECT_EQ(srv.state(), sim::ServerState::Down);
    EXPECT_FALSE(srv.available());
    EXPECT_DOUBLE_EQ(srv.speedFactor(), 0.0);
    EXPECT_TRUE(srv.tasks().empty());
    EXPECT_FALSE(srv.canFit(1, 1.0, 0.0));
    EXPECT_TRUE(srv.checkInvariants());

    // A second crash is a no-op.
    EXPECT_TRUE(srv.markDown().empty());

    srv.recover();
    EXPECT_EQ(srv.state(), sim::ServerState::Up);
    EXPECT_DOUBLE_EQ(srv.speedFactor(), 1.0);
    EXPECT_TRUE(srv.canFit(1, 1.0, 0.0));
}

TEST(ServerHealth, DegradeKeepsTasksAtReducedSpeed)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    sim::Server &srv = cluster.server(37);
    srv.place(makeShare(9, 2, 4.0));

    ASSERT_TRUE(srv.degrade(0.4));
    EXPECT_EQ(srv.state(), sim::ServerState::Degraded);
    EXPECT_TRUE(srv.available());
    EXPECT_DOUBLE_EQ(srv.speedFactor(), 0.4);
    EXPECT_EQ(srv.tasks().size(), 1u); // residents keep running
    EXPECT_TRUE(srv.checkInvariants());

    srv.recover();
    EXPECT_DOUBLE_EQ(srv.speedFactor(), 1.0);
    EXPECT_EQ(srv.tasks().size(), 1u);

    // A dead machine cannot be degraded.
    srv.markDown();
    EXPECT_FALSE(srv.degrade(0.4));
}

// Regression: degrade(0.0) — a fully stalled but not crashed machine
// — used to leave the server in a state its own invariant check
// rejected (and silently violated the documented (0, 1] contract in
// release builds, where the guarding assert compiles away). Zero and
// garbage speed factors must clamp into [0, 1).
TEST(ServerHealth, DegradeToZeroIsAFullStall)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    sim::Server &srv = cluster.server(35);
    srv.place(makeShare(5, 2, 4.0));

    ASSERT_TRUE(srv.degrade(0.0));
    EXPECT_EQ(srv.state(), sim::ServerState::Degraded);
    EXPECT_TRUE(srv.available()); // stalled, not crashed
    EXPECT_DOUBLE_EQ(srv.speedFactor(), 0.0);
    EXPECT_EQ(srv.tasks().size(), 1u); // residents stay put
    EXPECT_TRUE(srv.checkInvariants());

    // Negative, NaN, and >= 1 factors clamp instead of corrupting.
    ASSERT_TRUE(srv.degrade(-3.0));
    EXPECT_DOUBLE_EQ(srv.speedFactor(), 0.0);
    EXPECT_TRUE(srv.checkInvariants());
    ASSERT_TRUE(srv.degrade(std::numeric_limits<double>::quiet_NaN()));
    EXPECT_DOUBLE_EQ(srv.speedFactor(), 0.0);
    EXPECT_TRUE(srv.checkInvariants());
    ASSERT_TRUE(srv.degrade(1.5));
    EXPECT_LT(srv.speedFactor(), 1.0);
    EXPECT_EQ(srv.state(), sim::ServerState::Degraded);
    EXPECT_TRUE(srv.checkInvariants());

    srv.recover();
    EXPECT_DOUBLE_EQ(srv.speedFactor(), 1.0);
}

TEST(ServerHealth, DegradedServerRunsWorkloadsSlower)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    workload::WorkloadFactory f{stats::Rng(11)};
    WorkloadId id = registry.add(f.singleNodeJob("j", "mix"));
    cluster.server(36).place(makeShare(id, 4, 8.0));

    workload::PerfOracle oracle(cluster, registry);
    double full = oracle.currentRate(registry.get(id), 0.0);
    ASSERT_GT(full, 0.0);
    cluster.server(36).degrade(0.5);
    double slow = oracle.currentRate(registry.get(id), 0.0);
    EXPECT_NEAR(slow, 0.5 * full, 1e-9);
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

TEST(FaultInjector, ScriptedCrashAndRecoveryFireInOrder)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    cluster.server(36).place(makeShare(42, 2, 4.0));

    sim::FaultInjector faults(cluster);
    faults.crashServer(10.0, 36);
    faults.recoverServer(30.0, 36);

    sim::EventQueue events;
    RecordingListener listener;
    faults.arm(events, listener);
    events.run(100.0);

    ASSERT_EQ(listener.notes.size(), 4u);
    EXPECT_EQ(listener.notes[0].what, 'b'); // settle before the crash
    EXPECT_EQ(listener.notes[1].what, 'f');
    EXPECT_DOUBLE_EQ(listener.notes[1].t, 10.0);
    ASSERT_EQ(listener.notes[1].displaced.size(), 1u);
    EXPECT_EQ(listener.notes[1].displaced[0], WorkloadId(42));
    EXPECT_EQ(listener.notes[3].what, 'r');
    EXPECT_DOUBLE_EQ(listener.notes[3].t, 30.0);

    EXPECT_EQ(faults.stats().crashes, 1u);
    EXPECT_EQ(faults.stats().recoveries, 1u);
    EXPECT_TRUE(cluster.server(36).available());
}

TEST(FaultInjector, ZoneOutageTakesDownEveryServerInZone)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    std::vector<ServerId> zone0 = cluster.serversInZone(0);
    ASSERT_FALSE(zone0.empty());

    sim::FaultInjector faults(cluster);
    faults.crashZone(5.0, 0);
    faults.recoverZone(25.0, 0);

    sim::EventQueue events;
    RecordingListener listener;
    faults.arm(events, listener);

    // Step to just past the outage.
    events.run(10.0);
    for (ServerId sid : zone0)
        EXPECT_FALSE(cluster.server(sid).available());
    EXPECT_EQ(cluster.aliveServerCount(), cluster.size() - zone0.size());
    EXPECT_EQ(cluster.downServers().size(), zone0.size());
    EXPECT_LT(cluster.aliveCores(), cluster.totalCores());

    events.run(100.0);
    for (ServerId sid : zone0)
        EXPECT_TRUE(cluster.server(sid).available());
    EXPECT_EQ(cluster.aliveServerCount(), cluster.size());
    EXPECT_EQ(faults.stats().zone_outages, 1u);
    EXPECT_EQ(faults.stats().crashes, zone0.size());
}

TEST(FaultInjector, StochasticPlanIsAFunctionOfTheSeed)
{
    sim::FaultInjectorConfig cfg;
    cfg.mttf_s = 2000.0;
    cfg.mttr_s = 300.0;
    cfg.degrade_fraction = 0.2;
    cfg.horizon_s = 20000.0;
    cfg.seed = 1234;

    auto makePlan = [&cfg]() {
        sim::Cluster cluster = sim::Cluster::localCluster();
        sim::FaultInjector faults(cluster, cfg);
        sim::EventQueue events;
        RecordingListener listener;
        faults.arm(events, listener);
        return faults.plan();
    };
    std::vector<sim::FaultEvent> a = makePlan();
    std::vector<sim::FaultEvent> b = makePlan();

    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].server, b[i].server);
    }
    // Sorted by time, so same-time scheduling is well defined.
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                               [](const sim::FaultEvent &x,
                                  const sim::FaultEvent &y) {
                                   return x.time < y.time;
                               }));

    // A different seed yields a different storm.
    cfg.seed = 4321;
    std::vector<sim::FaultEvent> c = makePlan();
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].time != c[i].time || a[i].server != c[i].server;
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------
// AdmissionQueue retry edge cases
// ---------------------------------------------------------------------

TEST(AdmissionRetry, ReenqueueAfterFailedRetryPreservesWaitStart)
{
    core::AdmissionQueue q;
    q.enqueue(1, 10.0);

    // Two failed retry passes later, admission at t=100 must charge the
    // full wait since the original enqueue at t=10.
    auto r1 = q.drainForRetry(50.0);
    ASSERT_EQ(r1, std::vector<WorkloadId>{1});
    q.enqueue(1, 50.0); // failed retry, back to pending
    auto r2 = q.drainForRetry(80.0);
    ASSERT_EQ(r2, std::vector<WorkloadId>{1});
    q.admitted(1, 100.0);

    EXPECT_TRUE(q.empty());
    ASSERT_EQ(q.waitTimes().count(), 1u);
    EXPECT_DOUBLE_EQ(q.waitTimes().values()[0], 90.0);
}

TEST(AdmissionRetry, NestedDrainNeitherDuplicatesNorDrops)
{
    core::AdmissionQueue q;
    q.enqueue(1, 0.0);
    q.enqueue(2, 0.0);

    // First drain moves {1, 2} into the in-retry set.
    auto first = q.drainForRetry(10.0);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(q.size(), 2u);

    // Mid-pass, a fault handler enqueues 3 and triggers a nested
    // drain: only 3 may come out, and 1/2 must not be duplicated.
    q.enqueue(3, 12.0);
    auto nested = q.drainForRetry(15.0);
    ASSERT_EQ(nested, std::vector<WorkloadId>{3});
    EXPECT_EQ(q.size(), 3u);

    // The outer pass finishes: 1 is admitted, 2 and 3 fail and return
    // to pending. Nothing lost, nothing doubled.
    q.admitted(1, 20.0);
    q.enqueue(2, 20.0);
    q.enqueue(3, 20.0);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_FALSE(q.contains(1));
    EXPECT_TRUE(q.contains(2));
    EXPECT_TRUE(q.contains(3));

    auto last = q.drainForRetry(30.0);
    EXPECT_EQ(last.size(), 2u);
    q.admitted(2, 30.0);
    q.admitted(3, 30.0);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.waitTimes().count(), 3u);
}

TEST(AdmissionRetry, BackoffDoublesUpToTheCap)
{
    core::AdmissionQueue q;
    q.enqueueWithBackoff(1, 0.0, 20.0, 160.0);

    // Not due before the base delay has elapsed.
    EXPECT_TRUE(q.drainForRetry(10.0).empty());
    EXPECT_EQ(q.size(), 1u);

    double expected_delay = 20.0;
    double t = 0.0;
    for (int round = 0; round < 5; ++round) {
        t += expected_delay;
        EXPECT_TRUE(q.drainForRetry(t - 0.5).empty())
            << "round " << round;
        auto due = q.drainForRetry(t);
        ASSERT_EQ(due, std::vector<WorkloadId>{1}) << "round " << round;
        q.enqueue(1, t); // failed retry doubles the delay
        expected_delay = std::min(2.0 * expected_delay, 160.0);
    }
    // 20+40+80+160 < t, and the cap holds at 160.
    EXPECT_DOUBLE_EQ(expected_delay, 160.0);

    // The unconditional drain ignores backoff (fresh capacity).
    ASSERT_EQ(q.drainForRetry(), std::vector<WorkloadId>{1});
    q.admitted(1, t + 1.0);
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.waitTimes().values()[0], t + 1.0);
}

TEST(AdmissionRetry, AbandonRemovesWithoutWaitAccounting)
{
    core::AdmissionQueue q;
    q.enqueue(1, 0.0);
    q.enqueue(2, 0.0);
    q.drainForRetry(5.0); // both mid-retry

    q.abandon(1);               // killed while mid-retry
    q.enqueue(2, 5.0);          // back to pending
    q.abandon(2);               // completed while pending
    q.abandon(99);              // never queued: no-op

    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.contains(1));
    EXPECT_FALSE(q.contains(2));
    EXPECT_EQ(q.waitTimes().count(), 0u);
}

// ---------------------------------------------------------------------
// Quasar recovery behaviour
// ---------------------------------------------------------------------

namespace
{

struct FaultWorld
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarManager mgr;
    driver::ScenarioDriver drv;
    workload::WorkloadFactory factory{stats::Rng(2024)};

    explicit FaultWorld(uint64_t seed = 77)
        : mgr(cluster, registry,
              [seed] {
                  core::QuasarConfig c;
                  c.seed = seed;
                  return c;
              }()),
          drv(cluster, registry, mgr,
              driver::DriverConfig{.tick_s = 10.0})
    {
        workload::WorkloadFactory seeder{stats::Rng(4242)};
        mgr.seedOffline(seeder, 20);
    }
};

} // namespace

TEST(FaultRecovery, DisplacedServiceIsReplacedAndCounted)
{
    FaultWorld w;
    Workload svc = w.factory.webService(
        "web", 200.0, 0.1,
        std::make_shared<tracegen::FlatLoad>(200.0));
    WorkloadId id = w.registry.add(svc);
    w.drv.addArrival(id, 1.0);

    sim::FaultInjector faults(w.cluster);
    // Kill every server hosting the service at t=500 via a tick-hook
    // script: we do not know the placement up front, so crash the
    // hosting set through scripted per-server events chosen at t=300.
    w.drv.run(300.0);
    std::vector<ServerId> hosting = w.cluster.serversHosting(id);
    ASSERT_FALSE(hosting.empty());
    for (ServerId sid : hosting)
        faults.crashServer(500.0, sid);
    w.drv.installFaults(faults);
    w.drv.run(3000.0);

    EXPECT_EQ(w.mgr.stats().server_failures, hosting.size());
    EXPECT_GE(w.mgr.stats().tasks_displaced, 1u);
    EXPECT_GE(w.mgr.stats().recoveries, 1u);
    EXPECT_GE(w.mgr.recoveryTimes().count(), 1u);
    // Re-placed promptly: displacement-to-replacement bounded.
    EXPECT_LE(w.mgr.recoveryTimes().max(), 300.0);
    // And serving again on live machines.
    std::vector<ServerId> now = w.cluster.serversHosting(id);
    ASSERT_FALSE(now.empty());
    for (ServerId sid : now)
        EXPECT_TRUE(w.cluster.server(sid).available());
}

// Regression: a batch job whose every server is fully degraded (speed
// factor 0) reports a zero progress rate; the driver's completion-time
// integration must treat that as "no progress" — never a division by
// the rate — even when the stall is followed by a crash mid-run.
TEST(FaultRecovery, CrashWhileFullyDegradedKeepsProgressFinite)
{
    FaultWorld w;
    WorkloadId id = w.registry.add(w.factory.hadoopJob("job", 80.0));
    w.drv.addArrival(id, 1.0);

    w.drv.run(300.0);
    std::vector<ServerId> hosting = w.cluster.serversHosting(id);
    ASSERT_FALSE(hosting.empty());

    sim::FaultInjector faults(w.cluster);
    for (ServerId sid : hosting) {
        faults.degradeServer(500.0, sid, 0.0); // full stall
        faults.crashServer(900.0, sid);        // then the crash
    }
    w.drv.installFaults(faults);
    w.drv.run(5000.0);

    const Workload &job = w.registry.get(id);
    EXPECT_TRUE(std::isfinite(job.work_done));
    EXPECT_LE(job.work_done, job.total_work + 1e-9);
    EXPECT_TRUE(std::isfinite(job.last_progress_update));
    if (job.completed) {
        EXPECT_TRUE(std::isfinite(job.completion_time));
        EXPECT_GE(job.completion_time, 0.0);
    }
    for (size_t s = 0; s < w.cluster.size(); ++s)
        EXPECT_TRUE(w.cluster.server(ServerId(s)).checkInvariants())
            << "server " << s;
}

TEST(FaultRecovery, RecoveryIsBitIdenticalForAFixedSeed)
{
    auto runOnce = [](uint64_t seed) {
        FaultWorld w(seed);
        Workload svc = w.factory.webService(
            "web", 150.0, 0.1,
            std::make_shared<tracegen::FlatLoad>(150.0));
        WorkloadId sid = w.registry.add(svc);
        w.drv.addArrival(sid, 1.0);
        std::vector<WorkloadId> jobs;
        for (int i = 0; i < 6; ++i)
            jobs.push_back(w.registry.add(
                w.factory.singleNodeJob("j" + std::to_string(i),
                                        "mix")));
        for (size_t i = 0; i < jobs.size(); ++i)
            w.drv.addArrival(jobs[i], 10.0 * double(i + 1));

        sim::FaultInjectorConfig fc;
        fc.mttf_s = 4000.0;
        fc.mttr_s = 400.0;
        fc.degrade_fraction = 0.25;
        fc.horizon_s = 6000.0;
        fc.seed = 0xC4A05;
        sim::FaultInjector faults(w.cluster, fc);
        faults.crashZone(900.0, 1);
        faults.recoverZone(1400.0, 1);
        w.drv.installFaults(faults);
        w.drv.run(8000.0);

        std::vector<double> sig;
        for (WorkloadId id : jobs) {
            const Workload &job = w.registry.get(id);
            sig.push_back(job.work_done);
            sig.push_back(job.completed ? job.completion_time : -1.0);
        }
        sig.push_back(double(w.mgr.stats().server_failures));
        sig.push_back(double(w.mgr.stats().tasks_displaced));
        sig.push_back(double(w.mgr.stats().recoveries));
        sig.push_back(double(faults.stats().crashes));
        sig.push_back(double(faults.stats().recoveries));
        const stats::Samples &rt = w.mgr.recoveryTimes();
        sig.push_back(double(rt.count()));
        for (double v : rt.values())
            sig.push_back(v);
        return sig;
    };

    std::vector<double> a = runOnce(77);
    std::vector<double> b = runOnce(77);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "signature index " << i;
}

// ---------------------------------------------------------------------
// Chaos suite
// ---------------------------------------------------------------------

namespace
{

/** Conservation checks run after every chaos step. */
void
checkClusterInvariants(const sim::Cluster &cluster,
                       const workload::WorkloadRegistry &registry)
{
    for (size_t s = 0; s < cluster.size(); ++s) {
        const sim::Server &srv = cluster.server(ServerId(s));
        ASSERT_TRUE(srv.checkInvariants()) << "server " << s;
        if (!srv.available()) {
            ASSERT_TRUE(srv.tasks().empty()) << "share on dead " << s;
        }
        for (const sim::TaskShare &share : srv.tasks()) {
            // No leaked shares: every share belongs to a live,
            // uncompleted workload known to the registry.
            ASSERT_TRUE(registry.contains(share.workload));
            const Workload &w = registry.get(share.workload);
            ASSERT_FALSE(w.completed)
                << "completed workload " << share.workload
                << " still holds resources on server " << s;
        }
    }
}

} // namespace

TEST(Chaos, RandomKillRestoreStormKeepsInvariants)
{
    FaultWorld w(5150);

    // A population with every recovery path: services (scale-out
    // re-placement), batch jobs (progress settlement), and a stateful
    // service (migration-aware).
    std::vector<WorkloadId> services;
    services.push_back(w.registry.add(w.factory.webService(
        "web", 150.0, 0.1,
        std::make_shared<tracegen::FlatLoad>(150.0))));
    services.push_back(w.registry.add(w.factory.memcachedService(
        "mc", 5e4, 2e-4, 24.0,
        std::make_shared<tracegen::FlatLoad>(5e4))));
    for (WorkloadId id : services)
        w.drv.addArrival(id, 1.0);
    std::vector<WorkloadId> jobs;
    for (int i = 0; i < 8; ++i) {
        jobs.push_back(w.registry.add(w.factory.singleNodeJob(
            "j" + std::to_string(i), i % 2 ? "mix" : "parsec")));
        w.drv.addArrival(jobs.back(), 20.0 * double(i + 1));
    }

    // Randomized kill/restore schedule from a fixed seed: 12 crash
    // events with staggered repairs, plus one full zone outage.
    stats::Rng chaos(0xC4A05);
    sim::FaultInjector faults(w.cluster);
    for (int k = 0; k < 12; ++k) {
        double t = 400.0 + 250.0 * double(k) + chaos.uniform(0.0, 200.0);
        ServerId victim =
            ServerId(chaos.uniformInt(0, int64_t(w.cluster.size()) - 1));
        faults.crashServer(t, victim);
        faults.recoverServer(t + chaos.uniform(80.0, 400.0), victim);
    }
    faults.crashZone(2000.0, 2);
    faults.recoverZone(2600.0, 2);
    w.drv.installFaults(faults);

    // After every tick: conservation invariants plus bounded
    // re-placement of displaced QoS workloads.
    std::unordered_map<WorkloadId, int> unplaced_ticks;
    int max_unplaced = 0;
    w.drv.setTickHook([&](double t) {
        checkClusterInvariants(w.cluster, w.registry);
        for (WorkloadId id : services) {
            const Workload &svc = w.registry.get(id);
            if (svc.completed || svc.arrival_time > t ||
                svc.arrival_time < 0.0)
                continue;
            if (w.cluster.serversHosting(id).empty())
                max_unplaced =
                    std::max(max_unplaced, ++unplaced_ticks[id]);
            else
                unplaced_ticks[id] = 0;
        }
    });
    w.drv.run(6000.0);

    // The storm actually happened...
    EXPECT_GE(w.mgr.stats().server_failures, 10u);
    EXPECT_GE(w.mgr.stats().tasks_displaced, 1u);
    EXPECT_GT(faults.stats().crashes, 0u);
    EXPECT_EQ(w.cluster.aliveServerCount(), w.cluster.size());
    // ...QoS workloads were never stranded for long (bounded ticks)...
    EXPECT_LE(max_unplaced, 30);
    for (WorkloadId id : services)
        EXPECT_FALSE(w.cluster.serversHosting(id).empty());
    // ...and the final state is clean.
    checkClusterInvariants(w.cluster, w.registry);
    // Accounting conserved: total allocated equals the sum of live
    // shares (nothing leaked onto dead machines or double-counted).
    for (size_t s = 0; s < w.cluster.size(); ++s) {
        const sim::Server &srv = w.cluster.server(ServerId(s));
        int sum = 0;
        for (const sim::TaskShare &share : srv.tasks())
            sum += share.cores;
        EXPECT_EQ(sum, srv.coresAllocated());
    }
}

TEST(Chaos, BaselineManagersSurviveTheSameStorm)
{
    // The baselines' minimal requeue path must keep them live through
    // a storm (no crashes, no stuck-forever workloads).
    auto stormOn = [](driver::ClusterManager &mgr, sim::Cluster &cluster,
                      workload::WorkloadRegistry &registry) {
        driver::ScenarioDriver drv(cluster, registry, mgr,
                                   driver::DriverConfig{.tick_s = 10.0});
        workload::WorkloadFactory f{stats::Rng(99)};
        WorkloadId svc = registry.add(f.webService(
            "web", 100.0, 0.1,
            std::make_shared<tracegen::FlatLoad>(100.0)));
        drv.addArrival(svc, 1.0);
        std::vector<WorkloadId> jobs;
        for (int i = 0; i < 4; ++i) {
            jobs.push_back(registry.add(
                f.singleNodeJob("j" + std::to_string(i), "mix")));
            drv.addArrival(jobs.back(), 20.0 * double(i + 1));
        }

        stats::Rng chaos(0xBEEF);
        sim::FaultInjector faults(cluster);
        for (int k = 0; k < 8; ++k) {
            double t = 300.0 + 300.0 * double(k);
            ServerId victim = ServerId(
                chaos.uniformInt(0, int64_t(cluster.size()) - 1));
            faults.crashServer(t, victim);
            faults.recoverServer(t + 150.0, victim);
        }
        drv.installFaults(faults);
        drv.run(5000.0);

        for (size_t s = 0; s < cluster.size(); ++s)
            ASSERT_TRUE(cluster.server(ServerId(s)).checkInvariants());
        // The service must be running again after the storm.
        EXPECT_FALSE(cluster.serversHosting(svc).empty())
            << mgr.name() << " lost the service";
    };

    {
        sim::Cluster cluster = sim::Cluster::localCluster();
        workload::WorkloadRegistry registry;
        baselines::ReservationLLManager mgr(cluster, registry);
        stormOn(mgr, cluster, registry);
    }
    {
        sim::Cluster cluster = sim::Cluster::localCluster();
        workload::WorkloadRegistry registry;
        baselines::AutoScaleManager mgr(cluster, registry);
        stormOn(mgr, cluster, registry);
    }
    {
        sim::Cluster cluster = sim::Cluster::localCluster();
        workload::WorkloadRegistry registry;
        baselines::FrameworkSelfManager mgr(cluster, registry);
        stormOn(mgr, cluster, registry);
    }
}
