#include <gtest/gtest.h>

#include "core/manager.hh"

TEST(Smoke, LibraryLinks)
{
    quasar::sim::Cluster cluster = quasar::sim::Cluster::localCluster();
    EXPECT_EQ(cluster.size(), 40u);
}
