/**
 * @file
 * Tests for load patterns and arrival processes: the flat /
 * fluctuating / spike / diurnal / piecewise traffic shapes and the
 * fixed and Poisson arrival generators.
 */

#include <gtest/gtest.h>

#include "stats/summary.hh"
#include "tracegen/arrivals.hh"
#include "tracegen/load_pattern.hh"

using namespace quasar;
using namespace quasar::tracegen;

TEST(LoadPattern, FlatIsConstant)
{
    FlatLoad load(250.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(0.0), 250.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(1e6), 250.0);
    EXPECT_DOUBLE_EQ(load.peakQps(), 250.0);
}

TEST(LoadPattern, FluctuatingOscillatesAroundMean)
{
    FluctuatingLoad load(300.0, 100.0, 3600.0);
    double lo = 1e18, hi = 0.0, sum = 0.0;
    int n = 0;
    for (double t = 0.0; t < 3600.0; t += 10.0) {
        double v = load.qpsAt(t);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        sum += v;
        ++n;
    }
    EXPECT_NEAR(lo, 200.0, 2.0);
    EXPECT_NEAR(hi, 400.0, 2.0);
    EXPECT_NEAR(sum / n, 300.0, 5.0);
    EXPECT_DOUBLE_EQ(load.peakQps(), 400.0);
}

TEST(LoadPattern, SpikeShape)
{
    SpikeLoad load(100.0, 500.0, 1000.0, 100.0, 600.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(0.0), 100.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(999.0), 100.0);
    EXPECT_NEAR(load.qpsAt(1050.0), 300.0, 1e-9); // mid-ramp
    EXPECT_DOUBLE_EQ(load.qpsAt(1200.0), 500.0);  // at the top
    EXPECT_DOUBLE_EQ(load.qpsAt(1700.0), 500.0);  // end of hold
    EXPECT_NEAR(load.qpsAt(1750.0), 300.0, 1e-9); // mid-descent
    EXPECT_DOUBLE_EQ(load.qpsAt(2000.0), 100.0);
    EXPECT_DOUBLE_EQ(load.peakQps(), 500.0);
}

TEST(LoadPattern, DiurnalPeakAndTrough)
{
    DiurnalLoad load(100.0, 900.0, 86400.0, 14.0 * 3600.0);
    EXPECT_NEAR(load.qpsAt(14.0 * 3600.0), 900.0, 1e-6);
    EXPECT_NEAR(load.qpsAt(2.0 * 3600.0), 100.0, 1e-6);
    // Periodic.
    EXPECT_NEAR(load.qpsAt(14.0 * 3600.0 + 86400.0), 900.0, 1e-6);
}

TEST(LoadPattern, PiecewiseInterpolatesAndClamps)
{
    PiecewiseLoad load({{0.0, 10.0}, {100.0, 110.0}, {200.0, 50.0}});
    EXPECT_DOUBLE_EQ(load.qpsAt(-10.0), 10.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(50.0), 60.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(150.0), 80.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(300.0), 50.0);
    EXPECT_DOUBLE_EQ(load.peakQps(), 110.0);
}

TEST(Arrivals, FixedGapsAreExact)
{
    FixedInterArrival gaps(5.0);
    stats::Rng rng(1);
    auto times = arrivalTimes(gaps, 4, rng, 10.0);
    EXPECT_EQ(times,
              (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(Arrivals, PoissonMeanGapMatchesRate)
{
    PoissonArrivals arrivals(0.5); // mean gap 2 s
    stats::Rng rng(2);
    auto times = arrivalTimes(arrivals, 5000, rng);
    stats::Samples gaps;
    for (size_t i = 1; i < times.size(); ++i)
        gaps.add(times[i] - times[i - 1]);
    EXPECT_NEAR(gaps.mean(), 2.0, 0.1);
    // Times are non-decreasing.
    for (size_t i = 1; i < times.size(); ++i)
        EXPECT_GE(times[i], times[i - 1]);
}
