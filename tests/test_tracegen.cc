/**
 * @file
 * Tests for load patterns and arrival processes: the flat /
 * fluctuating / spike / diurnal / piecewise traffic shapes and the
 * fixed and Poisson arrival generators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hh"
#include "tracegen/arrivals.hh"
#include "tracegen/durations.hh"
#include "tracegen/load_pattern.hh"

using namespace quasar;
using namespace quasar::tracegen;

TEST(LoadPattern, FlatIsConstant)
{
    FlatLoad load(250.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(0.0), 250.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(1e6), 250.0);
    EXPECT_DOUBLE_EQ(load.peakQps(), 250.0);
}

TEST(LoadPattern, FluctuatingOscillatesAroundMean)
{
    FluctuatingLoad load(300.0, 100.0, 3600.0);
    double lo = 1e18, hi = 0.0, sum = 0.0;
    int n = 0;
    for (double t = 0.0; t < 3600.0; t += 10.0) {
        double v = load.qpsAt(t);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        sum += v;
        ++n;
    }
    EXPECT_NEAR(lo, 200.0, 2.0);
    EXPECT_NEAR(hi, 400.0, 2.0);
    EXPECT_NEAR(sum / n, 300.0, 5.0);
    EXPECT_DOUBLE_EQ(load.peakQps(), 400.0);
}

TEST(LoadPattern, SpikeShape)
{
    SpikeLoad load(100.0, 500.0, 1000.0, 100.0, 600.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(0.0), 100.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(999.0), 100.0);
    EXPECT_NEAR(load.qpsAt(1050.0), 300.0, 1e-9); // mid-ramp
    EXPECT_DOUBLE_EQ(load.qpsAt(1200.0), 500.0);  // at the top
    EXPECT_DOUBLE_EQ(load.qpsAt(1700.0), 500.0);  // end of hold
    EXPECT_NEAR(load.qpsAt(1750.0), 300.0, 1e-9); // mid-descent
    EXPECT_DOUBLE_EQ(load.qpsAt(2000.0), 100.0);
    EXPECT_DOUBLE_EQ(load.peakQps(), 500.0);
}

TEST(LoadPattern, DiurnalPeakAndTrough)
{
    DiurnalLoad load(100.0, 900.0, 86400.0, 14.0 * 3600.0);
    EXPECT_NEAR(load.qpsAt(14.0 * 3600.0), 900.0, 1e-6);
    EXPECT_NEAR(load.qpsAt(2.0 * 3600.0), 100.0, 1e-6);
    // Periodic.
    EXPECT_NEAR(load.qpsAt(14.0 * 3600.0 + 86400.0), 900.0, 1e-6);
}

TEST(LoadPattern, PiecewiseInterpolatesAndClamps)
{
    PiecewiseLoad load({{0.0, 10.0}, {100.0, 110.0}, {200.0, 50.0}});
    EXPECT_DOUBLE_EQ(load.qpsAt(-10.0), 10.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(50.0), 60.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(150.0), 80.0);
    EXPECT_DOUBLE_EQ(load.qpsAt(300.0), 50.0);
    EXPECT_DOUBLE_EQ(load.peakQps(), 110.0);
}

TEST(Arrivals, FixedGapsAreExact)
{
    FixedInterArrival gaps(5.0);
    stats::Rng rng(1);
    auto times = arrivalTimes(gaps, 4, rng, 10.0);
    EXPECT_EQ(times,
              (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(Arrivals, PoissonMeanGapMatchesRate)
{
    PoissonArrivals arrivals(0.5); // mean gap 2 s
    stats::Rng rng(2);
    auto times = arrivalTimes(arrivals, 5000, rng);
    stats::Samples gaps;
    for (size_t i = 1; i < times.size(); ++i)
        gaps.add(times[i] - times[i - 1]);
    EXPECT_NEAR(gaps.mean(), 2.0, 0.1);
    // Times are non-decreasing.
    for (size_t i = 1; i < times.size(); ++i)
        EXPECT_GE(times[i], times[i - 1]);
}

TEST(Arrivals, SeededStreamsAreDeterministic)
{
    for (uint64_t seed : {1ULL, 7ULL, 42ULL}) {
        PoissonArrivals a1(0.25), a2(0.25);
        stats::Rng r1(seed), r2(seed);
        EXPECT_EQ(arrivalTimes(a1, 200, r1), arrivalTimes(a2, 200, r2))
            << "seed " << seed;
        ParetoArrivals p1(4.0, 1.5), p2(4.0, 1.5);
        stats::Rng r3(seed), r4(seed);
        EXPECT_EQ(arrivalTimes(p1, 200, r3), arrivalTimes(p2, 200, r4))
            << "seed " << seed;
    }
}

TEST(Arrivals, ZeroRatePoissonNeverArrivesAgain)
{
    PoissonArrivals off(0.0);
    PoissonArrivals negative(-1.0);
    stats::Rng rng(3);
    EXPECT_TRUE(std::isinf(off.nextGap(rng)));
    EXPECT_TRUE(std::isinf(negative.nextGap(rng)));
    // The first arrival still lands at the start time.
    auto times = arrivalTimes(off, 3, rng, 7.0);
    ASSERT_EQ(times.size(), 3u);
    EXPECT_DOUBLE_EQ(times[0], 7.0);
    EXPECT_TRUE(std::isinf(times[1]));
}

TEST(Arrivals, ParetoMeanAndTailMatchShape)
{
    const double mean = 2.0, alpha = 2.5;
    ParetoArrivals arrivals(mean, alpha);
    EXPECT_NEAR(arrivals.scale(), mean * (alpha - 1.0) / alpha, 1e-12);
    stats::Rng rng(11);
    stats::Samples gaps;
    size_t above_3x = 0;
    const size_t n = 60000;
    for (size_t i = 0; i < n; ++i) {
        double g = arrivals.nextGap(rng);
        ASSERT_GE(g, arrivals.scale());
        gaps.add(g);
        if (g > 3.0 * mean)
            ++above_3x;
    }
    EXPECT_NEAR(gaps.mean(), mean, 0.1);
    // Tail matches the analytic Pareto survival function
    // P[X > 3*mean] = (xm / 3*mean)^alpha, not the exponential's.
    double expect_tail = std::pow(arrivals.scale() / (3.0 * mean), alpha);
    EXPECT_NEAR(double(above_3x) / double(n), expect_tail,
                0.3 * expect_tail);
}

TEST(Arrivals, ParetoDegenerateParamsAreSafe)
{
    stats::Rng rng(5);
    // Non-positive mean: a simultaneous burst, never negative or NaN.
    ParetoArrivals burst(0.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(burst.nextGap(rng), 0.0);
    // Shape <= 1 (infinite mean) clamps to a finite-mean tail.
    ParetoArrivals clamped(5.0, 0.5);
    EXPECT_GT(clamped.shape(), 1.0);
    for (int i = 0; i < 1000; ++i) {
        double g = clamped.nextGap(rng);
        EXPECT_TRUE(std::isfinite(g));
        EXPECT_GT(g, 0.0);
    }
}

TEST(Durations, SeededDeterminismAcrossKinds)
{
    const DurationSpec specs[] = {
        DurationSpec::fixed(30.0),
        DurationSpec::exponential(30.0),
        DurationSpec::pareto(30.0, 2.0),
        DurationSpec::lognormal(30.0, 0.8),
    };
    for (const DurationSpec &spec : specs) {
        stats::Rng r1(99), r2(99);
        for (int i = 0; i < 100; ++i)
            EXPECT_DOUBLE_EQ(sampleDuration(spec, r1),
                             sampleDuration(spec, r2));
    }
}

TEST(Durations, EmpiricalMeansMatchSpec)
{
    const double mean = 45.0;
    const DurationSpec specs[] = {
        DurationSpec::fixed(mean),
        DurationSpec::exponential(mean),
        DurationSpec::pareto(mean, 2.5),
        DurationSpec::lognormal(mean, 0.8),
    };
    for (const DurationSpec &spec : specs) {
        stats::Rng rng(17);
        stats::Samples s;
        for (int i = 0; i < 60000; ++i) {
            double d = sampleDuration(spec, rng);
            ASSERT_GE(d, 0.0);
            s.add(d);
        }
        EXPECT_NEAR(s.mean(), mean, 0.06 * mean)
            << "kind " << int(spec.kind);
    }
}

TEST(Durations, HeavyTailsAreHeavierThanExponential)
{
    // At matched means, Pareto and lognormal lifetimes should exceed
    // 5x the mean far more often than the memoryless baseline.
    const double mean = 20.0;
    auto tailFrac = [&](const DurationSpec &spec) {
        stats::Rng rng(23);
        size_t above = 0;
        const size_t n = 40000;
        for (size_t i = 0; i < n; ++i)
            if (sampleDuration(spec, rng) > 5.0 * mean)
                ++above;
        return double(above) / double(n);
    };
    double exp_tail = tailFrac(DurationSpec::exponential(mean));
    double par_tail = tailFrac(DurationSpec::pareto(mean, 1.3));
    double log_tail = tailFrac(DurationSpec::lognormal(mean, 1.5));
    EXPECT_GT(par_tail, 2.0 * exp_tail);
    EXPECT_GT(log_tail, 2.0 * exp_tail);
}

TEST(Durations, DegenerateParamsAreSafe)
{
    stats::Rng rng(31);
    // Non-positive means: zero-length lifetimes for every kind.
    for (auto kind :
         {DurationSpec::Kind::Fixed, DurationSpec::Kind::Exponential,
          DurationSpec::Kind::Pareto, DurationSpec::Kind::Lognormal}) {
        DurationSpec spec{kind, 0.0, 1.5};
        EXPECT_DOUBLE_EQ(sampleDuration(spec, rng), 0.0);
        spec.mean_s = -4.0;
        EXPECT_DOUBLE_EQ(sampleDuration(spec, rng), 0.0);
    }
    // Zero lognormal spread collapses to the fixed distribution.
    DurationSpec flat = DurationSpec::lognormal(12.0, 0.0);
    EXPECT_DOUBLE_EQ(sampleDuration(flat, rng), 12.0);
    // Pareto shape below 1 still yields finite positive samples.
    DurationSpec steep = DurationSpec::pareto(12.0, 0.2);
    for (int i = 0; i < 1000; ++i) {
        double d = sampleDuration(steep, rng);
        EXPECT_TRUE(std::isfinite(d));
        EXPECT_GT(d, 0.0);
    }
}
