/**
 * @file
 * Tests for the Sec. 4.4 extensions the paper lists as future work and
 * this implementation provides: priority-based preemption, per-workload
 * cost targets, and fault-zone-aware assignment.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/classifier.hh"
#include "core/manager.hh"
#include "core/predictor.hh"
#include "driver/scenario.hh"
#include "core/scheduler.hh"
#include "workload/factory.hh"

using namespace quasar;
using core::GreedyScheduler;
using core::SchedulerConfig;
using core::WorkloadEstimate;
using workload::Workload;

namespace
{

struct World
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler{cluster.catalog(), {}};
    core::Classifier clf{profiler, {}, 3};
    workload::WorkloadFactory factory{stats::Rng(91)};
    stats::Rng rng{92};

    World()
    {
        std::vector<Workload> seeds;
        for (int i = 0; i < 6; ++i)
            seeds.push_back(factory.hadoopJob(
                "seed", factory.rng().uniform(5.0, 150.0)));
        static const char *fams[] = {"spec-int", "parsec", "specjbb"};
        for (int i = 0; i < 6; ++i)
            seeds.push_back(factory.singleNodeJob("seed", fams[i % 3]));
        clf.seedOffline(seeds, 0.0);
    }

    std::pair<WorkloadId, WorkloadEstimate> make(Workload w)
    {
        WorkloadId id = registry.add(std::move(w));
        auto data = profiler.profile(registry.get(id), 0.0, rng);
        return {id, clf.classify(registry.get(id), data)};
    }
};

} // namespace

TEST(FaultZones, ClusterDealsRoundRobin)
{
    sim::Cluster c = sim::Cluster::localCluster();
    EXPECT_EQ(c.numFaultZones(), 4);
    std::set<int> zones;
    for (size_t i = 0; i < c.size(); ++i) {
        zones.insert(c.server(ServerId(i)).faultZone());
        EXPECT_LT(c.server(ServerId(i)).faultZone(), 4);
    }
    EXPECT_EQ(zones.size(), 4u);
}

TEST(FaultZones, SpreadingUsesDistinctZones)
{
    World w;
    auto [id, est] = w.make(w.factory.hadoopJob("j", 60.0));
    SchedulerConfig cfg;
    cfg.spread_fault_zones = true;
    GreedyScheduler sched(w.cluster, cfg, &w.registry);
    double best = 0.0;
    for (double v : est.scale_up_perf)
        best = std::max(best, v);
    auto alloc = sched.allocate(w.registry.get(id), est, 3.0 * best,
                                nullptr, false);
    ASSERT_TRUE(alloc.has_value());
    ASSERT_GE(alloc->nodes.size(), 3u);
    std::set<int> zones;
    for (const auto &node : alloc->nodes)
        zones.insert(w.cluster.server(node.server).faultZone());
    // At least three distinct zones across the first nodes.
    EXPECT_GE(zones.size(), 3u);
}

TEST(FaultZones, RelaxesWhenZonesExhausted)
{
    // A 2-zone cluster must still host a 4-node allocation.
    auto catalog = sim::localPlatforms();
    std::vector<int> counts(catalog.size(), 1);
    sim::Cluster cluster(catalog, counts, 2);
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler(cluster.catalog(), {});
    core::Classifier clf(profiler, {}, 4);
    workload::WorkloadFactory factory{stats::Rng(93)};
    std::vector<Workload> seeds;
    for (int i = 0; i < 6; ++i)
        seeds.push_back(
            factory.hadoopJob("seed", factory.rng().uniform(5, 100)));
    clf.seedOffline(seeds, 0.0);

    Workload j = factory.hadoopJob("j", 60.0);
    WorkloadId id = registry.add(j);
    stats::Rng rng(94);
    auto data = profiler.profile(registry.get(id), 0.0, rng);
    auto est = clf.classify(registry.get(id), data);

    SchedulerConfig cfg;
    cfg.spread_fault_zones = true;
    GreedyScheduler sched(cluster, cfg, &registry);
    double best = 0.0;
    for (double v : est.scale_up_perf)
        best = std::max(best, v);
    auto alloc = sched.allocate(registry.get(id), est, 4.0 * best,
                                nullptr, false);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_GE(alloc->nodes.size(), 3u);
}

TEST(CostTarget, CapBoundsSpending)
{
    World w;
    Workload job = w.factory.hadoopJob("j", 60.0);
    job.cost_cap_per_hour = 1.0; // roughly one high-end server-hour
    auto [id, est] = w.make(std::move(job));
    GreedyScheduler sched(w.cluster, {}, &w.registry);
    auto alloc = sched.allocate(w.registry.get(id), est, 1e12, nullptr,
                                false);
    ASSERT_TRUE(alloc.has_value());
    double cost = 0.0;
    for (const auto &node : alloc->nodes) {
        const sim::Platform &p =
            w.cluster.server(node.server).platform();
        cost += p.cost_per_hour * double(node.cores) /
                double(p.cores);
    }
    EXPECT_LE(cost, 1.0 + 1e-9);
    EXPECT_TRUE(alloc->degraded); // the cap binds before the target
}

TEST(CostTarget, UncappedSpendsMore)
{
    World w;
    Workload capped = w.factory.hadoopJob("j", 60.0);
    Workload open_job = capped;
    capped.cost_cap_per_hour = 0.6;
    auto [idc, estc] = w.make(std::move(capped));
    auto [ido, esto] = w.make(std::move(open_job));
    GreedyScheduler sched(w.cluster, {}, &w.registry);
    auto a = sched.allocate(w.registry.get(idc), estc, 1e12, nullptr,
                            false);
    auto b = sched.allocate(w.registry.get(ido), esto, 1e12, nullptr,
                            false);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_LE(a->totalCores(), b->totalCores());
    EXPECT_LT(a->predicted_perf, b->predicted_perf + 1e-9);
}

TEST(Priorities, HighPriorityEvictsLower)
{
    World w;
    // Fill every J server with a priority-1 resident.
    std::vector<WorkloadId> residents;
    for (ServerId sid : w.cluster.serversOfPlatform("J")) {
        Workload filler = w.factory.singleNodeJob("filler", "specjbb");
        filler.priority = 1;
        filler.total_work = 1e18;
        WorkloadId fid = w.registry.add(filler);
        residents.push_back(fid);
        sim::Server &srv = w.cluster.server(sid);
        sim::TaskShare share;
        share.workload = fid;
        share.cores = srv.platform().cores;
        share.memory_gb = srv.platform().memory_gb;
        srv.place(share);
    }
    // Also fill the rest with priority-5 residents (not evictable).
    for (size_t s = 0; s < w.cluster.size(); ++s) {
        sim::Server &srv = w.cluster.server(ServerId(s));
        if (srv.coresFree() == 0)
            continue;
        Workload filler = w.factory.singleNodeJob("vip", "specjbb");
        filler.priority = 5;
        filler.total_work = 1e18;
        WorkloadId fid = w.registry.add(filler);
        sim::TaskShare share;
        share.workload = fid;
        share.cores = srv.platform().cores;
        share.memory_gb = srv.platform().memory_gb;
        srv.place(share);
    }

    Workload vip = w.factory.hadoopJob("vip-job", 30.0);
    vip.priority = 3; // above the J residents, below the others
    auto [id, est] = w.make(std::move(vip));
    GreedyScheduler sched(w.cluster, {}, &w.registry);
    auto alloc = sched.allocate(w.registry.get(id), est,
                                0.3 * est.scale_up_perf[0], nullptr,
                                true);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_FALSE(alloc->evictions.empty());
    // Victims must all be the priority-1 residents on J boxes.
    for (const auto &[sid, victim] : alloc->evictions) {
        EXPECT_EQ(w.cluster.server(sid).platform().name, "J");
        EXPECT_EQ(w.registry.get(victim).priority, 1);
    }
}

TEST(Priorities, EqualPriorityNotEvictable)
{
    World w;
    // One J server fully held by an equal-priority resident.
    ServerId sid = w.cluster.serversOfPlatform("J")[0];
    Workload filler = w.factory.singleNodeJob("peer", "specjbb");
    filler.priority = 2;
    WorkloadId fid = w.registry.add(filler);
    sim::Server &srv = w.cluster.server(sid);
    sim::TaskShare share;
    share.workload = fid;
    share.cores = srv.platform().cores;
    share.memory_gb = srv.platform().memory_gb;
    srv.place(share);

    Workload peer = w.factory.hadoopJob("peer-job", 30.0);
    peer.priority = 2;
    auto [id, est] = w.make(std::move(peer));
    GreedyScheduler sched(w.cluster, {}, &w.registry);
    auto alloc = sched.allocate(w.registry.get(id), est,
                                0.2 * est.scale_up_perf[0], nullptr,
                                true);
    ASSERT_TRUE(alloc.has_value());
    for (const auto &[esid, victim] : alloc->evictions)
        EXPECT_NE(victim, fid);
    for (const auto &node : alloc->nodes)
        EXPECT_NE(node.server, sid);
}

TEST(Platform, CostsGradedBySize)
{
    auto catalog = sim::localPlatforms();
    EXPECT_GT(catalog[9].cost_per_hour, catalog[0].cost_per_hour);
    for (const auto &p : catalog)
        EXPECT_GT(p.cost_per_hour, 0.0);
}

// ----------------------------------------------------- load prediction

TEST(LoadPredictor, FlatLoadPredictsFlat)
{
    core::LoadPredictor p;
    for (double t = 0.0; t <= 300.0; t += 10.0)
        p.observe(t, 100.0);
    EXPECT_TRUE(p.warmedUp());
    EXPECT_NEAR(p.predict(400.0), 100.0, 1.0);
    EXPECT_NEAR(p.trendPerSecond(), 0.0, 0.05);
}

TEST(LoadPredictor, LinearRampExtrapolates)
{
    core::LoadPredictor p;
    for (double t = 0.0; t <= 600.0; t += 10.0)
        p.observe(t, 100.0 + 2.0 * t); // +2 QPS/s
    double forecast = p.predict(720.0);
    double truth = 100.0 + 2.0 * 720.0;
    EXPECT_NEAR(forecast / truth, 1.0, 0.1);
    EXPECT_GT(p.trendPerSecond(), 1.0);
}

TEST(LoadPredictor, NeverNegative)
{
    core::LoadPredictor p;
    for (double t = 0.0; t <= 300.0; t += 10.0)
        p.observe(t, std::max(0.0, 100.0 - t)); // falling to 0
    EXPECT_GE(p.predict(1000.0), 0.0);
}

TEST(LoadPredictor, ColdStartReturnsLastValue)
{
    core::LoadPredictor p;
    EXPECT_DOUBLE_EQ(p.predict(100.0), 0.0);
    p.observe(0.0, 55.0);
    EXPECT_DOUBLE_EQ(p.predict(100.0), 55.0);
    EXPECT_FALSE(p.warmedUp());
}

// ------------------------------------------------ resource partitioning

TEST(Partitioning, IsolationShieldsBothDirections)
{
    auto catalog = sim::localPlatforms();
    sim::Server srv(0, catalog[9]);
    sim::TaskShare noisy;
    noisy.workload = 1;
    noisy.cores = 8;
    noisy.memory_gb = 8.0;
    noisy.caused[2] = 2.0; // heavy LLC pressure
    srv.place(noisy);
    sim::TaskShare victim;
    victim.workload = 2;
    victim.cores = 4;
    victim.memory_gb = 4.0;
    srv.place(victim);

    double before = srv.contentionFor(2)[2];
    EXPECT_GT(before, 0.0);
    // Give the victim a private LLC partition: it stops seeing the
    // pressure.
    ASSERT_TRUE(srv.setIsolation(2, interference::Source::LLCache,
                                 true));
    EXPECT_DOUBLE_EQ(srv.contentionFor(2)[2], 0.0);
    // Other sources unaffected.
    EXPECT_DOUBLE_EQ(srv.contentionFor(2)[0], 0.0);

    // Conversely, isolating the noisy task contains its pressure.
    srv.setIsolation(2, interference::Source::LLCache, false);
    ASSERT_TRUE(srv.setIsolation(1, interference::Source::LLCache,
                                 true));
    EXPECT_DOUBLE_EQ(srv.contentionFor(2)[2], 0.0);
    EXPECT_FALSE(srv.setIsolation(42, interference::Source::LLCache,
                                  true));
}

TEST(Partitioning, OracleChargesCapacityCost)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    workload::WorkloadFactory f{stats::Rng(97)};
    Workload w = f.singleNodeJob("p", "specjbb");
    WorkloadId id = registry.add(w);
    sim::TaskShare share;
    share.workload = id;
    share.cores = 8;
    share.memory_gb = 8.0;
    share.caused = registry.get(id).causedPressure(0.0, 8);
    cluster.server(36).place(share);
    workload::PerfOracle oracle(cluster, registry);
    double before = oracle.currentRate(registry.get(id), 0.0);
    cluster.server(36).setIsolation(id, interference::Source::LLCache,
                                    true);
    double after = oracle.currentRate(registry.get(id), 0.0);
    EXPECT_NEAR(after / before, 0.95, 1e-9);
}

TEST(Partitioning, ManagerGrantsUnderInterference)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarConfig cfg;
    cfg.seed = 98;
    core::QuasarManager mgr(cluster, registry, cfg);
    workload::WorkloadFactory seeder{stats::Rng(99)};
    mgr.seedOffline(seeder, 20);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0});
    workload::WorkloadFactory f{stats::Rng(100)};

    // A long-running sensitive job.
    Workload job = f.singleNodeJob("sensitive", "specjbb");
    job.truth.sensitivity.threshold.fill(0.05);
    job.truth.sensitivity.slope.fill(2.0);
    job.total_work *= 200.0;
    WorkloadId id = registry.add(job);
    drv.addArrival(id, 1.0);

    // Noisy long-running neighbours that will share its servers.
    for (int i = 0; i < 60; ++i) {
        Workload n = f.singleNodeJob("noisy", "parsec");
        n.truth.sensitivity.caused_per_core.fill(0.15);
        n.total_work *= 200.0;
        drv.addArrival(registry.add(n), 5.0 + i);
    }
    drv.run(3000.0);
    EXPECT_GT(mgr.stats().partitions_granted, 0u);
}
