/**
 * @file
 * Tests for the linear-algebra substrate: dense matrices, masked
 * matrices, one-sided Jacobi SVD, randomized truncated SVD,
 * PQ-reconstruction with SGD, fold-in, and matrix completion — the
 * machinery behind Quasar's collaborative-filtering classification.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "stats/rng.hh"

#include "linalg/completion.hh"
#include "linalg/matrix.hh"
#include "linalg/pq_model.hh"
#include "linalg/svd.hh"

using namespace quasar::linalg;

namespace
{

/** Random rank-k matrix plus optional noise. */
Matrix
lowRank(size_t m, size_t n, size_t k, uint64_t seed, double noise = 0.0)
{
    quasar::stats::Rng rng(seed);
    std::normal_distribution<double> g(0.0, 1.0);
    Matrix a(m, k), b(k, n);
    for (size_t i = 0; i < m; ++i)
        for (size_t f = 0; f < k; ++f)
            a.at(i, f) = g(rng.engine());
    for (size_t f = 0; f < k; ++f)
        for (size_t j = 0; j < n; ++j)
            b.at(f, j) = g(rng.engine());
    Matrix out = a.multiply(b);
    if (noise > 0.0)
        for (size_t i = 0; i < m; ++i)
            for (size_t j = 0; j < n; ++j)
                out.at(i, j) += noise * g(rng.engine());
    return out;
}

double
relErr(const Matrix &a, const Matrix &b)
{
    double denom = a.frobeniusNorm();
    Matrix d(a.rows(), a.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            d.at(i, j) = a.at(i, j) - b.at(i, j);
    return denom > 0 ? d.frobeniusNorm() / denom : 0.0;
}

} // namespace

TEST(Matrix, MultiplyIdentity)
{
    Matrix a(2, 3);
    a.at(0, 0) = 1;
    a.at(0, 2) = 2;
    a.at(1, 1) = 3;
    Matrix eye(3, 3);
    for (int i = 0; i < 3; ++i)
        eye.at(i, i) = 1.0;
    Matrix c = a.multiply(eye);
    EXPECT_DOUBLE_EQ(c.maxAbsDiff(a), 0.0);
}

TEST(Matrix, MultiplyKnown)
{
    Matrix a(2, 2), b(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 3;
    a.at(1, 1) = 4;
    b.at(0, 0) = 5;
    b.at(0, 1) = 6;
    b.at(1, 0) = 7;
    b.at(1, 1) = 8;
    Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matrix, TransposeRoundTrip)
{
    Matrix a = lowRank(4, 7, 3, 1);
    Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 7u);
    EXPECT_EQ(t.cols(), 4u);
    EXPECT_DOUBLE_EQ(t.transpose().maxAbsDiff(a), 0.0);
}

TEST(Matrix, RowColumnAccessors)
{
    Matrix a(2, 3);
    a.setRow(1, {4.0, 5.0, 6.0});
    EXPECT_EQ(a.row(1), (std::vector<double>{4.0, 5.0, 6.0}));
    EXPECT_EQ(a.column(2), (std::vector<double>{0.0, 6.0}));
}

TEST(MaskedMatrix, ObservationBookkeeping)
{
    MaskedMatrix m(3, 4);
    EXPECT_EQ(m.numObserved(), 0u);
    m.set(0, 1, 2.5);
    m.set(0, 1, 3.5); // overwrite, not double-count
    m.set(2, 3, 1.0);
    EXPECT_EQ(m.numObserved(), 2u);
    EXPECT_TRUE(m.observed(0, 1));
    EXPECT_FALSE(m.observed(1, 1));
    EXPECT_DOUBLE_EQ(m.value(0, 1), 3.5);
    EXPECT_EQ(m.observedInRow(0), 1u);
    EXPECT_NEAR(m.observedMean(), 2.25, 1e-12);
    m.clear(0, 1);
    EXPECT_EQ(m.numObserved(), 1u);
    EXPECT_DOUBLE_EQ(m.value(0, 1), 0.0);
}

TEST(MaskedMatrix, AppendRowPreservesData)
{
    MaskedMatrix m(2, 3);
    m.set(1, 2, 9.0);
    size_t r = m.appendRow();
    EXPECT_EQ(r, 2u);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_TRUE(m.observed(1, 2));
    EXPECT_DOUBLE_EQ(m.value(1, 2), 9.0);
    EXPECT_EQ(m.observedInRow(2), 0u);
}

TEST(Svd, ReconstructsExactly)
{
    Matrix a = lowRank(12, 8, 8, 2);
    SvdResult s = svd(a);
    EXPECT_LT(relErr(a, s.reconstruct()), 1e-8);
}

TEST(Svd, SingularValuesDescending)
{
    Matrix a = lowRank(10, 6, 6, 3);
    SvdResult s = svd(a);
    for (size_t i = 1; i < s.singular.size(); ++i)
        EXPECT_GE(s.singular[i - 1], s.singular[i]);
}

TEST(Svd, DetectsRank)
{
    Matrix a = lowRank(20, 10, 3, 4);
    SvdResult s = svd(a);
    EXPECT_EQ(s.effectiveRank(1e-8), 3u);
}

TEST(Svd, TruncatedKeepsDominantEnergy)
{
    Matrix a = lowRank(15, 10, 3, 5);
    SvdResult s = svd(a, 3);
    EXPECT_EQ(s.rank(), 3u);
    EXPECT_LT(relErr(a, s.reconstruct()), 1e-8);
}

TEST(Svd, WideMatrixHandled)
{
    Matrix a = lowRank(5, 20, 4, 6);
    SvdResult s = svd(a);
    EXPECT_LT(relErr(a, s.reconstruct()), 1e-8);
    EXPECT_EQ(s.u.rows(), 5u);
    EXPECT_EQ(s.v.rows(), 20u);
}

TEST(Svd, LeftVectorsOrthonormal)
{
    Matrix a = lowRank(12, 7, 7, 8);
    SvdResult s = svd(a);
    for (size_t i = 0; i < s.rank(); ++i) {
        for (size_t j = i; j < s.rank(); ++j) {
            double dot = 0.0;
            for (size_t r = 0; r < a.rows(); ++r)
                dot += s.u.at(r, i) * s.u.at(r, j);
            EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-7);
        }
    }
}

TEST(RandomizedSvd, ApproximatesLowRank)
{
    Matrix a = lowRank(60, 40, 5, 9);
    SvdResult s = randomizedSvd(a, 5, 3);
    EXPECT_LT(relErr(a, s.reconstruct()), 1e-6);
}

TEST(RandomizedSvd, NoisyMatrixCapturesStructure)
{
    Matrix a = lowRank(80, 50, 4, 10, 0.01);
    SvdResult s = randomizedSvd(a, 8, 3);
    EXPECT_LT(relErr(a, s.reconstruct()), 0.05);
}

TEST(PqModel, CompletesLowRankMatrix)
{
    // 30x20 rank-3, 40% observed: reconstruction must recover the
    // missing entries well.
    Matrix truth = lowRank(30, 20, 3, 11);
    MaskedMatrix obs(30, 20);
    quasar::stats::Rng rng(12);
    std::bernoulli_distribution keep(0.4);
    for (size_t i = 0; i < 30; ++i)
        for (size_t j = 0; j < 20; ++j)
            if (keep(rng.engine()))
                obs.set(i, j, truth.at(i, j));

    PqConfig cfg;
    cfg.rank = 6;
    cfg.max_epochs = 600;
    PqModel model(cfg);
    model.fit(obs);
    EXPECT_LT(model.trainRmse(), 0.15);

    double err = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < 30; ++i)
        for (size_t j = 0; j < 20; ++j)
            if (!obs.observed(i, j)) {
                err += std::fabs(model.predict(i, j) - truth.at(i, j));
                ++n;
            }
    EXPECT_LT(err / double(n), 0.8); // values are O(1.7) on average
}

TEST(PqModel, EmptyMatrixSafe)
{
    MaskedMatrix obs(4, 4);
    PqModel model;
    model.fit(obs);
    EXPECT_EQ(model.epochsRun(), 0u);
    EXPECT_DOUBLE_EQ(model.predict(0, 0), 0.0);
}

TEST(PqModel, FoldInRecoversRow)
{
    // Dense history of a rank-2 structure; new row observed at 3 of
    // 15 columns must be predicted well everywhere.
    const size_t rows = 25, cols = 15, k = 2;
    Matrix truth = lowRank(rows + 1, cols, k, 21);
    MaskedMatrix hist(rows, cols);
    for (size_t i = 0; i < rows; ++i)
        for (size_t j = 0; j < cols; ++j)
            hist.set(i, j, truth.at(i, j));

    PqConfig cfg;
    cfg.rank = 4;
    cfg.max_epochs = 500;
    PqModel model(cfg);
    model.fit(hist);

    std::vector<std::pair<size_t, double>> observed = {
        {1, truth.at(rows, 1)},
        {7, truth.at(rows, 7)},
        {12, truth.at(rows, 12)},
    };
    std::vector<double> row = model.foldInRow(observed);
    ASSERT_EQ(row.size(), cols);
    // Observed entries exact.
    EXPECT_DOUBLE_EQ(row[7], truth.at(rows, 7));
    double err = 0.0;
    for (size_t j = 0; j < cols; ++j)
        err += std::fabs(row[j] - truth.at(rows, j));
    EXPECT_LT(err / double(cols), 0.6);
}

TEST(Completion, PreservesObservedEntries)
{
    Matrix truth = lowRank(10, 8, 2, 31);
    MaskedMatrix obs(10, 8);
    quasar::stats::Rng rng(32);
    std::bernoulli_distribution keep(0.5);
    for (size_t i = 0; i < 10; ++i)
        for (size_t j = 0; j < 8; ++j)
            if (keep(rng.engine()))
                obs.set(i, j, truth.at(i, j));
    MatrixCompletion comp;
    Matrix full = comp.complete(obs);
    for (size_t i = 0; i < 10; ++i)
        for (size_t j = 0; j < 8; ++j)
            if (obs.observed(i, j)) {
                EXPECT_DOUBLE_EQ(full.at(i, j), obs.value(i, j));
            }
}

TEST(Completion, RowCompletionAgainstDenseHistory)
{
    Matrix truth = lowRank(21, 12, 2, 41);
    MaskedMatrix hist(20, 12);
    for (size_t i = 0; i < 20; ++i)
        for (size_t j = 0; j < 12; ++j)
            hist.set(i, j, truth.at(i, j));
    PqConfig cfg;
    cfg.rank = 4;
    cfg.max_epochs = 500;
    MatrixCompletion comp(cfg);
    std::vector<double> row = comp.completeRow(
        hist, {0, 5}, {truth.at(20, 0), truth.at(20, 5)});
    double err = 0.0;
    for (size_t j = 0; j < 12; ++j)
        err += std::fabs(row[j] - truth.at(20, j));
    EXPECT_LT(err / 12.0, 1.2);
}

/** Density sweep: more observed entries must not hurt accuracy much. */
class CompletionDensity : public ::testing::TestWithParam<double>
{
};

TEST_P(CompletionDensity, ErrorShrinksWithDensity)
{
    double density = GetParam();
    Matrix truth = lowRank(40, 25, 3, 51);
    MaskedMatrix obs(40, 25);
    quasar::stats::Rng rng(52);
    std::bernoulli_distribution keep(density);
    for (size_t i = 0; i < 40; ++i)
        for (size_t j = 0; j < 25; ++j)
            if (keep(rng.engine()))
                obs.set(i, j, truth.at(i, j));
    PqConfig cfg;
    cfg.rank = 6;
    cfg.max_epochs = 400;
    PqModel model(cfg);
    model.fit(obs);
    double err = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < 40; ++i)
        for (size_t j = 0; j < 25; ++j)
            if (!obs.observed(i, j)) {
                err += std::fabs(model.predict(i, j) - truth.at(i, j));
                ++n;
            }
    double mean_err = n ? err / double(n) : 0.0;
    // Higher density -> tighter bound (values are O(1.7)).
    double bound = density >= 0.6 ? 0.35 : density >= 0.4 ? 0.6 : 1.2;
    EXPECT_LT(mean_err, bound) << "density " << density;
}

INSTANTIATE_TEST_SUITE_P(Densities, CompletionDensity,
                         ::testing::Values(0.25, 0.4, 0.6, 0.8));
