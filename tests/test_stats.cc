/**
 * @file
 * Unit and property tests for the stats module: RNG determinism and
 * distribution ranges, streaming accumulators, percentiles, histograms
 * and CDFs, and time series / utilization grids.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/histogram.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"
#include "stats/timeseries.hh"

using namespace quasar::stats;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 10; ++i)
        differ = differ || a.uniform() != b.uniform();
    EXPECT_TRUE(differ);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(1, 6);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 6);
        saw_lo = saw_lo || v == 1;
        saw_hi = saw_hi || v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, LognormalNoiseMedianNearOne)
{
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 4000; ++i)
        xs.push_back(rng.lognormalNoise(0.1));
    Samples s;
    s.addAll(xs);
    EXPECT_NEAR(s.percentile(50.0), 1.0, 0.02);
    EXPECT_GT(s.min(), 0.0);
}

TEST(Rng, LognormalZeroSigmaIsIdentity)
{
    Rng rng(3);
    EXPECT_DOUBLE_EQ(rng.lognormalNoise(0.0), 1.0);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(9);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.weightedIndex(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(double(counts[2]) / double(counts[0]), 3.0, 0.4);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(13);
    auto p = rng.permutation(20);
    ASSERT_EQ(p.size(), 20u);
    std::vector<bool> seen(20, false);
    for (size_t i : p) {
        ASSERT_LT(i, 20u);
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
    }
}

TEST(Rng, ForkIndependentButDeterministic)
{
    Rng a(21), b(21);
    Rng fa = a.fork(), fb = b.fork();
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
}

TEST(Rng, ParetoAboveScale)
{
    Rng rng(17);
    for (int i = 0; i < 500; ++i)
        EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Accumulator, MeanAndStddev)
{
    Accumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_NEAR(acc.stddev(), 2.138, 0.01);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Samples, PercentileInterpolates)
{
    Samples s;
    for (int i = 1; i <= 5; ++i)
        s.add(double(i)); // 1..5
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 5.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(25.0), 2.0);
}

TEST(Samples, PercentileUnsortedInput)
{
    Samples s;
    for (double x : {9.0, 1.0, 5.0, 3.0, 7.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 5.0);
}

// Regression: out-of-range or NaN percentile ranks used to flow into
// the rank interpolation unchecked (percentile(-50) on {1, 2} returned
// 0.5, below the sample minimum; in release builds a negative rank
// cast to size_t is undefined). They must clamp to the range ends.
TEST(Samples, PercentileClampsInvalidRanks)
{
    Samples s;
    s.add(1.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.percentile(-50.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(150.0), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(std::numeric_limits<double>::quiet_NaN()),
                     1.0);
    EXPECT_DOUBLE_EQ(s.percentile(std::numeric_limits<double>::infinity()),
                     2.0);
}

TEST(Samples, EmptySetReportsZeroes)
{
    Samples s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(-50.0), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    ErrorReport r = makeErrorReport(s);
    EXPECT_DOUBLE_EQ(r.avg, 0.0);
    EXPECT_DOUBLE_EQ(r.p90, 0.0);
    EXPECT_DOUBLE_EQ(r.max, 0.0);
    EXPECT_TRUE(std::isfinite(r.p90));
}

TEST(Samples, FractionBelow)
{
    Samples s;
    for (int i = 1; i <= 10; ++i)
        s.add(double(i));
    EXPECT_DOUBLE_EQ(s.fractionBelow(5.0), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionBelow(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.fractionBelow(10.0), 1.0);
}

TEST(Samples, ErrorReportFormat)
{
    Samples s;
    s.add(0.05);
    s.add(0.10);
    s.add(0.15);
    ErrorReport r = makeErrorReport(s);
    EXPECT_NEAR(r.avg, 0.10, 1e-9);
    EXPECT_NEAR(r.max, 0.15, 1e-9);
    EXPECT_GT(r.p90, r.avg);
    std::string txt = formatErrorReport(r);
    EXPECT_NE(txt.find("%"), std::string::npos);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-3.0);  // clamps into first bin
    h.add(100.0); // clamps into last bin
    EXPECT_DOUBLE_EQ(h.count(0), 2.0);
    EXPECT_DOUBLE_EQ(h.count(9), 2.0);
    EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, CdfMonotone)
{
    Histogram h(0.0, 1.0, 20);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        h.add(rng.uniform());
    double prev = 0.0;
    for (auto [edge, frac] : h.cdfPoints()) {
        EXPECT_GE(frac, prev);
        prev = frac;
    }
    EXPECT_NEAR(h.cdfAt(1.0), 1.0, 1e-9);
    EXPECT_NEAR(h.cdfAt(0.5), 0.5, 0.06);
}

TEST(Histogram, WeightedMass)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5, 3.0);
    h.add(1.5, 1.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(1.0), 0.75);
}

TEST(TimeSeries, RecordAndQuery)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    ts.record(0.0, 1.0);
    ts.record(10.0, 3.0);
    ts.record(20.0, 5.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.mean(), 3.0);
    EXPECT_DOUBLE_EQ(ts.meanOver(0.0, 15.0), 2.0);
    EXPECT_DOUBLE_EQ(ts.last(), 5.0);
    EXPECT_DOUBLE_EQ(TimeSeries().last(7.0), 7.0);
}

TEST(UtilizationGrid, WindowMeansAndHeatmap)
{
    UtilizationGrid grid(2);
    grid.record(0, 0.0, 0.2);
    grid.record(0, 10.0, 0.4);
    grid.record(1, 0.0, 1.0);
    auto means = grid.windowMeans(0.0, 20.0);
    ASSERT_EQ(means.size(), 2u);
    EXPECT_NEAR(means[0], 0.3, 1e-9);
    EXPECT_NEAR(means[1], 1.0, 1e-9);
    EXPECT_NEAR(grid.overallMean(), (0.2 + 0.4 + 1.0) / 3.0, 1e-9);

    std::string map = grid.renderHeatmap(0.0, 20.0, 4);
    // Two rows, each with the bucket glyphs between pipes.
    EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 2);
}
