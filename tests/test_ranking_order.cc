/**
 * @file
 * The maintained (incremental) candidate order: property tests
 * driving random mutation streams — arrivals, departures, capacity
 * churn, degrade, crash, recover, pressure spikes — and asserting
 * after every step that the order the dirty-mode scheduler streams
 * from its persistent per-platform structure equals a from-scratch
 * ranking sorted by rankedBefore (quality descending, ServerId
 * ascending on exact ties). Also the regression test for the
 * priority-eviction guard: hoisting priorityEvictable() behind the
 * free < 1 filter must leave placements bit-identical in all three
 * decision-path modes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/classifier.hh"
#include "core/scheduler.hh"
#include "profiling/profiler.hh"
#include "workload/factory.hh"

using namespace quasar;
using core::Allocation;
using core::GreedyScheduler;
using core::SchedulerConfig;
using core::WorkloadEstimate;
using workload::Workload;

namespace
{

/** Cluster + classifier world (same idiom as the scheduler tests). */
struct RankWorld
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler{cluster.catalog(), {}};
    core::Classifier clf{profiler, {}, 3};
    workload::WorkloadFactory factory{stats::Rng(91)};
    stats::Rng rng{92};

    RankWorld()
    {
        std::vector<Workload> seeds;
        for (int i = 0; i < 6; ++i)
            seeds.push_back(factory.hadoopJob(
                "seed", factory.rng().uniform(5.0, 150.0)));
        static const char *fams[] = {"spec-int", "parsec", "specjbb",
                                     "mix"};
        for (int i = 0; i < 8; ++i)
            seeds.push_back(factory.singleNodeJob("seed", fams[i % 4]));
        clf.seedOffline(seeds, 0.0);
    }

    std::pair<WorkloadId, WorkloadEstimate> make(Workload w)
    {
        WorkloadId id = registry.add(std::move(w));
        auto data = profiler.profile(registry.get(id), 0.0, rng);
        return {id, clf.classify(registry.get(id), data)};
    }

    void apply(WorkloadId id, const Allocation &alloc)
    {
        Workload &w = registry.get(id);
        for (const auto &[sid, victim] : alloc.evictions)
            cluster.server(sid).remove(victim);
        for (const auto &node : alloc.nodes) {
            sim::TaskShare share;
            share.workload = id;
            share.cores = node.cores;
            share.memory_gb = node.memory_gb;
            share.storage_gb = w.storage_gb_per_node;
            share.caused = w.causedPressure(0.0, node.cores);
            share.best_effort = w.best_effort;
            cluster.server(node.server).place(share);
        }
    }
};

/** The order contract rankedBefore defines, re-stated independently:
 *  quality strictly descending, exact-tie runs by ascending id. */
void
expectWellOrdered(const std::vector<std::pair<double, ServerId>> &r,
                  const std::string &ctx)
{
    for (size_t i = 1; i < r.size(); ++i) {
        EXPECT_GE(r[i - 1].first, r[i].first)
            << ctx << ": quality not descending at " << i;
        if (r[i - 1].first == r[i].first) {
            EXPECT_LT(r[i - 1].second, r[i].second)
                << ctx << ": tie not broken by ascending id at " << i;
        }
    }
}

void
expectSameOrder(const std::vector<std::pair<double, ServerId>> &got,
                const std::vector<std::pair<double, ServerId>> &want,
                const std::string &ctx)
{
    ASSERT_EQ(got.size(), want.size()) << ctx;
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].second, want[i].second)
            << ctx << ": id mismatch at rank " << i;
        // Bitwise quality equality, not near-equality: the maintained
        // order must apply the exact factor expression the full
        // ranking uses.
        EXPECT_EQ(got[i].first, want[i].first)
            << ctx << ": quality mismatch at rank " << i;
    }
}

void
expectSameAllocation(const std::optional<Allocation> &a,
                     const std::optional<Allocation> &b,
                     const std::string &ctx)
{
    ASSERT_EQ(a.has_value(), b.has_value()) << ctx;
    if (!a)
        return;
    ASSERT_EQ(a->nodes.size(), b->nodes.size()) << ctx;
    for (size_t i = 0; i < a->nodes.size(); ++i) {
        EXPECT_EQ(a->nodes[i].server, b->nodes[i].server) << ctx;
        EXPECT_EQ(a->nodes[i].scale_up_col, b->nodes[i].scale_up_col)
            << ctx;
        EXPECT_EQ(a->nodes[i].cores, b->nodes[i].cores) << ctx;
    }
    ASSERT_EQ(a->evictions.size(), b->evictions.size()) << ctx;
    for (size_t i = 0; i < a->evictions.size(); ++i)
        EXPECT_EQ(a->evictions[i], b->evictions[i]) << ctx;
}

} // namespace

// ---------------------------------------------------------------------
// Property: incremental order == from-scratch sort, after every step
// ---------------------------------------------------------------------

TEST(RankingOrder, IncrementalMatchesFromScratchUnderRandomMutations)
{
    RankWorld w;
    GreedyScheduler dirty(w.cluster); // dirty_set is the default
    SchedulerConfig cached_cfg;
    cached_cfg.dirty_set = false;

    // Two probe estimates with different platform preferences so the
    // read-time factors actually discriminate between platforms.
    auto [hid, probe_a] = w.make(w.factory.hadoopJob("probe-a", 60.0));
    auto [sid_, probe_b] =
        w.make(w.factory.singleNodeJob("probe-b", "specjbb"));
    (void)hid;
    (void)sid_;

    // Pristine cluster: identical idle servers of the same platform
    // guarantee exact-quality ties, so the id tie-break is exercised
    // from the very first comparison.
    auto first = dirty.rankedCandidates(probe_a);
    bool any_tie = false;
    for (size_t i = 1; i < first.size(); ++i)
        any_tie = any_tie || first[i - 1].first == first[i].first;
    EXPECT_TRUE(any_tie)
        << "fixture lost its equal-quality servers; the tie-break "
           "property below would be vacuous";

    std::vector<std::pair<WorkloadId, std::vector<ServerId>>> placed;
    interference::IVector poke = interference::zeroVector();
    poke[2] = 0.4;

    for (int step = 0; step < 60; ++step) {
        switch (w.rng.uniformInt(0, 5)) {
        case 0:
        case 1: { // arrival, decided through the incremental order
            auto [id, est] = w.make(w.factory.hadoopJob(
                "job", w.rng.uniform(10.0, 80.0)));
            auto a = dirty.allocate(w.registry.get(id), est,
                                    w.rng.uniform(10.0, 80.0), nullptr,
                                    false);
            if (a) {
                w.apply(id, *a);
                std::vector<ServerId> on;
                for (const auto &n : a->nodes)
                    on.push_back(n.server);
                placed.emplace_back(id, std::move(on));
            }
            break;
        }
        case 2: { // departure of a random resident workload
            if (placed.empty())
                break;
            size_t k = size_t(w.rng.uniformInt(
                0, int64_t(placed.size()) - 1));
            for (ServerId s : placed[k].second)
                w.cluster.server(s).remove(placed[k].first);
            placed.erase(placed.begin() + ptrdiff_t(k));
            break;
        }
        case 3: { // partial failure
            ServerId s = ServerId(w.rng.uniformInt(
                0, int64_t(w.cluster.size()) - 1));
            w.cluster.server(s).degrade(w.rng.uniform(0.1, 0.9));
            break;
        }
        case 4: { // crash (drops residents) or recovery
            ServerId s = ServerId(w.rng.uniformInt(
                0, int64_t(w.cluster.size()) - 1));
            if (w.cluster.server(s).available())
                w.cluster.server(s).markDown();
            else
                w.cluster.server(s).recover();
            break;
        }
        default: { // transient pressure spike + decay
            ServerId s = ServerId(w.rng.uniformInt(
                0, int64_t(w.cluster.size()) - 1));
            w.cluster.server(s).injectPressure(poke);
            if (w.rng.uniformInt(0, 1) == 0)
                w.cluster.server(s).clearInjectedPressure();
            break;
        }
        }

        for (const WorkloadEstimate *probe : {&probe_a, &probe_b}) {
            std::string ctx = "step " + std::to_string(step);
            auto got = dirty.rankedCandidates(*probe);
            // From-scratch referee: a fresh cached-mode scheduler has
            // no incremental state, scores every server and sorts by
            // rankedBefore.
            GreedyScheduler fresh(w.cluster, cached_cfg);
            auto want = fresh.rankedCandidates(*probe);
            expectSameOrder(got, want, ctx);
            expectWellOrdered(got, ctx);
            if (::testing::Test::HasFailure())
                return; // one divergent step is diagnosis enough
        }
    }
}

// ---------------------------------------------------------------------
// Regression: the priorityEvictable() hoist must not move placements
// ---------------------------------------------------------------------

TEST(RankingOrder, PriorityEvictionPlacementsIdenticalAcrossModes)
{
    RankWorld w;
    SchedulerConfig rescan_cfg;
    rescan_cfg.full_rescan = true;
    SchedulerConfig cached_cfg;
    cached_cfg.dirty_set = false;

    // Pin every server full with non-best-effort low-priority
    // residents: free_cores == 0 and be_cores == 0, so a candidate
    // only clears the free < 1 ranking filter through the
    // priorityEvictable() walk — exactly the code path the guard
    // hoisted.
    std::vector<WorkloadId> pinned;
    for (size_t s = 0; s < w.cluster.size(); ++s) {
        Workload filler = w.factory.singleNodeJob("filler", "parsec");
        filler.priority = -1;
        WorkloadId fid = w.registry.add(std::move(filler));
        pinned.push_back(fid);
        sim::Server &srv = w.cluster.server(ServerId(s));
        sim::TaskShare share;
        share.workload = fid;
        share.cores = srv.platform().cores;
        share.memory_gb = srv.platform().memory_gb / 2.0;
        srv.place(share);
    }

    auto [id, est] = w.make(w.factory.hadoopJob("vip", 50.0));
    Workload &job = w.registry.get(id);
    job.priority = 5;

    GreedyScheduler dirty(w.cluster, SchedulerConfig{}, &w.registry);
    GreedyScheduler cached(w.cluster, cached_cfg, &w.registry);
    GreedyScheduler rescan(w.cluster, rescan_cfg, &w.registry);

    auto a = dirty.allocate(job, est, 50.0, nullptr, true);
    auto b = cached.allocate(job, est, 50.0, nullptr, true);
    auto c = rescan.allocate(job, est, 50.0, nullptr, true);
    expectSameAllocation(a, b, "dirty vs cached");
    expectSameAllocation(a, c, "dirty vs full_rescan");

    // The scenario must actually preempt: an allocation that fit in
    // leftover capacity would not exercise the guard at all.
    ASSERT_TRUE(a.has_value());
    ASSERT_FALSE(a->evictions.empty());
    for (const auto &[srv, victim] : a->evictions) {
        (void)srv;
        EXPECT_TRUE(std::find(pinned.begin(), pinned.end(), victim) !=
                    pinned.end())
            << "evicted a workload that is not a pinned low-priority "
               "filler";
    }

    // Without eviction rights nothing fits — confirming the fillers
    // really saturated the machines and the free < 1 guard was the
    // only gate.
    EXPECT_FALSE(
        dirty.allocate(job, est, 50.0, nullptr, false).has_value());
}
