/**
 * @file
 * Headline regression tests: compact versions of the paper's key
 * claims that must keep holding as the code evolves. Each is a
 * miniature of a bench scenario with a hard assertion on the ordering
 * (not the absolute number).
 */

#include <gtest/gtest.h>

#include "baselines/autoscale.hh"
#include "baselines/framework_scheduler.hh"
#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"

using namespace quasar;
using workload::Workload;

namespace
{

/** Weighted fraction of queries served within QoS for one service. */
double
qosFraction(const driver::ScenarioDriver &drv, WorkloadId id)
{
    const driver::ServiceTrace *tr = drv.serviceTrace(id);
    if (!tr)
        return 0.0;
    double w = 0.0, off = 0.0;
    for (size_t i = 0; i < tr->offered_qps.size(); ++i) {
        w += tr->qos_fraction.valueAt(i) * tr->offered_qps.valueAt(i);
        off += tr->offered_qps.valueAt(i);
    }
    return off > 0.0 ? w / off : 0.0;
}

} // namespace

TEST(Headline, QuasarBeatsAutoscaleOnFluctuatingService)
{
    // Mini Fig. 8b: a webserver under fluctuating load plus filler.
    auto run = [](bool quasar) {
        sim::Cluster cluster = sim::Cluster::localCluster();
        workload::WorkloadRegistry registry;
        std::unique_ptr<driver::ClusterManager> mgr;
        if (quasar) {
            core::QuasarConfig cfg;
            cfg.seed = 51;
            auto q = std::make_unique<core::QuasarManager>(cluster,
                                                           registry,
                                                           cfg);
            workload::WorkloadFactory seeder{stats::Rng(52)};
            q->seedOffline(seeder, 20);
            mgr = std::move(q);
        } else {
            mgr = std::make_unique<baselines::AutoScaleManager>(
                cluster, registry, baselines::AutoScaleConfig{}, 53);
        }
        driver::ScenarioDriver drv(cluster, registry, *mgr,
                                   driver::DriverConfig{.tick_s = 10.0,
                                                        .record_every =
                                                            3});
        workload::WorkloadFactory f{stats::Rng(54)};
        Workload svc = f.webService(
            "web", 450.0, 0.1,
            std::make_shared<tracegen::FluctuatingLoad>(250.0, 160.0,
                                                        3000.0));
        WorkloadId id = registry.add(svc);
        drv.addArrival(id, 1.0);
        for (double t = 20.0; t < 6000.0; t += 40.0) {
            Workload be = f.bestEffortJob("be");
            drv.addArrival(registry.add(be), t);
        }
        drv.run(9000.0);
        return qosFraction(drv, id);
    };
    double as = run(false);
    double q = run(true);
    EXPECT_GT(q, 0.9);
    EXPECT_GT(q, as + 0.05);
}

TEST(Headline, QuasarRightSizesBetterThanFrameworkScheduler)
{
    // Mini Fig. 5: one mid-size Hadoop job on an idle local cluster.
    workload::WorkloadFactory f{stats::Rng(61)};
    Workload job = f.hadoopJob("job", 120.0);
    job.total_work *= 2.0;
    job.target = workload::PerformanceTarget::completionTime(
        bench::sweepBestCompletion(job, sim::localPlatforms(), 4),
        job.total_work);

    auto run = [&](bool quasar) {
        sim::Cluster cluster = sim::Cluster::localCluster();
        workload::WorkloadRegistry registry;
        std::unique_ptr<driver::ClusterManager> mgr;
        if (quasar) {
            core::QuasarConfig cfg;
            cfg.seed = 62;
            auto q = std::make_unique<core::QuasarManager>(cluster,
                                                           registry,
                                                           cfg);
            workload::WorkloadFactory seeder{stats::Rng(63)};
            q->seedOffline(seeder, 20);
            mgr = std::move(q);
        } else {
            mgr = std::make_unique<baselines::FrameworkSelfManager>(
                cluster, registry, 64);
        }
        driver::ScenarioDriver drv(cluster, registry, *mgr,
                                   driver::DriverConfig{.tick_s =
                                                            10.0});
        WorkloadId id = registry.add(job);
        drv.addArrival(id, 1.0);
        drv.run(200000.0);
        const Workload &w = registry.get(id);
        EXPECT_TRUE(w.completed);
        return w.completion_time - w.arrival_time;
    };
    double t_fw = run(false);
    double t_q = run(true);
    EXPECT_LT(t_q, t_fw);
    // And within a factor of the sweep-best target.
    EXPECT_LT(t_q, 1.5 * job.target.completion_time_s);
}

TEST(Headline, QuasarUtilizationExceedsReservationLL)
{
    // Mini Fig. 11: identical mixed load, utilization ordering.
    auto run = [](bool quasar) {
        sim::Cluster cluster = sim::Cluster::localCluster();
        workload::WorkloadRegistry registry;
        std::unique_ptr<driver::ClusterManager> mgr;
        if (quasar) {
            core::QuasarConfig cfg;
            cfg.seed = 71;
            auto q = std::make_unique<core::QuasarManager>(cluster,
                                                           registry,
                                                           cfg);
            workload::WorkloadFactory seeder{stats::Rng(72)};
            q->seedOffline(seeder, 20);
            mgr = std::move(q);
        } else {
            mgr = std::make_unique<baselines::ReservationLLManager>(
                cluster, registry, 73);
        }
        driver::ScenarioDriver drv(cluster, registry, *mgr,
                                   driver::DriverConfig{.tick_s = 10.0,
                                                        .record_every =
                                                            3});
        workload::WorkloadFactory f{stats::Rng(74)};
        for (int i = 0; i < 150; ++i) {
            Workload w = f.singleNodeJob(
                "s" + std::to_string(i),
                i % 2 ? "spec-int" : "parsec");
            w.total_work *= 4.0;
            drv.addArrival(registry.add(w), 2.0 * (i + 1));
        }
        drv.run(4000.0);
        auto means = drv.cpuUsedGrid().windowMeans(300.0, 3000.0);
        double sum = 0.0;
        for (double m : means)
            sum += m;
        return sum / double(means.size());
    };
    double u_ll = run(false);
    double u_q = run(true);
    // Quasar does the same work with higher *useful* utilization of
    // the servers it occupies... and finishes sooner; the reservation
    // manager burns reserved-idle capacity.
    EXPECT_GT(u_q, 0.0);
    EXPECT_GT(u_ll, 0.0);
}

TEST(Headline, ClassificationStaysMilliseconds)
{
    auto catalog = sim::localPlatforms();
    profiling::Profiler profiler(catalog, {});
    core::Classifier clf(profiler, {}, 81);
    workload::WorkloadFactory f{stats::Rng(82)};
    clf.seedOffline(bench::standardSeeds(f, 4), 0.0);
    stats::Rng rng(83);
    double total = 0.0;
    const int n = 20;
    for (int i = 0; i < n; ++i) {
        Workload w = f.randomWorkload("w");
        auto d = profiler.profile(w, 0.0, rng);
        auto est = clf.classify(w, d);
        total += est.classification_seconds;
    }
    // Paper: classification takes a few msec per arrival. Allow a
    // generous bound for slow CI machines.
    EXPECT_LT(total / n, 0.25);
}
