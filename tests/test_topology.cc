/**
 * @file
 * NUMA/LLC topology subsystem tests (DESIGN.md §13).
 *
 * Three layers of evidence:
 *
 *  - `Topology*`: the descriptor itself — capacity splitting conserves
 *    the platform totals (machine-global sources excepted by design),
 *    the symmetric builder and validator behave, and the interference
 *    multiplier path is well-defined on the edge cases topology
 *    introduces (zero-capacity domains, attenuated cross-socket
 *    pressure above 1, the Cpu-vs-LLCache cross-socket asymmetry).
 *
 *  - `Socket*` server/ledger: the maintained per-socket ledger stays
 *    conserved through every mutation path, injected pressure homes on
 *    its socket, and (under QUASAR_VERIFY) a hand-desynced ledger
 *    aborts the sweep.
 *
 *  - `Socket*` placement: socket-aware selection avoids a thrashed
 *    socket where the blind fewest-cores rule walks into it; all three
 *    scheduler modes stay bit-identical on multi-socket catalogs; and
 *    the flat single-socket model — default or spelled out as
 *    Topology::single() — is bit-identical to the pre-topology
 *    behaviour across a 20-seed churn sweep. (Reproduction of the
 *    committed BENCH_churn/BENCH_overload/BENCH_trace hashes is gated
 *    end-to-end by the ci/check.sh bench smoke stages; this sweep
 *    proves the equivalence property those gates rely on.)
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "churn/churn.hh"
#include "core/classifier.hh"
#include "core/manager.hh"
#include "core/scheduler.hh"
#include "driver/scenario.hh"
#include "profiling/profiler.hh"
#include "topology/ledger.hh"
#include "topology/topology.hh"
#include "workload/factory.hh"

#ifdef QUASAR_VERIFY
#include "verify/verify.hh"
#endif

using namespace quasar;
using interference::IVector;
using interference::kNumSources;
using interference::Source;
using topology::Topology;
using workload::Workload;

namespace
{

/** Cluster of `n` copies of the 2-socket NUMA preset. */
sim::Cluster
twoSocketCluster(int n)
{
    auto catalog = sim::numaPlatforms();
    std::vector<int> counts(catalog.size(), 0);
    for (size_t i = 0; i < catalog.size(); ++i)
        if (catalog[i].topology.numSockets() == 2)
            counts[i] = n;
    return sim::Cluster(catalog, counts);
}

IVector
distinctCapacity()
{
    IVector v{};
    for (size_t i = 0; i < kNumSources; ++i)
        v[i] = 1.0 + 0.25 * double(i);
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// Topology descriptor
// ---------------------------------------------------------------------

TEST(Topology, SplitCapacityConservesPerSocketSlices)
{
    Topology t = Topology::symmetric(16, 2, /*llc_domains=*/2);
    const IVector total = distinctCapacity();
    const auto caps = t.splitCapacity(total);
    ASSERT_EQ(caps.size(), 2u);
    for (size_t i = 0; i < kNumSources; ++i) {
        const Source s = Source(i);
        if (topology::isMachineGlobal(s)) {
            // Disk and network are machine-global: full capacity on
            // every socket, same behaviour as the flat model.
            EXPECT_EQ(caps[0][i], total[i]) << i;
            EXPECT_EQ(caps[1][i], total[i]) << i;
        } else if (s == Source::LLCache) {
            // Split by socket AND by LLC domain count.
            EXPECT_DOUBLE_EQ(caps[0][i], total[i] / 2.0 / 2.0) << i;
        } else {
            EXPECT_DOUBLE_EQ(caps[0][i] + caps[1][i], total[i]) << i;
        }
    }
}

TEST(Topology, FlatSplitIsBitwiseIdentity)
{
    const IVector total = distinctCapacity();
    for (const Topology &t : {Topology{}, Topology::single(),
                              Topology::symmetric(8, 1)}) {
        ASSERT_TRUE(t.flat());
        const auto caps = t.splitCapacity(total);
        ASSERT_EQ(caps.size(), 1u);
        for (size_t i = 0; i < kNumSources; ++i)
            EXPECT_EQ(caps[0][i], total[i]) << i; // exact, not near
    }
}

TEST(Topology, SymmetricBuilderSpreadsCoreRemainder)
{
    Topology t = Topology::symmetric(10, 4);
    ASSERT_EQ(t.numSockets(), 4);
    EXPECT_EQ(t.sockets[0].cores, 3);
    EXPECT_EQ(t.sockets[1].cores, 3);
    EXPECT_EQ(t.sockets[2].cores, 2);
    EXPECT_EQ(t.sockets[3].cores, 2);
    EXPECT_TRUE(t.valid(10));
    EXPECT_FALSE(t.valid(12)); // core-count mismatch
}

TEST(Topology, ValidRejectsIllFormedLayouts)
{
    Topology t = Topology::symmetric(8, 2);
    EXPECT_TRUE(t.valid(8));

    Topology zero_cores = t;
    zero_cores.sockets[1].cores = 0;
    EXPECT_FALSE(zero_cores.valid(8));

    Topology no_domain = t;
    no_domain.sockets[0].llc_domains = 0;
    EXPECT_FALSE(no_domain.valid(8));

    Topology cross_high = t;
    cross_high.cross_socket[size_t(Source::MemoryBw)] = 1.5;
    EXPECT_FALSE(cross_high.valid(8));

    Topology cross_nan = t;
    cross_nan.cross_socket[size_t(Source::LLCache)] =
        std::nan("");
    EXPECT_FALSE(cross_nan.valid(8));
}

// ---------------------------------------------------------------------
// Interference multiplier path under topology-shaped inputs
// ---------------------------------------------------------------------

TEST(Topology, SourceMultiplierSaturatesAbovePressureOne)
{
    // Attenuated cross-socket views can still exceed 1 (an antagonist
    // pushing 1.4 of normalized pressure leaks 0.7 across at factor
    // 0.5); the multiplier must keep degrading linearly past 1 and
    // bottom out at the floor instead of going negative.
    interference::SensitivityProfile p;
    p.threshold[size_t(Source::MemoryBw)] = 0.3;
    p.slope[size_t(Source::MemoryBw)] = 0.5;
    EXPECT_DOUBLE_EQ(p.sourceMultiplier(Source::MemoryBw, 0.2), 1.0);
    EXPECT_DOUBLE_EQ(p.sourceMultiplier(Source::MemoryBw, 0.7),
                     1.0 - 0.5 * 0.4);
    EXPECT_DOUBLE_EQ(p.sourceMultiplier(Source::MemoryBw, 1.4),
                     1.0 - 0.5 * 1.1);
    // Far past saturation: clamped to the floor, never negative.
    EXPECT_DOUBLE_EQ(p.sourceMultiplier(Source::MemoryBw, 5.0),
                     p.floor);

    IVector everything{};
    everything.fill(10.0);
    EXPECT_DOUBLE_EQ(p.multiplier(everything), p.floor);
}

TEST(Topology, ZeroCapacityDomainYieldsContentionFreeView)
{
    // A platform with no capacity at all in one source (storage-less
    // box: DiskIO 0) must normalize to zero contention there, not
    // inf/NaN — the multiplier path would otherwise floor every
    // placement on the machine.
    auto catalog = sim::numaPlatforms();
    for (auto &p : catalog)
        p.contention_capacity[size_t(Source::DiskIO)] = 0.0;
    std::vector<int> counts(catalog.size(), 0);
    for (size_t i = 0; i < catalog.size(); ++i)
        if (catalog[i].topology.numSockets() == 2)
            counts[i] = 1;
    sim::Cluster cluster(catalog, counts);
    sim::Server &srv = cluster.server(ServerId(0));

    sim::TaskShare share;
    share.workload = WorkloadId(1);
    share.cores = 2;
    share.memory_gb = 1.0;
    share.caused[size_t(Source::DiskIO)] = 0.8;
    share.caused[size_t(Source::MemoryBw)] = 0.4;
    share.socket = 0;
    srv.place(share);

    for (int sock = 0; sock < srv.numSockets(); ++sock) {
        const IVector seen = srv.contentionForNewcomerAt(sock);
        for (size_t i = 0; i < kNumSources; ++i)
            EXPECT_TRUE(std::isfinite(seen[i]))
                << "socket " << sock << " source " << i;
        EXPECT_EQ(seen[size_t(Source::DiskIO)], 0.0) << sock;
    }
    EXPECT_GT(srv.contentionForNewcomerAt(0)[size_t(Source::MemoryBw)],
              0.0);
}

TEST(Topology, CpuVsLLCacheCrossSocketAsymmetry)
{
    // Core-private pressure (Cpu) must not cross the socket boundary
    // at all; LLC pressure leaks at its small cross factor. Equal raw
    // pressure on socket 1 therefore looks very different from
    // socket 0.
    sim::Cluster cluster = twoSocketCluster(1);
    sim::Server &srv = cluster.server(ServerId(0));
    const double cross_llc =
        srv.crossSocketFactor()[size_t(Source::LLCache)];
    ASSERT_EQ(srv.crossSocketFactor()[size_t(Source::Cpu)], 0.0);
    ASSERT_GT(cross_llc, 0.0);

    sim::TaskShare share;
    share.workload = WorkloadId(1);
    share.cores = 2;
    share.memory_gb = 1.0;
    share.caused[size_t(Source::Cpu)] = 0.4;
    share.caused[size_t(Source::LLCache)] = 0.4;
    share.socket = 1;
    srv.place(share);

    const IVector home = srv.contentionForNewcomerAt(1);
    const IVector remote = srv.contentionForNewcomerAt(0);
    const double cap_cpu = srv.socketCapacity(1)[size_t(Source::Cpu)];
    const double cap_llc =
        srv.socketCapacity(1)[size_t(Source::LLCache)];

    // Full strength on the home socket for both sources.
    EXPECT_DOUBLE_EQ(home[size_t(Source::Cpu)], 0.4 / cap_cpu);
    EXPECT_DOUBLE_EQ(home[size_t(Source::LLCache)], 0.4 / cap_llc);
    // Across the boundary: Cpu vanishes, LLC is attenuated.
    EXPECT_EQ(remote[size_t(Source::Cpu)], 0.0);
    EXPECT_DOUBLE_EQ(remote[size_t(Source::LLCache)],
                     cross_llc * 0.4 / cap_llc);
}

TEST(Topology, AttenuatedRemotePressureCanStillExceedOne)
{
    // pressure > 1 saturation through the attenuation path: inject
    // 1.4 normalized memory-bandwidth pressure on socket 1; the home
    // view exceeds 1 (the model does not clamp raw contention) and
    // the remote view is exactly the cross factor times it (the
    // symmetric preset gives both sockets the same capacity).
    sim::Cluster cluster = twoSocketCluster(1);
    sim::Server &srv = cluster.server(ServerId(0));
    const size_t bw = size_t(Source::MemoryBw);
    IVector v{};
    v[bw] = 1.4;
    srv.injectPressureAt(1, v);

    const double home = srv.contentionForNewcomerAt(1)[bw];
    const double remote = srv.contentionForNewcomerAt(0)[bw];
    EXPECT_NEAR(home, 1.4, 1e-12);
    EXPECT_NEAR(remote, srv.crossSocketFactor()[bw] * 1.4, 1e-12);
    EXPECT_GT(home, 1.0);
}

// ---------------------------------------------------------------------
// Per-socket ledger on Server
// ---------------------------------------------------------------------

namespace
{

/** Maintained ledger == fresh recompute per socket, sockets sum to the
 *  flat raw ledger. */
void
expectLedgerConserved(const sim::Server &srv, const std::string &ctx)
{
    IVector summed{};
    for (int sock = 0; sock < srv.numSockets(); ++sock) {
        const IVector maintained = srv.maintainedSocketPressure(sock);
        const IVector fresh = srv.freshSocketPressure(sock);
        for (size_t i = 0; i < kNumSources; ++i) {
            EXPECT_NEAR(maintained[i], fresh[i], 1e-9)
                << ctx << " socket " << sock << " source " << i;
            EXPECT_GE(maintained[i], -1e-9)
                << ctx << " socket " << sock << " source " << i;
            summed[i] += maintained[i];
        }
    }
    const IVector raw = srv.rawPressure();
    for (size_t i = 0; i < kNumSources; ++i)
        EXPECT_NEAR(summed[i], raw[i], 1e-9) << ctx << " source " << i;
}

sim::TaskShare
pressuredShare(WorkloadId id, int cores, int socket)
{
    sim::TaskShare share;
    share.workload = id;
    share.cores = cores;
    share.memory_gb = 1.0;
    for (size_t i = 0; i < kNumSources; ++i)
        share.caused[i] = 0.05 * double(cores) * double(i + 1);
    share.socket = socket;
    return share;
}

} // namespace

TEST(SocketLedger, ConservedAcrossEveryMutationPath)
{
    sim::Cluster cluster = twoSocketCluster(1);
    sim::Server &srv = cluster.server(ServerId(0));

    srv.place(pressuredShare(WorkloadId(1), 2, 0));
    expectLedgerConserved(srv, "after place s0");
    srv.place(pressuredShare(WorkloadId(2), 4, 1));
    expectLedgerConserved(srv, "after place s1");

    ASSERT_TRUE(srv.resize(WorkloadId(2), 2, 1.0));
    expectLedgerConserved(srv, "after resize");

    ASSERT_TRUE(srv.setIsolation(WorkloadId(1), Source::LLCache, true));
    expectLedgerConserved(srv, "after isolation grant");
    ASSERT_TRUE(
        srv.setIsolation(WorkloadId(1), Source::LLCache, false));
    expectLedgerConserved(srv, "after isolation revoke");

    IVector inj{};
    inj[size_t(Source::MemoryBw)] = 0.3;
    srv.injectPressureAt(1, inj);
    expectLedgerConserved(srv, "after inject");
    srv.clearInjectedPressure();
    expectLedgerConserved(srv, "after clear inject");

    ASSERT_TRUE(srv.remove(WorkloadId(1)));
    expectLedgerConserved(srv, "after remove");

    srv.markDown();
    expectLedgerConserved(srv, "after markDown");
    for (int sock = 0; sock < srv.numSockets(); ++sock) {
        const IVector after = srv.maintainedSocketPressure(sock);
        for (size_t i = 0; i < kNumSources; ++i)
            EXPECT_EQ(after[i], 0.0)
                << "socket " << sock << " source " << i;
    }
}

TEST(SocketLedger, InjectedPressureHomesOnItsSocket)
{
    sim::Cluster cluster = twoSocketCluster(1);
    sim::Server &srv = cluster.server(ServerId(0));
    const size_t llc = size_t(Source::LLCache);
    IVector v{};
    v[llc] = 0.5;
    srv.injectPressureAt(1, v);

    // Raw (unnormalized) ledgers: all of it on socket 1.
    EXPECT_EQ(srv.maintainedSocketPressure(0)[llc], 0.0);
    EXPECT_DOUBLE_EQ(srv.maintainedSocketPressure(1)[llc],
                     0.5 * srv.socketCapacity(1)[llc]);
    expectLedgerConserved(srv, "after injectPressureAt(1)");
}

#ifdef QUASAR_VERIFY
TEST(SocketLedger, DesyncedLedgerAbortsVerifySweep)
{
    sim::Cluster cluster = twoSocketCluster(1);
    cluster.server(ServerId(0))
        .place(pressuredShare(WorkloadId(1), 2, 0));
    verify::sweepCluster(cluster, nullptr); // clean: must not abort
    cluster.server(ServerId(0))
        .desyncSocketLedgerForTest(0, Source::LLCache, 0.5);
    EXPECT_DEATH(verify::sweepCluster(cluster, nullptr),
                 "socket ledger");
}
#else
TEST(SocketLedger, DesyncedLedgerAbortsVerifySweep)
{
    GTEST_SKIP() << "QUASAR_VERIFY is OFF; the conservation sweep is "
                    "compiled out of this build";
}
#endif

// ---------------------------------------------------------------------
// Socket selection in the scheduler
// ---------------------------------------------------------------------

namespace
{

/** Profile-and-classify world anchored on the given cluster's own
 *  catalog (estimates are per-platform; the sizes must match). */
struct SchedWorld
{
    sim::Cluster cluster;
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler;
    core::Classifier clf;
    workload::WorkloadFactory factory{stats::Rng(11)};
    stats::Rng rng{12};

    explicit SchedWorld(sim::Cluster c)
        : cluster(std::move(c)), profiler(cluster.catalog(), {}),
          clf(profiler, {}, 3)
    {
        std::vector<Workload> seeds;
        for (int i = 0; i < 4; ++i)
            seeds.push_back(factory.memcachedService(
                "seed-mc", 4e4 + 1e4 * i, 2e-4, 8.0, nullptr));
        for (int i = 0; i < 4; ++i)
            seeds.push_back(factory.hadoopJob(
                "seed-job", factory.rng().uniform(20.0, 120.0)));
        clf.seedOffline(seeds, 0.0);
    }

    std::pair<WorkloadId, core::WorkloadEstimate> make(Workload w)
    {
        WorkloadId id = registry.add(std::move(w));
        auto data = profiler.profile(registry.get(id), 0.0, rng);
        return {id, clf.classify(registry.get(id), data)};
    }
};

} // namespace

TEST(SocketSelection, AwareAvoidsThrashedSocketBlindWalksIn)
{
    // An antagonist thrashes socket 0 (injected pressure owns no
    // cores). The aware rule reads the per-socket interference view
    // and homes the sensitive service on socket 1; the blind
    // fewest-homed-cores rule sees two empty sockets, tie-breaks to
    // socket 0, and walks straight into the pressure.
    for (bool aware : {true, false}) {
        SchedWorld w(twoSocketCluster(1));
        IVector thrash{};
        thrash[size_t(Source::MemoryBw)] = 0.7;
        thrash[size_t(Source::LLCache)] = 0.8;
        thrash[size_t(Source::Prefetch)] = 0.5;
        w.cluster.server(ServerId(0)).injectPressureAt(0, thrash);

        core::SchedulerConfig cfg;
        cfg.socket_aware = aware;
        core::GreedyScheduler sched(w.cluster, cfg, &w.registry);

        auto [id, est] = w.make(w.factory.memcachedService(
            "mc", 3e4, 2e-4, 8.0, nullptr));
        auto alloc = sched.allocate(w.registry.get(id), est, 1e3,
                                    nullptr, false);
        ASSERT_TRUE(alloc.has_value()) << "aware=" << aware;
        ASSERT_EQ(alloc->nodes.size(), 1u) << "aware=" << aware;
        EXPECT_EQ(alloc->nodes[0].socket, aware ? 1 : 0)
            << "aware=" << aware;
    }
}

TEST(SocketSelection, FlatPlatformAlwaysHomesSocketZero)
{
    // On single-socket machines both settings are the same rule; the
    // socket field must stay 0 so the replay hash fold is untouched.
    for (bool aware : {true, false}) {
        SchedWorld w(sim::Cluster::localCluster()); // all flat
        core::SchedulerConfig cfg;
        cfg.socket_aware = aware;
        core::GreedyScheduler sched(w.cluster, cfg, &w.registry);
        auto [id, est] = w.make(w.factory.memcachedService(
            "mc", 3e4, 2e-4, 8.0, nullptr));
        auto alloc = sched.allocate(w.registry.get(id), est, 1e3,
                                    nullptr, false);
        ASSERT_TRUE(alloc.has_value());
        for (const core::AllocationNode &n : alloc->nodes)
            EXPECT_EQ(n.socket, 0);
    }
}

// ---------------------------------------------------------------------
// Replay equivalence: modes and the flat contract
// ---------------------------------------------------------------------

namespace
{

enum class Mode
{
    DirtySet,
    Cached,
    FullRescan,
};

/** Final simulated state of one churn run, for equality checks. */
struct ChurnRun
{
    std::vector<double> work_done;
    std::vector<bool> completed;
    std::vector<bool> killed;
    std::vector<std::vector<ServerId>> hosting;
    std::vector<int> sockets;
    size_t scheduled = 0;
    size_t evictions = 0;
};

/** Seeded open-loop churn stream on the given catalog. */
ChurnRun
runChurn(const std::vector<sim::Platform> &catalog,
         const std::vector<int> &counts, uint64_t seed, Mode mode)
{
    sim::Cluster cluster(catalog, counts);
    workload::WorkloadRegistry registry;
    core::QuasarConfig cfg;
    cfg.seed = 7;
    cfg.scheduler.dirty_set = mode == Mode::DirtySet;
    cfg.scheduler.full_rescan = mode == Mode::FullRescan;
    core::QuasarManager mgr(cluster, registry, cfg);
    workload::WorkloadFactory seeder{stats::Rng(8)};
    mgr.seedOffline(seeder, 12);

    driver::ScenarioDriver drv(
        cluster, registry, mgr,
        driver::DriverConfig{.tick_s = 10.0, .record_every = 4});

    churn::ChurnConfig ccfg;
    ccfg.seed = seed;
    ccfg.arrivals = churn::ArrivalKind::Pareto;
    ccfg.arrival_rate_per_s = 0.12;
    ccfg.horizon_s = 250.0;
    ccfg.phase_change_fraction = 0.15;
    ccfg.service_lifetime = tracegen::DurationSpec::lognormal(200.0, 0.7);
    ccfg.analytics_lifetime = tracegen::DurationSpec::pareto(150.0, 1.8);
    ccfg.batch_lifetime = tracegen::DurationSpec::exponential(120.0);
    ccfg.best_effort_lifetime =
        tracegen::DurationSpec::exponential(80.0);
    churn::ChurnEngine engine(ccfg);
    engine.install(cluster, registry, drv);
    drv.run(ccfg.horizon_s);

    ChurnRun r;
    for (const churn::ChurnItem &item : engine.plan()) {
        const Workload &w = registry.get(item.id);
        r.work_done.push_back(w.work_done);
        r.completed.push_back(w.completed);
        r.killed.push_back(w.killed);
        r.hosting.push_back(cluster.serversHosting(item.id));
        for (ServerId sid : r.hosting.back()) {
            const sim::TaskShare *share =
                cluster.server(sid).share(item.id);
            r.sockets.push_back(share ? share->socket : -1);
        }
    }
    r.scheduled = mgr.stats().scheduled;
    r.evictions = mgr.stats().evictions;
    return r;
}

void
expectSameRun(const ChurnRun &a, const ChurnRun &b,
              const std::string &ctx)
{
    ASSERT_EQ(a.work_done.size(), b.work_done.size()) << ctx;
    for (size_t i = 0; i < a.work_done.size(); ++i) {
        std::string wctx = ctx + " workload " + std::to_string(i);
        // Exact double compares are the point: the replay contract is
        // bit-identical, not merely close.
        EXPECT_EQ(a.work_done[i], b.work_done[i]) << wctx;
        EXPECT_EQ(a.completed[i], b.completed[i]) << wctx;
        EXPECT_EQ(a.killed[i], b.killed[i]) << wctx;
        EXPECT_EQ(a.hosting[i], b.hosting[i]) << wctx;
    }
    EXPECT_EQ(a.sockets, b.sockets) << ctx;
    EXPECT_EQ(a.scheduled, b.scheduled) << ctx;
    EXPECT_EQ(a.evictions, b.evictions) << ctx;
}

} // namespace

TEST(SocketReplay, AllModesBitIdenticalOnTwoSocketCatalog)
{
    // The socket-selection step rides the same decision path as server
    // selection, so the three scheduler modes must keep picking
    // bit-identical (server, socket) pairs on NUMA machines too.
    auto catalog = sim::numaPlatforms();
    std::vector<int> counts(catalog.size(), 4);
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        ChurnRun full = runChurn(catalog, counts, seed,
                                 Mode::FullRescan);
        ChurnRun dirty = runChurn(catalog, counts, seed,
                                  Mode::DirtySet);
        ChurnRun cached = runChurn(catalog, counts, seed, Mode::Cached);
        std::string ctx = "seed " + std::to_string(seed);
        expectSameRun(dirty, full, ctx + " dirty-vs-full");
        expectSameRun(cached, full, ctx + " cached-vs-full");
        // The catalog is multi-socket: the sweep only proves something
        // if some placements actually homed off socket 0.
        bool off_zero = false;
        for (int s : full.sockets)
            off_zero = off_zero || s > 0;
        EXPECT_TRUE(off_zero) << ctx;
    }
}

TEST(SocketReplay, FlatTopologyEquivalenceTwentySeeds)
{
    // The flat contract behind the committed bench baselines: the
    // default (empty) topology and an explicit Topology::single() must
    // drive every mode through bit-identical decisions — same
    // placements, same progress, every share on socket 0.
    const auto default_catalog = sim::localPlatforms();
    auto explicit_catalog = default_catalog;
    for (auto &p : explicit_catalog)
        p.topology = Topology::single();
    const std::vector<int> counts(default_catalog.size(), 4);

    for (uint64_t seed = 1; seed <= 20; ++seed) {
        const std::string ctx = "seed " + std::to_string(seed);
        ChurnRun base = runChurn(default_catalog, counts, seed,
                                 Mode::DirtySet);
        for (int s : base.sockets)
            EXPECT_EQ(s, 0) << ctx;
        for (Mode mode :
             {Mode::DirtySet, Mode::Cached, Mode::FullRescan}) {
            ChurnRun ex = runChurn(explicit_catalog, counts, seed,
                                   mode);
            expectSameRun(ex, base,
                          ctx + " explicit-single mode " +
                              std::to_string(int(mode)));
        }
    }
}
