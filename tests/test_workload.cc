/**
 * @file
 * Tests for the workload substrate: quantized configuration grids, the
 * ground-truth performance model (Amdahl scale-up, memory cliff, knob
 * response, scale-out families, platform idiosyncrasy), the queueing
 * closed forms, targets, registry, and the performance oracle.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/factory.hh"
#include "workload/queueing.hh"
#include "workload/workload.hh"

using namespace quasar;
using namespace quasar::workload;

// ---------------------------------------------------------------- grids

TEST(ScaleUpGrid, GenericGridQuantized)
{
    auto catalog = sim::localPlatforms();
    auto grid = scaleUpGrid(catalog[9], WorkloadType::SingleNode);
    EXPECT_FALSE(grid.empty());
    for (const auto &cfg : grid) {
        EXPECT_GE(cfg.cores, 1);
        EXPECT_LE(cfg.cores, 24);
        EXPECT_LE(cfg.memory_gb, 48.0);
    }
}

TEST(ScaleUpGrid, AnalyticsHeapsMustFit)
{
    auto catalog = sim::localPlatforms();
    auto grid = scaleUpGrid(catalog[9], WorkloadType::Analytics);
    EXPECT_FALSE(grid.empty());
    for (const auto &cfg : grid)
        EXPECT_LE(cfg.knobs.mappers_per_node * cfg.knobs.heap_gb,
                  cfg.memory_gb + 1e-9);
}

TEST(ScaleUpGrid, SmallPlatformNonEmptyForAnalytics)
{
    auto catalog = sim::localPlatforms();
    // Platform A: 2 cores / 4 GB — the regression that once produced
    // an empty grid.
    auto grid = scaleUpGrid(catalog[0], WorkloadType::Analytics);
    EXPECT_FALSE(grid.empty());
}

TEST(ScaleOutGrid, StartsAtOneAndIsMonotone)
{
    auto grid = scaleOutGrid(100);
    ASSERT_FALSE(grid.empty());
    EXPECT_EQ(grid.front(), 1);
    EXPECT_EQ(grid.back(), 100);
    for (size_t i = 1; i < grid.size(); ++i)
        EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(WorkloadTypes, Predicates)
{
    EXPECT_TRUE(isDistributed(WorkloadType::Analytics));
    EXPECT_FALSE(isDistributed(WorkloadType::SingleNode));
    EXPECT_TRUE(isLatencyCritical(WorkloadType::LatencyService));
    EXPECT_TRUE(isLatencyCritical(WorkloadType::StatefulService));
    EXPECT_FALSE(isLatencyCritical(WorkloadType::Analytics));
}

// ------------------------------------------------------------- truth

TEST(Truth, AmdahlLimits)
{
    EXPECT_DOUBLE_EQ(amdahlSpeedup(0.0, 8.0), 8.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedup(1.0, 8.0), 1.0);
    EXPECT_NEAR(amdahlSpeedup(0.1, 1e9), 10.0, 1e-6);
}

TEST(Truth, MemoryFactorCliffAndBonus)
{
    GroundTruth t;
    t.mem_demand_gb = 8.0;
    t.mem_bonus = 0.05;
    EXPECT_DOUBLE_EQ(memoryFactor(t, 8.0), 1.0);
    EXPECT_GT(memoryFactor(t, 16.0), 1.0);
    EXPECT_LT(memoryFactor(t, 4.0), 1.0);
    // Hard cliff but floored.
    EXPECT_GE(memoryFactor(t, 0.5), 0.05);
    EXPECT_LT(memoryFactor(t, 1.0), memoryFactor(t, 4.0));
}

TEST(Truth, KnobFactorPeaksAtOptimum)
{
    GroundTruth t;
    t.type = WorkloadType::Analytics;
    t.mapper_ratio_opt = 1.0;
    t.heap_opt_gb = 1.5;
    t.compression_affinity = 1.0;

    ScaleUpConfig at_opt;
    at_opt.cores = 8;
    at_opt.memory_gb = 24.0;
    at_opt.knobs.mappers_per_node = 8;
    at_opt.knobs.heap_gb = 1.5;
    at_opt.knobs.compression = Compression::Gzip;

    ScaleUpConfig off = at_opt;
    off.knobs.mappers_per_node = 2;
    off.knobs.heap_gb = 0.75;
    off.knobs.compression = Compression::Lzo;

    EXPECT_GT(knobFactor(t, at_opt), knobFactor(t, off));
    // Favorable compression can push the factor slightly above 1.
    EXPECT_LE(knobFactor(t, at_opt), 1.05);
    // Non-analytics ignore knobs entirely.
    t.type = WorkloadType::SingleNode;
    EXPECT_DOUBLE_EQ(knobFactor(t, off), 1.0);
}

TEST(Truth, NodeRateMonotoneInCoresForParallelWork)
{
    auto catalog = sim::localPlatforms();
    GroundTruth t;
    t.type = WorkloadType::SingleNode;
    t.parallelism = 32.0;
    t.serial_fraction = 0.05;
    t.mem_demand_gb = 2.0;
    ScaleUpConfig a, b;
    a.cores = 2;
    a.memory_gb = 8.0;
    b.cores = 16;
    b.memory_gb = 8.0;
    EXPECT_GT(t.nodeRateQuiet(catalog[9], b),
              t.nodeRateQuiet(catalog[9], a));
}

TEST(Truth, ParallelismCapsScaleUp)
{
    auto catalog = sim::localPlatforms();
    GroundTruth t;
    t.parallelism = 4.0;
    t.serial_fraction = 0.0;
    t.mem_demand_gb = 1.0;
    ScaleUpConfig c4, c16;
    c4.cores = 4;
    c4.memory_gb = 8.0;
    c16.cores = 16;
    c16.memory_gb = 8.0;
    EXPECT_NEAR(t.nodeRateQuiet(catalog[9], c4),
                t.nodeRateQuiet(catalog[9], c16), 1e-9);
}

TEST(Truth, FasterPlatformFasterRate)
{
    auto catalog = sim::localPlatforms();
    GroundTruth t;
    t.idio_sigma = 0.0; // isolate the systematic effect
    t.mem_demand_gb = 1.0;
    ScaleUpConfig cfg;
    cfg.cores = 2;
    cfg.memory_gb = 2.0;
    EXPECT_GT(t.nodeRateQuiet(catalog[9], cfg),
              t.nodeRateQuiet(catalog[0], cfg));
}

TEST(Truth, IdiosyncrasyDeterministicPerPlatform)
{
    auto catalog = sim::localPlatforms();
    GroundTruth t;
    t.idio_seed = 1234;
    t.idio_sigma = 0.1;
    double a = t.idiosyncrasy(catalog[2]);
    EXPECT_DOUBLE_EQ(a, t.idiosyncrasy(catalog[2]));
    EXPECT_NE(a, t.idiosyncrasy(catalog[3]));
    EXPECT_GT(a, 0.8);
    EXPECT_LT(a, 1.25);
}

TEST(Truth, ScaleOutFamilies)
{
    GroundTruth sub;
    sub.scale_out_alpha = 0.9;
    sub.scale_out_overhead = 0.02;
    GroundTruth super;
    super.scale_out_alpha = 1.05;
    super.scale_out_overhead = 0.0;
    EXPECT_LT(sub.scaleOutEfficiency(8), 1.0);
    EXPECT_GT(super.scaleOutEfficiency(8), 1.0);
    EXPECT_DOUBLE_EQ(sub.scaleOutEfficiency(1), 1.0);

    std::vector<double> four(4, 2.0);
    EXPECT_NEAR(sub.jobRate(four), 8.0 * sub.scaleOutEfficiency(4),
                1e-12);
    EXPECT_DOUBLE_EQ(sub.jobRate({}), 0.0);
}

TEST(Truth, InterferenceReducesRate)
{
    auto catalog = sim::localPlatforms();
    GroundTruth t;
    t.mem_demand_gb = 2.0;
    t.sensitivity.threshold.fill(0.2);
    t.sensitivity.slope.fill(2.0);
    ScaleUpConfig cfg;
    cfg.cores = 4;
    cfg.memory_gb = 4.0;
    auto iv = interference::zeroVector();
    iv[0] = 0.8;
    EXPECT_LT(t.nodeRate(catalog[9], cfg, iv),
              t.nodeRateQuiet(catalog[9], cfg));
}

// ---------------------------------------------------------- queueing

TEST(Queueing, LatencyDivergesNearSaturation)
{
    double lo = percentileLatency(100.0, 1000.0);
    double hi = percentileLatency(950.0, 1000.0);
    EXPECT_LT(lo, hi);
    EXPECT_DOUBLE_EQ(percentileLatency(1000.0, 1000.0),
                     kSaturatedLatency);
    EXPECT_DOUBLE_EQ(percentileLatency(10.0, 0.0), kSaturatedLatency);
}

TEST(Queueing, MaxQpsWithinQosInvertsLatency)
{
    double cap = 1000.0, qos = 0.05;
    double knee = maxQpsWithinQos(cap, qos);
    EXPECT_GT(knee, 0.0);
    EXPECT_LT(knee, cap);
    EXPECT_NEAR(percentileLatency(knee, cap), qos, 1e-9);
    // Capacity too small for the QoS at any load.
    EXPECT_DOUBLE_EQ(maxQpsWithinQos(10.0, qos), 0.0);
}

TEST(Queueing, FractionMeetingQosBehaviour)
{
    EXPECT_NEAR(fractionMeetingQos(0.0, 1000.0, 0.05), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(fractionMeetingQos(1200.0, 1000.0, 0.05), 0.0);
    double mid = fractionMeetingQos(900.0, 1000.0, 0.05);
    EXPECT_GT(mid, 0.9);
    EXPECT_LT(mid, 1.0);
}

TEST(Queueing, ServedQpsClamped)
{
    EXPECT_DOUBLE_EQ(servedQps(500.0, 1000.0), 500.0);
    EXPECT_DOUBLE_EQ(servedQps(1500.0, 1000.0), 1000.0);
    EXPECT_DOUBLE_EQ(servedQps(-5.0, 1000.0), 0.0);
}

// ----------------------------------------------------- targets & registry

TEST(PerformanceTarget, Factories)
{
    auto ct = PerformanceTarget::completionTime(100.0, 500.0);
    EXPECT_EQ(ct.kind, TargetKind::CompletionTime);
    EXPECT_DOUBLE_EQ(ct.rate, 5.0);
    auto ql = PerformanceTarget::qpsLatency(1e5, 2e-4);
    EXPECT_EQ(ql.kind, TargetKind::QpsLatency);
    auto ips = PerformanceTarget::ips(2.0);
    EXPECT_DOUBLE_EQ(ips.rate, 2.0);
}

TEST(Registry, AddAndLifecycle)
{
    WorkloadRegistry reg;
    Workload w;
    w.name = "x";
    WorkloadId a = reg.add(w);
    WorkloadId b = reg.add(w);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.active().size(), 2u);
    reg.get(a).completed = true;
    reg.get(b).killed = true;
    EXPECT_TRUE(reg.active().empty());
    EXPECT_EQ(reg.all().size(), 2u);
}

TEST(Workload, PhaseTruthSwitch)
{
    Workload w;
    w.truth.base_rate = 1.0;
    w.phase_truth = w.truth;
    w.phase_truth.base_rate = 2.0;
    w.phase_change_time = 100.0;
    EXPECT_DOUBLE_EQ(w.truthAt(50.0).base_rate, 1.0);
    EXPECT_DOUBLE_EQ(w.truthAt(150.0).base_rate, 2.0);
    w.phase_change_time = -1.0;
    EXPECT_DOUBLE_EQ(w.truthAt(150.0).base_rate, 1.0);
}

TEST(Workload, OfferedQpsOnlyForServices)
{
    Workload w;
    w.type = WorkloadType::StatefulService;
    w.load = std::make_shared<tracegen::FlatLoad>(100.0);
    EXPECT_DOUBLE_EQ(w.offeredQps(5.0), 100.0);
    w.type = WorkloadType::Analytics;
    EXPECT_DOUBLE_EQ(w.offeredQps(5.0), 0.0);
}

// -------------------------------------------------------------- oracle

namespace
{

struct OracleWorld
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    WorkloadRegistry registry;
    PerfOracle oracle{cluster, registry};

    WorkloadId place(Workload w, int cores, double mem,
                     std::vector<ServerId> servers)
    {
        WorkloadId id = registry.add(std::move(w));
        for (ServerId s : servers) {
            sim::TaskShare share;
            share.workload = id;
            share.cores = cores;
            share.memory_gb = mem;
            share.caused =
                registry.get(id).causedPressure(0.0, cores);
            cluster.server(s).place(share);
        }
        return id;
    }
};

} // namespace

TEST(PerfOracle, RateMatchesTruthForSinglePlacement)
{
    OracleWorld world;
    WorkloadFactory f{stats::Rng(5)};
    Workload w = f.singleNodeJob("job", "parsec");
    // Server 36 is a J box.
    WorkloadId id = world.place(w, 8, 8.0, {36});
    const Workload &live = world.registry.get(id);
    ScaleUpConfig cfg;
    cfg.cores = 8;
    cfg.memory_gb = 8.0;
    double expect = live.truth.nodeRateQuiet(
        world.cluster.server(36).platform(), cfg);
    EXPECT_NEAR(world.oracle.currentRate(live, 0.0), expect, 1e-9);
}

TEST(PerfOracle, UnplacedWorkloadHasZeroRate)
{
    OracleWorld world;
    WorkloadFactory f{stats::Rng(5)};
    WorkloadId id = world.registry.add(f.singleNodeJob("j", "mix"));
    EXPECT_DOUBLE_EQ(
        world.oracle.currentRate(world.registry.get(id), 0.0), 0.0);
}

TEST(PerfOracle, CoLocationDegradesBoth)
{
    OracleWorld world;
    WorkloadFactory f{stats::Rng(6)};
    Workload a = f.hadoopJob("a", 50.0);
    a.truth.sensitivity.threshold.fill(0.05);
    a.truth.sensitivity.slope.fill(2.0);
    Workload b = f.hadoopJob("b", 50.0);
    b.truth.sensitivity.caused_per_core.fill(0.2);
    WorkloadId ida = world.place(a, 8, 8.0, {36});
    double solo = world.oracle.currentRate(world.registry.get(ida),
                                           0.0);
    world.place(b, 8, 8.0, {36});
    double shared = world.oracle.currentRate(world.registry.get(ida),
                                             0.0);
    EXPECT_LT(shared, solo);
}

TEST(PerfOracle, ServiceCapacityAndQoS)
{
    OracleWorld world;
    WorkloadFactory f{stats::Rng(7)};
    Workload mc = f.memcachedService(
        "mc", 1e5, 200e-6, 40.0,
        std::make_shared<tracegen::FlatLoad>(1e5));
    WorkloadId id = world.place(mc, 16, 32.0, {36, 37});
    const Workload &live = world.registry.get(id);
    double cap = world.oracle.serviceCapacityQps(live, 0.0);
    EXPECT_GT(cap, 0.0);
    double p99 = world.oracle.serviceP99(live, 0.0);
    if (1e5 < cap) {
        EXPECT_LT(p99, kSaturatedLatency);
    }
    // Normalized perf for services is capacity-within-QoS over
    // offered load: above 1 means headroom.
    double norm = world.oracle.normalizedPerformance(live, 0.0);
    EXPECT_GE(norm, 0.0);
}

TEST(PerfOracle, DegradationWindowReducesRate)
{
    OracleWorld world;
    WorkloadFactory f{stats::Rng(8)};
    Workload w = f.hadoopJob("j", 20.0);
    WorkloadId id = world.place(w, 8, 8.0, {36});
    Workload &live = world.registry.get(id);
    double before = world.oracle.currentRate(live, 0.0);
    live.degraded_until = 100.0;
    live.degraded_factor = 0.5;
    EXPECT_NEAR(world.oracle.currentRate(live, 50.0), 0.5 * before,
                1e-9);
    EXPECT_NEAR(world.oracle.currentRate(live, 150.0), before, 1e-9);
}

TEST(PerfOracle, UsedCoresRespectsParallelismAndLoad)
{
    OracleWorld world;
    WorkloadFactory f{stats::Rng(9)};
    Workload w = f.singleNodeJob("spec", "spec-int"); // parallelism 1
    WorkloadId id = world.place(w, 8, 4.0, {36});
    const sim::TaskShare *share = world.cluster.server(36).share(id);
    double used = world.oracle.usedCores(world.registry.get(id),
                                         *share, 0.0);
    EXPECT_LE(used, 1.0 + 1e-9);
}

// -------------------------------------------------------------- factory

TEST(Factory, DeterministicForSeed)
{
    WorkloadFactory a{stats::Rng(11)}, b{stats::Rng(11)};
    Workload wa = a.hadoopJob("x", 50.0);
    Workload wb = b.hadoopJob("x", 50.0);
    EXPECT_DOUBLE_EQ(wa.truth.base_rate, wb.truth.base_rate);
    EXPECT_DOUBLE_EQ(wa.total_work, wb.total_work);
}

TEST(Factory, ArchetypesHaveSaneShapes)
{
    WorkloadFactory f{stats::Rng(12)};
    Workload h = f.hadoopJob("h", 100.0);
    EXPECT_EQ(h.type, WorkloadType::Analytics);
    EXPECT_GT(h.total_work, 0.0);
    EXPECT_LE(h.truth.mem_demand_gb, 16.0);

    Workload mc = f.memcachedService(
        "m", 2e5, 2e-4, 64.0, std::make_shared<tracegen::FlatLoad>(2e5));
    EXPECT_EQ(mc.type, WorkloadType::StatefulService);
    EXPECT_GT(mc.truth.capacityQps(10.0), 1e4); // low req_cost

    Workload spec = f.singleNodeJob("s", "spec-int");
    EXPECT_DOUBLE_EQ(spec.truth.parallelism, 1.0);
    EXPECT_DOUBLE_EQ(spec.truth.serial_fraction, 1.0);

    Workload be = f.bestEffortJob("b");
    EXPECT_TRUE(be.best_effort);
}

TEST(Factory, PhaseChangeInstalls)
{
    WorkloadFactory f{stats::Rng(13)};
    Workload w = f.hadoopJob("h", 30.0);
    f.addPhaseChange(w, 500.0);
    EXPECT_DOUBLE_EQ(w.phase_change_time, 500.0);
    // The phase truth differs somewhere measurable.
    bool differs = w.phase_truth.base_rate != w.truth.base_rate ||
                   w.phase_truth.mem_demand_gb !=
                       w.truth.mem_demand_gb;
    EXPECT_TRUE(differs);
}

TEST(Factory, RandomWorkloadMixCoversTypes)
{
    WorkloadFactory f{stats::Rng(14)};
    int types[4] = {0, 0, 0, 0};
    for (int i = 0; i < 200; ++i)
        ++types[size_t(f.randomWorkload("w").type)];
    EXPECT_GT(types[size_t(WorkloadType::SingleNode)], 60);
    EXPECT_GT(types[size_t(WorkloadType::Analytics)], 30);
    EXPECT_GT(types[size_t(WorkloadType::LatencyService)] +
                  types[size_t(WorkloadType::StatefulService)],
              10);
}

TEST(Factory, DefaultAnalyticsTargetAchievable)
{
    WorkloadFactory f{stats::Rng(15)};
    auto catalog = sim::localPlatforms();
    Workload w = f.hadoopJob("h", 40.0);
    auto target = WorkloadFactory::defaultAnalyticsTarget(
        w, catalog[sim::highestEndPlatform(catalog)]);
    EXPECT_EQ(target.kind, TargetKind::CompletionTime);
    EXPECT_GT(target.completion_time_s, 0.0);
    EXPECT_GT(target.rate, 0.0);
}
