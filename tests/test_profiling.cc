/**
 * @file
 * Tests for the profiler: sample counts per density, reference-column
 * inclusion, heterogeneity's small canonical configuration, noise-free
 * exactness, clamping, tolerance probing, and profiling-cost
 * accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "profiling/profiler.hh"
#include "workload/factory.hh"

using namespace quasar;
using namespace quasar::profiling;
using workload::Workload;
using workload::WorkloadType;

namespace
{

struct World
{
    std::vector<sim::Platform> catalog = sim::localPlatforms();
    workload::WorkloadFactory factory{stats::Rng(55)};
    stats::Rng rng{56};
};

} // namespace

TEST(Profiler, SelectsHighestEndPlatform)
{
    World w;
    Profiler p(w.catalog, {});
    EXPECT_EQ(w.catalog[p.scaleUpPlatform()].name, "J");
}

TEST(Profiler, ReferenceConfigIsGridMember)
{
    World w;
    for (auto type : {WorkloadType::Analytics, WorkloadType::SingleNode,
                      WorkloadType::LatencyService}) {
        auto ref = Profiler::referenceConfig(w.catalog[9], type);
        auto grid = workload::scaleUpGrid(w.catalog[9], type);
        bool found = false;
        for (const auto &cfg : grid)
            found = found || cfg == ref;
        EXPECT_TRUE(found);
    }
}

TEST(Profiler, HetConfigFitsEveryPlatform)
{
    World w;
    auto het = Profiler::hetConfig();
    for (const sim::Platform &p : w.catalog) {
        EXPECT_LE(het.cores, p.cores);
        EXPECT_LE(het.memory_gb, p.memory_gb);
    }
    auto ec2 = sim::ec2Platforms();
    for (const sim::Platform &p : ec2)
        EXPECT_LE(het.cores, p.cores);
}

TEST(Profiler, SampleCountsFollowDensity)
{
    World w;
    for (size_t density : {1u, 2u, 4u}) {
        ProfilerConfig cfg;
        cfg.samples_per_classification = density;
        Profiler p(w.catalog, cfg);
        Workload job = w.factory.hadoopJob("j", 40.0);
        ProfilingData d = p.profile(job, 0.0, w.rng);
        EXPECT_EQ(d.scale_up.size(), density);
        EXPECT_EQ(d.scale_out.size(), density);
        EXPECT_EQ(d.heterogeneity.size(), density);
        EXPECT_EQ(d.interference.size(), density);
        EXPECT_EQ(d.caused.size(), density);
    }
}

TEST(Profiler, FirstSamplesAreTheNormalizers)
{
    World w;
    Profiler p(w.catalog, {});
    Workload job = w.factory.hadoopJob("j", 40.0);
    ProfilingData d = p.profile(job, 0.0, w.rng);
    // Scale-up sample 0 is the reference measurement.
    EXPECT_DOUBLE_EQ(d.scale_up[0].value, d.reference_value);
    // Scale-out sample 0 is n = 1.
    EXPECT_EQ(d.scale_out[0].column, 0u);
    // Heterogeneity sample 0 is the profiling platform.
    EXPECT_EQ(d.heterogeneity[0].column, p.scaleUpPlatform());
}

TEST(Profiler, SingleNodeHasNoScaleOutSamples)
{
    World w;
    Profiler p(w.catalog, {});
    Workload job = w.factory.singleNodeJob("s", "spec-int");
    ProfilingData d = p.profile(job, 0.0, w.rng);
    EXPECT_TRUE(d.scale_out.empty());
}

TEST(Profiler, NoiseFreeMeasurementMatchesTruth)
{
    World w;
    ProfilerConfig cfg;
    cfg.noise_sigma = 0.0;
    Profiler p(w.catalog, cfg);
    Workload job = w.factory.singleNodeJob("s", "parsec");
    workload::ScaleUpConfig c;
    c.cores = 4;
    c.memory_gb = 8.0;
    double measured = p.measureNode(job, 0.0, w.catalog[9], c, w.rng);
    EXPECT_DOUBLE_EQ(measured,
                     job.truth.nodeRateQuiet(w.catalog[9], c));
}

TEST(Profiler, NoisyMeasurementVariesButUnbiased)
{
    World w;
    ProfilerConfig cfg;
    cfg.noise_sigma = 0.05;
    Profiler p(w.catalog, cfg);
    Workload job = w.factory.singleNodeJob("s", "parsec");
    workload::ScaleUpConfig c;
    c.cores = 4;
    c.memory_gb = 8.0;
    double truth = job.truth.nodeRateQuiet(w.catalog[9], c);
    double sum = 0.0;
    for (int i = 0; i < 500; ++i)
        sum += p.measureNode(job, 0.0, w.catalog[9], c, w.rng);
    EXPECT_NEAR(sum / 500.0 / truth, 1.0, 0.02);
}

TEST(Profiler, ConfigClampedToPlatform)
{
    World w;
    workload::ScaleUpConfig c;
    c.cores = 24;
    c.memory_gb = 48.0;
    auto clamped = Profiler::clampConfig(c, w.catalog[0]); // A: 2c/4GB
    EXPECT_EQ(clamped.cores, 2);
    EXPECT_DOUBLE_EQ(clamped.memory_gb, 4.0);
}

TEST(Profiler, ServicesMeasuredInQps)
{
    World w;
    ProfilerConfig cfg;
    cfg.noise_sigma = 0.0;
    Profiler p(w.catalog, cfg);
    Workload mc = w.factory.memcachedService(
        "m", 1e5, 2e-4, 40.0, std::make_shared<tracegen::FlatLoad>(1e5));
    auto ref = Profiler::referenceConfig(w.catalog[9], mc.type);
    double v = p.measureNode(mc, 0.0, w.catalog[9], ref, w.rng);
    // Capacity in QPS, far above the raw work rate.
    EXPECT_GT(v, 1e4);
}

TEST(Profiler, ToleranceProbeMatchesTruth)
{
    World w;
    Profiler p(w.catalog, {});
    Workload job = w.factory.hadoopJob("j", 30.0);
    auto ref = Profiler::referenceConfig(w.catalog[9], job.type);
    for (size_t i = 0; i < interference::kNumSources; ++i) {
        double probed = p.probeTolerance(job, 0.0, w.catalog[9], ref,
                                         interference::sourceAt(i));
        double truth = job.truth.sensitivity.toleratedIntensity(
            interference::sourceAt(i));
        EXPECT_NEAR(probed, truth, 0.025) << "source " << i;
    }
}

TEST(Profiler, DenseRowsHaveGridWidths)
{
    World w;
    Profiler p(w.catalog, {});
    Workload job = w.factory.hadoopJob("j", 30.0);
    auto grid = workload::scaleUpGrid(w.catalog[9], job.type);
    stats::Rng z(1);
    EXPECT_EQ(p.denseScaleUpRow(job, 0.0, z).size(), grid.size());
    auto ref = Profiler::referenceConfig(w.catalog[9], job.type);
    EXPECT_EQ(p.denseScaleOutRow(job, 0.0, ref, z).size(),
              workload::scaleOutGrid().size());
    EXPECT_EQ(p.denseHeterogeneityRow(job, 0.0, z).size(),
              w.catalog.size());
    EXPECT_EQ(p.denseInterferenceRow(job, 0.0, ref).size(),
              interference::kNumSources);
    EXPECT_EQ(p.denseCausedRow(job, 0.0, z).size(),
              interference::kNumSources);
}

TEST(Profiler, ProfilingCostByType)
{
    World w;
    Profiler p(w.catalog, {});
    Workload batch = w.factory.singleNodeJob("s", "mix");
    Workload hadoop = w.factory.hadoopJob("h", 30.0);
    Workload mc = w.factory.memcachedService(
        "m", 1e5, 2e-4, 40.0, std::make_shared<tracegen::FlatLoad>(1e5));
    // Paper Sec. 3.4: seconds for services, minutes for analytics,
    // warm-up dominated for stateful services.
    EXPECT_LT(p.profilingSeconds(batch, 8), 60.0);
    EXPECT_GT(p.profilingSeconds(hadoop, 8), 60.0);
    EXPECT_GT(p.profilingSeconds(mc, 8),
              p.profilingSeconds(hadoop, 8));
    // More samples cost more.
    EXPECT_GT(p.profilingSeconds(batch, 16),
              p.profilingSeconds(batch, 8));
}

TEST(Profiler, PhaseChangeVisibleToReprofile)
{
    World w;
    ProfilerConfig cfg;
    cfg.noise_sigma = 0.0;
    Profiler p(w.catalog, cfg);
    Workload job = w.factory.hadoopJob("j", 30.0);
    w.factory.addPhaseChange(job, 100.0);
    workload::ScaleUpConfig c;
    c.cores = 8;
    c.memory_gb = 8.0;
    double before = p.measureNode(job, 50.0, w.catalog[9], c, w.rng);
    double after = p.measureNode(job, 150.0, w.catalog[9], c, w.rng);
    EXPECT_NE(before, after);
}
