/**
 * @file
 * Integration tests for QuasarManager + ScenarioDriver: end-to-end
 * scheduling, target attainment, right-sizing, admission control under
 * pressure, best-effort eviction, service load adaptation, phase
 * recovery, and overhead accounting.
 */

#include <gtest/gtest.h>

#include "core/manager.hh"
#include "driver/scenario.hh"
#include "workload/factory.hh"

using namespace quasar;
using workload::Workload;

namespace
{

struct World
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarManager mgr;
    driver::ScenarioDriver drv;
    workload::WorkloadFactory factory{stats::Rng(2024)};

    explicit World(uint64_t seed = 77)
        : mgr(cluster, registry,
              [seed] {
                  core::QuasarConfig c;
                  c.seed = seed;
                  return c;
              }()),
          drv(cluster, registry, mgr,
              driver::DriverConfig{.tick_s = 10.0})
    {
        workload::WorkloadFactory seeder{stats::Rng(4242)};
        mgr.seedOffline(seeder, 20);
    }
};

} // namespace

TEST(Manager, AnalyticsJobMeetsReasonableTarget)
{
    World w;
    Workload job = w.factory.hadoopJob("job", 60.0);
    job.target = workload::WorkloadFactory::defaultAnalyticsTarget(
        job, w.cluster.catalog()[9]);
    WorkloadId id = w.registry.add(job);
    w.drv.addArrival(id, 5.0);
    w.drv.run(20000.0);
    const Workload &done = w.registry.get(id);
    ASSERT_TRUE(done.completed);
    double actual = done.completion_time - done.arrival_time;
    // Within 25% of the (slightly padded) target.
    EXPECT_LT(actual, 1.25 * done.target.completion_time_s);
}

TEST(Manager, SingleNodeJobRunsAndCompletes)
{
    World w;
    Workload job = w.factory.singleNodeJob("s", "parsec");
    WorkloadId id = w.registry.add(job);
    w.drv.addArrival(id, 1.0);
    w.drv.run(10000.0);
    EXPECT_TRUE(w.registry.get(id).completed);
    EXPECT_GE(w.mgr.stats().scheduled, 1u);
}

TEST(Manager, ServiceTracksRisingLoad)
{
    World w;
    auto load = std::make_shared<tracegen::PiecewiseLoad>(
        std::vector<std::pair<double, double>>{
            {0.0, 50.0}, {2000.0, 50.0}, {4000.0, 300.0},
            {12000.0, 300.0}});
    Workload svc = w.factory.webService("web", 300.0, 0.1, load);
    WorkloadId id = w.registry.add(svc);
    w.drv.addArrival(id, 1.0);
    w.drv.run(12000.0);
    const driver::ServiceTrace *trace = w.drv.serviceTrace(id);
    ASSERT_NE(trace, nullptr);
    // After the ramp settles the service must serve the high load.
    double late_served = trace->served_ok_qps.meanOver(8000.0, 12000.0);
    EXPECT_GT(late_served, 0.9 * 300.0);
}

TEST(Manager, ServiceShrinksWhenLoadFalls)
{
    World w;
    auto load = std::make_shared<tracegen::PiecewiseLoad>(
        std::vector<std::pair<double, double>>{
            {0.0, 300.0}, {3000.0, 300.0}, {5000.0, 40.0},
            {20000.0, 40.0}});
    Workload svc = w.factory.webService("web", 300.0, 0.1, load);
    WorkloadId id = w.registry.add(svc);
    w.drv.addArrival(id, 1.0);

    stats::TimeSeries cores;
    w.drv.setTickHook([&](double t) {
        int c = 0;
        for (ServerId s : w.cluster.serversHosting(id))
            c += w.cluster.server(s).share(id)->cores;
        cores.record(t, double(c));
    });
    w.drv.run(20000.0);
    double early = cores.meanOver(1000.0, 3000.0);
    double late = cores.meanOver(15000.0, 20000.0);
    EXPECT_LT(late, early);
    EXPECT_GT(w.mgr.stats().shrinks, 0u);
}

TEST(Manager, BestEffortEvictedForPrimary)
{
    World w;
    // Saturate with best-effort work first.
    for (int i = 0; i < 300; ++i) {
        Workload be = w.factory.bestEffortJob("be");
        be.total_work *= 50.0; // long-lived
        WorkloadId id = w.registry.add(be);
        w.drv.addArrival(id, 1.0 + 0.1 * i);
    }
    Workload job = w.factory.hadoopJob("primary", 40.0);
    job.target = workload::WorkloadFactory::defaultAnalyticsTarget(
        job, w.cluster.catalog()[9]);
    WorkloadId id = w.registry.add(job);
    w.drv.addArrival(id, 600.0);
    w.drv.run(8000.0);
    EXPECT_TRUE(w.registry.get(id).completed);
    EXPECT_GT(w.mgr.stats().evictions, 0u);
}

TEST(Manager, AdmissionQueuesWhenNothingFits)
{
    World w;
    // Fill the whole cluster with non-evictable primaries.
    for (size_t s = 0; s < w.cluster.size(); ++s) {
        Workload filler = w.factory.singleNodeJob("fill", "specjbb");
        filler.total_work = 1e18;
        WorkloadId fid = w.registry.add(filler);
        sim::Server &srv = w.cluster.server(ServerId(s));
        sim::TaskShare share;
        share.workload = fid;
        share.cores = srv.platform().cores;
        share.memory_gb = srv.platform().memory_gb;
        srv.place(share);
    }
    Workload job = w.factory.singleNodeJob("late", "parsec");
    WorkloadId id = w.registry.add(job);
    w.drv.addArrival(id, 1.0);
    w.drv.run(100.0);
    EXPECT_FALSE(w.registry.get(id).completed);
    EXPECT_TRUE(w.mgr.admission().contains(id));
}

TEST(Manager, PhaseChangeRecovered)
{
    World w;
    Workload job = w.factory.hadoopJob("phasey", 80.0);
    job.target = workload::WorkloadFactory::defaultAnalyticsTarget(
        job, w.cluster.catalog()[9], 4, 2.0);
    // Severe slowdown phase at t = 500.
    job.phase_truth = job.truth;
    job.phase_truth.base_rate *= 0.4;
    job.phase_change_time = 500.0;
    WorkloadId id = w.registry.add(job);
    w.drv.addArrival(id, 5.0);
    w.drv.run(40000.0);
    const Workload &done = w.registry.get(id);
    EXPECT_TRUE(done.completed);
    // The manager must have reacted (scale-out/up or reschedule).
    const core::QuasarStats &st = w.mgr.stats();
    EXPECT_GT(st.scale_up_adjustments + st.scale_out_adjustments +
                  st.rescheduled,
              0u);
}

TEST(Manager, OverheadAccounted)
{
    World w;
    Workload job = w.factory.singleNodeJob("s", "mix");
    WorkloadId id = w.registry.add(job);
    w.drv.addArrival(id, 1.0);
    w.drv.run(3000.0);
    EXPECT_GT(w.mgr.overheadSeconds(id), 0.0);
    EXPECT_NE(w.mgr.estimateFor(id), nullptr);
}

TEST(Manager, EstimatesClearedLookup)
{
    World w;
    EXPECT_EQ(w.mgr.estimateFor(424242), nullptr);
}

TEST(Driver, ProgressIntegrationExact)
{
    // A workload with a constant rate must complete at exactly
    // work/rate (interpolated within a tick).
    World w;
    Workload job = w.factory.singleNodeJob("s", "specjbb");
    WorkloadId id = w.registry.add(job);
    w.drv.addArrival(id, 1.0);
    w.drv.run(20000.0);
    const Workload &done = w.registry.get(id);
    ASSERT_TRUE(done.completed);
    workload::PerfOracle oracle(w.cluster, w.registry);
    // Rate can no longer be queried (placement removed), but the
    // completion time lies on a tick-interpolated boundary after the
    // arrival.
    EXPECT_GT(done.completion_time, done.arrival_time);
    EXPECT_DOUBLE_EQ(done.work_done, done.total_work);
}

TEST(Driver, UtilizationRecorded)
{
    World w;
    Workload job = w.factory.hadoopJob("j", 30.0);
    job.target = workload::WorkloadFactory::defaultAnalyticsTarget(
        job, w.cluster.catalog()[9]);
    WorkloadId id = w.registry.add(job);
    w.drv.addArrival(id, 1.0);
    w.drv.run(500.0);
    EXPECT_GT(w.drv.aggCpuUsed().size(), 0u);
    EXPECT_GT(w.drv.cpuUsedGrid().overallMean(), 0.0);
}

TEST(Driver, TickHookObservesCluster)
{
    World w;
    int calls = 0;
    w.drv.setTickHook([&](double) { ++calls; });
    w.drv.run(100.0);
    EXPECT_EQ(calls, 10);
}
