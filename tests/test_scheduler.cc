/**
 * @file
 * Tests for the greedy joint allocator/assigner: target sizing,
 * quality-first server ranking, right-sizing, interference awareness
 * in both directions, best-effort eviction planning, the diminishing-
 * returns stop, and the scale-up-first vs scale-out-first ablation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/classifier.hh"
#include "core/scheduler.hh"
#include "workload/factory.hh"

using namespace quasar;
using core::Allocation;
using core::GreedyScheduler;
using core::SchedulerConfig;
using core::WorkloadEstimate;
using workload::Workload;

namespace
{

/** Cluster + classifier world with a ready-to-use estimate. */
struct World
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler{cluster.catalog(), {}};
    core::Classifier clf{profiler, {}, 3};
    workload::WorkloadFactory factory{stats::Rng(31)};
    stats::Rng rng{32};

    World()
    {
        std::vector<Workload> seeds;
        for (int i = 0; i < 6; ++i)
            seeds.push_back(factory.hadoopJob(
                "seed", factory.rng().uniform(5.0, 150.0)));
        static const char *fams[] = {"spec-int", "parsec", "specjbb",
                                     "mix"};
        for (int i = 0; i < 8; ++i)
            seeds.push_back(factory.singleNodeJob("seed", fams[i % 4]));
        for (int i = 0; i < 3; ++i) {
            double q = factory.rng().uniform(5e4, 2e5);
            seeds.push_back(factory.memcachedService(
                "seed", q, 2e-4, 30.0,
                std::make_shared<tracegen::FlatLoad>(q)));
        }
        clf.seedOffline(seeds, 0.0);
    }

    std::pair<WorkloadId, WorkloadEstimate> make(Workload w)
    {
        WorkloadId id = registry.add(std::move(w));
        auto data = profiler.profile(registry.get(id), 0.0, rng);
        return {id, clf.classify(registry.get(id), data)};
    }

    void apply(WorkloadId id, const Allocation &alloc)
    {
        Workload &w = registry.get(id);
        for (const auto &[sid, victim] : alloc.evictions)
            cluster.server(sid).remove(victim);
        for (const auto &node : alloc.nodes) {
            sim::TaskShare share;
            share.workload = id;
            share.cores = node.cores;
            share.memory_gb = node.memory_gb;
            share.storage_gb = w.storage_gb_per_node;
            share.caused = w.causedPressure(0.0, node.cores);
            share.best_effort = w.best_effort;
            cluster.server(node.server).place(share);
        }
    }
};

} // namespace

TEST(Scheduler, MeetsModestTargetWithFewNodes)
{
    World w;
    auto [id, est] = w.make(w.factory.hadoopJob("j", 30.0));
    GreedyScheduler sched(w.cluster);
    // Target achievable with roughly one good server.
    double required = 0.8 * est.scale_up_perf[0];
    for (double v : est.scale_up_perf)
        required = std::max(required, 0.4 * v);
    auto alloc = sched.allocate(w.registry.get(id), est, required,
                                nullptr, false);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_FALSE(alloc->degraded);
    EXPECT_LE(alloc->nodes.size(), 3u);
    EXPECT_GE(alloc->predicted_perf, required);
}

TEST(Scheduler, SingleNodeWorkloadGetsOneServer)
{
    World w;
    auto [id, est] = w.make(w.factory.singleNodeJob("s", "specjbb"));
    GreedyScheduler sched(w.cluster);
    auto alloc = sched.allocate(w.registry.get(id), est, 1e9, nullptr,
                                false);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->nodes.size(), 1u);
    EXPECT_TRUE(alloc->degraded); // absurd target cannot be met
}

TEST(Scheduler, PrefersHighQualityPlatforms)
{
    World w;
    auto [id, est] = w.make(w.factory.hadoopJob("j", 30.0));
    GreedyScheduler sched(w.cluster);
    double required = 0.5 * est.scale_up_perf[0];
    auto alloc = sched.allocate(w.registry.get(id), est, required,
                                nullptr, false);
    ASSERT_TRUE(alloc.has_value());
    // The first node must be a high-factor platform (top third).
    const sim::Platform &p =
        w.cluster.server(alloc->nodes[0].server).platform();
    std::vector<double> factors = est.platform_factor;
    std::sort(factors.rbegin(), factors.rend());
    size_t p_idx = 0;
    for (size_t i = 0; i < w.cluster.catalog().size(); ++i)
        if (w.cluster.catalog()[i].name == p.name)
            p_idx = i;
    EXPECT_GE(est.platform_factor[p_idx], factors[3]);
}

TEST(Scheduler, RightSizesInsteadOfMaxing)
{
    World w;
    auto [id, est] = w.make(w.factory.singleNodeJob("s", "specjbb"));
    GreedyScheduler sched(w.cluster);
    // Tiny target: should not allocate a whole fat node.
    double tiny = 0.05 * est.scale_up_perf.back();
    auto alloc = sched.allocate(w.registry.get(id), est, tiny, nullptr,
                                false);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_LE(alloc->nodes[0].cores, 8);
}

TEST(Scheduler, AvoidsContendedServers)
{
    World w;
    auto [id, est] = w.make(w.factory.hadoopJob("j", 30.0));
    // Pollute every J server with heavy contention.
    for (ServerId sid : w.cluster.serversOfPlatform("J")) {
        auto v = interference::zeroVector();
        v.fill(0.9);
        w.cluster.server(sid).injectPressure(v);
    }
    GreedyScheduler sched(w.cluster);
    auto alloc = sched.allocate(w.registry.get(id), est,
                                0.5 * est.scale_up_perf[0], nullptr,
                                false);
    ASSERT_TRUE(alloc.has_value());
    for (const auto &node : alloc->nodes)
        EXPECT_NE(w.cluster.server(node.server).platform().name, "J");
}

TEST(Scheduler, ProtectsSensitiveResidents)
{
    World w;
    // Resident with zero interference tolerance on every server of
    // the best platform.
    auto [res_id, res_est] = w.make(w.factory.hadoopJob("res", 30.0));
    WorkloadEstimate sensitive = res_est;
    sensitive.tolerated.fill(0.0);
    for (ServerId sid : w.cluster.serversOfPlatform("J")) {
        sim::TaskShare share;
        share.workload = res_id;
        share.cores = 4;
        share.memory_gb = 8.0;
        w.cluster.server(sid).place(share);
    }

    // Newcomer that causes heavy pressure everywhere.
    auto [id, est] = w.make(w.factory.hadoopJob("new", 30.0));
    est.caused_per_core.fill(0.2);

    auto lookup = [&](WorkloadId q) -> const WorkloadEstimate * {
        return q == res_id ? &sensitive : nullptr;
    };
    GreedyScheduler sched(w.cluster);
    auto alloc = sched.allocate(w.registry.get(id), est,
                                0.3 * est.scale_up_perf[0], lookup,
                                false);
    ASSERT_TRUE(alloc.has_value());
    for (const auto &node : alloc->nodes)
        EXPECT_NE(w.cluster.server(node.server).platform().name, "J");
}

TEST(Scheduler, PlansEvictionsOfBestEffort)
{
    World w;
    // Fill every server completely with best-effort tasks.
    WorkloadId be_base = 1000;
    for (size_t s = 0; s < w.cluster.size(); ++s) {
        sim::Server &srv = w.cluster.server(ServerId(s));
        sim::TaskShare share;
        share.workload = be_base + s;
        share.cores = srv.platform().cores;
        share.memory_gb = srv.platform().memory_gb;
        share.best_effort = true;
        srv.place(share);
    }
    auto [id, est] = w.make(w.factory.hadoopJob("j", 20.0));
    GreedyScheduler sched(w.cluster);
    auto with_evict = sched.allocate(w.registry.get(id), est,
                                     0.4 * est.scale_up_perf[0],
                                     nullptr, true);
    ASSERT_TRUE(with_evict.has_value());
    EXPECT_FALSE(with_evict->evictions.empty());
    // Every eviction is on a server the allocation actually uses.
    for (const auto &[sid, victim] : with_evict->evictions) {
        bool used = false;
        for (const auto &node : with_evict->nodes)
            used = used || node.server == sid;
        EXPECT_TRUE(used);
    }
    // Without eviction rights nothing can be placed.
    auto without = sched.allocate(w.registry.get(id), est,
                                  0.4 * est.scale_up_perf[0], nullptr,
                                  false);
    EXPECT_FALSE(without.has_value());
}

namespace
{

/** Pack every server with one full-size best-effort resident. */
void
fillWithBestEffort(sim::Cluster &cluster, WorkloadId base = 1000)
{
    for (size_t s = 0; s < cluster.size(); ++s) {
        sim::Server &srv = cluster.server(ServerId(s));
        sim::TaskShare share;
        share.workload = base + s;
        share.cores = srv.platform().cores;
        share.memory_gb = srv.platform().memory_gb;
        share.best_effort = true;
        srv.place(share);
    }
}

/** Check eviction plan hygiene: no entry for an unused server, no
 *  share consumed twice, no server picked twice. */
void
expectEvictionPlanConsistent(const sim::Cluster &cluster,
                             const Allocation &alloc)
{
    for (const auto &[sid, victim] : alloc.evictions) {
        bool used = false;
        for (const auto &node : alloc.nodes)
            used = used || node.server == sid;
        EXPECT_TRUE(used) << "stale eviction of " << victim
                          << " on unused server " << sid;
    }
    auto pairs = alloc.evictions;
    std::sort(pairs.begin(), pairs.end());
    EXPECT_TRUE(std::adjacent_find(pairs.begin(), pairs.end()) ==
                pairs.end())
        << "the same share is evicted twice in one schedule call";
    std::vector<ServerId> servers;
    for (const auto &node : alloc.nodes)
        servers.push_back(node.server);
    std::sort(servers.begin(), servers.end());
    EXPECT_TRUE(std::adjacent_find(servers.begin(), servers.end()) ==
                servers.end())
        << "a server was picked twice in one allocation";
    (void)cluster;
}

} // namespace

// Regression: eviction planning used to append to the allocation's
// eviction list *before* the cost-cap check, so a candidate rejected
// for cost left its victims in the plan — the manager would then
// evict best-effort tasks for a node that was never placed.
TEST(Scheduler, CostCapRejectionLeavesNoStaleEvictions)
{
    World w;
    fillWithBestEffort(w.cluster);
    auto [id, est] = w.make(w.factory.hadoopJob("j", 60.0));
    Workload &job = w.registry.get(id);
    double max_cost = 0.0;
    for (const sim::Platform &p : w.cluster.catalog())
        max_cost = std::max(max_cost, p.cost_per_hour);
    // Room for roughly two fat nodes; with an unreachable target the
    // walk keeps going and cost-rejects every further candidate after
    // its evictions were planned.
    job.cost_cap_per_hour = 2.5 * max_cost;
    SchedulerConfig cfg;
    // Disable the diminishing-returns stop so the walk reaches the
    // cost-rejected candidates instead of breaking at the knee.
    cfg.min_marginal_efficiency = 0.0;
    GreedyScheduler sched(w.cluster, cfg);
    auto alloc = sched.allocate(job, est, 1e12, nullptr, true);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_FALSE(alloc->nodes.empty());
    expectEvictionPlanConsistent(w.cluster, *alloc);
}

// Regression: with fault-zone spreading the candidate list was walked
// as two concatenated copies, so a server cost-rejected in the strict
// pass had its evictions planned a second time in the relaxed pass —
// duplicate (server, victim) entries double-counted the same share.
TEST(Scheduler, SpreadingRelaxationDoesNotDoubleCountEvictions)
{
    World w;
    fillWithBestEffort(w.cluster);
    auto [id, est] = w.make(w.factory.hadoopJob("j", 60.0));
    Workload &job = w.registry.get(id);
    double max_cost = 0.0;
    for (const sim::Platform &p : w.cluster.catalog())
        max_cost = std::max(max_cost, p.cost_per_hour);
    job.cost_cap_per_hour = 2.5 * max_cost;
    SchedulerConfig cfg;
    cfg.spread_fault_zones = true;
    cfg.min_marginal_efficiency = 0.0; // reach the rejected candidates
    GreedyScheduler sched(w.cluster, cfg);
    auto alloc = sched.allocate(job, est, 1e12, nullptr, true);
    ASSERT_TRUE(alloc.has_value());
    expectEvictionPlanConsistent(w.cluster, *alloc);
}

TEST(Scheduler, DiminishingReturnsBoundsFootprint)
{
    World w;
    auto [id, est] = w.make(w.factory.hadoopJob("j", 60.0));
    GreedyScheduler sched(w.cluster);
    // Impossible target: the scheduler must still stop at the
    // scale-out knee instead of grabbing all 40 servers.
    auto alloc = sched.allocate(w.registry.get(id), est, 1e12, nullptr,
                                false);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_TRUE(alloc->degraded);
    EXPECT_LT(alloc->nodes.size(), w.cluster.size());
}

TEST(Scheduler, ScaleOutFirstAblationSpreadsThin)
{
    World w;
    auto [id, est] = w.make(w.factory.hadoopJob("j", 60.0));
    double required = 1.5 * est.scale_up_perf[0];

    SchedulerConfig up_first;
    GreedyScheduler a(w.cluster, up_first);
    auto up = a.allocate(w.registry.get(id), est, required, nullptr,
                         false);

    SchedulerConfig out_first = up_first;
    out_first.scale_up_first = false;
    GreedyScheduler b(w.cluster, out_first);
    auto out = b.allocate(w.registry.get(id), est, required, nullptr,
                          false);

    ASSERT_TRUE(up.has_value());
    ASSERT_TRUE(out.has_value());
    // Scale-out-first uses more, smaller nodes.
    EXPECT_GE(out->nodes.size(), up->nodes.size());
    if (!out->nodes.empty() && !up->nodes.empty()) {
        EXPECT_LE(out->nodes[0].cores, up->nodes[0].cores);
    }
}

TEST(Scheduler, KnobsConsistentAcrossNodes)
{
    World w;
    auto [id, est] = w.make(w.factory.hadoopJob("j", 60.0));
    GreedyScheduler sched(w.cluster);
    double best = 0.0;
    for (double v : est.scale_up_perf)
        best = std::max(best, v);
    auto alloc = sched.allocate(w.registry.get(id), est, 3.0 * best,
                                nullptr, false);
    ASSERT_TRUE(alloc.has_value());
    ASSERT_GT(alloc->nodes.size(), 1u);
    for (const auto &node : alloc->nodes)
        EXPECT_TRUE(est.scale_up_grid[node.scale_up_col].knobs ==
                    alloc->knobs);
}

TEST(Scheduler, AllocationTotalsConsistent)
{
    Allocation alloc;
    alloc.nodes.push_back({0, 0, 4, 8.0, 1.0});
    alloc.nodes.push_back({1, 0, 8, 16.0, 2.0});
    EXPECT_EQ(alloc.totalCores(), 12);
    EXPECT_DOUBLE_EQ(alloc.totalMemoryGb(), 24.0);
}

TEST(Scheduler, StorageDemandRespected)
{
    World w;
    Workload big = w.factory.cassandraService(
        "c", 5e3, 30e-3, 4000.0,
        std::make_shared<tracegen::FlatLoad>(5e3));
    big.storage_gb_per_node = 1500.0; // only I/J (2 TB) can host
    auto [id, est] = w.make(std::move(big));
    GreedyScheduler sched(w.cluster);
    auto alloc = sched.allocate(w.registry.get(id), est, 1e3, nullptr,
                                false);
    ASSERT_TRUE(alloc.has_value());
    for (const auto &node : alloc->nodes)
        EXPECT_GE(w.cluster.server(node.server).platform().storage_gb,
                  1500.0);
}
